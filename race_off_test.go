//go:build !race

package sommelier

// raceEnabled reports whether this test binary was built with the race
// detector, whose ~10x slowdown makes wall-clock speedup assertions
// meaningless.
const raceEnabled = false
