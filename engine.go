package sommelier

import (
	"fmt"

	"sommelier/internal/catalog"
	"sommelier/internal/graph"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
)

// Store is the repository surface the engine needs. *repo.Repository
// implements it; internal/faults.FlakyStore wraps one for failure
// testing. IDs follow the repository convention (repo.IDFor):
// name@version.
type Store interface {
	Publish(m *graph.Model) (string, error)
	Load(id string) (*graph.Model, error)
	Delete(id string) error
	List() []repo.Metadata
	Metadata(id string) (repo.Metadata, bool)
}

// Engine is the Sommelier query engine: a facade over a Store (the
// model repository) and a catalog.Catalog (the index state). It is
// safe for concurrent use; queries never block on registration.
type Engine struct {
	opts  Options
	store Store
	cat   *catalog.Catalog
}

// New creates an engine over an existing repository. Models already in
// the repository are NOT indexed automatically; call IndexAll or Register.
func New(store Store, opts Options) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("sommelier: nil repository")
	}
	return &Engine{
		opts:  opts,
		store: store,
		cat: catalog.New(catalog.Config{
			Seed:             opts.Seed,
			SampleSize:       opts.SampleSize,
			Workers:          opts.IndexWorkers,
			ValidationSize:   opts.ValidationSize,
			Bound:            opts.Bound,
			Segments:         opts.Segments,
			SegmentMinLen:    opts.SegmentMinLen,
			CustomValidation: opts.CustomValidation,
			LatencyTable:     opts.LatencyTable,
		}),
	}, nil
}

// Store returns the underlying repository.
func (e *Engine) Store() Store { return e.store }

// IndexedLen returns the number of indexed models.
func (e *Engine) IndexedLen() int { return e.cat.Snapshot().Len() }

// Profile returns the indexed resource profile for id.
func (e *Engine) Profile(id string) (resource.Profile, bool) {
	return e.cat.Snapshot().Profile(id)
}

// SetDefaultReference sets the reference model used when a query names a
// task category instead of a model (§5.1).
func (e *Engine) SetDefaultReference(task, id string) error {
	if err := e.cat.SetDefaultReference(task, id); err != nil {
		return fmt.Errorf("sommelier: %q is not indexed", id)
	}
	return nil
}

// IndexMemoryBytes reports the two indexes' in-memory footprints
// (semantic, resource) for the Table 4 experiment.
func (e *Engine) IndexMemoryBytes() (semantic, res int64) {
	return e.cat.MemoryBytes()
}
