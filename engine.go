package sommelier

import (
	"fmt"

	"sommelier/internal/catalog"
	"sommelier/internal/graph"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
)

// Store is the repository surface the engine needs. *repo.Repository
// implements it; internal/faults.FlakyStore wraps one for failure
// testing. IDs follow the repository convention (repo.IDFor):
// name@version.
type Store interface {
	Publish(m *graph.Model) (string, error)
	Load(id string) (*graph.Model, error)
	Delete(id string) error
	List() []repo.Metadata
	Metadata(id string) (repo.Metadata, bool)
}

// Engine is the Sommelier query engine: a facade over a Store (the
// model repository) and a catalog.Catalog (the index state). It is
// safe for concurrent use; queries never block on registration.
type Engine struct {
	cfg   engineConfig
	store Store
	cat   *catalog.Catalog
	obs   *obs.Observer
}

// NewEngine creates an engine over an existing repository, configured
// by functional options (WithSeed, WithIndexWorkers, WithObserver, …).
// Models already in the repository are NOT indexed automatically; call
// IndexAllContext or RegisterContext.
func NewEngine(store Store, opts ...Option) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("sommelier: nil repository")
	}
	var cfg engineConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.obs == nil {
		// Metrics are always on: the observer is the API every perf
		// claim in this repo reports through.
		cfg.obs = obs.New()
	}
	cfg.cat.Observer = cfg.obs
	return &Engine{
		cfg:   cfg,
		store: store,
		obs:   cfg.obs,
		cat:   catalog.New(cfg.cat),
	}, nil
}

// New creates an engine from the legacy flat Options struct.
//
// Deprecated: use NewEngine with functional options; this constructor
// is kept as a compatibility shim at the root package boundary and
// accepts no new knobs.
func New(store Store, opts Options) (*Engine, error) {
	return NewEngine(store, opts.options()...)
}

// Store returns the underlying repository.
func (e *Engine) Store() Store { return e.store }

// Observer returns the engine's observability handle — never nil. Its
// Snapshot carries the catalog and query metrics; its Tracer holds
// recent index/query spans.
func (e *Engine) Observer() *obs.Observer { return e.obs }

// IndexedLen returns the number of indexed models.
func (e *Engine) IndexedLen() int { return e.cat.Snapshot().Len() }

// Profile returns the indexed resource profile for id.
func (e *Engine) Profile(id string) (resource.Profile, bool) {
	return e.cat.Snapshot().Profile(id)
}

// SetDefaultReference sets the reference model used when a query names a
// task category instead of a model (§5.1).
func (e *Engine) SetDefaultReference(task, id string) error {
	if err := e.cat.SetDefaultReference(task, id); err != nil {
		return fmt.Errorf("sommelier: %q is not indexed", id)
	}
	return nil
}

// IndexMemoryBytes reports the two indexes' in-memory footprints
// (semantic, resource) for the Table 4 experiment.
func (e *Engine) IndexMemoryBytes() (semantic, res int64) {
	return e.cat.MemoryBytes()
}
