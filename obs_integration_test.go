package sommelier

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"sommelier/internal/obs"
)

// tickObserver builds an observer on a deterministic clock so span
// durations and histogram values are identical across runs.
func tickObserver() *obs.Observer {
	return obs.New(obs.WithClock(obs.NewTickClock(0, int64(time.Millisecond))))
}

// indexedTreeString runs a seeded IndexAllContext over a fresh copy of
// the bench catalog and returns the canonical span tree.
func indexedTreeString(t *testing.T, workers int) string {
	t.Helper()
	store := benchCatalog(t, 0xbe7c)
	o := tickObserver()
	eng, err := NewEngine(store,
		WithSeed(17),
		WithValidationSize(80),
		WithIndexWorkers(workers),
		WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IndexAllContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	return o.Tracer().TreeString()
}

// TestIndexAllSpanTreeDeterministic is the tracing half of the
// pipeline's determinism contract: two seeded IndexAll runs produce
// identical span trees (durations excluded from the canonical form),
// regardless of how the scheduler interleaved the worker pool.
func TestIndexAllSpanTreeDeterministic(t *testing.T) {
	first := indexedTreeString(t, 4)
	second := indexedTreeString(t, 4)
	if first != second {
		t.Fatalf("span trees differ across identical seeded runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	// And across worker counts: parallelism must not change the tree.
	serial := indexedTreeString(t, 1)
	if first != serial {
		t.Fatalf("span tree with 4 workers differs from serial:\n--- parallel\n%s\n--- serial\n%s", first, serial)
	}
	for _, want := range []string{"catalog.indexall", "plan", "analyze", "commit", "profile ["} {
		if !strings.Contains(first, want) {
			t.Errorf("span tree missing %q:\n%s", want, first)
		}
	}
}

// TestIndexAllContextCancellation checks that cancelling the context
// aborts the worker pool before commit: nothing is indexed, the
// canceled counter fires, and the error is the context's.
func TestIndexAllContextCancellation(t *testing.T) {
	store := benchCatalog(t, 0xbe7c)
	o := obs.New()
	eng, err := NewEngine(store,
		WithSeed(17), WithValidationSize(80), WithIndexWorkers(4), WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.IndexAllContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("IndexAllContext after cancel = %v, want context.Canceled", err)
	}
	if n := eng.IndexedLen(); n != 0 {
		t.Fatalf("canceled IndexAll committed %d models", n)
	}
	if got := o.Snapshot().Counters["catalog_index_canceled_total"]; got != 1 {
		t.Fatalf("catalog_index_canceled_total = %d, want 1", got)
	}
	// The engine stays usable: a fresh context indexes everything.
	if err := eng.IndexAllContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := eng.IndexedLen(); n != 24 {
		t.Fatalf("re-indexed %d models, want 24", n)
	}
}

// TestIndexAllMidFlightCancellation cancels while the pool is working.
// Whether the batch wins the race or not, the engine must end in a
// consistent state: either everything committed or nothing did.
func TestIndexAllMidFlightCancellation(t *testing.T) {
	store := benchCatalog(t, 0xbe7c)
	eng, err := NewEngine(store, WithSeed(17), WithValidationSize(80), WithIndexWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	err = eng.IndexAllContext(ctx)
	switch n := eng.IndexedLen(); {
	case err == nil && n == 24: // batch finished first
	case errors.Is(err, context.Canceled) && n == 0: // cancel won
	default:
		t.Fatalf("inconsistent state after mid-flight cancel: err=%v indexed=%d", err, n)
	}
}

// TestExplainStageTimings checks the Explain surface carries the query
// pipeline's per-stage span durations, deterministic under a TickClock.
func TestExplainStageTimings(t *testing.T) {
	run := func() *Explanation {
		store := benchCatalog(t, 0xbe7c)
		eng, err := NewEngine(store,
			WithSeed(17), WithValidationSize(80), WithObserver(tickObserver()))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := eng.IndexAllContext(ctx); err != nil {
			t.Fatal(err)
		}
		refID := store.List()[0].ID
		exp, err := eng.ExplainContext(ctx, `SELECT CORR "`+refID+`" WITHIN 85% PICK most_similar`)
		if err != nil {
			t.Fatal(err)
		}
		return exp
	}
	exp := run()
	wantStages := []string{"parse", "candidates", "filter", "rank"}
	if len(exp.Stages) != len(wantStages) {
		t.Fatalf("explanation has %d stages, want %d: %+v", len(exp.Stages), len(wantStages), exp.Stages)
	}
	for i, want := range wantStages {
		st := exp.Stages[i]
		if st.Stage != want {
			t.Errorf("stage[%d] = %q, want %q", i, st.Stage, want)
		}
		if st.Millis <= 0 {
			t.Errorf("stage %q duration = %v, want > 0 under TickClock", st.Stage, st.Millis)
		}
	}
	if !strings.Contains(exp.String(), "timings:") {
		t.Errorf("Explanation.String() missing timings section:\n%s", exp.String())
	}
	// TickClock determinism: a second identical run reports identical
	// stage durations.
	again := run()
	for i := range exp.Stages {
		if exp.Stages[i] != again.Stages[i] {
			t.Fatalf("stage timings differ across identical runs: %+v vs %+v",
				exp.Stages[i], again.Stages[i])
		}
	}
}

// TestConcurrentQueryIndexMetrics hammers the observer from both sides
// at once — queries racing a parallel IndexAll on one engine — and
// checks the books balance afterwards. Run under -race this is the
// metric-write stress test the observability layer promises to survive.
func TestConcurrentQueryIndexMetrics(t *testing.T) {
	store := benchCatalog(t, 0xbe7c)
	o := obs.New()
	eng, err := NewEngine(store,
		WithSeed(17), WithValidationSize(80), WithIndexWorkers(4), WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	refID := store.List()[0].ID
	q := `SELECT CORR "` + refID + `" WITHIN 85% PICK most_similar`

	const queriers = 4
	const perQuerier = 8
	var wg sync.WaitGroup
	wg.Add(queriers + 1)
	go func() {
		defer wg.Done()
		if err := eng.IndexAllContext(ctx); err != nil {
			t.Error(err)
		}
	}()
	for g := 0; g < queriers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perQuerier; i++ {
				// Until the batch commits, the reference is unindexed and
				// the query errors — that's fine; both outcomes write
				// metrics, which is the point of the stress.
				_, _ = eng.QueryContext(ctx, q)
				// Snapshot readers race the writers too.
				_ = o.Snapshot()
			}
		}()
	}
	wg.Wait()

	snap := o.Snapshot()
	if got := snap.Counters["queries_total"]; got != queriers*perQuerier {
		t.Fatalf("queries_total = %d, want %d", got, queriers*perQuerier)
	}
	// The root histogram observes every query, success or error (the
	// deferred End on the root span), so its count must match exactly.
	if got := snap.Histograms["query_total_ms"].Count; got != queriers*perQuerier {
		t.Fatalf("query_total_ms count = %d, want %d", got, queriers*perQuerier)
	}
	if errs := snap.Counters["query_errors_total"]; errs > queriers*perQuerier {
		t.Fatalf("query_errors_total = %d > %d queries issued", errs, queriers*perQuerier)
	}
	if got := snap.Counters["catalog_models_indexed_total"]; got != 24 {
		t.Fatalf("catalog_models_indexed_total = %d, want 24", got)
	}
	if busy := snap.Gauges["catalog_workers_busy"]; busy != 0 {
		t.Fatalf("catalog_workers_busy = %d after quiescence, want 0", busy)
	}
	if got := snap.Gauges["catalog_semantic_models"]; got != 24 {
		t.Fatalf("catalog_semantic_models gauge = %d, want 24", got)
	}
}
