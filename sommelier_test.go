package sommelier

import (
	"strings"
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/query"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

// newEngineWithLadder builds an engine over a base model plus calibrated
// variants at known distances and inflated (larger) siblings.
func newEngineWithLadder(t testing.TB, segments bool) (*Engine, string, []string) {
	t.Helper()
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 11, ValidationSize: 250, Segments: segments})
	if err != nil {
		t.Fatal(err)
	}
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "refnet", Seed: 1, Width: 32, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	refID, err := eng.Register(base)
	if err != nil {
		t.Fatal(err)
	}
	probes := dataset.RandomImages(300, base.InputShape, 42)
	var ids []string
	for i, target := range []float64{0.03, 0.08, 0.2} {
		v, _, err := zoo.CalibratedVariant(base, "variant"+itoa(i), target, probes, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		id, err := eng.Register(v)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// One larger sibling: nearly same function, much bigger profile.
	big, err := zoo.Inflate(base, "bignet", 32, 96, 5)
	if err != nil {
		t.Fatal(err)
	}
	bigID, err := eng.Register(big)
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, bigID)
	return eng, refID, ids
}

func itoa(n int) string { return string(rune('0' + n)) }

func TestEngineRegisterAndIndex(t *testing.T) {
	eng, refID, ids := newEngineWithLadder(t, false)
	if eng.IndexedLen() != 5 {
		t.Fatalf("IndexedLen = %d", eng.IndexedLen())
	}
	if refID != "refnet@1" {
		t.Fatalf("refID = %q", refID)
	}
	res, err := eng.TopEquivalents(refID, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("TopEquivalents = %d", len(res))
	}
	// The near-identical variant should outrank the distant one.
	rank := map[string]int{}
	for i, r := range res {
		rank[r.ID] = i
	}
	if rank[ids[0]] > rank[ids[2]] {
		t.Fatalf("ranking wrong: %+v", res)
	}
}

func TestEngineQueryPipeline(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	// High threshold, memory within 120% of ref: excludes the distant
	// variant and the inflated big model.
	results, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 85% ON memory <= 120% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for _, r := range results {
		if r.Level < 0.85 {
			t.Fatalf("result below threshold: %+v", r)
		}
		if r.ID == "bignet@1" {
			t.Fatal("memory constraint leaked the big model")
		}
	}
	// Levels descending under most_similar.
	for i := 1; i < len(results); i++ {
		if results[i].Level > results[i-1].Level {
			t.Fatal("most_similar not sorted by level")
		}
	}
}

func TestEngineQueryPickSmallest(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	results, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 50% PICK smallest`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Profile.MemoryBytes < results[i-1].Profile.MemoryBytes {
			t.Fatal("smallest not sorted by memory")
		}
	}
}

func TestEngineQueryLimit(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	results, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 10% PICK most_similar LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) > 2 {
		t.Fatalf("limit ignored: %d results", len(results))
	}
}

func TestEngineQueryLowerBoundConstraint(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	// Require MORE memory than the reference: only the inflated model.
	results, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 50% ON memory >= 150% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "bignet@1" {
		t.Fatalf("lower-bound query = %+v", results)
	}
}

func TestEngineQueryTaskDefaultReference(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	// The first registered classification model is the default ref.
	results, err := eng.Query(`SELECT TASK classification WITHIN 50% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("task query found nothing")
	}
	if err := eng.SetDefaultReference("classification", results[0].ID); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetDefaultReference("classification", "ghost@1"); err == nil {
		t.Fatal("expected error for unknown default reference")
	}
	_ = refID
}

func TestEngineQueryErrors(t *testing.T) {
	eng, _, _ := newEngineWithLadder(t, false)
	if _, err := eng.Query(`garbage`); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := eng.Query(`SELECT CORR ghost@9`); err == nil {
		t.Fatal("expected unknown-reference error")
	}
	if _, err := eng.Query(`SELECT TASK regression`); err == nil {
		t.Fatal("expected no-default-reference error")
	}
}

func TestEngineQueryAbsoluteConstraint(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	refProf, _ := eng.Profile(refID)
	mb := float64(refProf.MemoryBytes) / (1 << 20)
	q := &query.Query{
		Ref:       refID,
		Threshold: 0.5,
		Constraints: []query.Constraint{{
			Metric: query.MetricMemory, Op: query.OpLE,
			Value: mb * 1.1, Unit: query.UnitMB,
		}},
		Pick: query.PickMostSimilar,
	}
	results, err := eng.QueryAST(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if float64(r.Profile.MemoryBytes) > mb*1.1*(1<<20) {
			t.Fatalf("absolute constraint leaked %+v", r)
		}
	}
}

func TestEngineSegmentsProduceSynthesizedCandidates(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 3, ValidationSize: 150, Segments: true, SegmentMinLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "segbase", Seed: 7, Width: 24, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A transfer variant sharing the frozen trunk.
	variant, err := zoo.Transfer(base, "segvariant", 8, 99, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	refID, err := eng.Register(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register(variant); err != nil {
		t.Fatal(err)
	}
	res, err := eng.TopEquivalents(refID, 10)
	if err != nil {
		t.Fatal(err)
	}
	var synth *Result
	for i := range res {
		if res[i].Synthesized {
			synth = &res[i]
			break
		}
	}
	if synth == nil {
		t.Fatalf("no synthesized candidate found in %+v", res)
	}
	if synth.DonorID != "segvariant@1" || synth.Segment == "" {
		t.Fatalf("synthesized candidate malformed: %+v", synth)
	}

	// Materialize must produce a valid runnable model.
	m, err := eng.Materialize(*synth)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Name, "seg") {
		t.Fatalf("materialized name %q", m.Name)
	}
}

func TestEngineMaterializeWhole(t *testing.T) {
	eng, refID, ids := newEngineWithLadder(t, false)
	m, err := eng.Materialize(Result{ID: ids[0]})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "variant0" {
		t.Fatalf("materialized %q", m.Name)
	}
	_ = refID
}

func TestEngineIndexAllFromRepository(t *testing.T) {
	store := repo.NewInMemory()
	for i := 0; i < 3; i++ {
		m, err := zoo.MobileNetish(zoo.Config{Name: "pre" + itoa(i), Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.Publish(m); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := New(store, Options{Seed: 5, ValidationSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.IndexAll(); err != nil {
		t.Fatal(err)
	}
	if eng.IndexedLen() != 3 {
		t.Fatalf("IndexedLen = %d", eng.IndexedLen())
	}
	// Idempotent.
	if err := eng.IndexAll(); err != nil {
		t.Fatal(err)
	}
	if eng.IndexedLen() != 3 {
		t.Fatal("IndexAll re-indexed models")
	}
}

func TestEngineIndexMemoryBytes(t *testing.T) {
	eng, _, _ := newEngineWithLadder(t, false)
	sem, res := eng.IndexMemoryBytes()
	if sem <= 0 || res <= 0 {
		t.Fatalf("index memory = %d, %d", sem, res)
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	run := func() []Result {
		eng, refID, _ := newEngineWithLadder(t, false)
		rs, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 50% PICK most_similar`)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Level != b[i].Level {
			t.Fatalf("nondeterministic results at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEngineNilRepository(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("expected nil-repository error")
	}
}

func TestBudgetFromRelativeAndAbsolute(t *testing.T) {
	ref := resource.Profile{MemoryBytes: 1000, FLOPs: 2000, LatencyMS: 10}
	b, err := budgetFrom([]query.Constraint{
		{Metric: query.MetricMemory, Op: query.OpLE, Value: 50, Unit: query.UnitRelative},
		{Metric: query.MetricLatency, Op: query.OpLT, Value: 3, Unit: query.UnitMS},
		{Metric: query.MetricFLOPs, Op: query.OpGE, Value: 10, Unit: query.UnitRelative},
	}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxMemoryBytes != 500 || b.MaxLatencyMS != 3 {
		t.Fatalf("budget = %+v", b)
	}
	if b.MaxFLOPs != 0 {
		t.Fatal("lower-bound constraint should not enter the budget")
	}
}

func TestExactlySatisfiesOperators(t *testing.T) {
	ref := resource.Profile{MemoryBytes: 1000, FLOPs: 1000, LatencyMS: 10}
	p := resource.Profile{MemoryBytes: 500, FLOPs: 800, LatencyMS: 5}
	cs := []query.Constraint{
		{Metric: query.MetricMemory, Op: query.OpLT, Value: 60, Unit: query.UnitRelative},
		{Metric: query.MetricFLOPs, Op: query.OpGE, Value: 50, Unit: query.UnitRelative},
	}
	mustSatisfy := func(cs []query.Constraint) bool {
		t.Helper()
		keep, err := exactlySatisfies(cs, p, ref)
		if err != nil {
			t.Fatal(err)
		}
		return keep
	}
	if !mustSatisfy(cs) {
		t.Fatal("satisfying profile rejected")
	}
	cs[0].Value = 40
	if mustSatisfy(cs) {
		t.Fatal("violating profile accepted")
	}
	eq := []query.Constraint{{Metric: query.MetricLatency, Op: query.OpEQ, Value: 50, Unit: query.UnitRelative}}
	if !mustSatisfy(eq) {
		t.Fatal("equality within band rejected")
	}
	eq[0].Value = 80
	if mustSatisfy(eq) {
		t.Fatal("equality outside band accepted")
	}
}

func TestEquivOptionsExposedThroughEngine(t *testing.T) {
	// BoundOff engines must produce levels >= BoundOn engines for the
	// same pair (the bound only subtracts).
	mkEngine := func(mode equiv.BoundMode) float64 {
		store := repo.NewInMemory()
		eng, err := New(store, Options{Seed: 9, ValidationSize: 200, Bound: mode})
		if err != nil {
			t.Fatal(err)
		}
		base, err := zoo.DenseResidualNet(zoo.Config{Name: "b", Seed: 2, Width: 24})
		if err != nil {
			t.Fatal(err)
		}
		refID, err := eng.Register(base)
		if err != nil {
			t.Fatal(err)
		}
		v := zoo.Perturb(base, "v", 0.02, 3)
		if _, err := eng.Register(v); err != nil {
			t.Fatal(err)
		}
		res, err := eng.TopEquivalents(refID, 1)
		if err != nil || len(res) != 1 {
			t.Fatalf("top: %v %d", err, len(res))
		}
		return res[0].Level
	}
	on := mkEngine(equiv.BoundOn)
	off := mkEngine(equiv.BoundOff)
	if on >= off {
		t.Fatalf("bound-on level %g should be below bound-off %g", on, off)
	}
}

func TestValidationForCustomDataset(t *testing.T) {
	store := repo.NewInMemory()
	custom := &dataset.Dataset{
		Name:   "custom",
		Inputs: dataset.RandomImages(50, tensor.Shape{16}, 99),
	}
	eng, err := New(store, Options{Seed: 1, CustomValidation: custom})
	if err != nil {
		t.Fatal(err)
	}
	// The probe-dataset selection itself is covered in internal/catalog;
	// here we check the option flows through the engine: registration
	// and analysis of shape-matching models still work end to end.
	m, err := zoo.DenseResidualNet(zoo.Config{Name: "cv", Seed: 4, InDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register(m); err != nil {
		t.Fatal(err)
	}
	m2, err := zoo.DenseResidualNet(zoo.Config{Name: "cv2", Seed: 6, InDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register(m2); err != nil {
		t.Fatal(err)
	}
	if eng.IndexedLen() != 2 {
		t.Fatalf("indexed %d models, want 2", eng.IndexedLen())
	}
	_ = graph.TaskClassification
}

func TestEngineExecSpecReprofiles(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	// Batch-32 fp32 raises activation memory; a tight relative budget
	// that passes at batch 1 can fail at batch 32, and vice versa a
	// query with EXEC must still return a consistent, non-empty set at
	// a loose budget.
	base, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 50% ON memory <= 200% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	withExec, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 50% ON memory <= 200% EXEC batch=32 PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if len(withExec) == 0 {
		t.Fatal("exec-spec query returned nothing at a loose budget")
	}
	// Profiles under the exec spec must differ from the defaults.
	var defMem, execMem int64
	for _, r := range base {
		if r.ID == withExec[0].ID {
			defMem = r.Profile.MemoryBytes
		}
	}
	execMem = withExec[0].Profile.MemoryBytes
	if defMem == 0 || execMem <= defMem {
		t.Fatalf("exec-spec did not re-profile: default %d vs exec %d", defMem, execMem)
	}
	// Invalid EXEC values fail loudly.
	if _, err := eng.Query(`SELECT CORR "` + refID + `" EXEC batch=zero`); err == nil {
		t.Fatal("expected bad-batch error")
	}
	if _, err := eng.Query(`SELECT CORR "` + refID + `" EXEC precision=fp8`); err == nil {
		t.Fatal("expected bad-precision error")
	}
}

func TestRegisterAnnotated(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	m, err := eng.Store().Load(refID)
	if err != nil {
		t.Fatal(err)
	}
	annotated := m.Clone()
	annotated.Name = "annotated"
	id, err := eng.RegisterAnnotated(annotated, map[string]float64{refID: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// The declared level appears in both directions and wins over the
	// measured one if higher.
	top, err := eng.TopEquivalents(refID, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top[0].ID != id || top[0].Level != 0.99 {
		t.Fatalf("annotation not applied: %+v", top[0])
	}
	own, err := eng.TopEquivalents(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if own[0].ID != refID || own[0].Level != 0.99 {
		t.Fatalf("reverse annotation missing: %+v", own[0])
	}
	// Invalid annotations fail loudly.
	bad := m.Clone()
	bad.Name = "bad-level"
	if _, err := eng.RegisterAnnotated(bad, map[string]float64{refID: 1.5}); err == nil {
		t.Fatal("expected range error")
	}
	bad2 := m.Clone()
	bad2.Name = "bad-target"
	if _, err := eng.RegisterAnnotated(bad2, map[string]float64{"ghost@1": 0.5}); err == nil {
		t.Fatal("expected unindexed-target error")
	}
}
