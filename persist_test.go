package sommelier

import (
	"bytes"
	"strings"
	"testing"

	"sommelier/internal/repo"
)

func TestSaveLoadIndexesRoundTrip(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	var buf bytes.Buffer
	if err := eng.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh engine over the same repository, restored without any
	// re-analysis.
	eng2, err := New(eng.Store(), Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadIndexes(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if eng2.IndexedLen() != eng.IndexedLen() {
		t.Fatalf("restored %d entries, want %d", eng2.IndexedLen(), eng.IndexedLen())
	}

	// Queries over the restored engine match the original exactly.
	q := `SELECT CORR "` + refID + `" WITHIN 50% PICK most_similar`
	orig, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := eng2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(restored) {
		t.Fatalf("result sizes differ: %d vs %d", len(orig), len(restored))
	}
	for i := range orig {
		if orig[i].ID != restored[i].ID || orig[i].Level != restored[i].Level {
			t.Fatalf("result %d differs: %+v vs %+v", i, orig[i], restored[i])
		}
	}
	// Task-default references survive.
	if _, err := eng2.Query(`SELECT TASK classification WITHIN 50% PICK most_similar`); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIndexesAfterRestoreCanRegisterMore(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	var buf bytes.Buffer
	if err := eng.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}
	eng2, err := New(eng.Store(), Options{Seed: 11, ValidationSize: 250})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.LoadIndexes(&buf); err != nil {
		t.Fatal(err)
	}
	// Register a new model: the analyzer must be able to compare it
	// against restored (re-resolved) entries.
	m, err := eng2.Store().Load(refID)
	if err != nil {
		t.Fatal(err)
	}
	clone := m.Clone()
	clone.Name = "post-restore"
	id, err := eng2.Register(clone)
	if err != nil {
		t.Fatal(err)
	}
	top, err := eng2.TopEquivalents(id, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Level < 0.8 {
		t.Fatalf("post-restore registration did not analyze against restored entries: %+v", top)
	}
}

func TestLoadIndexesErrors(t *testing.T) {
	eng, err := New(repo.NewInMemory(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadIndexes(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("expected version error")
	}
	if err := eng.LoadIndexes(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected decode error")
	}
	// Snapshot referencing a model absent from the repository.
	if err := eng.LoadIndexes(strings.NewReader(
		`{"version":1,"semantic":{"entries":[{"id":"ghost@1","fingerprint":"x"}]},"resource":{"profiles":{}}}`,
	)); err == nil {
		t.Fatal("expected missing-model error")
	}
}
