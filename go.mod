module sommelier

go 1.22
