package sommelier

import (
	"context"
	"fmt"
	"strings"

	"sommelier/internal/query"
)

// StageTiming is one pipeline stage's measured duration, as recorded by
// the engine's tracer. Under a deterministic clock (obs.TickClock) the
// values are reproducible run to run.
type StageTiming struct {
	Stage  string  `json:"stage"`
	Millis float64 `json:"ms"`
}

// Explanation reports what each stage of the §5.4 filter pipeline did for
// one query — the introspection behind the paper's framing of Sommelier
// as an "explanation database for DNNs": not just which model was chosen,
// but why the others were not.
type Explanation struct {
	Query     string
	Reference string
	// SemanticCandidates is the stage-1 output size (candidates at or
	// above the threshold).
	SemanticCandidates int
	// SemanticRejected counts indexed models below the threshold.
	SemanticRejected int
	// ResourceRejected counts stage-1 survivors that failed a resource
	// constraint, per constraint.
	ResourceRejected map[string]int
	// Returned is the final result count after selection and LIMIT.
	Returned int
	// Results carries the final results for convenience.
	Results []Result
	// Stages holds the per-stage query span durations (parse,
	// candidates, filter, rank) in execution order.
	Stages []StageTiming
}

// String renders a human-readable explanation.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", e.Query)
	fmt.Fprintf(&b, "reference: %s\n", e.Reference)
	fmt.Fprintf(&b, "stage 1 (semantic): %d candidates pass, %d below threshold\n",
		e.SemanticCandidates, e.SemanticRejected)
	if len(e.ResourceRejected) == 0 {
		b.WriteString("stage 2 (resource): no constraints\n")
	} else {
		b.WriteString("stage 2 (resource):\n")
		keys := make([]string, 0, len(e.ResourceRejected))
		for k := range e.ResourceRejected {
			keys = append(keys, k)
		}
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s rejected %d candidates\n", k, e.ResourceRejected[k])
		}
	}
	fmt.Fprintf(&b, "stage 3 (selection): %d returned\n", e.Returned)
	if len(e.Stages) > 0 {
		b.WriteString("timings:\n")
		for _, s := range e.Stages {
			fmt.Fprintf(&b, "  %s: %.3fms\n", s.Stage, s.Millis)
		}
	}
	return b.String()
}

// ExplainContext runs the query while recording per-stage filtering
// decisions and per-stage span durations. It returns the same results
// Query would, plus the explanation. Like QueryASTContext, every stage
// reads one catalog snapshot, so the counts add up even under
// concurrent registration.
func (e *Engine) ExplainContext(ctx context.Context, q string) (*Explanation, error) {
	ctx, root := e.obs.StartSpan(ctx, "explain", "")
	defer func() { e.obs.Histogram("query_total_ms").Observe(root.End()) }()
	e.obs.Counter("queries_total").Inc()

	_, span := e.obs.StartSpan(ctx, "parse", "")
	ast, err := query.Parse(q)
	parseMS := span.End()
	e.obs.Histogram("query_parse_ms").Observe(parseMS)
	if err != nil {
		e.obs.Counter("query_errors_total").Inc()
		return nil, err
	}
	snap := e.cat.Snapshot()

	refID := ast.Ref
	if refID == "" {
		id, ok := snap.DefaultReference(ast.Task)
		if !ok {
			return nil, fmt.Errorf("%w: no default reference for task %q", ErrUnknownReference, ast.Task)
		}
		refID = id
	}
	if !snap.Contains(refID) {
		return nil, fmt.Errorf("%w: %q is not indexed", ErrUnknownReference, refID)
	}
	refProf, ok := snap.Profile(refID)
	if !ok {
		return nil, fmt.Errorf("%w: reference model %q", ErrNoProfile, refID)
	}

	exp := &Explanation{
		Query:            ast.String(),
		Reference:        refID,
		ResourceRejected: make(map[string]int),
		Stages:           []StageTiming{{Stage: "parse", Millis: parseMS}},
	}
	// Seed every constraint so zero-rejection constraints still appear
	// in the report (distinct from "no constraints at all").
	for _, con := range ast.Constraints {
		exp.ResourceRejected[con.String()] = 0
	}

	_, span = e.obs.StartSpan(ctx, "candidates", "")
	all, err := snap.Lookup(refID, 0)
	if err != nil {
		span.End()
		return nil, err
	}
	cands, err := snap.Lookup(refID, ast.Threshold)
	candMS := span.End()
	e.obs.Histogram("query_candidates_ms").Observe(candMS)
	exp.Stages = append(exp.Stages, StageTiming{Stage: "candidates", Millis: candMS})
	if err != nil {
		return nil, err
	}
	exp.SemanticCandidates = len(cands)
	exp.SemanticRejected = len(all) - len(cands)

	setting, reprofile, err := execSetting(ast.Exec)
	if err != nil {
		return nil, err
	}
	_, span = e.obs.StartSpan(ctx, "filter", "")
	var results []Result
	for _, c := range cands {
		pid := candProfileID(c)
		prof, ok := snap.Profile(pid)
		if reprofile {
			m, err := e.store.Load(pid)
			if err != nil {
				span.End()
				return nil, err
			}
			if prof, err = e.cat.Profiler().MeasureWith(m, setting); err != nil {
				span.End()
				return nil, err
			}
			ok = true
		}
		if !ok {
			e.obs.Counter("query_skipped_no_profile_total").Inc()
			continue
		}
		rejected := false
		for _, con := range ast.Constraints {
			keep, err := exactlySatisfies([]query.Constraint{con}, prof, refProf)
			if err != nil {
				span.End()
				return nil, err
			}
			if !keep {
				exp.ResourceRejected[con.String()]++
				rejected = true
			}
		}
		if rejected {
			continue
		}
		results = append(results, Result{
			ID: pid, Level: c.Level,
			Synthesized: c.Kind.String() == "synthesized",
			DonorID:     c.DonorID, Segment: c.Segment,
			Derived: c.Derived, Profile: prof,
		})
	}
	filterMS := span.End()
	e.obs.Histogram("query_filter_ms").Observe(filterMS)
	exp.Stages = append(exp.Stages, StageTiming{Stage: "filter", Millis: filterMS})

	_, span = e.obs.StartSpan(ctx, "rank", "")
	sortResults(results, ast.Pick)
	if ast.Limit > 0 && len(results) > ast.Limit {
		results = results[:ast.Limit]
	}
	rankMS := span.End()
	e.obs.Histogram("query_rank_ms").Observe(rankMS)
	exp.Stages = append(exp.Stages, StageTiming{Stage: "rank", Millis: rankMS})
	exp.Returned = len(results)
	exp.Results = results
	return exp, nil
}

// Explain runs the query with per-stage introspection, without a
// context.
//
// Deprecated: use ExplainContext.
func (e *Engine) Explain(q string) (*Explanation, error) {
	return e.ExplainContext(context.Background(), q)
}
