package sommelier_test

import (
	"fmt"
	"log"

	"sommelier"
	"sommelier/internal/graph"
	"sommelier/internal/repo"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

// Example shows the minimal end-to-end flow: publish a model family,
// query for a compact equivalent, and materialize the winner.
func Example() {
	store := repo.NewInMemory()
	eng, err := sommelier.New(store, sommelier.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	base := buildModel("flagship", 1)
	refID, err := eng.Register(base)
	if err != nil {
		log.Fatal(err)
	}
	// A near-identical clone and a behaviourally distant sibling.
	clone := base.Clone()
	clone.Name = "clone"
	if _, err := eng.Register(clone); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Register(zoo.Perturb(base, "distant", 1.5, 2)); err != nil {
		log.Fatal(err)
	}

	results, err := eng.Query(
		`SELECT CORR "` + refID + `" WITHIN 90% PICK most_similar LIMIT 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(results[0].ID)
	// Output: clone@1
}

// ExampleEngine_Query demonstrates relative resource constraints: the
// wide sibling is excluded by a memory budget below its footprint.
func ExampleEngine_Query() {
	store := repo.NewInMemory()
	eng, err := sommelier.New(store, sommelier.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	base := buildModel("ref", 5)
	refID, err := eng.Register(base)
	if err != nil {
		log.Fatal(err)
	}
	wide, err := zoo.Inflate(base, "wide", 16, 64, 7)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Register(wide); err != nil {
		log.Fatal(err)
	}

	within, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 80% ON memory <= 500% PICK most_similar`)
	if err != nil {
		log.Fatal(err)
	}
	tight, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 80% ON memory <= 120% PICK most_similar`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(within), len(tight))
	// Output: 1 0
}

func buildModel(name string, seed uint64) *graph.Model {
	b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{12}, tensor.NewRNG(seed))
	b.Dense(16)
	b.ReLU()
	b.Dense(4)
	b.Softmax()
	return b.MustBuild()
}
