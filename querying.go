package sommelier

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"sommelier/internal/catalog"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/query"
	"sommelier/internal/resource"
)

// ErrUnknownReference is wrapped by query errors whose cause is that
// this engine's catalog does not hold the query's reference model (or
// holds no default reference for the task). In a sharded deployment
// that is an expected per-shard condition, not a failure: a scatter
// coordinator checks for it with errors.Is and records an empty
// contribution from the shard.
var ErrUnknownReference = errors.New("sommelier: reference model not in this catalog")

// ErrNoProfile is wrapped by query errors whose cause is an indexed
// model with no resource profile — an index inconsistency, since the
// pipeline profiles every model it commits. A *reference* model without
// a profile fails the query with this error; a *candidate* without one
// is skipped and counted in query_skipped_no_profile_total instead of
// competing with a zero-valued profile it would trivially win resource
// ranking with.
var ErrNoProfile = errors.New("sommelier: indexed model has no resource profile")

// QueryContext parses and executes a query string. The whole query —
// parse → candidates → filter → rank — is traced as one span tree and
// timed into the engine's per-stage query histograms.
func (e *Engine) QueryContext(ctx context.Context, q string) ([]Result, error) {
	ctx, root := e.obs.StartSpan(ctx, "query", "")
	defer func() { e.obs.Histogram("query_total_ms").Observe(root.End()) }()
	_, span := e.obs.StartSpan(ctx, "parse", "")
	ast, err := query.Parse(q)
	e.obs.Histogram("query_parse_ms").Observe(span.End())
	if err != nil {
		e.obs.Counter("query_errors_total").Inc()
		return nil, err
	}
	return e.queryAST(ctx, ast)
}

// Query parses and executes a query string without a context.
//
// Deprecated: use QueryContext.
func (e *Engine) Query(q string) ([]Result, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryASTContext executes a parsed query through the three-stage
// pipeline (§5.4). The whole query runs against one catalog snapshot,
// so its answer is internally consistent — and lock-free — no matter
// how many models are being registered concurrently.
func (e *Engine) QueryASTContext(ctx context.Context, q *query.Query) ([]Result, error) {
	ctx, root := e.obs.StartSpan(ctx, "query", "")
	defer func() { e.obs.Histogram("query_total_ms").Observe(root.End()) }()
	return e.queryAST(ctx, q)
}

// QueryAST executes a parsed query without a context.
//
// Deprecated: use QueryASTContext.
func (e *Engine) QueryAST(q *query.Query) ([]Result, error) {
	return e.QueryASTContext(context.Background(), q)
}

// queryAST is the shared single-query execution body: one fresh
// snapshot, one fresh reprofile memo. Batches share both across
// queries instead (see batch.go); the per-query execution is the same
// queryOne either way, which is what makes batch answers byte-identical
// to serial ones.
func (e *Engine) queryAST(ctx context.Context, q *query.Query) ([]Result, error) {
	results, err := e.queryOne(ctx, e.cat.Snapshot(), q, catalog.NewReprofileMemo())
	if err != nil {
		e.obs.Counter("query_errors_total").Inc()
		return nil, err
	}
	return results, nil
}

// queryOne executes one parsed query against an already-acquired
// snapshot. ctx carries the caller's root query span; each stage opens
// a child span and feeds the matching histogram. memo deduplicates
// EXEC re-profiling work; callers executing a batch pass one memo for
// the whole batch.
func (e *Engine) queryOne(ctx context.Context, snap *catalog.Snapshot, q *query.Query,
	memo *catalog.ReprofileMemo) ([]Result, error) {
	e.obs.Counter("queries_total").Inc()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	refID := q.Ref
	if refID == "" {
		id, ok := snap.DefaultReference(q.Task)
		if !ok {
			return nil, fmt.Errorf("%w: no default reference for task %q", ErrUnknownReference, q.Task)
		}
		refID = id
	}
	if !snap.Contains(refID) {
		return nil, fmt.Errorf("%w: %q is not indexed", ErrUnknownReference, refID)
	}
	refProf, ok := snap.Profile(refID)
	if !ok {
		return nil, fmt.Errorf("%w: reference model %q", ErrNoProfile, refID)
	}

	// Stage 1: semantic filter.
	_, span := e.obs.StartSpan(ctx, "candidates", "")
	cands, err := snap.Lookup(refID, q.Threshold)
	e.obs.Histogram("query_candidates_ms").Observe(span.End())
	if err != nil {
		return nil, err
	}

	// An EXEC spec re-profiles models under the requested execution
	// setting (§5.3: batch size and precision shift real footprints);
	// without one, the indexed default-setting profiles apply.
	setting, reprofile, err := execSetting(q.Exec)
	if err != nil {
		return nil, err
	}
	if reprofile {
		if refProf, err = e.reprofile(refID, setting, memo); err != nil {
			return nil, err
		}
	}

	// Stage 2: resource filter, cost-ordered (see resourceFilter).
	_, span = e.obs.StartSpan(ctx, "filter", "")
	results, err := e.resourceFilter(ctx, q, snap, cands, refProf, reprofile, setting, memo)
	e.obs.Histogram("query_filter_ms").Observe(span.End())
	if err != nil {
		return nil, err
	}

	// Stage 3: final selection.
	_, span = e.obs.StartSpan(ctx, "rank", "")
	sortResults(results, q.Pick)
	if q.Limit > 0 && len(results) > q.Limit {
		results = results[:q.Limit]
	}
	e.obs.Histogram("query_rank_ms").Observe(span.End())
	return results, nil
}

// reprofile measures one model under an EXEC setting through the memo:
// the expensive store.Load + MeasureWith round trip runs at most once
// per (model, setting) per memo, no matter how many queries of a batch
// share the candidate.
func (e *Engine) reprofile(id string, setting resource.ExecSetting,
	memo *catalog.ReprofileMemo) (resource.Profile, error) {
	return memo.Profile(catalog.ReprofileKey{ID: id, Setting: setting},
		func() (resource.Profile, error) {
			m, err := e.store.Load(id)
			if err != nil {
				return resource.Profile{}, err
			}
			return e.cat.Profiler().MeasureWith(m, setting)
		})
}

// feasiblePool recycles the per-query feasibility sets — the scratch
// buffer every stage-2 pass allocates — across the queries of a batch
// (and across batches).
var feasiblePool = sync.Pool{
	New: func() any { return make(map[string]bool) },
}

// resourceFilter is stage 2, cost-ordered: every cheap check runs
// before any expensive one.
//
//  1. Budget construction and the LSH prefilter (indexed default
//     profiles) — pure index math, no model bytes touched.
//  2. The cheap pass: candidate ∩ feasible intersection and, for
//     default-setting queries, indexed-profile constraint checks.
//     Nothing in this pass calls store.Load.
//  3. The expensive pass (EXEC queries only): survivors are loaded and
//     re-measured through the batch memo, then checked exactly.
//
// Both passes re-check ctx between candidates, so cancelling the query
// actually stops the work instead of letting the loop grind through
// the remaining candidates.
func (e *Engine) resourceFilter(ctx context.Context, q *query.Query, snap *catalog.Snapshot,
	cands []index.Candidate, refProf resource.Profile, reprofile bool,
	setting resource.ExecSetting, memo *catalog.ReprofileMemo) ([]Result, error) {
	budget, err := budgetFrom(q.Constraints, refProf)
	if err != nil {
		return nil, err
	}
	feasible := feasiblePool.Get().(map[string]bool)
	defer func() {
		clear(feasible)
		feasiblePool.Put(feasible)
	}()
	// Under an EXEC spec the LSH prefilter is skipped — the indexed
	// vectors describe the default setting — and the exact re-measured
	// check below is authoritative.
	if len(q.Constraints) == 0 || reprofile {
		for _, c := range cands {
			feasible[candProfileID(c)] = true
		}
	} else {
		ids, err := snap.ResourceCandidates(budget, 0)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			feasible[id] = true
		}
	}

	// Cheap pass. EXEC queries only collect survivors here; everything
	// else resolves fully against indexed profiles without touching the
	// store.
	var results []Result
	var expensive []index.Candidate
	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pid := candProfileID(c)
		if !feasible[pid] {
			continue
		}
		if reprofile {
			expensive = append(expensive, c)
			continue
		}
		prof, ok := snap.Profile(pid)
		if !ok {
			// An indexed candidate without a profile must not compete
			// with a zero-valued one — it would trivially satisfy every
			// upper bound and win PICK SMALLEST/FASTEST/CHEAPEST.
			e.obs.Counter("query_skipped_no_profile_total").Inc()
			continue
		}
		keep, err := exactlySatisfies(q.Constraints, prof, refProf)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		results = append(results, candResult(c, prof))
	}

	// Expensive pass: only EXEC-query survivors reach the store.
	for _, c := range expensive {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pid := candProfileID(c)
		prof, err := e.reprofile(pid, setting, memo)
		if err != nil {
			return nil, err
		}
		keep, err := exactlySatisfies(q.Constraints, prof, refProf)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		results = append(results, candResult(c, prof))
	}
	return results, nil
}

// candResult builds the engine result for one surviving candidate.
func candResult(c index.Candidate, prof resource.Profile) Result {
	return Result{
		ID:          candProfileID(c),
		Level:       c.Level,
		Synthesized: c.Kind == index.KindSynthesized,
		DonorID:     c.DonorID,
		Segment:     c.Segment,
		Derived:     c.Derived,
		Profile:     prof,
	}
}

// TopEquivalents returns the reference's K best semantic candidates — the
// primitive behind the DNN-testing case study and Figure 13. Candidates
// missing a resource profile are skipped (and counted in
// query_skipped_no_profile_total) rather than returned with a
// zero-valued profile.
func (e *Engine) TopEquivalents(refID string, k int) ([]Result, error) {
	snap := e.cat.Snapshot()
	cands, err := snap.TopK(refID, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(cands))
	for _, c := range cands {
		prof, ok := snap.Profile(c.ID)
		if !ok {
			e.obs.Counter("query_skipped_no_profile_total").Inc()
			continue
		}
		out = append(out, Result{
			ID: c.ID, Level: c.Level,
			Synthesized: c.Kind == index.KindSynthesized,
			DonorID:     c.DonorID, Segment: c.Segment,
			Derived: c.Derived, Profile: prof,
		})
	}
	return out, nil
}

// Materialize loads the concrete model for a result. Synthesized results
// are built on demand by transplanting the donor segment (§5.2 lookup
// case (ii)).
func (e *Engine) Materialize(r Result) (*graph.Model, error) {
	base, err := e.store.Load(r.ID)
	if err != nil {
		return nil, err
	}
	if !r.Synthesized {
		return base, nil
	}
	donor, err := e.store.Load(r.DonorID)
	if err != nil {
		return nil, err
	}
	minLen := e.cfg.cat.SegmentMinLen
	if minLen <= 0 {
		minLen = 3
	}
	pairs, err := equiv.CommonSegments(base, donor, minLen)
	if err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("sommelier: synthesized segments no longer present between %q and %q",
			r.ID, r.DonorID)
	}
	out := base
	for _, p := range pairs {
		p.A.Model = out
		twin, err := equiv.SynthesizeReplacement(out, p)
		if err != nil {
			return nil, err
		}
		out = twin
	}
	return out, nil
}

// candProfileID returns the ID whose resource profile represents the
// candidate: synthesized models share their base's architecture, hence
// its profile.
func candProfileID(c index.Candidate) string { return c.ID }

// execSetting translates a query's EXEC spec into a resource execution
// setting. Recognized keys: batch (int), precision (fp16|fp32),
// overhead (fraction). Unknown keys are ignored so serving systems can
// pass opaque hints through.
func execSetting(exec map[string]string) (resource.ExecSetting, bool, error) {
	if len(exec) == 0 {
		return resource.ExecSetting{}, false, nil
	}
	s := resource.DefaultSetting()
	s.Name = "exec-spec"
	used := false
	if v, ok := exec["batch"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return s, false, fmt.Errorf("sommelier: bad EXEC batch %q", v)
		}
		s.BatchSize = n
		used = true
	}
	if v, ok := exec["precision"]; ok {
		switch v {
		case "fp16":
			s.ActivationBytes = 2
		case "fp32":
			s.ActivationBytes = 4
		default:
			return s, false, fmt.Errorf("sommelier: bad EXEC precision %q", v)
		}
		used = true
	}
	if v, ok := exec["overhead"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return s, false, fmt.Errorf("sommelier: bad EXEC overhead %q", v)
		}
		s.RuntimeOverhead = f
		used = true
	}
	return s, used, nil
}

// budgetFrom converts upper-bound constraints into an absolute Budget.
// A metric bounded more than once (MEM < 50MB AND MEM < 100MB) takes
// the tightest bound — resolving duplicates last-write-wins would let
// the write order loosen the LSH prefilter beyond what the query
// states.
func budgetFrom(cs []query.Constraint, ref resource.Profile) (index.Budget, error) {
	var b index.Budget
	tighten := func(cur, v float64) float64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	for _, c := range cs {
		if c.Op == query.OpGT || c.Op == query.OpGE {
			continue // lower bounds are enforced by exactlySatisfies
		}
		v, err := absoluteValue(c, ref)
		if err != nil {
			return b, err
		}
		switch c.Metric {
		case query.MetricMemory:
			b.MaxMemoryBytes = int64(tighten(float64(b.MaxMemoryBytes), v))
		case query.MetricFLOPs:
			b.MaxFLOPs = int64(tighten(float64(b.MaxFLOPs), v))
		case query.MetricLatency:
			b.MaxLatencyMS = tighten(b.MaxLatencyMS, v)
		}
	}
	return b, nil
}

// absoluteValue resolves a constraint to the metric's native unit
// (bytes, FLOPs, milliseconds).
func absoluteValue(c query.Constraint, ref resource.Profile) (float64, error) {
	if c.Relative() {
		frac := c.Value / 100
		switch c.Metric {
		case query.MetricMemory:
			return frac * float64(ref.MemoryBytes), nil
		case query.MetricFLOPs:
			return frac * float64(ref.FLOPs), nil
		case query.MetricLatency:
			return frac * ref.LatencyMS, nil
		}
	}
	switch c.Unit {
	case query.UnitMB:
		return c.Value * (1 << 20), nil
	case query.UnitGB:
		return c.Value * (1 << 30), nil
	case query.UnitGFLOPs:
		return c.Value * 1e9, nil
	case query.UnitTFLOPs:
		return c.Value * 1e12, nil
	case query.UnitMS, query.UnitNone:
		return c.Value, nil
	}
	return 0, fmt.Errorf("sommelier: cannot resolve constraint %s", c)
}

// exactlySatisfies re-checks every constraint (including lower bounds and
// strict inequalities) against a candidate profile. A constraint that
// cannot be resolved to an absolute value is an error, not a silent
// rejection — swallowing it would drop candidates without a trace on
// malformed constraints that Validate missed.
func exactlySatisfies(cs []query.Constraint, p, ref resource.Profile) (bool, error) {
	for _, c := range cs {
		limit, err := absoluteValue(c, ref)
		if err != nil {
			return false, err
		}
		var v float64
		switch c.Metric {
		case query.MetricMemory:
			v = float64(p.MemoryBytes)
		case query.MetricFLOPs:
			v = float64(p.FLOPs)
		case query.MetricLatency:
			v = p.LatencyMS
		}
		switch c.Op {
		case query.OpLT:
			if !(v < limit) {
				return false, nil
			}
		case query.OpLE:
			if !(v <= limit) {
				return false, nil
			}
		case query.OpGT:
			if !(v > limit) {
				return false, nil
			}
		case query.OpGE:
			if !(v >= limit) {
				return false, nil
			}
		case query.OpEQ:
			// Equality on continuous profiles means "within 5%".
			if v < limit*0.95 || v > limit*1.05 {
				return false, nil
			}
		}
	}
	return true, nil
}

func sortResults(rs []Result, pick query.PickKind) {
	less := func(i, j int) bool { return rs[i].Level > rs[j].Level }
	switch pick {
	case query.PickSmallest:
		less = func(i, j int) bool { return rs[i].Profile.MemoryBytes < rs[j].Profile.MemoryBytes }
	case query.PickFastest:
		less = func(i, j int) bool { return rs[i].Profile.LatencyMS < rs[j].Profile.LatencyMS }
	case query.PickCheapest:
		less = func(i, j int) bool { return rs[i].Profile.FLOPs < rs[j].Profile.FLOPs }
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if less(i, j) {
			return true
		}
		if less(j, i) {
			return false
		}
		return rs[i].ID < rs[j].ID // deterministic tie-break
	})
}
