package sommelier

import (
	"encoding/json"
	"fmt"
	"io"

	"sommelier/internal/graph"
	"sommelier/internal/index"
)

// engineSnapshot is the serialized engine state (§5.5, persistence): the
// two index structures plus the default-reference table. Models never
// appear here — they live in the repository.
type engineSnapshot struct {
	Version     int                    `json:"version"`
	Semantic    index.SemanticSnapshot `json:"semantic"`
	Resource    index.ResourceSnapshot `json:"resource"`
	DefaultRefs map[string]string      `json:"default_refs,omitempty"`
}

const snapshotVersion = 1

// SaveIndexes writes the engine's index state to w as JSON. A later
// LoadIndexes over the same repository restores the engine without
// re-running the pairwise equivalence analysis.
func (e *Engine) SaveIndexes(w io.Writer) error {
	sem, res, refs := e.cat.Export()
	snap := engineSnapshot{
		Version:     snapshotVersion,
		Semantic:    sem,
		Resource:    res,
		DefaultRefs: refs,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// LoadIndexes restores index state previously written by SaveIndexes.
// Restored models are re-resolved from the repository so subsequent
// Register calls can analyze against them; a model missing from the
// repository fails the load (the snapshot and store are out of sync).
func (e *Engine) LoadIndexes(r io.Reader) error {
	var snap engineSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("sommelier: decoding index snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("sommelier: unsupported snapshot version %d", snap.Version)
	}
	resolve := func(id string) (*graph.Model, error) { return e.store.Load(id) }
	return e.cat.Restore(snap.Semantic, snap.Resource, snap.DefaultRefs, resolve)
}
