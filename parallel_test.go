package sommelier

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// benchCatalog publishes a 24-model zoo catalog (6 series × 4 models
// over 3 shared trunks) into a fresh repository.
func benchCatalog(t testing.TB, seed uint64) *repo.Repository {
	t.Helper()
	series, err := zoo.Catalog(zoo.CatalogConfig{
		NumSeries: 6, MinPerSeries: 4, MaxPerSeries: 4, NumTrunks: 3, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := repo.NewInMemory()
	for _, s := range series {
		for _, m := range s.Models {
			if _, err := store.Publish(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

// indexAllWith runs IndexAll over a fresh copy of the catalog with the
// given worker count, returning the serialized index state and the
// wall-clock indexing time.
func indexAllWith(t testing.TB, workers int) ([]byte, time.Duration) {
	t.Helper()
	store := benchCatalog(t, 0xbe7c)
	eng, err := New(store, Options{Seed: 17, ValidationSize: 80, IndexWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := eng.IndexAll(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if eng.IndexedLen() != 24 {
		t.Fatalf("indexed %d models, want 24", eng.IndexedLen())
	}
	var buf bytes.Buffer
	if err := eng.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), elapsed
}

// TestIndexAllParallelByteIdentical is the determinism contract of the
// staged pipeline: for a fixed seed, parallel IndexAll commits an index
// byte-identical to the serial path, at any worker count.
func TestIndexAllParallelByteIdentical(t *testing.T) {
	serial, _ := indexAllWith(t, 1)
	for _, workers := range []int{2, 4, 8} {
		parallel, _ := indexAllWith(t, workers)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("index state with %d workers differs from serial", workers)
		}
	}
}

// TestIndexAllParallelSpeedup checks the performance half of the
// pipeline's contract: with real parallel hardware, fanning the
// pairwise analysis out must beat the serial path by 2x or better.
// Wall-clock assertions are meaningless on starved or instrumented
// builds, so the test only runs on 4+ CPUs without -short or -race.
func TestIndexAllParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("speedup measurement meaningless under the race detector")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need 4+ CPUs for a meaningful speedup measurement, have %d", runtime.NumCPU())
	}
	_, serialDur := indexAllWith(t, 1)
	_, parDur := indexAllWith(t, runtime.NumCPU())
	speedup := serialDur.Seconds() / parDur.Seconds()
	t.Logf("serial %v, parallel %v, speedup %.2fx", serialDur, parDur, speedup)
	if speedup < 2 {
		t.Fatalf("parallel IndexAll speedup %.2fx, want >= 2x on %d CPUs", speedup, runtime.NumCPU())
	}
}
