package sommelier

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sommelier/internal/catalog"
	"sommelier/internal/faults"
	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// failingAnalyzer errors on every pairwise analysis, so the first
// registered model (no partners) indexes fine and every later one
// fails mid-pipeline — the natural way to reach Register's rollback
// path, which real analyzers almost never fail into.
type failingAnalyzer struct{}

func (failingAnalyzer) Analyze(ref, cand index.Entry) (index.AnalysisResult, error) {
	return index.AnalysisResult{}, errors.New("synthetic analysis failure")
}

// withAnalyzer swaps the engine's catalog for one using the given
// analyzer, keeping the engine's seed and store.
func withAnalyzer(e *Engine, a index.Analyzer) {
	e.cat = catalog.New(catalog.Config{Seed: e.cfg.cat.Seed, Analyzer: a})
}

func registerTestModel(t testing.TB, name string, seed uint64) *graph.Model {
	t.Helper()
	m, err := zoo.DenseResidualNet(zoo.Config{Name: name, Seed: seed, Width: 8, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRegisterRollsBackOnIndexFailure: a model that publishes but fails
// to index must not linger in the repository — "published implies
// indexed" survives the failure.
func TestRegisterRollsBackOnIndexFailure(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	withAnalyzer(eng, failingAnalyzer{})

	a := registerTestModel(t, "roll-a", 1)
	if _, err := eng.Register(a); err != nil {
		t.Fatalf("first model has no analysis partners, want success: %v", err)
	}

	b := registerTestModel(t, "roll-b", 2)
	if _, err := eng.Register(b); err == nil {
		t.Fatal("expected index failure")
	}
	if _, err := store.Load(repo.IDFor(b)); !errors.Is(err, repo.ErrNotFound) {
		t.Fatalf("failed registration left model in store: load err = %v", err)
	}
	if eng.IndexedLen() != 1 {
		t.Fatalf("IndexedLen = %d, want 1", eng.IndexedLen())
	}
}

// TestRegisterKeepsPreexistingOnIndexFailure: when the publish
// overwrote an already stored version, rollback must NOT delete — the
// slot held real data before this call.
func TestRegisterKeepsPreexistingOnIndexFailure(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	withAnalyzer(eng, failingAnalyzer{})

	if _, err := eng.Register(registerTestModel(t, "keep-a", 1)); err != nil {
		t.Fatal(err)
	}
	b := registerTestModel(t, "keep-b", 2)
	if _, err := store.Publish(b); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register(b); err == nil {
		t.Fatal("expected index failure")
	}
	if _, err := store.Load(repo.IDFor(b)); err != nil {
		t.Fatalf("rollback deleted a pre-existing model: %v", err)
	}
}

// TestRegisterSurfacesErrPublishedUnindexed: when indexing fails AND
// the rollback delete fails too, the caller must learn the store and
// index are out of sync.
func TestRegisterSurfacesErrPublishedUnindexed(t *testing.T) {
	// Find an injector seed whose first three store faults are
	// none, none, conn-error: Publish(a) ok, Publish(b) ok, Delete(b)
	// fails. The sequence is deterministic per seed.
	cfg := faults.Config{ConnErrorRate: 0.3}
	var seed uint64
	for seed = 0; seed < 10000; seed++ {
		cfg.Seed = seed
		inj, err := faults.NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if inj.Next() == faults.None && inj.Next() == faults.None && inj.Next() == faults.ConnError {
			break
		}
	}
	if seed == 10000 {
		t.Fatal("no injector seed found for the none,none,conn-error pattern")
	}
	cfg.Seed = seed
	inj, err := faults.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inner := repo.NewInMemory()
	store := faults.NewFlakyStore(inner, inj)
	eng, err := New(store, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	withAnalyzer(eng, failingAnalyzer{})

	if _, err := eng.Register(registerTestModel(t, "sync-a", 1)); err != nil {
		t.Fatal(err)
	}
	b := registerTestModel(t, "sync-b", 2)
	_, err = eng.Register(b)
	if !errors.Is(err, ErrPublishedUnindexed) {
		t.Fatalf("err = %v, want ErrPublishedUnindexed", err)
	}
	// The model really is stranded: published, not indexed.
	if _, err := inner.Load(repo.IDFor(b)); err != nil {
		t.Fatalf("stranded model missing from store: %v", err)
	}
	if eng.IndexedLen() != 1 {
		t.Fatalf("IndexedLen = %d, want 1", eng.IndexedLen())
	}
}

// TestRegisterAnnotatedAtomic: a bad annotation applies no edges, even
// though valid edges were staged before the bad one.
func TestRegisterAnnotatedAtomic(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	withAnalyzer(eng, silentRootAnalyzer{})

	aID, err := eng.Register(registerTestModel(t, "ann-a", 1))
	if err != nil {
		t.Fatal(err)
	}
	bID, err := eng.Register(registerTestModel(t, "ann-b", 2))
	if err != nil {
		t.Fatal(err)
	}

	c := registerTestModel(t, "ann-c", 3)
	if _, err := eng.RegisterAnnotated(c, map[string]float64{
		aID: 0.9, bID: 0.8, "ghost@v1": 0.7,
	}); err == nil {
		t.Fatal("expected error for unindexed annotation reference")
	}
	// No half-applied symmetric edges on the annotated partners.
	for _, id := range []string{aID, bID} {
		got, err := eng.TopEquivalents(id, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("partial annotation applied to %q: %+v", id, got)
		}
	}

	d := registerTestModel(t, "ann-d", 4)
	dID, err := eng.RegisterAnnotated(d, map[string]float64{aID: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.TopEquivalents(aID, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != dID || got[0].Level != 0.9 {
		t.Fatalf("annotation edge missing on partner: %+v", got)
	}
}

// silentRootAnalyzer reports zero equivalence without erroring, so
// annotation edges are the only edges in the index.
type silentRootAnalyzer struct{}

func (silentRootAnalyzer) Analyze(ref, cand index.Entry) (index.AnalysisResult, error) {
	return index.AnalysisResult{}, nil
}

// TestIndexAllSkipsConcurrentlyIndexed: a model indexed between
// IndexAll's snapshot read and its commit stage is deduplicated inside
// the commit's critical section, not double-inserted and not an error.
func TestIndexAllSkipsConcurrentlyIndexed(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	withAnalyzer(eng, silentRootAnalyzer{})

	var models []*graph.Model
	for i := 0; i < 4; i++ {
		m := registerTestModel(t, fmt.Sprintf("toctou-%d", i), uint64(20+i))
		models = append(models, m)
		if _, err := store.Publish(m); err != nil {
			t.Fatal(err)
		}
	}
	// Sneak one in through the single-model path first; IndexAll must
	// skip it and index the rest exactly once.
	if err := eng.IndexModel(context.Background(), repo.IDFor(models[1]), models[1]); err != nil {
		t.Fatal(err)
	}
	if err := eng.IndexAll(); err != nil {
		t.Fatal(err)
	}
	if eng.IndexedLen() != 4 {
		t.Fatalf("IndexedLen = %d, want 4", eng.IndexedLen())
	}
	// Idempotent: a second pass finds nothing to do.
	if err := eng.IndexAll(); err != nil {
		t.Fatal(err)
	}
	if eng.IndexedLen() != 4 {
		t.Fatalf("IndexedLen after second pass = %d, want 4", eng.IndexedLen())
	}
}
