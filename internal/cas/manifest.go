package cas

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sommelier/internal/chunk"
	"sommelier/internal/graph"
)

// ManifestFormat versions the manifest wire form.
const ManifestFormat = 1

// TensorRef records where one parameter tensor's content lives: either
// a dense ordered chunk list, or a delta against a base tensor's chunks.
type TensorRef struct {
	Shape []int `json:"shape"`
	// Chunks is the ordered chunk list of the raw tensor data (dense
	// form). Empty when Delta is set.
	Chunks []string `json:"chunks,omitempty"`
	// Delta stores the tensor as sparse edits against a base tensor.
	Delta *DeltaRef `json:"delta,omitempty"`
}

// DeltaRef is the delta form of a tensor: the base tensor's dense chunk
// list plus the chunks holding the sparse edit stream (internal/chunk
// delta encoding) that turns the base into this tensor.
type DeltaRef struct {
	Base   []string `json:"base"`
	Chunks []string `json:"chunks,omitempty"`
}

// LayerRef is one layer's structure plus its parameter tensor refs.
type LayerRef struct {
	Name   string               `json:"name"`
	Op     graph.OpKind         `json:"op"`
	Inputs []string             `json:"inputs,omitempty"`
	Attrs  graph.Attrs          `json:"attrs"`
	Params map[string]TensorRef `json:"params,omitempty"`
}

// Manifest records a model as structure plus chunk references — the
// unit the repository stores, the hub negotiates, and the cluster
// replicates. A manifest is small (hashes, not weights); all bulk lives
// in the chunk store.
type Manifest struct {
	Format       int               `json:"format"`
	Name         string            `json:"name"`
	Version      string            `json:"version"`
	Task         graph.TaskKind    `json:"task"`
	InputShape   []int             `json:"input_shape"`
	Preprocessor string            `json:"preprocessor,omitempty"`
	OutputLabels []string          `json:"output_labels,omitempty"`
	Metadata     map[string]string `json:"metadata,omitempty"`
	// BaseID names the model this manifest's deltas are encoded
	// against, for provenance. Hydration never needs the base model —
	// delta refs carry the base tensor's own chunk list — so deleting
	// the base cannot orphan a variant.
	BaseID string     `json:"base_id,omitempty"`
	Layers []LayerRef `json:"layers"`
}

// ID returns the repository ID the manifest's model publishes under.
func (m *Manifest) ID() string { return m.Name + "@" + m.Version }

// ChunkRefs returns every chunk address the manifest references —
// dense, delta base, and delta stream alike — deduplicated and sorted.
// This is the reference set for refcounting and transfer negotiation.
func (m *Manifest) ChunkRefs() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(hs []string) {
		for _, h := range hs {
			if !seen[h] {
				seen[h] = true
				out = append(out, h)
			}
		}
	}
	for _, l := range m.Layers {
		for _, name := range sortedParamNames(l.Params) {
			ref := l.Params[name]
			add(ref.Chunks)
			if ref.Delta != nil {
				add(ref.Delta.Base)
				add(ref.Delta.Chunks)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks the manifest's structural well-formedness — enough to
// reject garbage before touching the chunk store. Content-level checks
// happen at hydration, where the chunks are in hand.
func (m *Manifest) Validate() error {
	if m.Format != ManifestFormat {
		return fmt.Errorf("cas: unsupported manifest format %d", m.Format)
	}
	if m.Name == "" {
		return fmt.Errorf("cas: manifest has no model name")
	}
	for _, l := range m.Layers {
		for _, name := range sortedParamNames(l.Params) {
			ref := l.Params[name]
			if (len(ref.Chunks) == 0) == (ref.Delta == nil) {
				return fmt.Errorf("cas: manifest %s layer %q param %q must have exactly one of chunks or delta",
					m.ID(), l.Name, name)
			}
			for _, h := range append(append(append([]string(nil), ref.Chunks...), deltaBase(ref)...), deltaChunks(ref)...) {
				if !chunk.ValidHash(h) {
					return fmt.Errorf("cas: manifest %s layer %q param %q: invalid chunk address %q",
						m.ID(), l.Name, name, h)
				}
			}
		}
	}
	return nil
}

func deltaBase(r TensorRef) []string {
	if r.Delta == nil {
		return nil
	}
	return r.Delta.Base
}

func deltaChunks(r TensorRef) []string {
	if r.Delta == nil {
		return nil
	}
	return r.Delta.Chunks
}

// sortedParamNames returns a param map's keys in sorted order so every
// manifest traversal is deterministic.
func sortedParamNames(params map[string]TensorRef) []string {
	names := make([]string, 0, len(params))
	for n := range params {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EncodeManifest writes the manifest as JSON. encoding/json sorts map
// keys, so the byte form is deterministic for a given manifest.
func EncodeManifest(w io.Writer, m *Manifest) error {
	return json.NewEncoder(w).Encode(m)
}

// DecodeManifest reads and structurally validates a manifest.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("cas: decoding manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Missing returns the manifest's chunk references not satisfied by has,
// sorted — the transfer negotiation primitive: "send me exactly these".
func Missing(m *Manifest, has func(hash string) bool) []string {
	var out []string
	for _, h := range m.ChunkRefs() {
		if !has(h) {
			out = append(out, h)
		}
	}
	return out
}
