package cas

import (
	"fmt"
	"math"

	"sommelier/internal/chunk"
	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Encoded is a model rendered into the content-addressed form: the
// manifest plus every chunk it references, keyed by address. It is the
// unit a publish hands to a store and the unit replication ships —
// receivers take the manifest, ask for the chunks they miss, and drop
// the rest on the floor.
type Encoded struct {
	Model    *graph.Model
	Manifest *Manifest
	Chunks   map[string][]byte
}

// Encode chunks a model into manifest + chunks. When base is non-nil,
// tensors are deduplicated against it: a tensor bit-identical to the
// base's same-named tensor becomes a pure reference to the base's chunk
// list, and a tensor with sparse edits becomes a delta. baseID names
// the base in the manifest for provenance. chunkSize <= 0 uses
// chunk.DefaultSize.
//
// Encode is pure CPU — no locks, no I/O — so callers can run it outside
// any critical section.
func Encode(m *graph.Model, baseID string, base *graph.Model, chunkSize int) (*Encoded, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cas: refusing to encode invalid model: %w", err)
	}
	enc := &Encoded{
		Model:  m,
		Chunks: make(map[string][]byte),
	}
	man := &Manifest{
		Format:       ManifestFormat,
		Name:         m.Name,
		Version:      m.Version,
		Task:         m.Task,
		InputShape:   append([]int(nil), m.InputShape...),
		Preprocessor: m.Preprocessor,
		OutputLabels: append([]string(nil), m.OutputLabels...),
		Layers:       make([]LayerRef, len(m.Layers)),
	}
	if m.Metadata != nil {
		man.Metadata = make(map[string]string, len(m.Metadata))
		for k, v := range m.Metadata {
			man.Metadata[k] = v
		}
	}
	if base != nil && baseID != "" {
		man.BaseID = baseID
	}
	emit := func(h string, data []byte) {
		if _, ok := enc.Chunks[h]; !ok {
			enc.Chunks[h] = data
		}
	}
	for i, l := range m.Layers {
		lr := LayerRef{Name: l.Name, Op: l.Op, Inputs: append([]string(nil), l.Inputs...), Attrs: l.Attrs}
		if len(l.Params) > 0 {
			lr.Params = make(map[string]TensorRef, len(l.Params))
			for _, pname := range l.ParamNames() {
				p := l.Params[pname]
				lr.Params[pname] = encodeTensor(l.Name, pname, p, base, chunkSize, emit)
			}
		}
		man.Layers[i] = lr
	}
	enc.Manifest = man
	return enc, nil
}

// encodeTensor picks the cheapest of the three forms for one tensor:
// pure base reference (bit-identical), delta against the base, or dense
// chunks.
func encodeTensor(layer, pname string, p *tensor.Tensor, base *graph.Model, chunkSize int, emit func(string, []byte)) TensorRef {
	ref := TensorRef{Shape: append([]int(nil), p.Shape()...)}
	vals := p.Data()
	if bt := baseTensor(base, layer, pname, p.Shape()); bt != nil {
		baseVals := bt.Data()
		// The base's canonical chunk list is a pure function of its
		// content, so it matches whatever a dense publish of the base
		// produced — no store lookup needed, and the store dedups the
		// re-emitted chunks for free.
		if bitsEqual(baseVals, vals) {
			ref.Chunks = chunk.Split(baseVals, chunkSize, emit)
			return ref
		}
		if delta, ok := chunk.EncodeDelta(baseVals, vals); ok {
			baseChunks := chunk.Split(baseVals, chunkSize, emit)
			dh := chunk.Hash(delta)
			emit(dh, delta)
			ref.Delta = &DeltaRef{Base: baseChunks, Chunks: []string{dh}}
			return ref
		}
	}
	ref.Chunks = chunk.Split(vals, chunkSize, emit)
	return ref
}

// baseTensor resolves the base model's tensor for (layer, param) when
// its shape matches; nil when the base has no comparable tensor.
func baseTensor(base *graph.Model, layer, pname string, shape tensor.Shape) *tensor.Tensor {
	if base == nil {
		return nil
	}
	bl := base.Layer(layer)
	if bl == nil {
		return nil
	}
	bt := bl.Param(pname)
	if bt == nil || !bt.Shape().Equal(shape) {
		return nil
	}
	return bt
}

// bitsEqual compares float64 slices bit-exactly.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Hydrate reconstructs the model a manifest describes, fetching chunk
// contents through get (typically Store.Get). The result is bit-exact:
// encoding the hydrated model yields the same bytes as encoding the
// original. The rebuilt model is validated before being returned.
func Hydrate(man *Manifest, get func(hash string) ([]byte, error)) (*graph.Model, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	m := &graph.Model{
		Name:         man.Name,
		Version:      man.Version,
		Task:         man.Task,
		InputShape:   append(tensor.Shape(nil), man.InputShape...),
		Preprocessor: man.Preprocessor,
		OutputLabels: append([]string(nil), man.OutputLabels...),
		Layers:       make([]*graph.Layer, len(man.Layers)),
	}
	if man.Metadata != nil {
		m.Metadata = make(map[string]string, len(man.Metadata))
		for k, v := range man.Metadata {
			m.Metadata[k] = v
		}
	}
	for i, lr := range man.Layers {
		l := &graph.Layer{Name: lr.Name, Op: lr.Op, Inputs: append([]string(nil), lr.Inputs...), Attrs: lr.Attrs}
		if len(lr.Params) > 0 {
			l.Params = make(map[string]*tensor.Tensor, len(lr.Params))
			for _, pname := range sortedParamNames(lr.Params) {
				ref := lr.Params[pname]
				vals, err := hydrateTensor(ref, get)
				if err != nil {
					return nil, fmt.Errorf("cas: hydrating %s layer %q param %q: %w", man.ID(), lr.Name, pname, err)
				}
				l.Params[pname] = tensor.FromSlice(vals, ref.Shape...)
			}
		}
		m.Layers[i] = l
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cas: hydrated model invalid: %w", err)
	}
	return m, nil
}

// hydrateTensor fetches and reassembles one tensor's values.
func hydrateTensor(ref TensorRef, get func(hash string) ([]byte, error)) ([]float64, error) {
	want := tensor.Shape(ref.Shape).NumElements()
	if ref.Delta == nil {
		datas, err := fetchAll(ref.Chunks, get)
		if err != nil {
			return nil, err
		}
		return chunk.Join(datas, want)
	}
	baseDatas, err := fetchAll(ref.Delta.Base, get)
	if err != nil {
		return nil, err
	}
	baseVals, err := chunk.Join(baseDatas, want)
	if err != nil {
		return nil, fmt.Errorf("delta base: %w", err)
	}
	var stream []byte
	deltaDatas, err := fetchAll(ref.Delta.Chunks, get)
	if err != nil {
		return nil, err
	}
	for _, d := range deltaDatas {
		stream = append(stream, d...)
	}
	return chunk.ApplyDelta(baseVals, stream)
}

func fetchAll(hashes []string, get func(hash string) ([]byte, error)) ([][]byte, error) {
	out := make([][]byte, len(hashes))
	for i, h := range hashes {
		data, err := get(h)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}
