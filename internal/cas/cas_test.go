package cas

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sommelier/internal/chunk"
	"sommelier/internal/graph"
	"sommelier/internal/zoo"
)

func buildModel(t testing.TB, name string, seed uint64) *graph.Model {
	t.Helper()
	m, err := zoo.DenseResidualNet(zoo.Config{Name: name, Seed: seed, Width: 24, Depth: 2, Series: "cas-test"})
	if err != nil {
		t.Fatal(err)
	}
	m.Version = "1"
	return m
}

func TestEncodeHydrateRoundTripIsByteExact(t *testing.T) {
	m := buildModel(t, "round", 7)
	var before bytes.Buffer
	if err := graph.Encode(&before, m); err != nil {
		t.Fatal(err)
	}

	enc, err := Encode(m, "", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Hydrate(enc.Manifest, func(h string) ([]byte, error) {
		data, ok := enc.Chunks[h]
		if !ok {
			return nil, errors.New("chunk not in encoding")
		}
		return data, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := graph.Encode(&after, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("hydrated model's encoding differs from the pre-chunking encoding")
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	m := buildModel(t, "det", 3)
	a, err := Encode(m, "", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(m.Clone(), "", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	var ma, mb bytes.Buffer
	if err := EncodeManifest(&ma, a.Manifest); err != nil {
		t.Fatal(err)
	}
	if err := EncodeManifest(&mb, b.Manifest); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ma.Bytes(), mb.Bytes()) {
		t.Fatal("same model produced different manifests")
	}
	ra, rb := a.Manifest.ChunkRefs(), b.Manifest.ChunkRefs()
	if len(ra) != len(rb) {
		t.Fatal("chunk ref sets differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("chunk refs differ or are unsorted")
		}
	}
}

func TestEncodeDedupsAgainstBase(t *testing.T) {
	base := buildModel(t, "base", 11)
	variant, err := zoo.Transfer(base, "variant", 8, 100, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	variant.Version = "1"

	be, err := Encode(base, "", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := Encode(variant, "base@1", base, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ve.Manifest.BaseID != "base@1" {
		t.Fatalf("BaseID = %q", ve.Manifest.BaseID)
	}

	baseRefs := make(map[string]bool)
	for _, h := range be.Manifest.ChunkRefs() {
		baseRefs[h] = true
	}
	fresh := 0
	for _, h := range ve.Manifest.ChunkRefs() {
		if !baseRefs[h] {
			fresh++
		}
	}
	// A fully frozen trunk means only the fresh head introduces chunks.
	if fresh >= len(ve.Manifest.ChunkRefs())/2 {
		t.Fatalf("frozen-trunk variant introduced %d/%d fresh chunks; dedup is not happening",
			fresh, len(ve.Manifest.ChunkRefs()))
	}

	// Hydration of the deduped encoding is still bit-exact.
	all := map[string][]byte{}
	for h, d := range be.Chunks {
		all[h] = d
	}
	for h, d := range ve.Chunks {
		all[h] = d
	}
	got, err := Hydrate(ve.Manifest, func(h string) ([]byte, error) { return all[h], nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != variant.Fingerprint() {
		t.Fatal("deduped hydration changed the model")
	}
}

func TestEncodeDeltaAgainstBase(t *testing.T) {
	base := buildModel(t, "dbase", 5)
	variant := base.Clone()
	variant.Name = "dvar"
	// Sparse edit: nudge a handful of elements in one trunk tensor.
	for _, l := range variant.Layers {
		if p := l.Param("W"); p != nil {
			d := p.Data()
			for i := 0; i < len(d) && i < 3; i++ {
				d[i] += 0.5
			}
			break
		}
	}

	ve, err := Encode(variant, "dbase@1", base, 64)
	if err != nil {
		t.Fatal(err)
	}
	deltas := 0
	for _, l := range ve.Manifest.Layers {
		for _, ref := range l.Params {
			if ref.Delta != nil {
				deltas++
			}
		}
	}
	if deltas != 1 {
		t.Fatalf("delta-encoded tensors = %d, want 1", deltas)
	}
	got, err := Hydrate(ve.Manifest, func(h string) ([]byte, error) {
		if d, ok := ve.Chunks[h]; ok {
			return d, nil
		}
		return nil, errors.New("missing chunk")
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != variant.Fingerprint() {
		t.Fatal("delta hydration changed the model")
	}
}

func TestStoreRefcountGC(t *testing.T) {
	for _, mode := range []string{"memory", "dir"} {
		t.Run(mode, func(t *testing.T) {
			var s *Store
			var err error
			if mode == "memory" {
				s = NewMemory()
			} else if s, err = OpenDir(t.TempDir()); err != nil {
				t.Fatal(err)
			}
			data := chunk.Bytes([]float64{1, 2, 3})
			h := chunk.Hash(data)
			if err := s.Put(h, data); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(h, data); err != nil {
				t.Fatal(err) // idempotent
			}
			st := s.Stats()
			if st.Chunks != 1 || st.DedupHits != 1 || st.Puts != 2 {
				t.Fatalf("stats = %+v", st)
			}
			if err := s.AddRefs([]string{h, h}); err != nil {
				t.Fatal(err)
			}
			s.Release([]string{h})
			if !s.Has(h) {
				t.Fatal("chunk GC'd while still referenced")
			}
			s.Release([]string{h})
			if s.Has(h) {
				t.Fatal("zero-ref chunk survived release")
			}
			if _, err := s.Get(h); !errors.Is(err, ErrMissingChunk) {
				t.Fatalf("Get after GC = %v, want ErrMissingChunk", err)
			}
		})
	}
}

func TestStorePutRejectsWrongHash(t *testing.T) {
	s := NewMemory()
	data := chunk.Bytes([]float64{9})
	if err := s.Put(chunk.Hash([]byte("other")), data); err == nil {
		t.Fatal("mismatched content accepted")
	}
	if err := s.AddRefs([]string{chunk.Hash(data)}); !errors.Is(err, ErrMissingChunk) {
		t.Fatalf("AddRefs on absent chunk = %v", err)
	}
}

func TestDirStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := chunk.Bytes([]float64{4, 5, 6, 7})
	h := chunk.Hash(data)
	if err := s.Put(h, data); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, h[:2], h), []byte("garbage!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(h); !errors.Is(err, ErrCorruptChunk) {
		t.Fatalf("Get of corrupt chunk = %v, want ErrCorruptChunk", err)
	}
}

func TestDirStoreReopenAndSweep(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := chunk.Bytes([]float64{1})
	orphan := chunk.Bytes([]float64{2})
	hk, ho := chunk.Hash(keep), chunk.Hash(orphan)
	if err := s.Put(hk, keep); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ho, orphan); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(hk) || !s2.Has(ho) {
		t.Fatal("reopen lost chunks")
	}
	if err := s2.AddRefs([]string{hk}); err != nil {
		t.Fatal(err)
	}
	dead := s2.Sweep()
	if len(dead) != 1 || dead[0] != ho {
		t.Fatalf("Sweep = %v, want [%s]", dead, ho)
	}
	if s2.Has(ho) || !s2.Has(hk) {
		t.Fatal("sweep removed the wrong chunk")
	}
	if _, err := os.Stat(filepath.Join(dir, ho[:2], ho)); !os.IsNotExist(err) {
		t.Fatal("swept chunk file still on disk")
	}
}

func TestStoreConcurrentPutGet(t *testing.T) {
	s := NewMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				data := chunk.Bytes([]float64{float64(i % 4)})
				h := chunk.Hash(data)
				if err := s.Put(h, data); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(h); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Stats().Chunks; got != 4 {
		t.Fatalf("distinct chunks = %d, want 4", got)
	}
}

func TestMissing(t *testing.T) {
	m := buildModel(t, "miss", 2)
	enc, err := Encode(m, "", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := NewMemory()
	missing := Missing(enc.Manifest, s.Has)
	if len(missing) != len(enc.Manifest.ChunkRefs()) {
		t.Fatal("empty store should miss everything")
	}
	for _, h := range missing {
		if err := s.Put(h, enc.Chunks[h]); err != nil {
			t.Fatal(err)
		}
	}
	if left := Missing(enc.Manifest, s.Has); len(left) != 0 {
		t.Fatalf("still missing %d after upload", len(left))
	}
}

func TestManifestValidateRejectsGarbage(t *testing.T) {
	man := &Manifest{Format: ManifestFormat, Name: "x", Version: "1", Layers: []LayerRef{{
		Name: "l", Op: graph.OpDense,
		Params: map[string]TensorRef{"W": {Shape: []int{2, 2}, Chunks: []string{"nothex"}}},
	}}}
	if err := man.Validate(); err == nil {
		t.Fatal("invalid chunk address accepted")
	}
	man.Layers[0].Params["W"] = TensorRef{Shape: []int{2, 2}}
	if err := man.Validate(); err == nil {
		t.Fatal("tensor with neither chunks nor delta accepted")
	}
	var buf bytes.Buffer
	buf.WriteString("{malformed")
	if _, err := DecodeManifest(&buf); err == nil {
		t.Fatal("malformed manifest decoded")
	}
}
