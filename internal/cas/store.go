// Package cas implements the content-addressed chunk store beneath the
// model repository (NeurStore direction, ROADMAP item 3): tensor data is
// cut into SHA-256-addressed segments (internal/chunk), models are
// recorded as manifests of chunk references with optional per-tensor
// deltas against a named base model, and chunks are refcounted so
// deleting a model reclaims exactly the segments nothing else shares.
//
// The package is deterministic throughout: addresses are content
// hashes, chunk lists are in tensor offset order, and every listing is
// sorted — a prerequisite for the byte-exact replication invariants the
// cluster chaos suite asserts.
package cas

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sommelier/internal/chunk"
)

// ErrMissingChunk is wrapped by Get/AddRefs errors for chunks the store
// does not hold, so callers (the hub negotiation in particular) can
// tell "send me that chunk" from a damaged store.
var ErrMissingChunk = errors.New("cas: missing chunk")

// ErrCorruptChunk is wrapped by Get errors when a chunk's stored bytes
// no longer match its address — bit rot or a tampered file, never a
// missing model.
var ErrCorruptChunk = errors.New("cas: corrupt chunk")

// Stats summarises a store's population and dedup effectiveness.
type Stats struct {
	// Chunks is the number of distinct chunks held.
	Chunks int `json:"chunks"`
	// Bytes is the total payload held (deduplicated).
	Bytes int64 `json:"bytes"`
	// Puts counts Put calls; DedupHits counts the subset that found
	// their content already present and wrote nothing.
	Puts      int64 `json:"puts"`
	DedupHits int64 `json:"dedup_hits"`
	// PutBytes is the payload offered to Put (pre-dedup); Bytes/PutBytes
	// is the storage dedup ratio's inverse.
	PutBytes int64 `json:"put_bytes"`
}

// Store is a refcounted, content-addressed chunk store, either purely
// in-memory or directory-backed (chunks as files, fanned out by hash
// prefix, written temp-file + rename so a crash can never leave a torn
// chunk). All methods are safe for concurrent use.
type Store struct {
	dir string // empty for in-memory stores

	mu    sync.Mutex
	data  map[string][]byte // guarded by mu; nil in directory mode
	sizes map[string]int64  // guarded by mu; chunk → payload size
	refs  map[string]int    // guarded by mu
	stats Stats             // guarded by mu
}

// NewMemory returns an in-memory chunk store.
func NewMemory() *Store {
	return &Store{
		data:  make(map[string][]byte),
		sizes: make(map[string]int64),
		refs:  make(map[string]int),
	}
}

// OpenDir returns a directory-backed store rooted at dir (created if
// missing), discovering chunks already on disk. Discovered chunks start
// at refcount zero; the repository re-establishes references from its
// manifests and sweeps what remains unreferenced.
func OpenDir(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	s := &Store{
		dir:   dir,
		sizes: make(map[string]int64),
		refs:  make(map[string]int),
	}
	fans, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(dir, fan.Name()))
		if err != nil {
			return nil, fmt.Errorf("cas: %w", err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !chunk.ValidHash(name) || !strings.HasPrefix(name, fan.Name()) {
				continue
			}
			info, err := e.Info()
			if err != nil {
				return nil, fmt.Errorf("cas: %w", err)
			}
			s.sizes[name] = info.Size()
			s.stats.Chunks++
			s.stats.Bytes += info.Size()
		}
	}
	return s, nil
}

// path fans chunks out by hash prefix; the file keeps the full address
// as its name so a directory listing is self-describing.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash)
}

// Has reports whether the store holds the chunk.
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sizes[hash]
	return ok
}

// Put stores a chunk under its address, verifying the content actually
// hashes to it. Storing a chunk the store already holds is a no-op
// (counted as a dedup hit). Put does not reference the chunk — a chunk
// with no references is an orphan until AddRefs claims it or Sweep
// collects it, which is exactly the crash-safety window a publish needs.
func (s *Store) Put(hash string, data []byte) error {
	if got := chunk.Hash(data); got != hash {
		return fmt.Errorf("cas: put %s: content hashes to %s", short(hash), short(got))
	}
	s.mu.Lock()
	s.stats.Puts++
	s.stats.PutBytes += int64(len(data))
	if _, ok := s.sizes[hash]; ok {
		s.stats.DedupHits++
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	if s.dir != "" {
		// Disk I/O outside the lock; last writer wins and writes are
		// idempotent by content addressing.
		if err := writeFileAtomic(s.path(hash), data); err != nil {
			return fmt.Errorf("cas: put %s: %w", short(hash), err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sizes[hash]; ok {
		s.stats.DedupHits++ // racing writer beat us; the content is identical
		return nil
	}
	if s.data != nil {
		s.data[hash] = append([]byte(nil), data...)
	}
	s.sizes[hash] = int64(len(data))
	s.stats.Chunks++
	s.stats.Bytes += int64(len(data))
	return nil
}

// Get returns a chunk's bytes, verifying them against the address so
// silent corruption surfaces as ErrCorruptChunk rather than as a
// wrong-weights model.
func (s *Store) Get(hash string) ([]byte, error) {
	s.mu.Lock()
	if _, ok := s.sizes[hash]; !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("cas: get %s: %w", short(hash), ErrMissingChunk)
	}
	if s.data != nil {
		data := s.data[hash]
		s.mu.Unlock()
		return append([]byte(nil), data...), nil
	}
	s.mu.Unlock()
	data, err := os.ReadFile(s.path(hash))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("cas: get %s: %w", short(hash), ErrMissingChunk)
		}
		return nil, fmt.Errorf("cas: get %s: %w", short(hash), err)
	}
	if got := chunk.Hash(data); got != hash {
		return nil, fmt.Errorf("cas: get %s: stored bytes hash to %s: %w", short(hash), short(got), ErrCorruptChunk)
	}
	return data, nil
}

// AddRefs increments the refcount of every listed chunk. Every chunk
// must already be present; a missing one fails the whole call with no
// counts changed.
func (s *Store) AddRefs(hashes []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range hashes {
		if _, ok := s.sizes[h]; !ok {
			return fmt.Errorf("cas: addref %s: %w", short(h), ErrMissingChunk)
		}
	}
	for _, h := range hashes {
		s.refs[h]++
	}
	return nil
}

// Release decrements refcounts and garbage-collects chunks that reach
// zero. Unknown chunks are ignored — Release is the cleanup path and
// must be idempotent under crashes.
func (s *Store) Release(hashes []string) {
	var dead []string
	s.mu.Lock()
	for _, h := range hashes {
		if s.refs[h] <= 0 {
			continue
		}
		s.refs[h]--
		if s.refs[h] == 0 {
			delete(s.refs, h)
			dead = append(dead, h)
			s.dropLocked(h)
		}
	}
	s.mu.Unlock()
	for _, h := range dead {
		s.removeFile(h)
	}
}

// dropLocked forgets a chunk's in-memory record. Callers hold mu.
func (s *Store) dropLocked(hash string) {
	if size, ok := s.sizes[hash]; ok {
		s.stats.Chunks--
		s.stats.Bytes -= size
	}
	delete(s.sizes, hash)
	if s.data != nil {
		delete(s.data, hash)
	}
}

func (s *Store) removeFile(hash string) {
	if s.dir == "" {
		return
	}
	_ = os.Remove(s.path(hash))
}

// Refs returns a chunk's current refcount.
func (s *Store) Refs(hash string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs[hash]
}

// Chunks lists every held chunk address, sorted.
func (s *Store) Chunks() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sizes))
	for h := range s.sizes {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Sweep removes every zero-reference chunk — the orphans a crashed
// publish leaves behind — and returns their addresses, sorted.
func (s *Store) Sweep() []string {
	var dead []string
	s.mu.Lock()
	for h := range s.sizes {
		if s.refs[h] == 0 {
			dead = append(dead, h)
		}
	}
	sort.Strings(dead)
	for _, h := range dead {
		s.dropLocked(h)
	}
	s.mu.Unlock()
	for _, h := range dead {
		s.removeFile(h)
	}
	return dead
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// short abbreviates a chunk address for error messages.
func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// writeFileAtomic writes data to path via a temp file + rename in the
// same directory, so readers never observe a torn chunk.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
