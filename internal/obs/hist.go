package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with lock-free observation:
// every Observe is a handful of atomic adds, so the query and indexing
// hot paths can record latencies without contending. Bucket bounds are
// fixed at construction; percentiles are estimated by linear
// interpolation inside the owning bucket, with the tracked minimum and
// maximum tightening the first and last occupied buckets.
//
// Readers (Summary, Quantile) see each atomic individually, so a
// summary taken during concurrent writes is approximate — counts may
// be mid-update — which is the usual and accepted histogram contract.
type Histogram struct {
	// bounds are the inclusive upper bounds of the first len(bounds)
	// buckets, ascending; one overflow bucket follows. Immutable.
	bounds []float64
	counts []atomic.Int64

	count  atomic.Int64
	sumBit atomic.Uint64 // math.Float64bits of the running sum
	minBit atomic.Uint64 // math.Float64bits of the observed minimum
	maxBit atomic.Uint64 // math.Float64bits of the observed maximum
}

// DefaultLatencyBounds returns the default millisecond bucket bounds:
// 1-2-5 steps from 10µs to 100s. Fine enough for sub-millisecond query
// stages, wide enough for multi-second index builds.
func DefaultLatencyBounds() []float64 {
	var bounds []float64
	for _, mag := range []float64{0.01, 0.1, 1, 10, 100, 1000, 10000} {
		for _, step := range []float64{1, 2, 5} {
			bounds = append(bounds, mag*step)
		}
	}
	return append(bounds, 100000)
}

// NewHistogram builds a histogram with the given ascending upper
// bounds. It panics on unsorted or empty bounds — bucket layouts are
// static configuration, not data.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.minBit.Store(math.Float64bits(math.Inf(1)))
	h.maxBit.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. NaN is ignored. Nil-receiver tolerant.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.counts[h.bucketOf(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sumBit, v)
	atomicMinFloat(&h.minBit, v)
	atomicMaxFloat(&h.maxBit, v)
}

// bucketOf returns the index of the bucket owning v (binary search over
// the upper bounds; the last index is the overflow bucket).
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBit.Load())
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBit.Load())
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBit.Load())
}

// Quantile estimates the q-th quantile (0..1). Within the owning bucket
// the mass is assumed uniform; the observed min and max bound the
// estimate, so a single-sample histogram reports that sample exactly.
// An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	min, max := h.Min(), h.Max()

	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) < rank {
			cum += n
			continue
		}
		// The rank falls in bucket i: interpolate across its span.
		lo := min
		if i > 0 && h.bounds[i-1] > lo {
			lo = h.bounds[i-1]
		}
		hi := max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if hi <= lo {
			return lo
		}
		frac := (rank - float64(cum)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return max
}

// Merge adds o's observations into h. Both histograms must share bucket
// bounds; merging different layouts is a configuration error.
func (h *Histogram) Merge(o *Histogram) error {
	if h == nil || o == nil {
		return nil
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("obs: merging histograms with %d vs %d bounds", len(h.bounds), len(o.bounds))
	}
	for i, b := range h.bounds {
		if o.bounds[i] != b {
			return fmt.Errorf("obs: merging histograms with mismatched bound %d (%g vs %g)", i, b, o.bounds[i])
		}
	}
	if o.count.Load() == 0 {
		return nil
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	atomicAddFloat(&h.sumBit, o.Sum())
	atomicMinFloat(&h.minBit, math.Float64frombits(o.minBit.Load()))
	atomicMaxFloat(&h.maxBit, math.Float64frombits(o.maxBit.Load()))
	return nil
}

// Bucket is one histogram bucket in a summary: the count of values at
// or below the upper bound that earlier buckets did not claim. The
// overflow bucket carries an infinite bound, rendered as "+Inf".
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders the bound as a string so the overflow bucket's
// +Inf survives JSON (which has no infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.LE, 1) {
		le = strconv.FormatFloat(b.LE, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON reverses MarshalJSON so snapshots round-trip — a
// /v1/metrics consumer can decode straight back into a Snapshot.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.LE == "+Inf" {
		b.LE = math.Inf(1)
	} else {
		le, err := strconv.ParseFloat(raw.LE, 64)
		if err != nil {
			return fmt.Errorf("bucket bound %q: %w", raw.LE, err)
		}
		b.LE = le
	}
	b.Count = raw.Count
	return nil
}

// HistSummary is the JSON-exportable digest of a histogram.
type HistSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets lists only occupied buckets, keeping snapshots compact.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Summary digests the histogram. A nil or empty histogram yields a zero
// summary.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	n := h.count.Load()
	if n == 0 {
		return HistSummary{}
	}
	s := HistSummary{
		Count: n,
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Sum() / float64(n),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, Count: c})
	}
	return s
}

// atomicAddFloat adds delta to a float64 stored as bits, via CAS.
func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// atomicMinFloat lowers the stored float64 to v if v is smaller.
func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// atomicMaxFloat raises the stored float64 to v if v is larger.
func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}
