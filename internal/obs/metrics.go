package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use and tolerate a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer level (queue depth, busy workers,
// breaker state). Safe for concurrent use; nil-receiver tolerant.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by delta (negative allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. Handles are created on first use and
// live for the registry's lifetime, so hot paths resolve a handle once
// and update it with a single atomic op. A nil *Registry is valid and
// returns nil handles throughout.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter     // guarded by mu
	gauges   map[string]*Gauge       // guarded by mu
	gaugeFns map[string]func() int64 // guarded by mu
	hists    map[string]*Histogram   // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at Snapshot time — the hook
// components with their own internal counters (hub client breaker
// state, cache population) use to join the unified snapshot without
// double-bookkeeping. Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram with the default latency
// buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.histogram(name, nil)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket upper bounds on first use (an existing histogram keeps its
// original bounds).
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.histogram(name, bounds)
}

func (r *Registry) histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBounds()
		}
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is the JSON-exportable state of a registry at one instant —
// the unified shape /v1/metrics serves and sommbench archives. Gauge
// callbacks are folded into Gauges.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters,omitempty"`
	Gauges     map[string]int64       `json:"gauges,omitempty"`
	Histograms map[string]HistSummary `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. A nil registry yields a
// zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	// Values are read outside the registry lock: gauge callbacks may
	// themselves take locks (hub client internals), and metric reads
	// are lock-free anyway.
	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(fns)),
		Histograms: make(map[string]HistSummary, len(hists)),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, fn := range fns {
		snap.Gauges[k] = fn()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Summary()
	}
	return snap
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
