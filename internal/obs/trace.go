package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SpanRecord is one finished span: a named interval with a parent link.
// IDs are process-local and only meaningful for reassembling trees.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Detail is free-form context (a model ID, an HTTP method) that
	// participates in deterministic tree ordering.
	Detail  string `json:"detail,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Span is an open interval. End it exactly once; a nil span (observer
// disabled) no-ops throughout.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// End closes the span, records it in the tracer's ring, and returns its
// duration in milliseconds.
func (s *Span) End() float64 {
	if s == nil {
		return 0
	}
	s.rec.DurNS = s.t.clock.NowNanos() - s.rec.StartNS
	s.t.record(s.rec)
	return float64(s.rec.DurNS) / 1e6
}

// ID returns the span's ID (0 for nil), for explicit parenting when a
// context cannot carry the span (goroutine fan-out with shared ctx).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.ID
}

// Tracer records finished spans into a fixed-capacity ring — enough for
// a "recent activity" endpoint without unbounded growth. A nil *Tracer
// is valid and records nothing.
type Tracer struct {
	clock  Clock
	nextID atomic.Uint64

	mu    sync.Mutex
	ring  []SpanRecord // guarded by mu
	next  int          // guarded by mu
	total int64        // guarded by mu
}

// newTracer builds a tracer with capacity cap; cap <= 0 disables
// recording (start still hands out spans so timings work).
func newTracer(clock Clock, cap int) *Tracer {
	t := &Tracer{clock: clock}
	if cap > 0 {
		t.ring = make([]SpanRecord, 0, cap)
	}
	return t
}

// start opens a span. Exposed through Observer.StartSpan, which also
// threads the parent through a context.
func (t *Tracer) start(parent uint64, name, detail string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, rec: SpanRecord{
		ID:      t.nextID.Add(1),
		Parent:  parent,
		Name:    name,
		Detail:  detail,
		StartNS: t.clock.NowNanos(),
	}}
}

// StartRoot opens a span with an explicit parent ID — the fan-out form
// for worker goroutines that share one context. parent 0 means root.
func (t *Tracer) StartRoot(parent uint64, name, detail string) *Span {
	return t.start(parent, name, detail)
}

func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cap(t.ring) == 0 {
		return
	}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.total++
}

// Recent returns the ring's contents, oldest first. The slice is a
// copy, safe to hold.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns how many spans have been recorded over the tracer's
// lifetime (including those the ring has since evicted).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TreeString renders the recorded spans as an indented forest with
// durations excluded and siblings sorted by (name, detail) — a
// scheduling-independent canonical form. Two runs of the same seeded
// workload must render identical trees; that invariant is what keeps
// tracing out of the determinism contract's way.
func (t *Tracer) TreeString() string {
	spans := t.Recent()
	children := make(map[uint64][]SpanRecord)
	known := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		known[s.ID] = true
	}
	var roots []SpanRecord
	for _, s := range spans {
		// A span whose parent was evicted from the ring renders as a
		// root rather than vanishing.
		if s.Parent != 0 && known[s.Parent] {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	canonical := func(ss []SpanRecord) {
		sort.SliceStable(ss, func(i, j int) bool {
			if ss[i].Name != ss[j].Name {
				return ss[i].Name < ss[j].Name
			}
			return ss[i].Detail < ss[j].Detail
		})
	}
	canonical(roots)
	for _, cs := range children {
		canonical(cs)
	}
	var b strings.Builder
	var render func(s SpanRecord, depth int)
	render = func(s SpanRecord, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name)
		if s.Detail != "" {
			fmt.Fprintf(&b, " [%s]", s.Detail)
		}
		b.WriteByte('\n')
		for _, c := range children[s.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}
