package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %g, want 0", got)
	}
	s := h.Summary()
	if s.Count != 0 || s.Sum != 0 || s.P99 != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty Summary = %+v, want zero", s)
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty Min/Max = %g/%g, want 0/0", h.Min(), h.Max())
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should read as empty")
	}
	if err := h.Merge(NewHistogram([]float64{1})); err != nil {
		t.Errorf("nil Merge: %v", err)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	h.Observe(3.7)
	// With one sample, min == max bound the owning bucket, so every
	// quantile reports the sample exactly.
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 3.7 {
			t.Errorf("Quantile(%g) = %g, want 3.7", q, got)
		}
	}
	s := h.Summary()
	if s.Count != 1 || s.Sum != 3.7 || s.Mean != 3.7 || s.Min != 3.7 || s.Max != 3.7 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	// A value exactly on a bound belongs to the bucket it bounds
	// (inclusive upper bounds).
	for i, v := range []float64{1, 2, 5} {
		h.Observe(v)
		if got := h.counts[i].Load(); got != 1 {
			t.Errorf("Observe(%g): bucket %d count = %d, want 1", v, i, got)
		}
	}
	// Overflow goes to the last bucket.
	h.Observe(5.001)
	if got := h.counts[3].Load(); got != 1 {
		t.Errorf("overflow bucket count = %d, want 1", got)
	}
	if h.Max() != 5.001 {
		t.Errorf("Max = %g, want 5.001", h.Max())
	}
	// The overflow bucket's quantile estimate is clamped by Max, never
	// infinite.
	if q := h.Quantile(1); math.IsInf(q, 0) || q != 5.001 {
		t.Errorf("Quantile(1) = %g, want 5.001", q)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	// 10 samples uniform in (10, 20]: quantiles interpolate inside the
	// second bucket between its clamped ends.
	for i := 1; i <= 10; i++ {
		h.Observe(10 + float64(i))
	}
	p50 := h.Quantile(0.5)
	if p50 < 11 || p50 > 20 {
		t.Errorf("p50 = %g outside bucket span (11..20)", p50)
	}
	if h.Quantile(1) != 20 {
		t.Errorf("Quantile(1) = %g, want max 20", h.Quantile(1))
	}
	if h.Quantile(0) != 11 {
		t.Errorf("Quantile(0) = %g, want min 11", h.Quantile(0))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10, 100})
	b := NewHistogram([]float64{1, 10, 100})
	a.Observe(0.5)
	a.Observe(50)
	b.Observe(5)
	b.Observe(200)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != 4 {
		t.Errorf("merged Count = %d, want 4", a.Count())
	}
	if got, want := a.Sum(), 255.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("merged Sum = %g, want %g", got, want)
	}
	if a.Min() != 0.5 || a.Max() != 200 {
		t.Errorf("merged Min/Max = %g/%g, want 0.5/200", a.Min(), a.Max())
	}

	// Merging an empty histogram is a no-op, even for min/max.
	if err := a.Merge(NewHistogram([]float64{1, 10, 100})); err != nil {
		t.Fatalf("Merge empty: %v", err)
	}
	if a.Count() != 4 || a.Min() != 0.5 || a.Max() != 200 {
		t.Error("merge of empty histogram changed state")
	}

	// Mismatched layouts refuse.
	if err := a.Merge(NewHistogram([]float64{1, 10})); err == nil {
		t.Error("Merge accepted mismatched bound count")
	}
	c := NewHistogram([]float64{1, 10, 99})
	if err := a.Merge(c); err == nil {
		t.Error("Merge accepted mismatched bound value")
	}
}

func TestHistogramSummaryJSON(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(100) // overflow bucket: +Inf bound must survive JSON
	data, err := json.Marshal(h.Summary())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(data), `"le":"+Inf"`) {
		t.Errorf("JSON missing +Inf bucket: %s", data)
	}
	if !strings.Contains(string(data), `"count":2`) {
		t.Errorf("JSON missing total count: %s", data)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds())
	var wg sync.WaitGroup
	const writers, per = 8, 1000
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / 100)
			}
		}()
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Errorf("Count = %d, want %d", h.Count(), writers*per)
	}
	var bucketSum int64
	for i := range h.counts {
		bucketSum += h.counts[i].Load()
	}
	if bucketSum != writers*per {
		t.Errorf("bucket sum = %d, want %d", bucketSum, writers*per)
	}
}

func TestNewHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
