package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
)

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	o.Counter("x").Inc()
	o.Gauge("g").Set(5)
	o.Histogram("h").Observe(1)
	stop := o.Time("h")
	if ms := stop(); ms != 0 {
		t.Errorf("nil Time stop = %g, want 0", ms)
	}
	ctx, span := o.StartSpan(context.Background(), "op", "")
	if ctx == nil {
		t.Fatal("nil observer returned nil ctx")
	}
	if ms := span.End(); ms != 0 {
		t.Errorf("nil span End = %g, want 0", ms)
	}
	snap := o.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil Snapshot = %+v, want zero", snap)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter returned distinct handles for one name")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram returned distinct handles for one name")
	}
	// HistogramWith keeps the first layout.
	h := r.HistogramWith("w", []float64{1, 2})
	if r.HistogramWith("w", []float64{5}) != h {
		t.Error("HistogramWith replaced an existing histogram")
	}
}

func TestSnapshotIncludesGaugeFuncs(t *testing.T) {
	o := New(WithClock(NewTickClock(0, 1e6)))
	o.Counter("reqs").Add(3)
	o.Gauge("depth").Set(7)
	o.Registry().GaugeFunc("breaker_opens", func() int64 { return 42 })
	o.Histogram("lat_ms").Observe(2.5)

	snap := o.Snapshot()
	if snap.Counters["reqs"] != 3 {
		t.Errorf("Counters[reqs] = %d", snap.Counters["reqs"])
	}
	if snap.Gauges["depth"] != 7 || snap.Gauges["breaker_opens"] != 42 {
		t.Errorf("Gauges = %v", snap.Gauges)
	}
	if snap.Histograms["lat_ms"].Count != 1 {
		t.Errorf("Histograms[lat_ms] = %+v", snap.Histograms["lat_ms"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot does not marshal: %v", err)
	}
}

func TestTimeObservesElapsed(t *testing.T) {
	// Tick clock: 1ms per reading, so start→stop spans exactly one step.
	o := New(WithClock(NewTickClock(0, 1e6)))
	stop := o.Time("op_ms")
	if ms := stop(); ms != 1 {
		t.Errorf("stop = %gms, want 1", ms)
	}
	if got := o.Histogram("op_ms").Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
}

func TestSpanParentageThroughContext(t *testing.T) {
	o := New(WithClock(NewTickClock(0, 1e6)))
	ctx, root := o.StartSpan(context.Background(), "root", "")
	_, child := o.StartSpan(ctx, "child", "x")
	child.End()
	root.End()

	spans := o.Tracer().Recent()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Ring order is completion order: child first.
	if spans[0].Name != "child" || spans[0].Parent != root.ID() {
		t.Errorf("child span = %+v, want parent %d", spans[0], root.ID())
	}
	if spans[1].Name != "root" || spans[1].Parent != 0 {
		t.Errorf("root span = %+v", spans[1])
	}
	want := "root\n  child [x]\n"
	if got := o.Tracer().TreeString(); got != want {
		t.Errorf("TreeString = %q, want %q", got, want)
	}
}

func TestTracerRingEviction(t *testing.T) {
	o := New(WithClock(NewTickClock(0, 1e6)), WithTraceCap(2))
	for i, name := range []string{"a", "b", "c"} {
		_, s := o.StartSpan(context.Background(), name, "")
		s.End()
		_ = i
	}
	spans := o.Tracer().Recent()
	if len(spans) != 2 || spans[0].Name != "b" || spans[1].Name != "c" {
		t.Errorf("Recent after eviction = %+v, want [b c]", spans)
	}
	if o.Tracer().Total() != 3 {
		t.Errorf("Total = %d, want 3", o.Tracer().Total())
	}
}

func TestTraceCapZeroDisablesRecording(t *testing.T) {
	o := New(WithTraceCap(0))
	_, s := o.StartSpan(context.Background(), "op", "")
	s.End()
	if got := o.Tracer().Recent(); len(got) != 0 {
		t.Errorf("Recent = %v, want empty", got)
	}
}

func TestTreeStringCanonicalOrder(t *testing.T) {
	// Two observers finish sibling spans in opposite orders; the
	// canonical tree must not care.
	build := func(first, second string) string {
		o := New(WithClock(NewTickClock(0, 1e6)))
		ctx, root := o.StartSpan(context.Background(), "indexall", "")
		_, a := o.StartSpan(ctx, "analyze", first)
		a.End()
		_, b := o.StartSpan(ctx, "analyze", second)
		b.End()
		root.End()
		return o.Tracer().TreeString()
	}
	if build("m1", "m2") != build("m2", "m1") {
		t.Error("TreeString depends on completion order")
	}
}

func TestConcurrentRegistryAccess(t *testing.T) {
	o := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				o.Counter("c").Inc()
				o.Gauge("g").Add(1)
				o.Histogram("h").Observe(float64(i))
				_, s := o.StartSpan(context.Background(), "op", "")
				s.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			o.Snapshot()
			o.Tracer().Recent()
		}
	}()
	wg.Wait()
	<-done
	if got := o.Counter("c").Value(); got != 8*500 {
		t.Errorf("counter = %d, want %d", got, 8*500)
	}
}
