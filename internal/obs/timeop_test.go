package obs

import (
	"errors"
	"testing"
)

// TestTimeOp covers the operation-timing helper the hub client and the
// cluster coordinator share: one call times <prefix>_ms always and
// counts <prefix>_errors_total only on failure.
func TestTimeOp(t *testing.T) {
	o := New(WithClock(NewTickClock(0, 1e6))) // 1ms per reading
	done := o.TimeOp("op")
	done(nil)
	done = o.TimeOp("op")
	done(errors.New("boom"))

	snap := o.Snapshot()
	if h := snap.Histograms["op_ms"]; h.Count != 2 {
		t.Errorf("op_ms count = %d, want 2 (success and failure both timed)", h.Count)
	}
	if c := snap.Counters["op_errors_total"]; c != 1 {
		t.Errorf("op_errors_total = %d, want 1", c)
	}
}

// TestTimeOpNilObserver: the helper must be inert, not panic, on a nil
// observer — callers thread optional observers straight through.
func TestTimeOpNilObserver(t *testing.T) {
	var o *Observer
	done := o.TimeOp("op")
	done(errors.New("boom"))
	done(nil) // double-call on nil must also be harmless
}
