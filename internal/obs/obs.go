// Package obs is Sommelier's observability subsystem: a race-safe
// metrics registry (counters, gauges, fixed-bucket latency histograms
// with percentile summaries) and a structured trace facility (span
// events with parent links and monotonic durations), both built on the
// standard library only.
//
// The paper's value claim is quantitative — index-build cost, query
// latency, and the serving-switch tail are all measured results — so
// the hot paths instrument themselves: the catalog's staged indexing
// pipeline, the three-stage query pipeline, the hub's endpoints, and
// the serving simulator all report through an Observer. Every later
// performance PR proves itself against these numbers.
//
// Two design constraints shape the package:
//
//   - Nil safety. Every method on *Observer and on the metric handles
//     it returns tolerates a nil receiver, so instrumented code reads
//     the same whether observation is on or off, and the off path costs
//     one pointer test.
//   - Determinism. The detcheck-critical packages (catalog, index, …)
//     must stay byte-identical for a fixed seed, so they never read the
//     wall clock themselves: the Observer owns a Clock, and a TickClock
//     makes traces fully reproducible in tests — two runs of the same
//     seeded IndexAll produce identical span trees.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Clock supplies monotonic timestamps in nanoseconds. The zero of the
// scale is arbitrary; only differences are meaningful.
type Clock interface {
	NowNanos() int64
}

// wallClock reads the process-monotonic clock (time.Since preserves the
// monotonic reading taken at construction).
type wallClock struct{ base time.Time }

func (c wallClock) NowNanos() int64 { return int64(time.Since(c.base)) }

// NewWallClock returns the default monotonic wall clock.
func NewWallClock() Clock { return wallClock{base: time.Now()} }

// TickClock is a deterministic Clock for tests: every reading advances
// a logical counter by a fixed step, so durations — and therefore trace
// output — are identical across runs regardless of scheduling.
// It is safe for concurrent use.
type TickClock struct {
	now  atomic.Int64
	step int64
}

// NewTickClock returns a TickClock starting at start nanoseconds and
// advancing step nanoseconds per reading. A step <= 0 defaults to 1ms.
func NewTickClock(start, step int64) *TickClock {
	if step <= 0 {
		step = int64(time.Millisecond)
	}
	t := &TickClock{step: step}
	t.now.Store(start)
	return t
}

// NowNanos implements Clock.
func (t *TickClock) NowNanos() int64 { return t.now.Add(t.step) - t.step }

// Option configures an Observer.
type Option func(*Observer)

// WithClock overrides the observer's clock (tests use a TickClock).
func WithClock(c Clock) Option {
	return func(o *Observer) {
		if c != nil {
			o.clock = c
		}
	}
}

// WithTraceCap bounds the tracer's recent-span ring (default
// DefaultTraceCap). n <= 0 disables span recording entirely — metrics
// still work.
func WithTraceCap(n int) Option {
	return func(o *Observer) { o.traceCap = n }
}

// DefaultTraceCap is the default recent-span ring capacity.
const DefaultTraceCap = 4096

// Observer bundles a metrics Registry and a Tracer behind one handle.
// A nil *Observer is valid and disables everything.
type Observer struct {
	clock    Clock
	reg      *Registry
	tracer   *Tracer
	traceCap int
}

// New creates an Observer with a live registry and tracer.
func New(opts ...Option) *Observer {
	o := &Observer{traceCap: DefaultTraceCap}
	for _, opt := range opts {
		opt(o)
	}
	if o.clock == nil {
		o.clock = NewWallClock()
	}
	o.reg = NewRegistry()
	o.tracer = newTracer(o.clock, o.traceCap)
	return o
}

// Registry returns the metrics registry (nil for a nil observer).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the trace facility (nil for a nil observer).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Counter returns the named counter, creating it on first use.
func (o *Observer) Counter(name string) *Counter { return o.Registry().Counter(name) }

// Gauge returns the named gauge, creating it on first use.
func (o *Observer) Gauge(name string) *Gauge { return o.Registry().Gauge(name) }

// Histogram returns the named latency histogram (default millisecond
// buckets), creating it on first use.
func (o *Observer) Histogram(name string) *Histogram { return o.Registry().Histogram(name) }

// Snapshot captures every metric the observer knows about. A nil
// observer yields a zero Snapshot.
func (o *Observer) Snapshot() Snapshot { return o.Registry().Snapshot() }

// NowNanos reads the observer's clock; 0 for a nil observer.
func (o *Observer) NowNanos() int64 {
	if o == nil {
		return 0
	}
	return o.clock.NowNanos()
}

// Time starts a latency measurement against the named histogram and
// returns a stop function that records the elapsed milliseconds (and
// returns them, for callers that also report the number elsewhere).
func (o *Observer) Time(hist string) func() float64 {
	if o == nil {
		return func() float64 { return 0 }
	}
	h := o.Histogram(hist)
	start := o.clock.NowNanos()
	return func() float64 {
		ms := float64(o.clock.NowNanos()-start) / 1e6
		h.Observe(ms)
		return ms
	}
}

// TimeOp times one logical operation into the <prefix>_ms histogram
// and counts failed ones into <prefix>_errors_total. Call the returned
// stop function with the operation's final error — the pattern every
// instrumented client op (hub, cluster) shares:
//
//	done := o.TimeOp("hub_client_load")
//	defer func() { done(err) }()
//
// A nil observer returns a no-op stop.
func (o *Observer) TimeOp(prefix string) func(error) {
	stop := o.Time(prefix + "_ms")
	return func(err error) {
		stop()
		if err != nil {
			o.Counter(prefix + "_errors_total").Inc()
		}
	}
}

// spanCtxKey carries the current span ID through a context.
type spanCtxKey struct{}

// StartSpan opens a span named name (with an optional free-form detail)
// under the span already carried by ctx, and returns a context carrying
// the new span for its children. End the span to record it in the
// tracer's ring. A nil observer returns ctx unchanged and a nil span.
func (o *Observer) StartSpan(ctx context.Context, name, detail string) (context.Context, *Span) {
	if o == nil || o.tracer == nil {
		return ctx, nil
	}
	var parent uint64
	if id, ok := ctx.Value(spanCtxKey{}).(uint64); ok {
		parent = id
	}
	s := o.tracer.start(parent, name, detail)
	if s == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanCtxKey{}, s.rec.ID), s
}
