package cluster

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sommelier/internal/hub"
	"sommelier/internal/obs"
	"sommelier/internal/query"
)

// Coordinator defaults.
const (
	// DefaultReplicaTimeout bounds each per-replica query attempt.
	DefaultReplicaTimeout = 2 * time.Second
	// DefaultLKGCacheCap bounds the last-known-good cache (per-shard,
	// per-query entries, LRU eviction).
	DefaultLKGCacheCap = 256
)

// CoordinatorOption configures a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithReplicaTimeout bounds each per-replica attempt; the scatter
// deadline a caller sets on ctx still applies on top.
func WithReplicaTimeout(d time.Duration) CoordinatorOption {
	return func(c *Coordinator) { c.replicaTimeout = d }
}

// WithLKGCacheCap bounds the last-known-good cache; n <= 0 disables
// the stale-serving rung entirely.
func WithLKGCacheCap(n int) CoordinatorOption {
	return func(c *Coordinator) { c.lkgCap = n }
}

// WithCoordinatorObserver attaches an observability handle. The
// coordinator records cluster_query_ms and per-shard
// cluster_shard<i>_query_ms histograms, counts queries by outcome
// (cluster_queries_total, cluster_degraded_queries,
// cluster_failed_queries_total), and tallies the degradation machinery:
// cluster_failovers_total split by cause (breaker/timeout/error),
// cluster_stale_shards_total and cluster_missing_shards_total.
func WithCoordinatorObserver(o *obs.Observer) CoordinatorOption {
	return func(c *Coordinator) { c.obs = o }
}

// Coordinator owns the read path of a shard cluster: it fans every
// query out to all shards in parallel, walks each shard's replicas in
// health-preference order, and merges the per-shard answers into one
// globally ranked top-K. Failure degrades one rung at a time, per
// shard (the PR-1 ladder, lifted to the cluster):
//
//	replica answer → failover to next replica → last-known-good (stale)
//	→ partial result naming the missing shard
//
// A query therefore never fails because a shard died; it fails only if
// the query itself is invalid. Everything below an invalid query is a
// Response whose Missing/Stale fields say exactly how much of the
// catalog answered.
type Coordinator struct {
	shards         [][]QueryBackend
	health         *healthTracker
	replicaTimeout time.Duration
	lkgCap         int
	obs            *obs.Observer

	mu     sync.Mutex
	lkg    map[string]*list.Element // guarded by mu — key "shard|query"
	lkgLRU *list.List               // guarded by mu — front = most recent
}

// lkgEntry is one cached per-shard answer.
type lkgEntry struct {
	key     string
	results []Result
}

// NewCoordinator builds a coordinator over the shard topology; every
// shard needs at least one replica.
func NewCoordinator(shards [][]QueryBackend, opts ...CoordinatorOption) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	for i, reps := range shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
	}
	c := &Coordinator{
		shards:         shards,
		health:         newHealthTracker(shards),
		replicaTimeout: DefaultReplicaTimeout,
		lkgCap:         DefaultLKGCacheCap,
		lkg:            make(map[string]*list.Element),
		lkgLRU:         list.New(),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.replicaTimeout <= 0 {
		return nil, fmt.Errorf("cluster: non-positive replica timeout")
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Health returns every replica's health record, shards outermost.
func (c *Coordinator) Health() [][]ReplicaHealth { return c.health.Snapshot() }

// shardOut is one shard's contribution to a scatter.
type shardOut struct {
	results   []Result
	stale     bool
	missing   bool
	failovers int
}

// Query runs one scatter-gather query. The error is non-nil only for
// an invalid query; shard failures surface through the Response's
// Missing and Stale fields instead.
func (c *Coordinator) Query(ctx context.Context, q string) (*Response, error) {
	c.obs.Counter("cluster_queries_total").Inc()
	stop := c.obs.Time("cluster_query_ms")
	defer stop()
	parsed, err := query.Parse(q)
	if err == nil {
		err = parsed.Validate()
	}
	if err != nil {
		c.obs.Counter("cluster_query_errors_total").Inc()
		return nil, err
	}

	outs := make([]shardOut, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			outs[shard] = c.queryShard(ctx, shard, q)
		}(i)
	}
	wg.Wait()

	resp := &Response{Shards: len(c.shards)}
	perShard := make([][]Result, len(outs))
	for i, out := range outs {
		perShard[i] = out.results
		resp.Failovers += out.failovers
		if out.stale {
			resp.Stale = append(resp.Stale, i)
		}
		if out.missing {
			resp.Missing = append(resp.Missing, i)
		}
	}
	sort.Ints(resp.Stale)
	sort.Ints(resp.Missing)
	resp.Results = mergeTopK(parsed, perShard)
	switch resp.Class() {
	case OutcomeDegraded:
		c.obs.Counter("cluster_degraded_queries").Inc()
	case OutcomeFailed:
		c.obs.Counter("cluster_failed_queries_total").Inc()
	}
	return resp, nil
}

// QueryBatch runs a batch of queries through one scatter: each shard is
// visited once per replica attempt with every still-pending query, so a
// 64-query batch against a healthy cluster costs one round trip per
// shard instead of 64. The returned slices are index-aligned with qs;
// errors[i] is non-nil only when query i itself is invalid — shard
// failures degrade per query through the same ladder as Query (failover
// → last-known-good → missing) and surface in that query's Response.
func (c *Coordinator) QueryBatch(ctx context.Context, qs []string) ([]*Response, []error) {
	c.obs.Counter("cluster_batches_total").Inc()
	stop := c.obs.Time("cluster_batch_ms")
	defer stop()

	responses := make([]*Response, len(qs))
	errs := make([]error, len(qs))
	parsed := make([]*query.Query, len(qs))
	valid := make([]int, 0, len(qs))
	for i, q := range qs {
		c.obs.Counter("cluster_queries_total").Inc()
		p, err := query.Parse(q)
		if err == nil {
			err = p.Validate()
		}
		if err != nil {
			c.obs.Counter("cluster_query_errors_total").Inc()
			errs[i] = err
			continue
		}
		parsed[i] = p
		valid = append(valid, i)
	}
	if len(valid) == 0 {
		return responses, errs
	}
	sub := make([]string, len(valid))
	for j, i := range valid {
		sub[j] = qs[i]
	}

	shardOuts := make([][]shardOut, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			shardOuts[shard] = c.queryShardBatch(ctx, shard, sub)
		}(i)
	}
	wg.Wait()

	for j, i := range valid {
		resp := &Response{Shards: len(c.shards)}
		perShard := make([][]Result, len(c.shards))
		for s := range c.shards {
			out := shardOuts[s][j]
			perShard[s] = out.results
			resp.Failovers += out.failovers
			if out.stale {
				resp.Stale = append(resp.Stale, s)
			}
			if out.missing {
				resp.Missing = append(resp.Missing, s)
			}
		}
		resp.Results = mergeTopK(parsed[i], perShard)
		switch resp.Class() {
		case OutcomeDegraded:
			c.obs.Counter("cluster_degraded_queries").Inc()
		case OutcomeFailed:
			c.obs.Counter("cluster_failed_queries_total").Inc()
		}
		responses[i] = resp
	}
	return responses, errs
}

// queryShardBatch walks one shard's replicas in preference order with
// the whole pending set, retrying only the queries a replica failed: a
// transport-level failure fails the entire pending set over, a
// per-query error retries just that query on the next replica. Queries
// still unanswered after the walk fall through to the last-known-good
// cache, then to missing — the single-query ladder, applied per slot.
func (c *Coordinator) queryShardBatch(ctx context.Context, shard int, qs []string) []shardOut {
	stop := c.obs.Time(fmt.Sprintf("cluster_shard%d_query_ms", shard))
	defer stop()
	outs := make([]shardOut, len(qs))
	pending := make([]int, len(qs))
	for i := range pending {
		pending[i] = i
	}
	for _, r := range c.health.order(shard) {
		if len(pending) == 0 {
			break
		}
		sub := make([]string, len(pending))
		for k, p := range pending {
			sub[k] = qs[p]
		}
		attemptCtx, cancel := context.WithTimeout(ctx, c.replicaTimeout)
		results, qerrs, err := replicaBatch(attemptCtx, c.shards[shard][r], sub)
		cancel()
		if err != nil {
			c.health.fail(shard, r)
			c.obs.Counter(fmt.Sprintf("cluster_shard%d_errors_total", shard)).Inc()
			c.obs.Counter("cluster_failover_" + failoverCause(err) + "_total").Inc()
			for _, p := range pending {
				outs[p].failovers++
			}
			if ctx.Err() != nil {
				break
			}
			continue
		}
		still := pending[:0]
		for k, p := range pending {
			if qerrs[k] != nil {
				outs[p].failovers++
				c.obs.Counter(fmt.Sprintf("cluster_shard%d_errors_total", shard)).Inc()
				c.obs.Counter("cluster_failover_" + failoverCause(qerrs[k]) + "_total").Inc()
				still = append(still, p)
				continue
			}
			outs[p].results = results[k]
			if outs[p].failovers > 0 {
				c.obs.Counter("cluster_failovers_total").Add(int64(outs[p].failovers))
			}
			c.cachePut(shard, qs[p], results[k])
		}
		// A replica that answered nothing is as bad as one that did not
		// answer; one that answered anything stays preferred.
		if len(still) == len(pending) {
			c.health.fail(shard, r)
		} else {
			c.health.ok(shard, r)
		}
		pending = still
		if ctx.Err() != nil {
			break
		}
	}
	for _, p := range pending {
		if res, ok := c.cacheGet(shard, qs[p]); ok {
			c.obs.Counter("cluster_stale_shards_total").Inc()
			outs[p].results = res
			outs[p].stale = true
		} else {
			c.obs.Counter("cluster_missing_shards_total").Inc()
			outs[p].missing = true
		}
	}
	return outs
}

// replicaBatch runs the pending set against one replica, through its
// batch surface when it has one and a serial Query loop otherwise. The
// returned slices are index-aligned with qs; the outer error means the
// whole attempt failed.
func replicaBatch(ctx context.Context, b QueryBackend, qs []string) ([][]Result, []error, error) {
	if bb, ok := b.(BatchQueryBackend); ok {
		results, qerrs, err := bb.QueryBatch(ctx, qs)
		if err != nil {
			return nil, nil, err
		}
		if len(results) != len(qs) || len(qerrs) != len(qs) {
			return nil, nil, fmt.Errorf("cluster: batch backend returned %d results / %d errors for %d queries",
				len(results), len(qerrs), len(qs))
		}
		return results, qerrs, nil
	}
	results := make([][]Result, len(qs))
	qerrs := make([]error, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		res, err := b.Query(ctx, q)
		if err != nil {
			qerrs[i] = err
			continue
		}
		results[i] = res
	}
	return results, qerrs, nil
}

// queryShard walks one shard's replicas in preference order, then the
// lower rungs of the ladder.
func (c *Coordinator) queryShard(ctx context.Context, shard int, q string) shardOut {
	stop := c.obs.Time(fmt.Sprintf("cluster_shard%d_query_ms", shard))
	defer stop()
	attempts := 0
	for _, r := range c.health.order(shard) {
		attemptCtx, cancel := context.WithTimeout(ctx, c.replicaTimeout)
		res, err := c.shards[shard][r].Query(attemptCtx, q)
		cancel()
		if err == nil {
			c.health.ok(shard, r)
			if attempts > 0 {
				c.obs.Counter("cluster_failovers_total").Add(int64(attempts))
			}
			c.cachePut(shard, q, res)
			return shardOut{results: res, failovers: attempts}
		}
		c.health.fail(shard, r)
		c.obs.Counter(fmt.Sprintf("cluster_shard%d_errors_total", shard)).Inc()
		c.obs.Counter("cluster_failover_" + failoverCause(err) + "_total").Inc()
		attempts++
		if ctx.Err() != nil {
			// The scatter deadline itself expired; further replicas
			// would only see dead contexts.
			break
		}
	}
	if res, ok := c.cacheGet(shard, q); ok {
		c.obs.Counter("cluster_stale_shards_total").Inc()
		return shardOut{results: res, stale: true, failovers: attempts}
	}
	c.obs.Counter("cluster_missing_shards_total").Inc()
	return shardOut{missing: true, failovers: attempts}
}

// failoverCause classifies why a replica attempt failed, for the
// failover counters: an open client-side breaker, a timeout (the
// per-attempt deadline or the hub client's own per-attempt timeout), or
// any other error.
func failoverCause(err error) string {
	switch {
	case errors.Is(err, hub.ErrCircuitOpen):
		return "breaker"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, hub.ErrAttemptTimeout):
		return "timeout"
	default:
		return "error"
	}
}

func lkgKey(shard int, q string) string { return fmt.Sprintf("%d|%s", shard, q) }

// cachePut stores a fresh per-shard answer as that (shard, query)'s
// last known good, evicting the oldest entry past the cap.
func (c *Coordinator) cachePut(shard int, q string, res []Result) {
	if c.lkgCap <= 0 {
		return
	}
	key := lkgKey(shard, q)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.lkg[key]; ok {
		el.Value.(*lkgEntry).results = res
		c.lkgLRU.MoveToFront(el)
		return
	}
	c.lkg[key] = c.lkgLRU.PushFront(&lkgEntry{key: key, results: res})
	if c.lkgLRU.Len() > c.lkgCap {
		oldest := c.lkgLRU.Back()
		c.lkgLRU.Remove(oldest)
		delete(c.lkg, oldest.Value.(*lkgEntry).key)
	}
}

// cacheGet returns the last-known-good answer for (shard, query), if
// any. A hit refreshes recency but the entry stays — an outage can
// outlive many queries.
func (c *Coordinator) cacheGet(shard int, q string) ([]Result, bool) {
	if c.lkgCap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.lkg[lkgKey(shard, q)]
	if !ok {
		return nil, false
	}
	c.lkgLRU.MoveToFront(el)
	return el.Value.(*lkgEntry).results, true
}
