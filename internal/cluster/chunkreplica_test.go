package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"sommelier/internal/cas"
	"sommelier/internal/faults"
	"sommelier/internal/graph"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// denseReplica is a minimal store-backed Replica with no chunk surface,
// counting dense publishes.
type denseReplica struct {
	store *repo.Repository
	dense atomic.Int64
}

func newDenseReplica() *denseReplica { return &denseReplica{store: repo.NewInMemory()} }

func (d *denseReplica) Query(ctx context.Context, q string) ([]Result, error) { return nil, nil }
func (d *denseReplica) Publish(ctx context.Context, m *graph.Model) (string, error) {
	d.dense.Add(1)
	return d.store.Publish(m)
}
func (d *denseReplica) Load(ctx context.Context, id string) (*graph.Model, error) {
	return d.store.Load(id)
}
func (d *denseReplica) List(ctx context.Context) ([]repo.Metadata, error) {
	return d.store.List(), nil
}
func (d *denseReplica) Delete(ctx context.Context, id string) error { return d.store.Delete(id) }
func (d *denseReplica) Rebuild(ctx context.Context) error           { return nil }

// chunkStubReplica adds the chunk surface, counting chunked publishes.
type chunkStubReplica struct {
	denseReplica
	chunked atomic.Int64
}

func newChunkStubReplica() *chunkStubReplica {
	return &chunkStubReplica{denseReplica: denseReplica{store: repo.NewInMemory()}}
}

func (c *chunkStubReplica) PublishEncoded(ctx context.Context, enc *cas.Encoded) (string, error) {
	c.chunked.Add(1)
	return c.store.PublishEncoded(enc)
}

func chunkTestModel(t *testing.T) *graph.Model {
	t.Helper()
	m, err := zoo.DenseResidualNet(zoo.Config{Name: "ckr", Seed: 7, Width: 16, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Version = "1"
	return m
}

// TestPublishPrefersChunkReplica: replication routes each replica copy
// through the chunk protocol when the replica speaks it and falls back
// to a dense publish when it does not — in the same shard, from one
// shared encoding.
func TestPublishPrefersChunkReplica(t *testing.T) {
	chunked := newChunkStubReplica()
	plain := newDenseReplica()
	c, err := NewCluster([][]Replica{{chunked, plain}})
	if err != nil {
		t.Fatal(err)
	}
	m := chunkTestModel(t)
	id, err := c.Publish(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if got := chunked.chunked.Load(); got != 1 {
		t.Fatalf("chunk replica saw %d chunked publishes, want 1", got)
	}
	if got := chunked.dense.Load(); got != 0 {
		t.Fatalf("chunk replica saw %d dense publishes, want 0", got)
	}
	if got := plain.dense.Load(); got != 1 {
		t.Fatalf("plain replica saw %d dense publishes, want 1", got)
	}
	for _, r := range []*repo.Repository{chunked.store, plain.store} {
		got, err := r.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != m.Fingerprint() {
			t.Fatal("replicated model does not match the original")
		}
	}
}

// TestFaultyReplicaChunkFaultAccounting: a chunked publish through
// FaultyReplica draws exactly one scheduled fault — the same accounting
// as a dense publish, so chaos fault windows stay aligned — and
// delegates to the inner chunk surface; over a plain inner replica it
// degrades to a dense publish.
func TestFaultyReplicaChunkFaultAccounting(t *testing.T) {
	enc, err := cas.Encode(chunkTestModel(t), "", nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	inner := newChunkStubReplica()
	sched := faults.NewSchedule(1)
	sched.Set(Target(0, 0), faults.Kill(0, 0)) // first op faulted, rest pass
	fr := NewFaultyReplica(inner, Target(0, 0), sched)
	if _, err := fr.PublishEncoded(context.Background(), enc); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("scheduled fault not injected: %v", err)
	}
	if got := inner.chunked.Load(); got != 0 {
		t.Fatalf("fault did not stop the publish: %d chunked publishes", got)
	}

	plain := newDenseReplica()
	fp := NewFaultyReplica(plain, Target(0, 1), faults.NewSchedule(1))
	if _, err := fp.PublishEncoded(context.Background(), enc); err != nil {
		t.Fatal(err)
	}
	if got := plain.dense.Load(); got != 1 {
		t.Fatalf("plain inner saw %d dense publishes, want 1 (chunk fallback)", got)
	}
}

// TestRepairUsesChunkPath: anti-entropy copies ride the chunk protocol
// to chunk-capable replicas.
func TestRepairUsesChunkPath(t *testing.T) {
	holder := newChunkStubReplica()
	missing := newChunkStubReplica()
	c, err := NewCluster([][]Replica{{holder, missing}})
	if err != nil {
		t.Fatal(err)
	}
	m := chunkTestModel(t)
	if _, err := holder.store.Publish(m); err != nil {
		t.Fatal(err)
	}
	report, err := c.Repair(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if report.Copies != 1 {
		t.Fatalf("repair made %d copies, want 1", report.Copies)
	}
	if got := missing.chunked.Load(); got != 1 {
		t.Fatalf("repair used %d chunked publishes on the missing replica, want 1", got)
	}
	if got := missing.dense.Load(); got != 0 {
		t.Fatalf("repair fell back to %d dense publishes, want 0", got)
	}
	if _, err := missing.store.Load("ckr@1"); err != nil {
		t.Fatal(err)
	}
}
