// Package cluster shards the curated catalog across N hub nodes and
// serves it back as one: a consistent-hash ring partitions models (by
// series when present, else by ID) across shards, every shard is
// replicated R ways, and a scatter-gather Coordinator fans each query
// out to all shards, failing over between replicas and degrading —
// replica failover → stale last-known-good → partial result — per the
// resilience rules the hub client established (PR 1).
//
// The package is deterministic by construction: ring placement, top-K
// merging and degradation decisions depend only on inputs and the
// fault schedule, never on map order, wall clocks or global randomness,
// so whole-cluster chaos runs replay byte-for-byte from a seed.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the number of ring points per shard. More
// points smooth the partition sizes; the value only changes placement,
// never correctness.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over shard indices. It is immutable
// after construction; rebuild it to change the shard count.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring of n shards with v virtual nodes each (v <= 0
// uses DefaultVirtualNodes).
func NewRing(n, v int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", n)
	}
	if v <= 0 {
		v = DefaultVirtualNodes
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*v)}
	for s := 0; s < n; s++ {
		for p := 0; p < v; p++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("shard%d#%d", s, p)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard // deterministic on (unlikely) collisions
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// ShardFor maps a placement key to its owning shard: the first ring
// point clockwise from the key's hash.
func (r *Ring) ShardFor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// PlacementKey returns the ring key for a model: its series when set —
// so a whole series (and the correlations inside it) stays co-located —
// else the model ID.
func PlacementKey(id, series string) string {
	if series != "" {
		return "series:" + series
	}
	return "id:" + id
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// splitmix64 finalizer: raw FNV of short, similar strings (shard0#1,
	// shard0#2, …) is correlated enough to skew partition sizes badly.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
