package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"sommelier/internal/cas"
	"sommelier/internal/graph"
	"sommelier/internal/hub"
	"sommelier/internal/repo"
)

// HTTPReplica adapts a hub.Client into a shard Replica, so a
// coordinator can front remote sommhub shard processes. The client
// brings its own resilience (per-attempt timeouts, retries, circuit
// breaker); the coordinator's failover sits on top of it.
type HTTPReplica struct {
	client *hub.Client
}

// NewHTTPReplica wraps a hub client.
func NewHTTPReplica(c *hub.Client) *HTTPReplica { return &HTTPReplica{client: c} }

// Query runs the query on the remote shard's /v1/query. A shard that
// answers deliberately with a client error — the unknown-reference case
// of a catalog that does not hold this query's reference model — is an
// empty contribution, not a failure.
func (r *HTTPReplica) Query(ctx context.Context, q string) ([]Result, error) {
	raw, err := r.client.Query(ctx, q)
	if err != nil {
		var se *hub.StatusError
		if errors.As(err, &se) && se.Code >= 400 && se.Code < 500 {
			return nil, nil
		}
		return nil, err
	}
	var out []Result
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("cluster: decoding shard results: %w", err)
		}
	}
	return out, nil
}

// QueryBatch runs the batch in one POST /v1/query round trip. A hub
// that does not speak the batch protocol is driven by a serial Query
// loop instead, so mixed-version clusters keep working. Per-query
// unknown-reference errors (the hub marks them with a machine-readable
// code) become empty contributions, exactly like Query's 4xx mapping;
// any other per-query error is returned in that query's slot so the
// coordinator can retry just that query on the next replica.
func (r *HTTPReplica) QueryBatch(ctx context.Context, qs []string) ([][]Result, []error, error) {
	raws, qerrs, err := r.client.QueryBatch(ctx, qs)
	if err != nil {
		if errors.Is(err, hub.ErrBatchUnsupported) {
			return r.queryBatchSerial(ctx, qs)
		}
		return nil, nil, err
	}
	results := make([][]Result, len(qs))
	errs := make([]error, len(qs))
	for i := range qs {
		if qe := qerrs[i]; qe != nil {
			if qe.Code != hub.CodeUnknownReference {
				errs[i] = qe
			}
			continue
		}
		if len(raws[i]) > 0 {
			if err := json.Unmarshal(raws[i], &results[i]); err != nil {
				errs[i] = fmt.Errorf("cluster: decoding shard results: %w", err)
			}
		}
	}
	return results, errs, nil
}

// queryBatchSerial is the pre-batch-hub fallback: one GET per query
// through the full Query mapping.
func (r *HTTPReplica) queryBatchSerial(ctx context.Context, qs []string) ([][]Result, []error, error) {
	results := make([][]Result, len(qs))
	errs := make([]error, len(qs))
	for i, q := range qs {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		res, err := r.Query(ctx, q)
		if err != nil {
			errs[i] = err
			continue
		}
		results[i] = res
	}
	return results, errs, nil
}

// Publish uploads the model. The hub client carries its own timeout;
// ctx only gates starting the upload.
func (r *HTTPReplica) Publish(ctx context.Context, m *graph.Model) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	return r.client.Publish(m)
}

// PublishEncoded uploads the model through the hub's chunk-negotiation
// protocol, shipping only the chunks the remote shard is missing. The
// hub client itself falls back to a whole-model upload against hubs
// that cannot negotiate, so this never fails merely for lack of
// protocol support.
func (r *HTTPReplica) PublishEncoded(ctx context.Context, enc *cas.Encoded) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	id, _, err := r.client.PublishEncoded(enc)
	return id, err
}

// Load fetches a model, mapping the remote 404 onto repo.ErrNotFound
// so cluster fallback logic treats local and remote replicas alike.
func (r *HTTPReplica) Load(ctx context.Context, id string) (*graph.Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m, err := r.client.Load(id)
	if err != nil {
		var se *hub.StatusError
		if errors.As(err, &se) && se.Code == 404 {
			return nil, fmt.Errorf("cluster: remote load %s: %w", id, repo.ErrNotFound)
		}
		return nil, err
	}
	return m, nil
}

// List returns the remote shard's metadata.
func (r *HTTPReplica) List(ctx context.Context) ([]repo.Metadata, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.client.List()
}

// Delete removes a model, mapping the remote 404 onto repo.ErrNotFound.
func (r *HTTPReplica) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.client.Delete(id); err != nil {
		var se *hub.StatusError
		if errors.As(err, &se) && se.Code == 404 {
			return fmt.Errorf("cluster: remote delete %s: %w", id, repo.ErrNotFound)
		}
		return err
	}
	return nil
}

// Rebuild is a no-op for remote replicas: a sommhub shard running with
// -index reindexes every accepted upload itself, which is the same
// invariant Rebuild restores for in-process replicas.
func (r *HTTPReplica) Rebuild(ctx context.Context) error { return ctx.Err() }
