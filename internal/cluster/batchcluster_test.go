package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"sommelier"
	"sommelier/internal/cluster"
	"sommelier/internal/faults"
	"sommelier/internal/hub"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// batchWorkload mixes the shapes the coordinator must keep index-aligned:
// valid queries, a reference no shard holds, and a parse error.
func batchWorkload(refID string) []string {
	return []string{
		fmt.Sprintf("SELECT CORR %q WITHIN 50%% PICK most_similar", refID),
		fmt.Sprintf("SELECT CORR %q WITHIN 85%% PICK smallest", refID),
		`SELECT CORR "nobody@9" WITHIN 50%`,
		"SELECT CORR",
		fmt.Sprintf("SELECT CORR %q WITHIN 50%% PICK most_similar", refID),
	}
}

// TestCoordinatorQueryBatchMatchesSerial pins the scatter-gather batch
// contract on a healthy cluster: every slot of QueryBatch — response and
// error alike — matches a serial co.Query of the same string.
func TestCoordinatorQueryBatchMatchesSerial(t *testing.T) {
	_, co, _, _, refID := chaosCluster(t)
	qs := batchWorkload(refID)

	serial := make([][]byte, len(qs))
	serialErrs := make([]error, len(qs))
	for i, q := range qs {
		resp, err := co.Query(context.Background(), q)
		serialErrs[i] = err
		if err == nil {
			serial[i] = mustJSON(t, resp)
		}
	}
	if serialErrs[3] == nil {
		t.Fatal("parse-error slot did not error serially")
	}

	resps, errs := co.QueryBatch(context.Background(), qs)
	if len(resps) != len(qs) || len(errs) != len(qs) {
		t.Fatalf("misaligned batch output: %d/%d", len(resps), len(errs))
	}
	for i := range qs {
		if (errs[i] == nil) != (serialErrs[i] == nil) {
			t.Fatalf("slot %d: batch err %v, serial err %v", i, errs[i], serialErrs[i])
		}
		if errs[i] != nil {
			if errs[i].Error() != serialErrs[i].Error() {
				t.Fatalf("slot %d: batch err %q, serial err %q", i, errs[i], serialErrs[i])
			}
			continue
		}
		if got := mustJSON(t, resps[i]); !bytes.Equal(got, serial[i]) {
			t.Fatalf("slot %d: batch response diverges from serial:\n got %s\nwant %s", i, got, serial[i])
		}
	}
	// The unknown-reference slot is a clean empty answer, not an error.
	if errs[2] != nil || len(resps[2].Results) != 0 {
		t.Fatalf("unknown-reference slot: err %v, %d results; want clean empty", errs[2], len(resps[2].Results))
	}
}

// TestCoordinatorQueryBatchFailoverInvisible pins the degradation
// ladder under batching: with one replica of a shard dead, the batch
// fails over and returns results byte-identical to the healthy run.
// The faulty wrapper deliberately does not speak the batch interface,
// so this also exercises the coordinator's serial per-replica fallback.
func TestCoordinatorQueryBatchFailoverInvisible(t *testing.T) {
	_, co, _, _, refID := chaosCluster(t)
	qs := batchWorkload(refID)
	healthy, herrs := co.QueryBatch(context.Background(), qs)

	_, co2, sched, _, refID2 := chaosCluster(t)
	if refID2 != refID {
		t.Fatalf("seeding is not deterministic: %s vs %s", refID2, refID)
	}
	sched.Set(cluster.Target(1, 0), faults.Kill(0, 0))
	faulted, ferrs := co2.QueryBatch(context.Background(), qs)

	for i := range qs {
		if (herrs[i] == nil) != (ferrs[i] == nil) {
			t.Fatalf("slot %d: healthy err %v, faulted err %v", i, herrs[i], ferrs[i])
		}
		if herrs[i] != nil {
			continue
		}
		if faulted[i].Class() != cluster.OutcomeFull {
			t.Fatalf("slot %d: faulted outcome %s, want full (failover should be invisible)",
				i, faulted[i].Class())
		}
		got, want := mustJSON(t, faulted[i].Results), mustJSON(t, healthy[i].Results)
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d: failover changed the answer:\n got %s\nwant %s", i, got, want)
		}
		if faulted[i].Failovers == 0 {
			t.Fatalf("slot %d: no failovers recorded despite a dead first replica", i)
		}
	}
}

// newBatchHubReplica is an engine-backed hub with the batched query
// endpoint wired the way sommhub wires it, fronted by an HTTPReplica.
func newBatchHubReplica(t *testing.T) (*cluster.HTTPReplica, *sommelier.Engine) {
	t.Helper()
	store := repo.NewInMemory()
	eng, err := sommelier.NewEngine(store,
		sommelier.WithSeed(11),
		sommelier.WithValidationSize(32))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hub.NewServer(store,
		hub.WithIndexer(eng),
		hub.WithQuerier(func(ctx context.Context, q string) (any, error) {
			return eng.QueryContext(ctx, q)
		}),
		hub.WithBatchQuerier(func(ctx context.Context, qs []string) ([]any, []*hub.QueryError) {
			rss, errs := eng.QueryBatchContext(ctx, qs)
			results := make([]any, len(qs))
			qerrs := make([]*hub.QueryError, len(qs))
			for i := range qs {
				if err := errs[i]; err != nil {
					qerrs[i] = &hub.QueryError{Message: err.Error()}
					if errors.Is(err, sommelier.ErrUnknownReference) {
						qerrs[i].Code = hub.CodeUnknownReference
					}
					continue
				}
				results[i] = rss[i]
			}
			return results, qerrs
		}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := hub.NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return cluster.NewHTTPReplica(client), eng
}

func seedHTTPReplica(t *testing.T, r *cluster.HTTPReplica) string {
	t.Helper()
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "httpbase", Seed: 3, Width: 8, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	refID, err := r.Publish(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v := zoo.Perturb(base, fmt.Sprintf("httpv%d", i), 0.01*float64(i+1), uint64(20+i))
		if _, err := r.Publish(context.Background(), v); err != nil {
			t.Fatal(err)
		}
	}
	return refID
}

// TestHTTPReplicaQueryBatch drives the wire protocol end to end: a
// batch over a live hub matches per-query GETs, the unknown-reference
// code maps to an empty contribution, and a genuine per-query error
// stays in its slot.
func TestHTTPReplicaQueryBatch(t *testing.T) {
	r, _ := newBatchHubReplica(t)
	refID := seedHTTPReplica(t, r)
	qs := batchWorkload(refID)

	results, errs, err := r.QueryBatch(context.Background(), qs)
	if err != nil {
		t.Fatalf("batch transport error: %v", err)
	}
	for i, q := range qs {
		if i == 3 {
			continue // parse-error slot asserted separately below
		}
		serial, serr := r.Query(context.Background(), q)
		if (errs[i] == nil) != (serr == nil) {
			t.Fatalf("slot %d: batch err %v, serial err %v", i, errs[i], serr)
		}
		if serr != nil {
			continue
		}
		if got, want := mustJSON(t, results[i]), mustJSON(t, serial); !bytes.Equal(got, want) {
			t.Fatalf("slot %d: batch diverges from GET:\n got %s\nwant %s", i, got, want)
		}
	}
	if errs[2] != nil || len(results[2]) != 0 {
		t.Fatalf("unknown-reference slot: err %v, %d results; want empty contribution", errs[2], len(results[2]))
	}
	// The GET path buries parse errors in its blanket 4xx→empty mapping;
	// the batch protocol surfaces them per slot (the coordinator never
	// sends one — it validates before scattering — but a direct caller
	// deserves the real error).
	if errs[3] == nil {
		t.Fatal("parse-error slot did not carry a per-query error")
	}
}

// TestHTTPReplicaQueryBatchOldHubFallback pins mixed-version clusters: a
// hub that rejects POST /v1/query is driven by serial GETs with the
// same per-slot semantics.
func TestHTTPReplicaQueryBatchOldHubFallback(t *testing.T) {
	answers := map[string]string{"good": `{"results":[{"id":"m@1"}]}`}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/v1/query" || req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query().Get("q")
		body, ok := answers[q]
		if !ok {
			http.Error(w, "unknown reference", http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	client, err := hub.NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	r := cluster.NewHTTPReplica(client)

	results, errs, err := r.QueryBatch(context.Background(), []string{"good", "ghost"})
	if err != nil {
		t.Fatalf("fallback batch failed outright: %v", err)
	}
	if errs[0] != nil || len(results[0]) != 1 || results[0][0].ID != "m@1" {
		t.Fatalf("slot 0: err %v, results %s", errs[0], mustJSON(t, results[0]))
	}
	// The 4xx answer maps to an empty contribution, exactly like Query.
	if errs[1] != nil || len(results[1]) != 0 {
		t.Fatalf("slot 1: err %v, %d results; want empty contribution", errs[1], len(results[1]))
	}
}
