package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"sommelier/internal/cas"
	"sommelier/internal/graph"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
)

// ErrAllReplicasFailed is wrapped by write and read errors when no
// replica of the owning shard could serve the operation.
var ErrAllReplicasFailed = errors.New("cluster: all replicas failed")

// PartialWriteError reports a write that some — but not all — replicas
// of the owning shard accepted. The write is durable (at least one
// replica has it) but the shard's replicas have diverged until Repair
// copies it across; callers that need full replication before
// acknowledging can treat this as an error, callers that need
// availability can accept it.
type PartialWriteError struct {
	// ID is the model the write concerned.
	ID string
	// Errs maps replica target names to the error that lost them the
	// write.
	Errs map[string]error
	// Accepted is how many replicas took the write.
	Accepted int
}

// Error lists the failed replicas in a stable order.
func (e *PartialWriteError) Error() string {
	targets := make([]string, 0, len(e.Errs))
	for t := range e.Errs {
		targets = append(targets, t)
	}
	sort.Strings(targets)
	parts := make([]string, len(targets))
	for i, t := range targets {
		parts[i] = t + ": " + e.Errs[t].Error()
	}
	return fmt.Sprintf("cluster: publish %s: %d replica(s) accepted, %d failed: %s",
		e.ID, e.Accepted, len(targets), strings.Join(parts, "; "))
}

// ClusterOption configures a Cluster.
type ClusterOption func(*Cluster)

// WithVirtualNodes sets the ring's virtual-node count per shard.
func WithVirtualNodes(n int) ClusterOption { return func(c *Cluster) { c.vnodes = n } }

// WithClusterObserver attaches an observability handle: writes count
// into cluster_publish_total / cluster_publish_partial_total /
// cluster_publish_failed_total, repair into cluster_repair_copies_total
// and rebalance into cluster_rebalance_moves_total.
func WithClusterObserver(o *obs.Observer) ClusterOption { return func(c *Cluster) { c.obs = o } }

// Cluster owns the write path and placement of a sharded, replicated
// hub: a consistent-hash ring assigns every model (by series when set)
// to one shard, writes go to all of that shard's replicas, and the
// repair and rebalance passes restore the invariants failures break —
// replica divergence after a partial write, misplacement after the
// ring changes.
type Cluster struct {
	vnodes int
	obs    *obs.Observer

	mu     sync.Mutex
	ring   *Ring       // guarded by mu
	shards [][]Replica // guarded by mu
}

// NewCluster builds a cluster over the replica topology; every shard
// needs at least one replica.
func NewCluster(shards [][]Replica, opts ...ClusterOption) (*Cluster, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: needs at least one shard")
	}
	for i, reps := range shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", i)
		}
	}
	c := &Cluster{shards: shards}
	for _, opt := range opts {
		opt(c)
	}
	ring, err := NewRing(len(shards), c.vnodes)
	if err != nil {
		return nil, err
	}
	c.ring = ring
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.shards)
}

// Backends returns the query-only topology view for a Coordinator.
func (c *Cluster) Backends() [][]QueryBackend {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Backends(c.shards)
}

// ShardFor returns the shard owning a model.
func (c *Cluster) ShardFor(id, series string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.ShardFor(PlacementKey(id, series))
}

// topology returns a consistent (ring, shards) pair for one operation.
func (c *Cluster) topology() (*Ring, [][]Replica) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring, c.shards
}

// encodeOnce chunk-encodes a model for replication. The encoding is
// computed once per logical write and shared by every replica copy;
// chunk-capable replicas then receive only the chunks they are missing.
// A nil return (encoding failed) downgrades every copy to the dense
// path rather than failing the write.
func encodeOnce(m *graph.Model) *cas.Encoded {
	enc, err := cas.Encode(m, "", nil, 0)
	if err != nil {
		return nil
	}
	return enc
}

// publishTo writes the model to every replica of one shard.
// At least one accepting replica makes the write durable; fewer than
// all yields a *PartialWriteError. enc is the shared chunk encoding
// (nil to force dense transfer).
func (c *Cluster) publishTo(ctx context.Context, shard int, reps []Replica, m *graph.Model, enc *cas.Encoded) (string, error) {
	id := m.Name + "@" + m.Version
	accepted := 0
	var errs map[string]error
	for r, rep := range reps {
		if _, err := publishReplica(ctx, rep, m, enc); err != nil {
			if errs == nil {
				errs = make(map[string]error)
			}
			errs[Target(shard, r)] = err
			continue
		}
		accepted++
	}
	if errs == nil {
		return id, nil
	}
	if accepted == 0 {
		c.obs.Counter("cluster_publish_failed_total").Inc()
		return "", fmt.Errorf("cluster: publish %s to shard %d: %w: %w",
			id, shard, ErrAllReplicasFailed, &PartialWriteError{ID: id, Errs: errs})
	}
	c.obs.Counter("cluster_publish_partial_total").Inc()
	return id, &PartialWriteError{ID: id, Errs: errs, Accepted: accepted}
}

// Publish routes the model to its ring-assigned shard and writes it to
// every replica there. On partial acceptance the returned ID is valid
// and the error is a *PartialWriteError.
func (c *Cluster) Publish(ctx context.Context, m *graph.Model) (string, error) {
	if err := m.Validate(); err != nil {
		return "", fmt.Errorf("cluster: refusing invalid model: %w", err)
	}
	ring, shards := c.topology()
	c.obs.Counter("cluster_publish_total").Inc()
	id := m.Name + "@" + m.Version
	shard := ring.ShardFor(PlacementKey(id, seriesOf(m)))
	return c.publishTo(ctx, shard, shards[shard], m, encodeOnce(m))
}

// Broadcast writes the model to every replica of every shard — the
// placement for reference models that queries on any shard must be able
// to correlate against. Partial acceptance aggregates into one
// *PartialWriteError.
func (c *Cluster) Broadcast(ctx context.Context, m *graph.Model) (string, error) {
	if err := m.Validate(); err != nil {
		return "", fmt.Errorf("cluster: refusing invalid model: %w", err)
	}
	_, shards := c.topology()
	c.obs.Counter("cluster_publish_total").Inc()
	id := m.Name + "@" + m.Version
	enc := encodeOnce(m)
	accepted := 0
	var errs map[string]error
	for s, reps := range shards {
		_, err := c.publishTo(ctx, s, reps, m, enc)
		var pw *PartialWriteError
		switch {
		case err == nil:
			accepted += len(reps)
		case errors.As(err, &pw):
			accepted += pw.Accepted
			if errs == nil {
				errs = make(map[string]error)
			}
			for t, e := range pw.Errs {
				errs[t] = e
			}
		default:
			if errs == nil {
				errs = make(map[string]error)
			}
			errs[Target(s, 0)] = err
		}
	}
	if errs == nil {
		return id, nil
	}
	if accepted == 0 {
		return "", fmt.Errorf("cluster: broadcast %s: %w", id, ErrAllReplicasFailed)
	}
	return id, &PartialWriteError{ID: id, Errs: errs, Accepted: accepted}
}

// Load fetches a model: the owning shard's replicas first, then — the
// degraded path that keeps reads alive mid-rebalance or after a ring
// change — every other shard.
func (c *Cluster) Load(ctx context.Context, id string) (*graph.Model, error) {
	ring, shards := c.topology()
	owner := ring.ShardFor(PlacementKey(id, "")) // series unknown for a bare ID
	order := make([]int, 0, len(shards))
	order = append(order, owner)
	for s := range shards {
		if s != owner {
			order = append(order, s)
		}
	}
	var lastErr error = repo.ErrNotFound
	for _, s := range order {
		for _, rep := range shards[s] {
			m, err := rep.Load(ctx, id)
			if err == nil {
				return m, nil
			}
			if !errors.Is(err, repo.ErrNotFound) {
				lastErr = err
			}
		}
	}
	return nil, fmt.Errorf("cluster: load %s: %w", id, lastErr)
}

// List merges every shard's metadata into one catalog listing, sorted
// by ID, broadcast duplicates removed. A shard lists through its first
// answering replica; shards with no answering replica are skipped —
// List is a read and degrades like one.
func (c *Cluster) List(ctx context.Context) ([]repo.Metadata, error) {
	_, shards := c.topology()
	seen := make(map[string]bool)
	var out []repo.Metadata
	for s, reps := range shards {
		var mds []repo.Metadata
		var err error
		ok := false
		for _, rep := range reps {
			if mds, err = rep.List(ctx); err == nil {
				ok = true
				break
			}
		}
		if !ok {
			c.obs.Counter(fmt.Sprintf("cluster_shard%d_errors_total", s)).Inc()
			continue
		}
		for _, md := range mds {
			if !seen[md.ID] {
				seen[md.ID] = true
				out = append(out, md)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Delete removes a model from every replica that holds it (broadcast
// models live everywhere, so deletes fan out cluster-wide). Replicas
// that do not hold the model are not an error.
func (c *Cluster) Delete(ctx context.Context, id string) error {
	_, shards := c.topology()
	deleted := 0
	var lastErr error
	for _, reps := range shards {
		for _, rep := range reps {
			switch err := rep.Delete(ctx, id); {
			case err == nil:
				deleted++
			case !errors.Is(err, repo.ErrNotFound):
				lastErr = err
			}
		}
	}
	if deleted == 0 {
		if lastErr != nil {
			return fmt.Errorf("cluster: delete %s: %w", id, lastErr)
		}
		return fmt.Errorf("cluster: delete %s: %w", id, repo.ErrNotFound)
	}
	return lastErr
}

// RepairReport summarises one anti-entropy pass.
type RepairReport struct {
	// Copies is the number of (model, replica) copies performed.
	Copies int
	// Failed lists targets that refused a repair copy, sorted.
	Failed []string
}

// Repair runs anti-entropy within every shard: the union of a shard's
// replica listings is computed and every replica missing a model gets
// it copied over (then reindexed by the replica itself). This is the
// recovery path after a *PartialWriteError — once Repair succeeds, the
// shard's replicas are interchangeable again and failover is invisible.
func (c *Cluster) Repair(ctx context.Context) (*RepairReport, error) {
	_, shards := c.topology()
	rep := &RepairReport{}
	for s, reps := range shards {
		// Union of IDs across replicas, with a source replica for each.
		have := make([]map[string]bool, len(reps))
		source := make(map[string]int)
		for r, replica := range reps {
			mds, err := replica.List(ctx)
			if err != nil {
				return rep, fmt.Errorf("cluster: repair shard %d: listing %s: %w", s, Target(s, r), err)
			}
			have[r] = make(map[string]bool, len(mds))
			for _, md := range mds {
				have[r][md.ID] = true
				if _, ok := source[md.ID]; !ok {
					source[md.ID] = r
				}
			}
		}
		ids := make([]string, 0, len(source))
		for id := range source {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			var m *graph.Model
			var enc *cas.Encoded
			for r := range reps {
				if have[r][id] {
					continue
				}
				if m == nil {
					var err error
					if m, err = reps[source[id]].Load(ctx, id); err != nil {
						return rep, fmt.Errorf("cluster: repair shard %d: loading %s from %s: %w",
							s, id, Target(s, source[id]), err)
					}
					enc = encodeOnce(m)
				}
				if _, err := publishReplica(ctx, reps[r], m, enc); err != nil {
					rep.Failed = append(rep.Failed, Target(s, r)+":"+id)
					continue
				}
				rep.Copies++
				c.obs.Counter("cluster_repair_copies_total").Inc()
			}
		}
	}
	sort.Strings(rep.Failed)
	if len(rep.Failed) > 0 {
		return rep, fmt.Errorf("cluster: repair: %d copy(ies) failed: %s",
			len(rep.Failed), strings.Join(rep.Failed, ", "))
	}
	return rep, nil
}

// AddShard appends a new shard (its replicas presumed empty) and
// rebuilds the ring. Existing models stay where they are — and stay
// readable through Load's any-shard fallback — until Rebalance moves
// them.
func (c *Cluster) AddShard(replicas ...Replica) error {
	if len(replicas) == 0 {
		return fmt.Errorf("cluster: new shard needs at least one replica")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ring, err := NewRing(len(c.shards)+1, c.vnodes)
	if err != nil {
		return err
	}
	c.shards = append(c.shards, replicas)
	c.ring = ring
	return nil
}

// RebalanceReport summarises one rebalance pass.
type RebalanceReport struct {
	// Moved is the number of models re-homed to their ring shard.
	Moved int
	// Rebuilt lists shards whose replicas were reindexed after losing
	// models, ascending.
	Rebuilt []int
}

// Rebalance moves every model to the shard the current ring assigns
// it, copy-first: a model is published to all replicas of its new
// shard and only deleted from its old shard once every new replica
// accepted it. A fault mid-rebalance therefore never loses a model —
// the move is abandoned, the model stays on its old shard, and the
// error reports which move failed. Shards that lost models get their
// replicas rebuilt so stale index entries cannot serve ghosts.
//
// Broadcast models (present on several shards) are recognised by their
// multiplicity and left alone.
func (c *Cluster) Rebalance(ctx context.Context) (*RebalanceReport, error) {
	ring, shards := c.topology()
	rep := &RebalanceReport{}

	// Placement audit: where does everything live vs. where should it
	// live. Models on more than one shard are broadcast — skipped.
	type placement struct {
		shard  int
		series string
	}
	locs := make(map[string][]placement)
	for s, reps := range shards {
		var mds []repo.Metadata
		var err error
		ok := false
		for r, replica := range reps {
			if mds, err = replica.List(ctx); err == nil {
				ok = true
				break
			} else if r == len(reps)-1 {
				return rep, fmt.Errorf("cluster: rebalance: listing shard %d: %w", s, err)
			}
		}
		if !ok {
			return rep, fmt.Errorf("cluster: rebalance: shard %d unlistable", s)
		}
		for _, md := range mds {
			locs[md.ID] = append(locs[md.ID], placement{shard: s, series: md.Series})
		}
	}
	ids := make([]string, 0, len(locs))
	for id := range locs {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	dirty := make(map[int]bool) // shards that lost a model
	for _, id := range ids {
		pls := locs[id]
		if len(pls) != 1 {
			continue // broadcast (or already mid-copy): leave in place
		}
		from, want := pls[0].shard, ring.ShardFor(PlacementKey(id, pls[0].series))
		if from == want {
			continue
		}
		m, err := c.loadFromShard(ctx, shards[from], id)
		if err != nil {
			return rep, fmt.Errorf("cluster: rebalance: loading %s from shard %d: %w", id, from, err)
		}
		// Copy first: all new replicas must accept before the old copy
		// goes away. A refused copy aborts the move and rolls the
		// already-accepted copies back, so a half-moved model cannot be
		// mistaken for a broadcast one on the next pass.
		enc := encodeOnce(m)
		for r, replica := range shards[want] {
			if _, err := publishReplica(ctx, replica, m, enc); err != nil {
				for rb := 0; rb < r; rb++ {
					if derr := shards[want][rb].Delete(ctx, id); derr != nil && !errors.Is(derr, repo.ErrNotFound) {
						return rep, fmt.Errorf("cluster: rebalance: moving %s to %s: %w; rollback from %s also failed: %w (model retained on shard %d)",
							id, Target(want, r), err, Target(want, rb), derr, from)
					}
				}
				return rep, fmt.Errorf("cluster: rebalance: moving %s to %s: %w (model retained on shard %d)",
					id, Target(want, r), err, from)
			}
		}
		for _, replica := range shards[from] {
			if err := replica.Delete(ctx, id); err != nil && !errors.Is(err, repo.ErrNotFound) {
				return rep, fmt.Errorf("cluster: rebalance: dropping %s from shard %d: %w", id, from, err)
			}
		}
		dirty[from] = true
		rep.Moved++
		c.obs.Counter("cluster_rebalance_moves_total").Inc()
	}

	for s := range dirty {
		rep.Rebuilt = append(rep.Rebuilt, s)
	}
	sort.Ints(rep.Rebuilt)
	for _, s := range rep.Rebuilt {
		for r, replica := range shards[s] {
			if err := replica.Rebuild(ctx); err != nil {
				return rep, fmt.Errorf("cluster: rebalance: rebuilding %s: %w", Target(s, r), err)
			}
		}
	}
	return rep, nil
}

// loadFromShard loads a model through the first answering replica.
func (c *Cluster) loadFromShard(ctx context.Context, reps []Replica, id string) (*graph.Model, error) {
	var lastErr error
	for _, rep := range reps {
		m, err := rep.Load(ctx, id)
		if err == nil {
			return m, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %w", ErrAllReplicasFailed, lastErr)
}

// seriesOf extracts the model's series annotation, if any — the
// metadata layer the repo derives Series from.
func seriesOf(m *graph.Model) string {
	if m.Metadata != nil {
		return m.Metadata["series"]
	}
	return ""
}
