package cluster

import (
	"context"
	"fmt"
	"time"

	"sommelier/internal/cas"
	"sommelier/internal/faults"
	"sommelier/internal/graph"
	"sommelier/internal/repo"
)

// QueryBackend answers queries for one shard replica. A backend must
// treat an unknown reference model as an empty answer, not an error —
// in a sharded catalog most shards do not hold any given reference.
type QueryBackend interface {
	Query(ctx context.Context, q string) ([]Result, error)
}

// BatchQueryBackend is the optional batched surface of a QueryBackend:
// QueryBatch answers every query against one catalog state. results and
// errs are index-aligned with qs — exactly one of results[i]/errs[i] is
// meaningful per slot. The outer error is transport-level: the whole
// attempt failed and nothing per-query is known, so the coordinator
// fails the entire pending set over to the next replica. Like Query, an
// unknown reference must surface as an empty answer, not an error.
// Backends without this surface are driven by a serial Query loop;
// FaultyReplica deliberately omits it so chaos schedules keep drawing
// one fault per query, exactly as in the single-query path.
type BatchQueryBackend interface {
	QueryBatch(ctx context.Context, qs []string) ([][]Result, []error, error)
}

// Replica is one replica of one shard: the query surface plus the
// store surface the Cluster needs for placement, replication, repair
// and rebalancing. In-process replicas wrap an engine over a private
// store; remote replicas wrap a hub client.
type Replica interface {
	QueryBackend
	// Publish stores and indexes the model.
	Publish(ctx context.Context, m *graph.Model) (string, error)
	// Load fetches a model; repo.ErrNotFound (wrapped) for unknown IDs.
	Load(ctx context.Context, id string) (*graph.Model, error)
	// List returns the replica's model metadata.
	List(ctx context.Context) ([]repo.Metadata, error)
	// Delete removes a model.
	Delete(ctx context.Context, id string) error
	// Rebuild re-indexes the replica from its current store contents —
	// the post-rebalance step that drops index entries for moved-away
	// models.
	Rebuild(ctx context.Context) error
}

// ChunkReplica is the optional chunk-transfer surface a Replica may
// implement. Replication then ships a model encoded once as manifest +
// chunks, and each receiver stores (or transfers) only the chunks it is
// missing — a fine-tuned series replicates at the cost of its unique
// tensors. A single method keeps fault accounting identical to Publish:
// one replica-publish, one fault draw.
type ChunkReplica interface {
	// PublishEncoded stores and indexes the already-chunked model.
	PublishEncoded(ctx context.Context, enc *cas.Encoded) (string, error)
}

// publishReplica writes a model to one replica, preferring the chunk
// path when both sides can speak it. enc is the lazily-computed shared
// encoding; nil means encoding failed and the dense path is used.
func publishReplica(ctx context.Context, rep Replica, m *graph.Model, enc *cas.Encoded) (string, error) {
	if cr, ok := rep.(ChunkReplica); ok && enc != nil {
		return cr.PublishEncoded(ctx, enc)
	}
	return rep.Publish(ctx, m)
}

// Backends converts a cluster's replica topology to the query-only view
// a Coordinator takes.
func Backends(shards [][]Replica) [][]QueryBackend {
	out := make([][]QueryBackend, len(shards))
	for i, reps := range shards {
		out[i] = make([]QueryBackend, len(reps))
		for j, r := range reps {
			out[i][j] = r
		}
	}
	return out
}

// Target names a shard replica for fault schedules and error reports.
func Target(shard, replica int) string {
	return fmt.Sprintf("shard%d/replica%d", shard, replica)
}

// FaultyReplica decorates a Replica with schedule-driven chaos: before
// every operation it asks the schedule for this target's next fault and
// either fails, stalls, or passes through. Kill/flake windows surface
// as faults.ErrInjected-wrapped errors, exactly like the PR-1 wrappers,
// so resilience code cannot tell scheduled chaos from the real thing.
type FaultyReplica struct {
	inner  Replica
	target string
	sched  *faults.Schedule
}

// NewFaultyReplica wraps inner; a nil schedule passes everything
// through.
func NewFaultyReplica(inner Replica, target string, sched *faults.Schedule) *FaultyReplica {
	return &FaultyReplica{inner: inner, target: target, sched: sched}
}

// fault draws the next decision and applies it; non-nil means the
// operation failed before reaching the replica.
func (f *FaultyReplica) fault(ctx context.Context, op string) error {
	if f.sched == nil {
		return nil
	}
	d := f.sched.Next(f.target)
	switch d.Kind {
	case faults.ConnError, faults.ServerError, faults.Truncate:
		return fmt.Errorf("cluster: %s %s on %s: %w", d.Kind, op, f.target, faults.ErrInjected)
	case faults.Latency:
		t := time.NewTimer(d.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Query applies the schedule, then delegates.
func (f *FaultyReplica) Query(ctx context.Context, q string) ([]Result, error) {
	if err := f.fault(ctx, "query"); err != nil {
		return nil, err
	}
	return f.inner.Query(ctx, q)
}

// Publish applies the schedule, then delegates.
func (f *FaultyReplica) Publish(ctx context.Context, m *graph.Model) (string, error) {
	if err := f.fault(ctx, "publish"); err != nil {
		return "", err
	}
	return f.inner.Publish(ctx, m)
}

// PublishEncoded applies the schedule — one draw, exactly like a dense
// Publish, so chaos fault windows count replica-publishes identically —
// then delegates, falling back to a dense publish when the inner
// replica cannot take chunks.
func (f *FaultyReplica) PublishEncoded(ctx context.Context, enc *cas.Encoded) (string, error) {
	if err := f.fault(ctx, "publish"); err != nil {
		return "", err
	}
	if cr, ok := f.inner.(ChunkReplica); ok {
		return cr.PublishEncoded(ctx, enc)
	}
	return f.inner.Publish(ctx, enc.Model)
}

// Load applies the schedule, then delegates.
func (f *FaultyReplica) Load(ctx context.Context, id string) (*graph.Model, error) {
	if err := f.fault(ctx, "load"); err != nil {
		return nil, err
	}
	return f.inner.Load(ctx, id)
}

// List applies the schedule, then delegates.
func (f *FaultyReplica) List(ctx context.Context) ([]repo.Metadata, error) {
	if err := f.fault(ctx, "list"); err != nil {
		return nil, err
	}
	return f.inner.List(ctx)
}

// Delete applies the schedule, then delegates.
func (f *FaultyReplica) Delete(ctx context.Context, id string) error {
	if err := f.fault(ctx, "delete"); err != nil {
		return err
	}
	return f.inner.Delete(ctx, id)
}

// Rebuild passes through untouched: it is the recovery path, and a
// schedule that killed it would only re-test the fault paths above.
func (f *FaultyReplica) Rebuild(ctx context.Context) error { return f.inner.Rebuild(ctx) }
