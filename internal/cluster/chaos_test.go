// Chaos tests for the shard cluster: every test drives the real
// engine-backed replicas through a seeded faults.Schedule, so each
// degradation rung — replica failover, stale last-known-good, partial
// result — is exercised deterministically and asserted byte-for-byte
// across independent runs of the same schedule.
//
// The suite doubles as the `make chaos` matrix: every test here matches
// -run TestChaos.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sommelier/internal/cluster"
	"sommelier/internal/experiments"
	"sommelier/internal/faults"
	"sommelier/internal/graph"
	"sommelier/internal/obs"
)

// chaosTopology is the small-but-honest cluster every chaos test uses:
// 3 shards × 2 replicas, a broadcast reference, 8 sharded variants.
var chaosTopology = experiments.ClusterTopology{
	Shards: 3, Replicas: 2, Seed: 7, ValidationSize: 32,
}

const (
	chaosVariants = 8
	chaosWidth    = 8
	chaosDepth    = 1
	chaosSeed     = 7
)

// chaosCluster builds a faulted cluster. The schedule is empty at build
// time — seeding publishes run fault-free — and is programmed by the
// test afterwards (Set resets each target's op counter, so windows are
// phrased in post-seeding operations).
func chaosCluster(t *testing.T, copts ...cluster.CoordinatorOption) (*cluster.Cluster, *cluster.Coordinator, *faults.Schedule, *obs.Observer, string) {
	t.Helper()
	o := obs.New()
	sched := faults.NewSchedule(chaosSeed)
	wrap := func(shard, replica int, r cluster.Replica) cluster.Replica {
		return cluster.NewFaultyReplica(r, cluster.Target(shard, replica), sched)
	}
	cl, co, err := experiments.BuildCluster(chaosTopology, wrap, o, copts...)
	if err != nil {
		t.Fatalf("BuildCluster: %v", err)
	}
	refID, _, err := experiments.SeedClusterModels(context.Background(), cl, chaosVariants, chaosWidth, chaosDepth, chaosSeed)
	if err != nil {
		t.Fatalf("SeedClusterModels: %v", err)
	}
	return cl, co, sched, o, refID
}

func chaosQuery(refID string) string {
	return fmt.Sprintf("SELECT CORR %q WITHIN 50%% PICK most_similar", refID)
}

// mustJSON marshals for byte-for-byte comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// baselineResults runs the no-fault cluster once and returns the full
// top-K, serialized.
func baselineResults(t *testing.T) []byte {
	t.Helper()
	_, co, _, _, refID := chaosCluster(t)
	resp, err := co.Query(context.Background(), chaosQuery(refID))
	if err != nil {
		t.Fatalf("baseline query: %v", err)
	}
	if resp.Class() != cluster.OutcomeFull {
		t.Fatalf("baseline response is %s (missing %v, stale %v); want full", resp.Class(), resp.Missing, resp.Stale)
	}
	if len(resp.Results) < 2 {
		t.Fatalf("baseline returned %d results; seeding produced too few correlated models", len(resp.Results))
	}
	return mustJSON(t, resp.Results)
}

// TestChaosFailoverInvisible is the headline acceptance check: killing
// 1 of the 2 replicas of ANY single shard mid-query must yield a
// byte-identical, fully-merged top-K to the no-fault run — failover is
// invisible. The full Response of the same schedule is also asserted
// byte-for-byte across two independent runs.
func TestChaosFailoverInvisible(t *testing.T) {
	baseline := baselineResults(t)

	for shard := 0; shard < chaosTopology.Shards; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("kill-shard%d-replica0", shard), func(t *testing.T) {
			run := func() ([]byte, *cluster.Response, *obs.Observer) {
				_, co, sched, o, refID := chaosCluster(t)
				sched.Set(cluster.Target(shard, 0), faults.Kill(0, 0))
				resp, err := co.Query(context.Background(), chaosQuery(refID))
				if err != nil {
					t.Fatalf("query with dead replica: %v", err)
				}
				return mustJSON(t, resp), resp, o
			}
			full1, resp, o := run()
			if resp.Class() != cluster.OutcomeFull {
				t.Fatalf("response class = %s (missing %v, stale %v); a 1-of-2 replica loss must stay invisible",
					resp.Class(), resp.Missing, resp.Stale)
			}
			if resp.Failovers == 0 {
				t.Fatal("response reports zero failovers; the kill window never fired")
			}
			if got := mustJSON(t, resp.Results); !bytes.Equal(got, baseline) {
				t.Errorf("failover changed the top-K:\n got %s\nwant %s", got, baseline)
			}
			snap := o.Snapshot()
			if snap.Counters["cluster_failovers_total"] == 0 {
				t.Error("cluster_failovers_total = 0, want > 0")
			}
			if snap.Counters["cluster_degraded_queries"] != 0 {
				t.Error("cluster_degraded_queries incremented for an invisible failover")
			}

			full2, _, _ := run()
			if !bytes.Equal(full1, full2) {
				t.Errorf("same schedule, different Response bytes:\n run1 %s\n run2 %s", full1, full2)
			}
		})
	}
}

// TestChaosShardLossDegrades is the second acceptance check: killing
// ALL replicas of a shard (with no last-known-good cached) must yield a
// degraded partial result that names the missing shard and increments
// cluster_degraded_queries — byte-for-byte reproducible across runs.
func TestChaosShardLossDegrades(t *testing.T) {
	baseline := baselineResults(t)

	for shard := 0; shard < chaosTopology.Shards; shard++ {
		shard := shard
		t.Run(fmt.Sprintf("kill-shard%d-all-replicas", shard), func(t *testing.T) {
			run := func() ([]byte, *cluster.Response, *obs.Observer) {
				_, co, sched, o, refID := chaosCluster(t)
				for r := 0; r < chaosTopology.Replicas; r++ {
					sched.Set(cluster.Target(shard, r), faults.Kill(0, 0))
				}
				resp, err := co.Query(context.Background(), chaosQuery(refID))
				if err != nil {
					t.Fatalf("query with dead shard: %v", err)
				}
				return mustJSON(t, resp), resp, o
			}
			full1, resp, o := run()
			if resp.Class() != cluster.OutcomeDegraded {
				t.Fatalf("response class = %s, want degraded", resp.Class())
			}
			if len(resp.Missing) != 1 || resp.Missing[0] != shard {
				t.Fatalf("Missing = %v, want [%d] — the partial result must name the dead shard", resp.Missing, shard)
			}
			snap := o.Snapshot()
			if got := snap.Counters["cluster_degraded_queries"]; got != 1 {
				t.Errorf("cluster_degraded_queries = %d, want 1", got)
			}
			if snap.Counters["cluster_missing_shards_total"] != 1 {
				t.Errorf("cluster_missing_shards_total = %d, want 1", snap.Counters["cluster_missing_shards_total"])
			}

			// The partial top-K must be a subset of the baseline: losing a
			// shard may only remove results, never invent or reorder them.
			var base, part []cluster.Result
			if err := json.Unmarshal(baseline, &base); err != nil {
				t.Fatal(err)
			}
			part = resp.Results
			if len(part) >= len(base) {
				// Equality is possible only if the dead shard held no
				// variant; with 8 variants on 3 shards every shard holds
				// at least one unless the ring says otherwise — verify
				// subset relation regardless.
				t.Logf("note: shard %d contributed nothing exclusive (%d vs %d results)", shard, len(part), len(base))
			}
			i := 0
			for _, b := range base {
				if i < len(part) && part[i].ID == b.ID {
					i++
				}
			}
			if i != len(part) {
				t.Errorf("degraded top-K is not an ordered subset of baseline:\n got %s\nwant subset of %s",
					mustJSON(t, part), baseline)
			}

			full2, _, _ := run()
			if !bytes.Equal(full1, full2) {
				t.Errorf("same schedule, different Response bytes:\n run1 %s\n run2 %s", full1, full2)
			}
		})
	}
}

// TestChaosStaleLastKnownGood exercises the third rung: a shard that
// dies AFTER answering once keeps serving its last-known-good answer —
// the full top-K survives, tagged stale.
func TestChaosStaleLastKnownGood(t *testing.T) {
	baseline := baselineResults(t)
	const shard = 1

	run := func() ([]byte, *cluster.Response, *obs.Observer) {
		_, co, sched, o, refID := chaosCluster(t)
		q := chaosQuery(refID)
		if _, err := co.Query(context.Background(), q); err != nil {
			t.Fatalf("warm-up query: %v", err)
		}
		for r := 0; r < chaosTopology.Replicas; r++ {
			sched.Set(cluster.Target(shard, r), faults.Kill(0, 0))
		}
		resp, err := co.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query with dead shard: %v", err)
		}
		return mustJSON(t, resp), resp, o
	}
	full1, resp, o := run()
	if resp.Class() != cluster.OutcomeDegraded {
		t.Fatalf("response class = %s, want degraded (stale rung)", resp.Class())
	}
	if len(resp.Stale) != 1 || resp.Stale[0] != shard || len(resp.Missing) != 0 {
		t.Fatalf("Stale = %v, Missing = %v; want stale [%d], nothing missing", resp.Stale, resp.Missing, shard)
	}
	if got := mustJSON(t, resp.Results); !bytes.Equal(got, baseline) {
		t.Errorf("stale-served top-K differs from baseline:\n got %s\nwant %s", got, baseline)
	}
	snap := o.Snapshot()
	if snap.Counters["cluster_stale_shards_total"] != 1 {
		t.Errorf("cluster_stale_shards_total = %d, want 1", snap.Counters["cluster_stale_shards_total"])
	}
	if snap.Counters["cluster_degraded_queries"] != 1 {
		t.Errorf("cluster_degraded_queries = %d, want 1", snap.Counters["cluster_degraded_queries"])
	}

	full2, _, _ := run()
	if !bytes.Equal(full1, full2) {
		t.Errorf("same schedule, different Response bytes:\n run1 %s\n run2 %s", full1, full2)
	}
}

// TestChaosMatrix runs the fault-schedule matrix — kill/slow/flake a
// replica mid-query, mid-upload and mid-rebalance — each seeded and
// replayed twice for determinism.
func TestChaosMatrix(t *testing.T) {
	baseline := baselineResults(t)

	t.Run("flake-mid-query", func(t *testing.T) {
		// A replica flaking at 50% must never change an answer: every
		// query either hits it healthy or fails over.
		run := func() []byte {
			_, co, sched, o, refID := chaosCluster(t)
			sched.Set(cluster.Target(0, 0), faults.Flake(0, 0, 0.5))
			var trace bytes.Buffer
			for i := 0; i < 10; i++ {
				resp, err := co.Query(context.Background(), chaosQuery(refID))
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if resp.Class() != cluster.OutcomeFull {
					t.Fatalf("query %d degraded to %s under a 1-replica flake", i, resp.Class())
				}
				if got := mustJSON(t, resp.Results); !bytes.Equal(got, baseline) {
					t.Fatalf("query %d top-K changed under flake:\n got %s\nwant %s", i, got, baseline)
				}
				trace.Write(mustJSON(t, resp))
				trace.WriteByte('\n')
			}
			if o.Snapshot().Counters["cluster_failover_error_total"] == 0 {
				t.Fatal("flake window never fired; the matrix entry tested nothing")
			}
			return trace.Bytes()
		}
		t1, t2 := run(), run()
		if !bytes.Equal(t1, t2) {
			t.Errorf("flake trace not reproducible:\n run1 %s\n run2 %s", t1, t2)
		}
	})

	t.Run("slow-replica-times-out", func(t *testing.T) {
		// A replica slower than the per-replica timeout is a failover,
		// classified as such in the counters.
		run := func() []byte {
			_, co, sched, o, refID := chaosCluster(t, cluster.WithReplicaTimeout(40*time.Millisecond))
			sched.Set(cluster.Target(1, 0), faults.Slow(0, 0, 2*time.Second))
			resp, err := co.Query(context.Background(), chaosQuery(refID))
			if err != nil {
				t.Fatalf("query with slow replica: %v", err)
			}
			if resp.Class() != cluster.OutcomeFull {
				t.Fatalf("slow replica degraded the query to %s; want failover to the fast one", resp.Class())
			}
			if got := mustJSON(t, resp.Results); !bytes.Equal(got, baseline) {
				t.Fatalf("slow-replica failover changed the top-K:\n got %s\nwant %s", got, baseline)
			}
			if o.Snapshot().Counters["cluster_failover_timeout_total"] == 0 {
				t.Fatal("cluster_failover_timeout_total = 0; the timeout was not classified as such")
			}
			return mustJSON(t, resp)
		}
		r1, r2 := run(), run()
		if !bytes.Equal(r1, r2) {
			t.Errorf("slow-replica run not reproducible:\n run1 %s\n run2 %s", r1, r2)
		}
	})

	t.Run("kill-mid-upload", func(t *testing.T) {
		// A replica dying mid-publish yields a PartialWriteError — the
		// write is durable on the surviving replica — and Repair restores
		// full replication.
		run := func() string {
			cl, co, sched, _, refID := chaosCluster(t)
			m, err := cl.Load(context.Background(), refID)
			if err != nil {
				t.Fatalf("loading base: %v", err)
			}
			v := m.Clone()
			v.Name, v.Version = "mid-upload", "1.0.0"
			owner := cl.ShardFor("mid-upload@1.0.0", "")
			sched.Set(cluster.Target(owner, 0), faults.Kill(0, 0))

			id, err := cl.Publish(context.Background(), v)
			var pw *cluster.PartialWriteError
			if !errors.As(err, &pw) {
				t.Fatalf("publish into dead replica: err = %v, want *PartialWriteError", err)
			}
			if pw.Accepted != 1 || id != "mid-upload@1.0.0" {
				t.Fatalf("partial write: accepted %d, id %q", pw.Accepted, id)
			}
			// Durable despite the fault:
			if _, err := cl.Load(context.Background(), id); err != nil {
				t.Fatalf("model lost after partial write: %v", err)
			}

			sched.Set(cluster.Target(owner, 0)) // replica resurrects
			rep, err := cl.Repair(context.Background())
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			if rep.Copies == 0 {
				t.Fatal("repair copied nothing; the divergence was not healed")
			}
			// With replicas converged again, killing the previously
			// surviving replica must be invisible.
			sched.Set(cluster.Target(owner, 1), faults.Kill(0, 0))
			resp, err := co.Query(context.Background(), chaosQuery(refID))
			if err != nil {
				t.Fatalf("post-repair query: %v", err)
			}
			if resp.Class() != cluster.OutcomeFull {
				t.Fatalf("post-repair failover degraded to %s; repair left replicas divergent", resp.Class())
			}
			return fmt.Sprintf("owner=%d copies=%d resp=%s", owner, rep.Copies, mustJSON(t, resp))
		}
		r1, r2 := run(), run()
		if r1 != r2 {
			t.Errorf("mid-upload run not reproducible:\n run1 %s\n run2 %s", r1, r2)
		}
	})

	t.Run("kill-mid-rebalance", func(t *testing.T) {
		// A new shard whose replica dies mid-move must abort the move
		// with the model retained — no loss — and a retry after recovery
		// completes the rebalance.
		run := func() string {
			cl, _, sched, o, refID := chaosCluster(t)
			ctx := context.Background()
			before, err := cl.List(ctx)
			if err != nil {
				t.Fatal(err)
			}

			newShard := chaosTopology.Shards // index of the appended shard
			var reps []cluster.Replica
			for r := 0; r < chaosTopology.Replicas; r++ {
				er, err := experiments.NewEngineReplica(chaosTopology.Seed, chaosTopology.ValidationSize, nil)
				if err != nil {
					t.Fatal(err)
				}
				reps = append(reps, cluster.NewFaultyReplica(er, cluster.Target(newShard, r), sched))
			}
			if err := cl.AddShard(reps...); err != nil {
				t.Fatal(err)
			}
			moving := 0
			for _, md := range before {
				if md.ID != refID && cl.ShardFor(md.ID, md.Series) == newShard {
					moving++
				}
			}
			if moving == 0 {
				t.Fatal("ring growth moved no variant to the new shard; enlarge chaosVariants")
			}

			// Replica 1 of the new shard is dead during the first pass:
			// copy-first publishing must fail the move and retain models.
			sched.Set(cluster.Target(newShard, 1), faults.Kill(0, 0))
			_, err = cl.Rebalance(ctx)
			if err == nil {
				t.Fatal("rebalance into a dead replica succeeded; copy-first guarantee untested")
			}
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("rebalance error %v does not wrap the injected fault", err)
			}
			mid, err := cl.List(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSONStr(t, mid) != mustJSONStr(t, before) {
				t.Fatalf("catalog changed across a failed rebalance:\n got %s\nwant %s",
					mustJSONStr(t, mid), mustJSONStr(t, before))
			}

			// Recovery: replica back, rebalance completes, catalog intact,
			// every model still loadable.
			sched.Set(cluster.Target(newShard, 1))
			rep, err := cl.Rebalance(ctx)
			if err != nil {
				t.Fatalf("rebalance after recovery: %v", err)
			}
			if rep.Moved != moving {
				t.Fatalf("rebalance moved %d models, want %d", rep.Moved, moving)
			}
			after, err := cl.List(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if mustJSONStr(t, after) != mustJSONStr(t, before) {
				t.Fatalf("catalog changed across rebalance:\n got %s\nwant %s",
					mustJSONStr(t, after), mustJSONStr(t, before))
			}
			for _, md := range after {
				if _, err := cl.Load(ctx, md.ID); err != nil {
					t.Fatalf("model %s unloadable after rebalance: %v", md.ID, err)
				}
			}
			if o.Snapshot().Counters["cluster_rebalance_moves_total"] != int64(moving) {
				t.Errorf("cluster_rebalance_moves_total = %d, want %d",
					o.Snapshot().Counters["cluster_rebalance_moves_total"], moving)
			}

			// The new shard answers queries once the reference reaches it:
			// re-broadcasting is idempotent on the old shards.
			if _, err := cl.Broadcast(ctx, mustLoad(t, cl, refID)); err != nil {
				t.Fatalf("re-broadcast of reference: %v", err)
			}
			co2, err := cluster.NewCoordinator(cl.Backends())
			if err != nil {
				t.Fatal(err)
			}
			resp, err := co2.Query(ctx, chaosQuery(refID))
			if err != nil {
				t.Fatalf("post-rebalance query: %v", err)
			}
			if resp.Class() != cluster.OutcomeFull {
				t.Fatalf("post-rebalance query degraded to %s", resp.Class())
			}
			return fmt.Sprintf("moved=%d resp=%s", rep.Moved, mustJSON(t, resp))
		}
		r1, r2 := run(), run()
		if r1 != r2 {
			t.Errorf("mid-rebalance run not reproducible:\n run1 %s\n run2 %s", r1, r2)
		}
	})
}

func mustJSONStr(t *testing.T, v any) string { return string(mustJSON(t, v)) }

func mustLoad(t *testing.T, cl *cluster.Cluster, id string) *graph.Model {
	t.Helper()
	m, err := cl.Load(context.Background(), id)
	if err != nil {
		t.Fatalf("load %s: %v", id, err)
	}
	return m
}

// TestChaosConcurrentQueryStress hammers the coordinator from many
// goroutines while one replica of every shard flakes — the -race
// workout for the scatter-gather path. Every response must be a full,
// baseline-identical top-K: with one healthy replica per shard the
// ladder never needs to go below the failover rung.
func TestChaosConcurrentQueryStress(t *testing.T) {
	baseline := baselineResults(t)
	_, co, sched, o, refID := chaosCluster(t)
	for s := 0; s < chaosTopology.Shards; s++ {
		sched.Set(cluster.Target(s, 0), faults.Flake(0, 0, 0.3))
	}

	const (
		goroutines = 8
		perG       = 10
	)
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := co.Query(context.Background(), chaosQuery(refID))
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d query %d: %w", g, i, err)
					return
				}
				if resp.Class() != cluster.OutcomeFull {
					errCh <- fmt.Errorf("goroutine %d query %d degraded to %s (missing %v, stale %v)",
						g, i, resp.Class(), resp.Missing, resp.Stale)
					return
				}
				if got := mustJSON(t, resp.Results); !bytes.Equal(got, baseline) {
					errCh <- fmt.Errorf("goroutine %d query %d top-K diverged:\n got %s\nwant %s", g, i, got, baseline)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	snap := o.Snapshot()
	if snap.Counters["cluster_queries_total"] != goroutines*perG {
		t.Errorf("cluster_queries_total = %d, want %d", snap.Counters["cluster_queries_total"], goroutines*perG)
	}
	if snap.Counters["cluster_degraded_queries"] != 0 {
		t.Errorf("cluster_degraded_queries = %d under 1-replica flakes, want 0", snap.Counters["cluster_degraded_queries"])
	}
}
