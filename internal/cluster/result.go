package cluster

import (
	"sort"

	"sommelier/internal/query"
	"sommelier/internal/resource"
)

// Result is one model in a cluster query answer — the wire form of the
// engine's query result, carrying everything the coordinator needs to
// merge and rank across shards. Field names match the engine's Result
// so the HTTP replica can decode a shard's /v1/query payload directly.
type Result struct {
	ID          string           `json:"id"`
	Level       float64          `json:"level"`
	Synthesized bool             `json:"synthesized,omitempty"`
	DonorID     string           `json:"donor_id,omitempty"`
	Segment     string           `json:"segment,omitempty"`
	Derived     bool             `json:"derived,omitempty"`
	Profile     resource.Profile `json:"profile"`
}

// Response is a scatter-gather query answer. Results are globally
// ranked and truncated to the query's limit; Missing and Stale tag the
// shards that could not contribute fresh data, so a caller always
// knows whether it is looking at the whole catalog or a partial view.
type Response struct {
	// Results is the merged, ranked top-K across contributing shards.
	Results []Result `json:"results"`
	// Shards is the cluster's shard count.
	Shards int `json:"shards"`
	// Missing lists shards (ascending) that contributed nothing: every
	// replica failed and no last-known-good answer was cached.
	Missing []int `json:"missing,omitempty"`
	// Stale lists shards (ascending) served from the coordinator's
	// last-known-good cache because every replica failed.
	Stale []int `json:"stale,omitempty"`
	// Failovers is how many replica failovers this query performed.
	Failovers int `json:"failovers,omitempty"`
}

// Outcome classes for a Response.
const (
	OutcomeFull     = "full"
	OutcomeDegraded = "degraded"
	OutcomeFailed   = "failed"
)

// Complete reports whether every shard contributed a fresh answer.
func (r *Response) Complete() bool { return len(r.Missing) == 0 && len(r.Stale) == 0 }

// Class buckets the response: "full" (all shards fresh), "failed" (no
// shard contributed at all), "degraded" (anything in between — stale
// shards or a partial result).
func (r *Response) Class() string {
	if r.Complete() {
		return OutcomeFull
	}
	if len(r.Missing) == r.Shards {
		return OutcomeFailed
	}
	return OutcomeDegraded
}

// mergeTopK concatenates per-shard results, ranks them with the same
// ordering the single-node engine uses (pick order, then ID as the
// deterministic tie-break), drops duplicate IDs — broadcast reference
// models are indexed on every shard — keeping the best-ranked
// occurrence, and applies the query's limit.
func mergeTopK(q *query.Query, perShard [][]Result) []Result {
	total := 0
	for _, rs := range perShard {
		total += len(rs)
	}
	all := make([]Result, 0, total)
	for _, rs := range perShard {
		all = append(all, rs...)
	}
	sortResults(all, q.Pick)
	seen := make(map[string]bool, len(all))
	out := all[:0]
	for _, r := range all {
		if seen[r.ID] {
			continue
		}
		seen[r.ID] = true
		out = append(out, r)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// sortResults mirrors the engine's ranking so a merged cluster answer
// orders exactly like a single node would order the same set.
func sortResults(rs []Result, pick query.PickKind) {
	less := func(i, j int) bool { return rs[i].Level > rs[j].Level }
	switch pick {
	case query.PickSmallest:
		less = func(i, j int) bool { return rs[i].Profile.MemoryBytes < rs[j].Profile.MemoryBytes }
	case query.PickFastest:
		less = func(i, j int) bool { return rs[i].Profile.LatencyMS < rs[j].Profile.LatencyMS }
	case query.PickCheapest:
		less = func(i, j int) bool { return rs[i].Profile.FLOPs < rs[j].Profile.FLOPs }
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if less(i, j) {
			return true
		}
		if less(j, i) {
			return false
		}
		return rs[i].ID < rs[j].ID
	})
}
