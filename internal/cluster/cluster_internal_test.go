package cluster

import (
	"errors"
	"fmt"
	"testing"

	"sommelier/internal/query"
	"sommelier/internal/resource"
)

// TestRingDeterministicAndBalanced: placement must be a pure function
// of (key, topology), and the virtual nodes must keep partitions within
// sane bounds.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("id:model-%d@1.0", i)
		sa, sb := a.ShardFor(k), b.ShardFor(k)
		if sa != sb {
			t.Fatalf("ShardFor(%q) differs across identical rings: %d vs %d", k, sa, sb)
		}
		counts[sa]++
	}
	for s, n := range counts {
		// Perfect balance is keys/4; consistent hashing with 64 vnodes
		// should stay within a generous 2x band.
		if n < keys/8 || n > keys/2 {
			t.Errorf("shard %d owns %d of %d keys; ring is badly unbalanced: %v", s, n, keys, counts)
		}
	}
}

// TestRingGrowthMovesFewKeys is the property that makes consistent
// hashing worth its salt: adding one shard to N must re-home roughly
// 1/(N+1) of the keys, not half of them (as mod-hashing would).
func TestRingGrowthMovesFewKeys(t *testing.T) {
	before, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	moved := 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("id:model-%d@1.0", i)
		if before.ShardFor(k) != after.ShardFor(k) {
			moved++
		}
	}
	// Expect ~20%; fail above 35%.
	if moved > keys*35/100 {
		t.Errorf("adding a 5th shard moved %d/%d keys; want ~1/5", moved, keys)
	}
	if moved == 0 {
		t.Error("adding a shard moved nothing; the new shard owns no keys")
	}
}

// TestPlacementKeyGroupsSeries: models of one series co-locate; bare
// IDs spread.
func TestPlacementKeyGroupsSeries(t *testing.T) {
	r, err := NewRing(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	s0 := r.ShardFor(PlacementKey("resnet@1.0", "resnet"))
	s1 := r.ShardFor(PlacementKey("resnet@2.0", "resnet"))
	if s0 != s1 {
		t.Errorf("same-series models landed on shards %d and %d; series must co-locate", s0, s1)
	}
	if PlacementKey("x@1", "") == PlacementKey("x@1", "x@1") {
		t.Error("series and ID keys collide; placement namespaces must be distinct")
	}
}

func res(id string, level float64, mem int64) Result {
	return Result{ID: id, Level: level, Profile: resource.Profile{MemoryBytes: mem}}
}

// TestMergeTopK: global ranking across shards, broadcast dedup keeping
// the best occurrence, and the limit applied after both.
func TestMergeTopK(t *testing.T) {
	q := &query.Query{Pick: query.PickMostSimilar, Limit: 3}
	merged := mergeTopK(q, [][]Result{
		{res("ref@1", 5, 10), res("a@1", 3, 10)},
		{res("ref@1", 5, 10), res("b@1", 4, 10)}, // broadcast duplicate
		{res("c@1", 2, 10)},
	})
	want := []string{"ref@1", "b@1", "a@1"}
	if len(merged) != len(want) {
		t.Fatalf("merged %d results %v, want %v", len(merged), merged, want)
	}
	for i, id := range want {
		if merged[i].ID != id {
			t.Errorf("merged[%d] = %s, want %s (full order %v)", i, merged[i].ID, id, merged)
		}
	}

	// Equal levels must tie-break by ID so shard arrival order is
	// invisible.
	q = &query.Query{Pick: query.PickMostSimilar}
	ab := mergeTopK(q, [][]Result{{res("b@1", 3, 1)}, {res("a@1", 3, 2)}})
	ba := mergeTopK(q, [][]Result{{res("a@1", 3, 2)}, {res("b@1", 3, 1)}})
	if ab[0].ID != "a@1" || ba[0].ID != "a@1" {
		t.Errorf("tie-break order depends on shard arrival: %v vs %v", ab, ba)
	}

	// PICK smallest ranks by the profile, as the engine would.
	q = &query.Query{Pick: query.PickSmallest}
	small := mergeTopK(q, [][]Result{{res("big@1", 5, 100)}, {res("small@1", 1, 10)}})
	if small[0].ID != "small@1" {
		t.Errorf("PICK smallest returned %s first", small[0].ID)
	}
}

// TestHealthOrderPrefersHealthy: replicas with failure streaks sink;
// recovery restores index order.
func TestHealthOrderPrefersHealthy(t *testing.T) {
	h := newHealthTracker([][]QueryBackend{{nil, nil, nil}})
	if got := h.order(0); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("initial order = %v, want [0 1 2]", got)
	}
	h.fail(0, 0)
	h.fail(0, 0)
	h.fail(0, 1)
	if got := h.order(0); got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("order after failures = %v, want [2 1 0]", got)
	}
	h.ok(0, 0) // replica 0 recovered: streak resets
	if got := h.order(0); got[0] != 0 || got[1] != 2 {
		t.Fatalf("order after recovery = %v, want 0 first (streak reset), then 2", got)
	}
	snap := h.Snapshot()
	if snap[0][0].Failures != 2 || snap[0][0].Successes != 1 || snap[0][0].Consecutive != 0 {
		t.Errorf("replica 0 health = %+v", snap[0][0])
	}
}

// TestResponseClass pins the outcome bucketing the metrics and the
// bench report key off.
func TestResponseClass(t *testing.T) {
	cases := []struct {
		resp Response
		want string
	}{
		{Response{Shards: 3}, OutcomeFull},
		{Response{Shards: 3, Stale: []int{1}}, OutcomeDegraded},
		{Response{Shards: 3, Missing: []int{0}}, OutcomeDegraded},
		{Response{Shards: 3, Missing: []int{0, 2}, Stale: []int{1}}, OutcomeDegraded},
		{Response{Shards: 3, Missing: []int{0, 1, 2}}, OutcomeFailed},
	}
	for _, c := range cases {
		if got := c.resp.Class(); got != c.want {
			t.Errorf("Class(missing=%v stale=%v) = %s, want %s", c.resp.Missing, c.resp.Stale, got, c.want)
		}
	}
}

// TestPartialWriteErrorStable: the aggregate error must render replicas
// in sorted order (map iteration must not leak) and expose itself via
// errors.As.
func TestPartialWriteErrorStable(t *testing.T) {
	pw := &PartialWriteError{
		ID:       "m@1",
		Accepted: 1,
		Errs: map[string]error{
			"shard0/replica2": errors.New("z"),
			"shard0/replica1": errors.New("y"),
		},
	}
	var err error = fmt.Errorf("publish: %w", pw)
	var got *PartialWriteError
	if !errors.As(err, &got) || got.Accepted != 1 {
		t.Fatalf("errors.As failed on %v", err)
	}
	first := pw.Error()
	for i := 0; i < 20; i++ {
		if pw.Error() != first {
			t.Fatalf("PartialWriteError message unstable: %q vs %q", first, pw.Error())
		}
	}
	wantOrder := "shard0/replica1: y; shard0/replica2: z"
	if first != fmt.Sprintf("cluster: publish m@1: 1 replica(s) accepted, 2 failed: %s", wantOrder) {
		t.Errorf("message = %q, want sorted replicas %q", first, wantOrder)
	}
}
