package cluster

import (
	"sort"
	"sync"
)

// ReplicaHealth is one replica's health record.
type ReplicaHealth struct {
	Shard, Replica int
	// Consecutive is the current run of consecutive failures; 0 means
	// the replica answered its most recent request.
	Consecutive int64
	Successes   int64
	Failures    int64
}

// healthTracker records per-replica outcomes and orders replicas for
// failover: replicas with no current failure streak first, then by
// ascending failure streak, index as the deterministic tie-break. The
// ordering is a preference, not a gate — a fully dark shard still gets
// every replica tried before the coordinator degrades.
type healthTracker struct {
	mu    sync.Mutex
	state [][]ReplicaHealth // guarded by mu
}

func newHealthTracker(shards [][]QueryBackend) *healthTracker {
	st := make([][]ReplicaHealth, len(shards))
	for i, reps := range shards {
		st[i] = make([]ReplicaHealth, len(reps))
		for j := range reps {
			st[i][j] = ReplicaHealth{Shard: i, Replica: j}
		}
	}
	return &healthTracker{state: st}
}

// ok records a success.
func (h *healthTracker) ok(shard, replica int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &h.state[shard][replica]
	r.Consecutive = 0
	r.Successes++
}

// fail records a failure.
func (h *healthTracker) fail(shard, replica int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &h.state[shard][replica]
	r.Consecutive++
	r.Failures++
}

// order returns the shard's replica indices in failover-preference
// order.
func (h *healthTracker) order(shard int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	reps := h.state[shard]
	out := make([]int, len(reps))
	for i := range out {
		out[i] = i
	}
	sort.SliceStable(out, func(a, b int) bool {
		ca, cb := reps[out[a]].Consecutive, reps[out[b]].Consecutive
		if ca != cb {
			return ca < cb
		}
		return out[a] < out[b]
	})
	return out
}

// Snapshot returns every replica's health, shards outermost.
func (h *healthTracker) Snapshot() [][]ReplicaHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([][]ReplicaHealth, len(h.state))
	for i, reps := range h.state {
		out[i] = append([]ReplicaHealth(nil), reps...)
	}
	return out
}
