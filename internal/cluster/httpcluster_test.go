package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"sommelier"
	"sommelier/internal/cluster"
	"sommelier/internal/hub"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// hubReplica is one remote shard replica: a live hub server (engine
// indexer + querier, shard-aware healthz) fronted by a resilient hub
// client.
type hubReplica struct {
	ts *httptest.Server
	r  *cluster.HTTPReplica
}

func newHubReplica(t *testing.T, shard, shards int) *hubReplica {
	t.Helper()
	store := repo.NewInMemory()
	eng, err := sommelier.NewEngine(store,
		sommelier.WithSeed(11),
		sommelier.WithValidationSize(32))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := hub.NewServer(store,
		hub.WithIndexer(eng),
		hub.WithQuerier(func(ctx context.Context, q string) (any, error) {
			return eng.QueryContext(ctx, q)
		}),
		hub.WithShardInfo(shard, shards))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := hub.NewClient(ts.URL, ts.Client(),
		hub.WithTimeout(5*time.Second),
		hub.WithRetries(1),
		hub.WithBackoff(time.Millisecond, 2*time.Millisecond),
		hub.WithBreaker(3, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	return &hubReplica{ts: ts, r: cluster.NewHTTPReplica(client)}
}

// TestHTTPClusterFailover drives the whole remote stack — cluster
// writes, scatter-gather reads, replica failover and the stale rung —
// over real hub servers and clients.
func TestHTTPClusterFailover(t *testing.T) {
	const (
		shards   = 2
		replicas = 2
	)
	hubs := make([][]*hubReplica, shards)
	topo := make([][]cluster.Replica, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			hr := newHubReplica(t, s, shards)
			hubs[s] = append(hubs[s], hr)
			topo[s] = append(topo[s], hr.r)
		}
	}
	cl, err := cluster.NewCluster(topo)
	if err != nil {
		t.Fatal(err)
	}
	co, err := cluster.NewCoordinator(cluster.Backends(topo), cluster.WithReplicaTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	base, err := zoo.DenseResidualNet(zoo.Config{Name: "http-base", Seed: 11, Width: 8, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	refID, err := cl.Broadcast(ctx, base)
	if err != nil {
		t.Fatalf("broadcast over HTTP: %v", err)
	}
	for i := 0; i < 4; i++ {
		v := zoo.Perturb(base, fmt.Sprintf("http-v%d", i), 0.01*float64(i+1), uint64(i+20))
		if _, err := cl.Publish(ctx, v); err != nil {
			t.Fatalf("publish variant %d over HTTP: %v", i, err)
		}
	}

	q := fmt.Sprintf("SELECT CORR %q WITHIN 50%% PICK most_similar", refID)
	resp, err := co.Query(ctx, q)
	if err != nil {
		t.Fatalf("healthy query: %v", err)
	}
	if resp.Class() != cluster.OutcomeFull || len(resp.Results) < 2 {
		t.Fatalf("healthy response: class %s, %d results", resp.Class(), len(resp.Results))
	}
	baseline := mustJSON(t, resp.Results)

	// Replica loss: close shard 0 / replica 0's server. The coordinator
	// must fail over to replica 1 and the answer must not change.
	hubs[0][0].ts.Close()
	resp, err = co.Query(ctx, q)
	if err != nil {
		t.Fatalf("query after replica loss: %v", err)
	}
	if resp.Class() != cluster.OutcomeFull {
		t.Fatalf("replica loss degraded to %s (missing %v, stale %v)", resp.Class(), resp.Missing, resp.Stale)
	}
	if resp.Failovers == 0 {
		t.Error("no failover recorded despite a dead server")
	}
	if got := mustJSON(t, resp.Results); !bytes.Equal(got, baseline) {
		t.Errorf("failover changed the top-K:\n got %s\nwant %s", got, baseline)
	}

	// Shard loss: close the remaining replica. The shard's last answer
	// keeps serving, tagged stale.
	hubs[0][1].ts.Close()
	resp, err = co.Query(ctx, q)
	if err != nil {
		t.Fatalf("query after shard loss: %v", err)
	}
	if resp.Class() != cluster.OutcomeDegraded || len(resp.Stale) != 1 || resp.Stale[0] != 0 {
		t.Fatalf("shard loss: class %s, stale %v, missing %v; want stale [0]", resp.Class(), resp.Stale, resp.Missing)
	}
	if got := mustJSON(t, resp.Results); !bytes.Equal(got, baseline) {
		t.Errorf("stale-served top-K differs:\n got %s\nwant %s", got, baseline)
	}

	// A query never seen before cannot be served stale: the shard goes
	// missing and the result says so.
	resp, err = co.Query(ctx, fmt.Sprintf("SELECT CORR %q WITHIN 60%% PICK smallest", refID))
	if err != nil {
		t.Fatalf("novel query after shard loss: %v", err)
	}
	if resp.Class() != cluster.OutcomeDegraded || len(resp.Missing) != 1 || resp.Missing[0] != 0 {
		t.Fatalf("novel query: class %s, missing %v, stale %v; want missing [0]", resp.Class(), resp.Missing, resp.Stale)
	}
}
