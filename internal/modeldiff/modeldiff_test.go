package modeldiff

import (
	"testing"

	"sommelier/internal/stats"
	"sommelier/internal/zoo"
)

func TestDDVShapeAndDeterminism(t *testing.T) {
	m, err := zoo.DenseResidualNet(zoo.Config{Name: "d", Seed: 1, Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Pairs: 32, Seed: 5}
	a, err := DDV(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 32 {
		t.Fatalf("DDV length %d", len(a))
	}
	b, err := DDV(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DDV not deterministic for fixed seed")
		}
	}
	for _, v := range a {
		if v < 0 {
			t.Fatal("negative decision distance")
		}
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	m, err := zoo.DenseResidualNet(zoo.Config{Name: "s", Seed: 2, Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Similarity(m, m.Clone(), Config{Pairs: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9999 {
		t.Fatalf("self similarity = %g", s)
	}
}

func TestSimilarityOrdersByPerturbation(t *testing.T) {
	m, err := zoo.DenseResidualNet(zoo.Config{Name: "o", Seed: 4, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	near := zoo.Perturb(m, "near", 0.02, 5)
	far := zoo.Perturb(m, "far", 0.8, 6)
	cfg := Config{Pairs: 64, Seed: 7}
	sNear, err := Similarity(m, near, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sFar, err := Similarity(m, far, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sNear <= sFar {
		t.Fatalf("similarity not ordered: near=%g far=%g", sNear, sFar)
	}
}

func TestSimilarityShapeMismatch(t *testing.T) {
	a, err := zoo.DenseResidualNet(zoo.Config{Name: "a", Seed: 8, InDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := zoo.DenseResidualNet(zoo.Config{Name: "b", Seed: 9, InDim: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Similarity(a, b, Config{}); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSimilarityVariesAcrossDatasets(t *testing.T) {
	// The headline weakness: testing-based scores depend on the probe
	// dataset. Across draws the score must vary measurably for a
	// moderately fine-tuned variant.
	m, err := zoo.DenseResidualNet(zoo.Config{Name: "v", Seed: 10, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	variant := zoo.Perturb(m, "tuned", 0.3, 11)
	scores, err := SimilarityAcrossDatasets(m, variant, Config{Pairs: 24}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 20 {
		t.Fatalf("draws = %d", len(scores))
	}
	s := stats.Summarize(scores)
	if s.MaxV-s.MinV <= 0.01 {
		t.Fatalf("dataset dependence too small: spread %g", s.MaxV-s.MinV)
	}
	if s.Mean <= 0 || s.Mean > 1 {
		t.Fatalf("mean similarity = %g", s.Mean)
	}
}
