// Package modeldiff implements the ModelDiff baseline (Li et al., ISSTA
// 2021) the paper compares against in Figure 11: a testing-based,
// intensional DNN similarity metric built on decision distance vectors
// (DDVs). For a set of probe pairs (a seed input and a perturbed
// sibling), each model's DDV records how far apart the model's outputs
// on the pair are; two models are similar when their DDVs point the same
// way (cosine similarity).
//
// The defining weakness the paper highlights — and Figure 11 measures —
// is that the score depends on which probe dataset is used: there is no
// generalization bound, so scores can swing ~30% across dataset draws.
package modeldiff

import (
	"fmt"

	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

// Config controls DDV construction.
type Config struct {
	// Pairs is how many (seed, perturbed) probe pairs form the DDV.
	Pairs int
	// PerturbScale is the relative magnitude of the pair perturbation
	// (ModelDiff uses adversarial steps; Gaussian steps of comparable
	// norm exercise the same decision-boundary sensitivity).
	PerturbScale float64
	// Seed selects the probe dataset; different seeds emulate the
	// different dataset draws of Figure 11's error bars.
	Seed uint64
}

func (c Config) defaults() Config {
	if c.Pairs <= 0 {
		c.Pairs = 64
	}
	if c.PerturbScale <= 0 {
		c.PerturbScale = 0.3
	}
	return c
}

// DDV computes a model's decision distance vector over cfg.Pairs probe
// pairs generated from the model's input shape.
func DDV(m *graph.Model, cfg Config) ([]float64, error) {
	cfg = cfg.defaults()
	exec, err := nn.NewExecutor(m)
	if err != nil {
		return nil, fmt.Errorf("modeldiff: %w", err)
	}
	rng := tensor.NewRNG(cfg.Seed + 0xdd0)
	out := make([]float64, cfg.Pairs)
	for i := range out {
		x := tensor.New(m.InputShape...)
		rng.FillNormal(x, 0, 1)
		delta := tensor.New(m.InputShape...)
		rng.FillNormal(delta, 0, cfg.PerturbScale)
		x2 := x.Add(delta)
		ya, err := exec.Forward(x)
		if err != nil {
			return nil, err
		}
		yb, err := exec.Forward(x2)
		if err != nil {
			return nil, err
		}
		out[i] = tensor.L2Distance(ya, yb)
	}
	return out, nil
}

// Similarity returns the ModelDiff similarity between two models: the
// cosine similarity of their DDVs over the same probe pairs. Both models
// must share an input shape.
func Similarity(a, b *graph.Model, cfg Config) (float64, error) {
	if !a.InputShape.Equal(b.InputShape) {
		return 0, fmt.Errorf("modeldiff: input shapes %v vs %v", a.InputShape, b.InputShape)
	}
	va, err := DDV(a, cfg)
	if err != nil {
		return 0, err
	}
	vb, err := DDV(b, cfg)
	if err != nil {
		return 0, err
	}
	return tensor.CosineSimilarity(
		tensor.FromSlice(va, len(va)),
		tensor.FromSlice(vb, len(vb)),
	), nil
}

// SimilarityAcrossDatasets runs Similarity over `draws` different probe
// datasets and returns all scores — the spread is Figure 11's error bar.
func SimilarityAcrossDatasets(a, b *graph.Model, cfg Config, draws int) ([]float64, error) {
	if draws <= 0 {
		draws = 20
	}
	out := make([]float64, draws)
	for i := range out {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*7919
		s, err := Similarity(a, b, c)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}
