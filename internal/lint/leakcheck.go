package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LeakCheck follows operating-system resources through the control-flow
// graph and demands that every path out of the acquiring function
// disposes of them:
//
//   - a *os.File from os.Open/Create/CreateTemp/OpenFile, a net.Conn or
//     net.Listener from net.Dial*/Listen*, and an *http.Response from
//     http.Get or (*http.Client).Do must be Closed (Body.Close for
//     responses) on every path, returned to the caller, or handed to
//     another function (ownership transfer);
//   - assigning the resource to `_` discards it open;
//   - a `go func` in a library (non-main) package must be ctx-bounded
//     or joined: its body must consume a context, signal a
//     sync.WaitGroup, or send on a channel of the spawning function —
//     otherwise nothing bounds its lifetime.
//
// The error-return idiom is followed precisely: after
// `f, err := os.Open(p)`, the fact only lives on branches where err is
// nil, so `if err != nil { return err }` never counts as a leak.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "OS resources must be closed on every path; library goroutines must be ctx-bounded or joined",
	Run:  runLeakCheck,
}

// leakFact tracks one open resource bound to a variable.
type leakFact struct {
	obj    types.Object // the variable holding the resource
	errObj types.Object // the paired error result, if any
	what   string       // acquiring call, for diagnostics ("os.CreateTemp")
	pos    token.Pos    // acquisition site
	// maybeNil: the paired error has not been tested yet, so the
	// resource may be nil on this path. Refined away by err-nil edges.
	maybeNil bool
}

// leakState is the set of live (unclosed) resources on a path, keyed
// by variable object.
type leakState map[types.Object]*leakFact

func (s leakState) clone() leakState {
	out := make(leakState, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// resourceCall classifies a call that acquires a closable resource.
func resourceCall(info *types.Info, call *ast.CallExpr) (what string, isResponse bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", false, false
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil {
		switch path {
		case "os":
			switch name {
			case "Open", "Create", "CreateTemp", "OpenFile":
				return "os." + name, false, true
			}
		case "net":
			switch name {
			case "Dial", "DialTimeout", "Listen", "ListenPacket", "DialTCP", "DialUDP", "DialUnix", "ListenTCP", "ListenUDP", "ListenUnix":
				return "net." + name, false, true
			}
		case "net/http":
			switch name {
			case "Get", "Post", "PostForm", "Head":
				return "http." + name, true, true
			}
		}
		return "", false, false
	}
	if sig == nil || sig.Recv() == nil {
		return "", false, false
	}
	if path != "net/http" {
		return "", false, false
	}
	rt, isNamed := deref(sig.Recv().Type()).(*types.Named)
	if !isNamed || rt.Obj().Name() != "Client" {
		return "", false, false
	}
	switch name {
	case "Do", "Get", "Post", "PostForm", "Head":
		return "http.Client." + name, true, true
	}
	return "", false, false
}

func runLeakCheck(pass *Pass) {
	isMain := pass.Pkg.Types != nil && pass.Pkg.Types.Name() == "main"
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			leakCheckFunc(pass, fd.Body, funcScopeName(fd))
			checkDiscards(pass, fd.Body)
			if !isMain {
				checkGoroutines(pass, fd.Body, funcScopeName(fd))
			}
		}
		for _, fl := range funcLits(f) {
			leakCheckFunc(pass, fl.lit.Body, fl.name)
			checkDiscards(pass, fl.lit.Body)
		}
	}
}

// leakCheckFunc runs the resource-leak dataflow over one body.
func leakCheckFunc(pass *Pass, body *ast.BlockStmt, name string) {
	info := pass.Pkg.Info
	g := buildCFG(body, info)

	lat := flowLattice[leakState]{
		Clone: func(s leakState) leakState { return s.clone() },
		Merge: func(a, b leakState) leakState {
			for k, v := range b {
				if av, ok := a[k]; ok {
					av.maybeNil = av.maybeNil || v.maybeNil
				} else {
					a[k] = v
				}
			}
			return a
		},
		Equal: func(a, b leakState) bool {
			if len(a) != len(b) {
				return false
			}
			for k, av := range a {
				bv, ok := b[k]
				if !ok || av.maybeNil != bv.maybeNil {
					return false
				}
			}
			return true
		},
		Transfer: func(s leakState, n ast.Node) leakState {
			return leakTransfer(pass, info, s, n)
		},
		Edge: leakEdge(info),
	}

	entries := runFlow(g, leakState{}, lat)

	// One report per acquisition site, at the site, naming the first
	// leaking exit.
	reported := make(map[token.Pos]bool)
	report := func(s leakState, exitPos token.Pos, how string) {
		facts := make([]*leakFact, 0, len(s))
		for _, f := range s {
			facts = append(facts, f)
		}
		sort.Slice(facts, func(i, j int) bool { return facts[i].pos < facts[j].pos })
		for _, f := range facts {
			if f.maybeNil || reported[f.pos] {
				continue
			}
			reported[f.pos] = true
			pass.Reportf(f.pos,
				"%s: the %s result is not closed on the %s path at line %d; close it on every path or defer the Close",
				name, f.what, how, pass.Pkg.Fset.Position(exitPos).Line)
		}
	}

	replayFlow(g, entries, lat, func(n ast.Node, s leakState) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			// Ownership transfer: results returning the resource keep
			// it alive for the caller.
			live := s.clone()
			for _, res := range ret.Results {
				killUses(info, live, res)
			}
			report(live, ret.Pos(), "return")
			return
		}
		if isPanicCall(n, info) {
			report(s, n.Pos(), "panic")
		}
	})
	if s, ok := entries[g.exit]; ok {
		report(s, body.Rbrace, "fall-through")
	}
}

// checkDiscards reports acquisitions whose result is dropped where it
// stands — a bare expression statement or a `_` target — so nothing
// can ever close the resource. Syntactic, so it runs once per body
// (function literals are scanned by their own pass).
func checkDiscards(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if what, _, ok := resourceCall(info, call); ok {
					pass.Reportf(call.Pos(),
						"result of %s is discarded; the resource it opens can never be closed", what)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) == 0 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			what, _, isRes := resourceCall(info, call)
			if !isRes {
				return true
			}
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(call.Pos(),
					"result of %s is assigned to _; the resource it opens can never be closed", what)
			}
		}
		return true
	})
}

// leakTransfer applies one node's effect to the live-resource set.
func leakTransfer(pass *Pass, info *types.Info, s leakState, n ast.Node) leakState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Closes first, then borrow-aware escape kills on the RHS, then
		// reassignment kills, then the new fact.
		calls(n, func(call *ast.CallExpr) { applyClose(info, s, call) })
		for _, rhs := range n.Rhs {
			killTransfers(info, s, rhs)
		}
		for _, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					delete(s, obj)
				}
			}
		}
		// Generate a fact for `v, err := acquire(...)`.
		if len(n.Rhs) == 1 {
			if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
				bindResource(info, s, n.Lhs, call)
			}
		}
		return s

	case *ast.DeferStmt:
		// A deferred Close covers every exit reached from here on.
		applyClose(info, s, n.Call)
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			calls(lit.Body, func(call *ast.CallExpr) { applyClose(info, s, call) })
		}
		return s

	default:
		applyNode(info, s, n)
		return s
	}
}

// applyNode processes closes first, then treats any remaining use of a
// tracked variable as an ownership transfer (killing the fact) — except
// borrowing method calls on the resource itself.
func applyNode(info *types.Info, s leakState, n ast.Node) {
	calls(n, func(call *ast.CallExpr) { applyClose(info, s, call) })
	killTransfers(info, s, n)
}

// bindResource creates the fact for an acquisition's assignment.
func bindResource(info *types.Info, s leakState, lhs []ast.Expr, call *ast.CallExpr) {
	what, _, ok := resourceCall(info, call)
	if !ok || len(lhs) == 0 {
		return
	}
	var errObj types.Object
	if len(lhs) == 2 {
		if id, ok := lhs[1].(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(info, id); obj != nil && isErrorType(obj.Type()) {
				errObj = obj
			}
		}
	}
	id, ok := lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		// Field/index targets escape immediately; `_` targets are
		// reported by the discard prepass.
		return
	}
	obj := objOf(info, id)
	if obj == nil {
		return
	}
	s[obj] = &leakFact{
		obj: obj, errObj: errObj, what: what, pos: call.Pos(),
		maybeNil: errObj != nil,
	}
}

// applyClose kills the fact for `v.Close()` and `resp.Body.Close()`.
func applyClose(info *types.Info, s leakState, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return
	}
	target := sel.X
	// resp.Body.Close(): unwrap the Body selector to reach resp.
	if inner, ok := target.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
		target = inner.X
	}
	id, ok := target.(*ast.Ident)
	if !ok {
		return
	}
	if obj := objOf(info, id); obj != nil {
		delete(s, obj)
	}
}

// killTransfers kills facts whose variable escapes through n: passed as
// a call argument, captured by a closure, sent on a channel, stored in
// a composite — any use that is not a method call on the resource
// itself (a borrow) or a plain nil comparison.
func killTransfers(info *types.Info, s leakState, n ast.Node) {
	if len(s) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SelectorExpr:
			// A method call or field read on the resource is a borrow;
			// do not descend into the base identifier.
			if id, ok := m.X.(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					if _, tracked := s[obj]; tracked {
						return false
					}
				}
			}
		case *ast.BinaryExpr:
			// Comparisons (v == nil) are not transfers.
			if isNilComparison(m) {
				return false
			}
		case *ast.Ident:
			if obj := objOf(info, m); obj != nil {
				delete(s, obj)
			}
		}
		return true
	})
}

// killUses removes facts for every tracked identifier appearing in e.
func killUses(info *types.Info, s leakState, e ast.Expr) {
	if e == nil || len(s) == 0 {
		return
	}
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				delete(s, obj)
			}
		}
		return true
	})
}

func isNilComparison(b *ast.BinaryExpr) bool {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(b.X) || isNil(b.Y)
}

// leakEdge refines facts along err-test branches: on the branch where
// the paired error is non-nil the resource is nil (drop the fact), and
// on the nil branch the resource is definitely live.
func leakEdge(info *types.Info) func(leakState, cfgEdge) (leakState, bool) {
	return func(s leakState, e cfgEdge) (leakState, bool) {
		if e.cond == nil {
			return s, true
		}
		bin, ok := e.cond.(*ast.BinaryExpr)
		if !ok || !isNilComparison(bin) {
			return s, true
		}
		operand := bin.X
		if id, isId := operand.(*ast.Ident); isId && id.Name == "nil" {
			operand = bin.Y
		}
		id, ok := operand.(*ast.Ident)
		if !ok {
			return s, true
		}
		obj := objOf(info, id)
		if obj == nil {
			return s, true
		}
		// errIsNil: what this edge proves about the compared value.
		errIsNil := (bin.Op == token.EQL) == e.truth
		for k, f := range s {
			if f.errObj != obj {
				continue
			}
			if errIsNil {
				f.maybeNil = false
			} else {
				delete(s, k)
			}
		}
		return s, true
	}
}

// checkGoroutines enforces the bounded-goroutine rule on every `go`
// statement in a library function.
func checkGoroutines(pass *Pass, body *ast.BlockStmt, name string) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true // `go m.run()`: the callee's own body is analyzed on its own
		}
		if goroutineBounded(info, gs, lit) {
			return true
		}
		pass.Reportf(gs.Pos(),
			"%s starts a goroutine that is neither ctx-bounded nor joined; have it consume a context, signal a WaitGroup, or send on a channel the spawner receives from",
			name)
		return true
	})
}

// goroutineBounded reports whether the goroutine's lifetime is visibly
// bounded: it consumes a context.Context, signals a sync.WaitGroup, or
// sends on a channel (the join-channel idiom). Arguments passed into
// the literal count — `go func(ctx context.Context) {...}(ctx)` is
// bounded even before the body reads it.
func goroutineBounded(info *types.Info, gs *ast.GoStmt, lit *ast.FuncLit) bool {
	bounded := false
	see := func(t types.Type) {
		switch {
		case isContextType(t), isWaitGroupType(t):
			bounded = true
		}
	}
	for _, arg := range gs.Call.Args {
		if tv, ok := info.Types[arg]; ok {
			see(tv.Type)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := objOf(info, n); obj != nil {
				see(obj.Type())
			}
		case *ast.SendStmt:
			bounded = true // join-channel idiom: the spawner receives the send
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "sync", "context":
						bounded = true
					}
				}
			}
		}
		return !bounded
	})
	return bounded
}

func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isWaitGroupType(t types.Type) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
