package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockFlow is the flow-sensitive companion to LockCheck: where
// lockcheck ties annotated fields to their mutex, lockflow follows each
// acquisition through the control-flow graph and enforces two rules on
// every function (and function literal) in the module:
//
//  1. Pairing: a sync.Mutex/RWMutex acquired in a function must be
//     released on every path out of it — explicit Unlock/RUnlock before
//     each return, a deferred release, or a release inside a deferred
//     closure. Paths that end in panic count: a panic with the lock
//     held and no pending deferred release wedges every other
//     goroutine.
//  2. No I/O under the lock: while a mutex is held, no file, network,
//     or encoding call may execute — the exact shape of the PR-6 bug
//     (Repository.Publish holding mu across graph encoding and disk
//     writes). Functions whose name ends in "Locked" run under their
//     caller's lock by repo convention and are checked for blocking
//     calls throughout.
//
// The analysis is a forward may-analysis over the CFG: at joins the
// held sets union, deferred releases are path-dependent facts, and
// release-then-return paths (the `if hit { mu.Unlock(); return }`
// idiom all over catalog and cas) are followed precisely.
var LockFlow = &Analyzer{
	Name: "lockflow",
	Doc:  "mutexes must be released on every exit path and never held across file/network/encoding calls",
	Run:  runLockFlow,
}

// heldMutex is one acquisition (or pending deferred release) fact.
type heldMutex struct {
	key  string    // identity: root object position + selector path
	name string    // display name ("c.mu")
	read bool      // RLock rather than Lock
	pos  token.Pos // acquisition site; NoPos for deferred releases
	// synthetic marks the virtual lock a *Locked function runs under;
	// it participates in the I/O rule but not the pairing rule.
	synthetic bool
}

// lockFlowState is the dataflow fact set: which mutexes may be held,
// and which deferred releases are pending on this path.
type lockFlowState struct {
	held   []heldMutex
	defers []heldMutex
}

func (s lockFlowState) clone() lockFlowState {
	return lockFlowState{
		held:   append([]heldMutex(nil), s.held...),
		defers: append([]heldMutex(nil), s.defers...),
	}
}

func mergeMutexes(a, b []heldMutex) []heldMutex {
	out := append([]heldMutex(nil), a...)
	for _, m := range b {
		found := false
		for _, o := range out {
			if o.key == m.key && o.read == m.read {
				found = true
				break
			}
		}
		if !found {
			out = append(out, m)
		}
	}
	return out
}

func mutexSetEqual(a, b []heldMutex) bool {
	if len(a) != len(b) {
		return false
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = fmt.Sprintf("%s/%v", a[i].key, a[i].read)
		kb[i] = fmt.Sprintf("%s/%v", b[i].key, b[i].read)
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// mutexOp classifies a call as a sync.Mutex/RWMutex method.
func mutexOp(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return nil, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// lockKeyOf builds a path-identity for the mutex expression: the root
// object's declaration position plus the printed selector path, so
// `c.mu` in one function and `c.mu` in another resolve consistently
// while two different locals named alike do not collide.
func lockKeyOf(info *types.Info, recv ast.Expr) (key, name string, ok bool) {
	root := rootIdent(recv)
	if root == nil {
		return "", "", false
	}
	obj := objOf(info, root)
	if obj == nil {
		return "", "", false
	}
	name = types.ExprString(recv)
	return fmt.Sprintf("%d:%s", obj.Pos(), name), name, true
}

// pureOSFuncs are the os package-level functions that touch no file or
// process state worth blocking on; every other os.* call counts as I/O.
var pureOSFuncs = map[string]bool{
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
	"Getenv": true, "LookupEnv": true, "Environ": true, "Expand": true, "ExpandEnv": true,
	"Getpid": true, "Getppid": true, "Getuid": true, "Geteuid": true,
	"Getgid": true, "Getegid": true, "Getpagesize": true, "IsPathSeparator": true,
	"NewSyscallError": true, "TempDir": true,
}

// blockingPkgFuncs maps import path → the set of package-level
// functions that perform file or network I/O ("*" = all but a pure
// allowlist, used for os).
var blockingPkgFuncs = map[string]map[string]bool{
	"os": {"*": true},
	"net": {
		"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true,
		"DialUDP": true, "DialUnix": true, "Listen": true, "ListenIP": true,
		"ListenTCP": true, "ListenUDP": true, "ListenUnix": true, "ListenPacket": true,
		"LookupAddr": true, "LookupHost": true, "LookupIP": true, "LookupPort": true,
	},
	"net/http": {
		"Get": true, "Post": true, "PostForm": true, "Head": true,
		"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true, "ServeTLS": true,
	},
	"io": {
		"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
	},
	"io/ioutil": {"*": true},
	"encoding/json": {
		"Marshal": true, "MarshalIndent": true, "Unmarshal": true,
	},
	"encoding/gob": {"*": true},
}

// blockingRecvTypes are the named types whose method calls count as
// I/O (or encoding) regardless of method name.
var blockingRecvTypes = map[string]map[string]bool{
	"os":            {"File": true},
	"net":           {"Conn": true, "TCPConn": true, "UDPConn": true, "UnixConn": true, "Listener": true, "TCPListener": true, "Dialer": true},
	"net/http":      {"Client": true, "Transport": true},
	"encoding/json": {"Encoder": true, "Decoder": true},
	"encoding/gob":  {"Encoder": true, "Decoder": true},
}

// blockingCall classifies a call as file/network/encoding I/O and
// names it for the diagnostic.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil {
		funcs, found := blockingPkgFuncs[path]
		if !found {
			return "", false
		}
		if funcs["*"] {
			if path == "os" && pureOSFuncs[fn.Name()] {
				return "", false
			}
			return pkgBase(path) + "." + fn.Name(), true
		}
		if funcs[fn.Name()] {
			return pkgBase(path) + "." + fn.Name(), true
		}
		return "", false
	}
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	recvTypes, found := blockingRecvTypes[path]
	if !found {
		return "", false
	}
	rt := deref(sig.Recv().Type())
	var typeName string
	switch t := rt.(type) {
	case *types.Named:
		typeName = t.Obj().Name()
	default:
		return "", false
	}
	if recvTypes[typeName] {
		return pkgBase(path) + "." + typeName + "." + fn.Name(), true
	}
	return "", false
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func runLockFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lockFlowFunc(pass, fd.Body, funcScopeName(fd),
				strings.HasSuffix(fd.Name.Name, "Locked"))
		}
		for _, fl := range funcLits(f) {
			lockFlowFunc(pass, fl.lit.Body, fl.name, false)
		}
	}
}

// lockFlowFunc analyzes one function body. underCallerLock seeds a
// synthetic held lock for *Locked functions so the I/O rule applies to
// their whole body.
func lockFlowFunc(pass *Pass, body *ast.BlockStmt, name string, underCallerLock bool) {
	info := pass.Pkg.Info
	g := buildCFG(body, info)

	lat := flowLattice[lockFlowState]{
		Clone: func(s lockFlowState) lockFlowState { return s.clone() },
		Merge: func(a, b lockFlowState) lockFlowState {
			return lockFlowState{
				held:   mergeMutexes(a.held, b.held),
				defers: mergeMutexes(a.defers, b.defers),
			}
		},
		Equal: func(a, b lockFlowState) bool {
			return mutexSetEqual(a.held, b.held) && mutexSetEqual(a.defers, b.defers)
		},
		Transfer: func(s lockFlowState, n ast.Node) lockFlowState {
			return lockFlowTransfer(info, s, n)
		},
	}

	entry := lockFlowState{}
	if underCallerLock {
		entry.held = append(entry.held, heldMutex{
			key: "caller", name: "the caller's lock", synthetic: true,
		})
	}
	entries := runFlow(g, entry, lat)

	replayFlow(g, entries, lat, func(n ast.Node, s lockFlowState) {
		// Rule 2: I/O while a mutex may be held.
		if len(s.held) > 0 {
			calls(n, func(call *ast.CallExpr) {
				desc, blocking := blockingCall(info, call)
				if !blocking {
					return
				}
				m := s.held[0]
				if m.synthetic {
					pass.Reportf(call.Pos(),
						"%s runs under its caller's lock (Locked suffix) but calls %s; move the I/O outside the critical section",
						name, desc)
					return
				}
				pass.Reportf(call.Pos(),
					"%s calls %s while %s is held (acquired at line %d); move the I/O outside the critical section",
					name, desc, m.name, pass.Pkg.Fset.Position(m.pos).Line)
			})
		}
		// Rule 1: exits with a lock still held.
		if _, isReturn := n.(*ast.ReturnStmt); isReturn || isPanicCall(n, info) {
			// Returns evaluate their results before the defers run, so
			// the I/O rule above already covered the result exprs; here
			// only the pairing matters.
			exit := "returns"
			if !isReturn {
				exit = "panics"
			}
			for _, m := range unreleased(s) {
				pass.Reportf(n.Pos(),
					"%s %s while %s is still held (acquired at line %d); release it on every path or defer the release",
					name, exit, m.name, pass.Pkg.Fset.Position(m.pos).Line)
			}
		}
	})

	// Falling off the end of the body is a return too.
	if s, ok := entries[g.exit]; ok {
		for _, m := range unreleased(s) {
			pass.Reportf(body.Rbrace,
				"%s reaches the end of the function while %s is still held (acquired at line %d); release it on every path or defer the release",
				name, m.name, pass.Pkg.Fset.Position(m.pos).Line)
		}
	}
}

// unreleased returns the non-synthetic held mutexes that no pending
// deferred release covers.
func unreleased(s lockFlowState) []heldMutex {
	remaining := append([]heldMutex(nil), s.defers...)
	var out []heldMutex
	for _, m := range s.held {
		if m.synthetic {
			continue
		}
		covered := false
		for i, d := range remaining {
			if d.key == m.key && d.read == m.read {
				remaining = append(remaining[:i], remaining[i+1:]...)
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, m)
		}
	}
	return out
}

// lockFlowTransfer applies one node's lock effects.
func lockFlowTransfer(info *types.Info, s lockFlowState, n ast.Node) lockFlowState {
	if def, ok := n.(*ast.DeferStmt); ok {
		s.defers = append(s.defers, deferredReleases(info, def)...)
		return s
	}
	calls(n, func(call *ast.CallExpr) {
		recv, method, ok := mutexOp(info, call)
		if !ok {
			return
		}
		key, name, ok := lockKeyOf(info, recv)
		if !ok {
			return
		}
		switch method {
		case "Lock", "TryLock":
			s.held = acquire(s.held, heldMutex{key: key, name: name, pos: call.Pos()})
		case "RLock", "TryRLock":
			s.held = acquire(s.held, heldMutex{key: key, name: name, read: true, pos: call.Pos()})
		case "Unlock":
			s.held = release(s.held, key, false)
		case "RUnlock":
			s.held = release(s.held, key, true)
		}
	})
	return s
}

// deferredReleases extracts the Unlock/RUnlock facts a defer statement
// pledges — a direct `defer mu.Unlock()` or releases inside a deferred
// closure body.
func deferredReleases(info *types.Info, def *ast.DeferStmt) []heldMutex {
	var out []heldMutex
	record := func(call *ast.CallExpr) {
		recv, method, ok := mutexOp(info, call)
		if !ok || (method != "Unlock" && method != "RUnlock") {
			return
		}
		key, name, ok := lockKeyOf(info, recv)
		if !ok {
			return
		}
		out = append(out, heldMutex{key: key, name: name, read: method == "RUnlock"})
	}
	record(def.Call)
	if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
		calls(lit.Body, record)
	}
	return out
}

func acquire(held []heldMutex, m heldMutex) []heldMutex {
	for _, h := range held {
		if h.key == m.key && h.read == m.read {
			return held // re-acquisition on a looped path; keep the first site
		}
	}
	return append(held, m)
}

func release(held []heldMutex, key string, read bool) []heldMutex {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key && held[i].read == read {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
