package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the suite's intraprocedural dataflow engine: a
// control-flow graph built from a function body plus a small forward
// fixpoint runner. The flow-sensitive analyzers (lockflow, leakcheck,
// errflow) are clients; they supply a lattice (transfer, merge, edge
// refinement) and replay the fixpoint to report at exact nodes.
//
// Design points, sized to what those analyzers need:
//
//   - Nodes are statements or the atomic sub-expressions of control
//     statements (an if's condition, a switch's tag). Walking a node
//     never crosses into another block's code, so analyzers can scan a
//     node's calls without seeing the future.
//   - Return statements and terminal calls (panic, os.Exit, log.Fatal*)
//     end their block with no successors; the analyzers check exit
//     conditions when they see the node itself. The graph's exit block
//     is reachable only by falling off the end of the body.
//   - Edges carry the branch condition they are guarded by (cond plus
//     the truth it evaluated to), so analyzers can refine facts along
//     `if err != nil` style branches — the idiom every resource-leak
//     and sentinel-guard rule depends on.
//   - Defer statements are ordinary nodes. Path-dependent defer
//     semantics (a defer only fires if execution passed it) fall out of
//     the dataflow: analyzers record pending defers as facts.

// cfgEdge is one control transfer, optionally guarded by a condition.
type cfgEdge struct {
	to *cfgBlock
	// cond is the branch condition this edge is guarded by, nil for
	// unconditional transfers; truth is the value cond evaluated to
	// along this edge.
	cond  ast.Expr
	truth bool
}

// cfgBlock is a straight-line run of nodes.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []cfgEdge
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock // reached only by falling off the end of the body
	blocks []*cfgBlock
}

// cfgBuilder incrementally grows a funcCFG.
type cfgBuilder struct {
	g    *funcCFG
	cur  *cfgBlock
	info *types.Info

	// breakable/continuable targets, innermost last; label is "" for
	// unlabeled statements.
	breaks    []branchTarget
	continues []branchTarget

	labels map[string]*cfgBlock // goto targets
	gotos  []pendingGoto
}

type branchTarget struct {
	label string
	blk   *cfgBlock
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

// buildCFG constructs the graph for a function body. info resolves the
// callees of potential terminal calls; it may be nil (then only the
// panic builtin terminates).
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, info: info, labels: make(map[string]*cfgBlock)}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	b.edge(b.cur, g.exit, nil, false)
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target, nil, false)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge connects from→to unless from has been terminated (nil).
func (b *cfgBuilder) edge(from, to *cfgBlock, cond ast.Expr, truth bool) {
	if from == nil {
		return
	}
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, truth: truth})
}

// add appends a node to the current block; no-op in dead code.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// cut terminates the current block: subsequent statements are dead
// until a new block is opened (by a label or join point).
func (b *cfgBuilder) cut() { b.cur = nil }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label carries the name of an
// immediately enclosing LabeledStmt, so break/continue targets and
// goto labels resolve.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// A label is a join point: goto can enter here.
		lb := b.newBlock()
		b.edge(b.cur, lb, nil, false)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.add(s)
		b.cut()

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, s.Label); t != nil {
				b.edge(b.cur, t, nil, false)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, s.Label); t != nil {
				b.edge(b.cur, t, nil, false)
			}
		case token.GOTO:
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok {
					b.edge(b.cur, t, nil, false)
				} else {
					b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
				}
			}
		case token.FALLTHROUGH:
			// Handled by the switch translation; nothing to connect here.
			return
		}
		b.cut()

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(head, thenBlk, s.Cond, true)
		b.cur = thenBlk
		b.stmt(s.Body, "")
		b.edge(b.cur, join, nil, false)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(head, elseBlk, s.Cond, false)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.edge(b.cur, join, nil, false)
		} else {
			b.edge(head, join, s.Cond, false)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		head := b.newBlock()
		b.edge(b.cur, head, nil, false)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		post := b.newBlock()
		b.edge(head, body, s.Cond, true)
		if s.Cond != nil {
			b.edge(head, exit, s.Cond, false)
		}
		b.pushLoop(label, exit, post)
		b.cur = body
		b.stmt(s.Body, "")
		b.popLoop()
		b.edge(b.cur, post, nil, false)
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post, "")
			b.edge(b.cur, head, nil, false)
		} else {
			b.edge(post, head, nil, false)
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head, nil, false)
		b.cur = head
		b.add(s.X)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body, nil, false)
		b.edge(head, exit, nil, false)
		b.pushLoop(label, exit, head)
		b.cur = body
		b.stmt(s.Body, "")
		b.popLoop()
		b.edge(b.cur, head, nil, false)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, s.Tag == nil, label)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, false, label)

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label: label, blk: join})
		sawDefault := false
		for _, cc := range s.Body.List {
			comm, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, nil, false)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm, "")
			} else {
				sawDefault = true
			}
			b.stmtList(comm.Body)
			b.edge(b.cur, join, nil, false)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		_ = sawDefault // a select with no default still always takes a case
		b.cur = join

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isTerminalCall(call) {
			b.cut()
		}

	case *ast.DeclStmt, *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt,
		*ast.DeferStmt, *ast.GoStmt:
		b.add(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		b.add(s)
	}
}

// caseClauses translates switch/type-switch bodies. condEdges marks a
// tagless switch, where single-expression cases become guarded edges.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, condEdges bool, label string) {
	head := b.cur
	join := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label: label, blk: join})

	// Pre-create body blocks so fallthrough can target the next case.
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	sawDefault := false
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			sawDefault = true
		}
		for _, e := range cc.List {
			b.add2(head, e)
		}
		var cond ast.Expr
		if condEdges && len(cc.List) == 1 {
			cond = cc.List[0]
		}
		b.edge(head, bodies[i], cond, true)
		b.cur = bodies[i]
		fallsThrough := false
		for _, inner := range cc.Body {
			if br, ok := inner.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(cc.Body)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, bodies[i+1], nil, false)
			b.cut()
		}
		b.edge(b.cur, join, nil, false)
	}
	if !sawDefault {
		b.edge(head, join, nil, false)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

// add2 appends a node to a specific block (case expressions are
// evaluated in the head block, not the case body).
func (b *cfgBuilder) add2(blk *cfgBlock, n ast.Node) {
	if blk != nil && n != nil {
		blk.nodes = append(blk.nodes, n)
	}
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, branchTarget{label: label, blk: brk})
	b.continues = append(b.continues, branchTarget{label: label, blk: cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue to its target block: innermost
// for unlabeled, matching label otherwise.
func findTarget(stack []branchTarget, label *ast.Ident) *cfgBlock {
	if label == nil {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].blk
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].blk
		}
	}
	return nil
}

// isTerminalCall reports whether a call never returns: the panic
// builtin, os.Exit, and log.Fatal*.
func (b *cfgBuilder) isTerminalCall(call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
		if b.info == nil {
			return true
		}
		if _, isBuiltin := b.info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
		return false
	}
	if b.info == nil {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := b.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		return fn.Name() == "Fatal" || fn.Name() == "Fatalf" || fn.Name() == "Fatalln"
	}
	return false
}

// isPanicCall reports whether a node is a statement calling the panic
// builtin — the analyzers' "abnormal exit" probe.
func isPanicCall(n ast.Node, info *types.Info) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if info == nil {
		return true
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// flowLattice bundles the operations the fixpoint runner needs. States
// must be treated as immutable by callers: Transfer and Edge receive a
// clone they may mutate and return.
type flowLattice[S any] struct {
	// Transfer applies one node's effect to the state.
	Transfer func(S, ast.Node) S
	// Merge joins two states at a control-flow join; it must be
	// monotone and idempotent for the fixpoint to terminate.
	Merge func(S, S) S
	// Clone deep-copies a state.
	Clone func(S) S
	// Equal reports state equality (fixpoint detection).
	Equal func(S, S) bool
	// Edge refines the state along a guarded edge; returning ok=false
	// prunes the edge (the condition proves it infeasible). nil means
	// no refinement.
	Edge func(S, cfgEdge) (S, bool)
}

// runFlow runs the forward fixpoint and returns each reachable block's
// entry state. Unreachable blocks are absent from the map.
func runFlow[S any](g *funcCFG, entry S, lat flowLattice[S]) map[*cfgBlock]S {
	in := make(map[*cfgBlock]S)
	in[g.entry] = entry
	work := []*cfgBlock{g.entry}
	queued := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		st := lat.Clone(in[blk])
		for _, n := range blk.nodes {
			st = lat.Transfer(st, n)
		}
		for _, e := range blk.succs {
			es := lat.Clone(st)
			if lat.Edge != nil {
				var ok bool
				es, ok = lat.Edge(es, e)
				if !ok {
					continue
				}
			}
			old, seen := in[e.to]
			var merged S
			if seen {
				merged = lat.Merge(lat.Clone(old), es)
			} else {
				merged = es
			}
			if !seen || !lat.Equal(old, merged) {
				in[e.to] = merged
				if !queued[e.to] {
					queued[e.to] = true
					work = append(work, e.to)
				}
			}
		}
	}
	return in
}

// replayFlow re-runs the transfer function over every reachable block
// in index order, invoking visit with each node's entry state — the
// reporting pass, run once after the fixpoint so diagnostics are not
// duplicated by iteration.
func replayFlow[S any](g *funcCFG, entries map[*cfgBlock]S, lat flowLattice[S], visit func(ast.Node, S)) {
	for _, blk := range g.blocks {
		st, ok := entries[blk]
		if !ok {
			continue
		}
		st = lat.Clone(st)
		for _, n := range blk.nodes {
			visit(n, st)
			st = lat.Transfer(st, n)
		}
	}
}

// calls walks a node's expression tree invoking f on every call, in
// source order, without descending into function literals — a literal's
// body runs later (or never), not at this program point.
func calls(n ast.Node, f func(*ast.CallExpr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			f(call)
		}
		return true
	})
}

// funcLits collects every function literal in the file, paired with the
// name of the enclosing declaration for diagnostics.
func funcLits(f *ast.File) []struct {
	lit  *ast.FuncLit
	name string
} {
	var out []struct {
		lit  *ast.FuncLit
		name string
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := funcScopeName(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, struct {
					lit  *ast.FuncLit
					name string
				}{lit, name + " (func literal)"})
			}
			return true
		})
	}
	return out
}
