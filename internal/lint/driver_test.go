package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean runs the full analyzer suite over the real module and
// demands zero findings. This is the regression gate: any change that
// reintroduces a direct sentinel comparison, an unguarded field access,
// or a nondeterministic construct in a det package fails here before it
// fails in CI's `make lint`.
func TestRepoIsClean(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigForDir(wd)
	if err != nil {
		t.Fatalf("ConfigForDir: %v", err)
	}
	pkgs, err := Load(cfg, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestSuppressionForUnselectedAnalyzer checks the -only interaction: a
// directive naming a registered analyzer that is not part of this run
// is neither honored nor reported as unused — judging it needs the
// analyzer's own findings.
func TestSuppressionForUnselectedAnalyzer(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "store", "store.go"), `package store

import "errors"

var ErrMissing = errors.New("missing")

func Check(err error) bool {
	//lint:ignore errcmp the sentinel arrives unwrapped from the legacy decoder
	return err == ErrMissing
}
`)
	cfg, err := ConfigForDir(dir)
	if err != nil {
		t.Fatalf("ConfigForDir: %v", err)
	}
	pkgs, err := Load(cfg, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	// errcmp selected: the directive is used, everything is quiet.
	if diags := Run(pkgs, []*Analyzer{ErrCmp}); len(diags) != 0 {
		t.Errorf("with errcmp selected: got %v, want no diagnostics", diags)
	}
	// errcmp not selected: the directive must not be reported unused —
	// this run never produced the findings it exists to silence.
	if diags := Run(pkgs, []*Analyzer{LockFlow}); len(diags) != 0 {
		t.Errorf("with errcmp unselected: got %v, want no diagnostics", diags)
	}
}

// TestSeededViolationInModuleMode builds a throwaway module containing a
// direct sentinel comparison and checks that module-mode loading (go.mod
// discovery, module-path import resolution) surfaces it.
func TestSeededViolationInModuleMode(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "store", "store.go"), `package store

import "errors"

var ErrMissing = errors.New("missing")

func Check(err error) bool {
	return err == ErrMissing
}
`)
	cfg, err := ConfigForDir(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatalf("ConfigForDir: %v", err)
	}
	if cfg.ModulePath != "scratch" {
		t.Fatalf("ModulePath = %q, want scratch", cfg.ModulePath)
	}
	pkgs, err := Load(cfg, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "errcmp" {
		t.Errorf("Analyzer = %q, want errcmp", d.Analyzer)
	}
	if !strings.Contains(d.Message, "errors.Is") {
		t.Errorf("message %q does not suggest errors.Is", d.Message)
	}
	if filepath.Base(d.Position.Filename) != "store.go" || d.Position.Line != 8 {
		t.Errorf("position = %s:%d, want store.go:8", d.Position.Filename, d.Position.Line)
	}
}

func TestByName(t *testing.T) {
	as, err := ByName([]string{"errcmp", "detcheck"})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	// Registry order, not argument order.
	if len(as) != 2 || as[0].Name != "detcheck" || as[1].Name != "errcmp" {
		got := []string{as[0].Name, as[1].Name}
		t.Errorf("ByName returned %v, want [detcheck errcmp]", got)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Error("ByName accepted unknown analyzer name")
	}
}

// TestLoadExplicitDir checks the non-recursive pattern form: a single
// directory loads exactly one package, and a Go-less directory errors.
func TestLoadExplicitDir(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ConfigForDir(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(cfg, []string{"./internal/faults"})
	if err != nil {
		t.Fatalf("Load(./internal/faults): %v", err)
	}
	if len(pkgs) != 1 || !strings.HasSuffix(pkgs[0].Path, "internal/faults") {
		t.Fatalf("loaded %v, want exactly internal/faults", pkgs)
	}
	scratch := t.TempDir()
	writeFile(t, filepath.Join(scratch, "go.mod"), "module scratch\n\ngo 1.21\n")
	writeFile(t, filepath.Join(scratch, "empty", ".keep"), "")
	scfg, err := ConfigForDir(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(scfg, []string{"./empty"}); err == nil {
		t.Error("Load of a Go-less directory did not error")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
