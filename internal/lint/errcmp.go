package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp enforces sentinel-error hygiene: package-level error values
// (repo.ErrNotFound, hub.ErrCircuitOpen, index.ErrAlreadyIndexed, ...)
// must be matched with errors.Is, never == or !=. Every sentinel in
// this repo is returned wrapped (fmt.Errorf("...: %w", Err...)), so an
// identity comparison is not just unidiomatic — it is wrong: it never
// matches the wrapped error a caller actually receives.
//
// Comparisons against nil are untouched; so are comparisons between
// two sentinels (a registry dispatching on identity compares the
// values themselves, not a returned error).
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors must be compared with errors.Is, not == or !=",
	Run:  runErrCmp,
}

func runErrCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isNilIdent(info, be.X) || isNilIdent(info, be.Y) {
				return true
			}
			xs, ys := sentinelError(info, be.X), sentinelError(info, be.Y)
			if xs != nil && ys != nil {
				return true // sentinel-to-sentinel identity is deliberate
			}
			for _, s := range []*types.Var{xs, ys} {
				if s != nil {
					pass.Reportf(be.OpPos,
						"%s compared with %s; sentinels are returned wrapped — use errors.Is(err, %s)",
						s.Name(), be.Op, s.Name())
				}
			}
			return true
		})
	}
}

// sentinelError returns the package-level error variable an expression
// names, or nil.
func sentinelError(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
