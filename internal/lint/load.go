package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadError reports parse or type-check failures as positioned
// diagnostics — one per underlying error — so broken input surfaces as
// file:line:col lines instead of a panic or one opaque message.
type LoadError struct {
	// Path is the import path (or directory) of the failing package.
	Path string
	// Stage is "syntax" for parse failures, "typecheck" for
	// type-checking failures; it doubles as the Analyzer name on the
	// diagnostics.
	Stage string
	// Diags carries every underlying error with its position.
	Diags []Diagnostic
}

func (e *LoadError) Error() string {
	if len(e.Diags) == 1 {
		return fmt.Sprintf("lint: %s error in %s: %s", e.Stage, e.Path, e.Diags[0])
	}
	return fmt.Sprintf("lint: %d %s errors in %s (first: %s)",
		len(e.Diags), e.Stage, e.Path, e.Diags[0])
}

// Config tells the loader where source lives and how import paths map
// to directories.
type Config struct {
	// Root anchors pattern expansion and in-tree import resolution.
	Root string
	// ModulePath is the module's import-path prefix. When set, import
	// path ModulePath/x/y resolves to Root/x/y (module layout). When
	// empty, import path x/y resolves to Root/x/y directly (the
	// GOPATH-style layout the golden testdata uses).
	ModulePath string
}

// ConfigForDir locates the enclosing module of dir (walking up to the
// nearest go.mod) and returns a Config for it.
func ConfigForDir(dir string) (Config, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return Config{}, err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return Config{}, fmt.Errorf("lint: no module line in %s/go.mod", d)
			}
			return Config{Root: d, ModulePath: path}, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return Config{}, fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// loader parses and type-checks packages on demand, resolving in-tree
// imports itself and delegating the rest (the standard library) to the
// toolchain's importers.
type loader struct {
	cfg  Config
	fset *token.FileSet
	pkgs map[string]*Package // by import path
	busy map[string]bool     // cycle guard
	gc   types.Importer      // compiled export data (fast path)
	src  types.Importer      // type-check from source (fallback)
}

func newLoader(cfg Config) *loader {
	fset := token.NewFileSet()
	return &loader{
		cfg:  cfg,
		fset: fset,
		pkgs: make(map[string]*Package),
		busy: make(map[string]bool),
		gc:   importer.Default(),
		src:  importer.ForCompiler(fset, "source", nil),
	}
}

// dirFor maps an import path to an in-tree directory, or ok=false for
// paths that belong to other modules (the standard library).
func (l *loader) dirFor(path string) (string, bool) {
	if l.cfg.ModulePath == "" {
		dir := filepath.Join(l.cfg.Root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	if path == l.cfg.ModulePath {
		return l.cfg.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.cfg.ModulePath+"/"); ok {
		return filepath.Join(l.cfg.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// pathFor maps an in-tree directory back to its import path.
func (l *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.cfg.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if l.cfg.ModulePath == "" {
		return rel, nil
	}
	if rel == "." {
		return l.cfg.ModulePath, nil
	}
	return l.cfg.ModulePath + "/" + rel, nil
}

// Import implements types.Importer so the type-checker can resolve the
// imports of whichever package is currently being checked.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tp, err := l.gc.Import(path)
	if err == nil {
		return tp, nil
	}
	return l.src.Import(path)
}

// load parses and type-checks the package at an in-tree import path.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: %q is not inside %s", path, l.cfg.Root)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tp, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		le := &LoadError{Path: path, Stage: "typecheck"}
		for _, err := range typeErrs {
			d := Diagnostic{Analyzer: "typecheck", Message: err.Error()}
			if te, ok := err.(types.Error); ok {
				d.Position = te.Fset.Position(te.Pos)
				d.Message = te.Msg
			}
			le.Diags = append(le.Diags, d)
		}
		return nil, le
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tp,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file in dir, in name order so
// positions and diagnostics are stable.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	le := &LoadError{Path: dir, Stage: "syntax"}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			// Keep parsing the remaining files so one broken file does
			// not hide syntax errors elsewhere in the package.
			if list, ok := err.(scanner.ErrorList); ok {
				for _, pe := range list {
					le.Diags = append(le.Diags, Diagnostic{
						Analyzer: "syntax", Position: pe.Pos, Message: pe.Msg,
					})
				}
			} else {
				le.Diags = append(le.Diags, Diagnostic{Analyzer: "syntax", Message: err.Error()})
			}
			continue
		}
		files = append(files, f)
	}
	if len(le.Diags) > 0 {
		return nil, le
	}
	return files, nil
}

// Load expands the patterns and returns the matched packages, parsed
// and type-checked. Patterns follow go-command conventions: a relative
// or rooted directory ("./internal/catalog"), or a tree with the
// "/..." suffix ("./..."). Matched directories without Go files are
// skipped; named directories without Go files are errors.
func Load(cfg Config, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := newLoader(cfg)
	seen := make(map[string]bool)
	var pkgs []*Package
	add := func(dir string, explicit bool) error {
		path, err := l.pathFor(dir)
		if err != nil || seen[path] {
			return err
		}
		if !explicit && !hasGoFiles(dir) {
			return nil
		}
		seen[path] = true
		pkg, err := l.load(path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
			if pat == "..." {
				rest = "."
			}
			base := filepath.Join(cfg.Root, filepath.FromSlash(strings.TrimPrefix(rest, "./")))
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
					name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return add(p, false)
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := filepath.Join(cfg.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if err := add(dir, true); err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
