package lint

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// The loader's failure contract: broken input surfaces as a *LoadError
// carrying one positioned diagnostic per underlying error — never a
// panic, never a single opaque message that hides the rest.

// loadBroken builds a scratch module around the given source files and
// returns the Load error.
func loadBroken(t *testing.T, files map[string]string) error {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch\n\ngo 1.21\n")
	for name, content := range files {
		writeFile(t, filepath.Join(dir, name), content)
	}
	cfg, err := ConfigForDir(dir)
	if err != nil {
		t.Fatalf("ConfigForDir: %v", err)
	}
	_, err = Load(cfg, nil)
	if err == nil {
		t.Fatal("Load succeeded on broken input")
	}
	return err
}

func asLoadError(t *testing.T, err error) *LoadError {
	t.Helper()
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("Load error is %T (%v), want *LoadError", err, err)
	}
	if len(le.Diags) == 0 {
		t.Fatal("LoadError with no diagnostics")
	}
	return le
}

func TestLoadSyntaxErrorPositioned(t *testing.T) {
	err := loadBroken(t, map[string]string{
		filepath.Join("broken", "broken.go"): "package broken\n\nfunc f() {\n\tif {\n}\n",
	})
	le := asLoadError(t, err)
	if le.Stage != "syntax" {
		t.Errorf("Stage = %q, want syntax", le.Stage)
	}
	d := le.Diags[0]
	if d.Analyzer != "syntax" {
		t.Errorf("Analyzer = %q, want syntax", d.Analyzer)
	}
	if !strings.HasSuffix(d.Position.Filename, "broken.go") || d.Position.Line == 0 {
		t.Errorf("diagnostic not positioned: %s", d)
	}
}

// TestLoadSyntaxErrorsAcrossFiles checks that one broken file does not
// hide syntax errors in another file of the same package.
func TestLoadSyntaxErrorsAcrossFiles(t *testing.T) {
	err := loadBroken(t, map[string]string{
		filepath.Join("broken", "a.go"): "package broken\n\nfunc a() {\n\tx := \n}\n",
		filepath.Join("broken", "b.go"): "package broken\n\nfunc b() {\n\tfor {\n",
	})
	le := asLoadError(t, err)
	seen := map[string]bool{}
	for _, d := range le.Diags {
		seen[filepath.Base(d.Position.Filename)] = true
	}
	if !seen["a.go"] || !seen["b.go"] {
		t.Errorf("diagnostics cover %v, want both a.go and b.go (%v)", seen, le.Diags)
	}
}

func TestLoadTypeErrorPositioned(t *testing.T) {
	err := loadBroken(t, map[string]string{
		filepath.Join("broken", "broken.go"): "package broken\n\nfunc f() int {\n\treturn \"nope\"\n}\n",
	})
	le := asLoadError(t, err)
	if le.Stage != "typecheck" {
		t.Errorf("Stage = %q, want typecheck", le.Stage)
	}
	d := le.Diags[0]
	if d.Analyzer != "typecheck" {
		t.Errorf("Analyzer = %q, want typecheck", d.Analyzer)
	}
	if !strings.HasSuffix(d.Position.Filename, "broken.go") || d.Position.Line != 4 {
		t.Errorf("diagnostic not positioned at broken.go:4: %s", d)
	}
}

// TestLoadTypeErrorsAllReported checks that every type error is
// surfaced, not just the first.
func TestLoadTypeErrorsAllReported(t *testing.T) {
	err := loadBroken(t, map[string]string{
		filepath.Join("broken", "broken.go"): "package broken\n\nvar a int = \"x\"\nvar b bool = 3\n",
	})
	le := asLoadError(t, err)
	if len(le.Diags) < 2 {
		t.Errorf("got %d diagnostics, want both type errors: %v", len(le.Diags), le.Diags)
	}
}

// TestLoadErrorMessage pins the summary the CLI falls back to.
func TestLoadErrorMessage(t *testing.T) {
	err := loadBroken(t, map[string]string{
		filepath.Join("broken", "broken.go"): "package broken\n\nfunc f() int {\n\treturn \"nope\"\n}\n",
	})
	msg := err.Error()
	if !strings.Contains(msg, "typecheck") || !strings.Contains(msg, "broken") {
		t.Errorf("Error() = %q, want stage and package named", msg)
	}
}
