package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrFlow keeps the module's sentinel-error contracts intact: callers
// test Load/Publish/Query failures with errors.Is against
// repo.ErrNotFound, repo.ErrDamaged, hub.ErrCircuitOpen,
// hub.ErrAttemptTimeout (and friends), which only works if every
// propagation hop preserves the chain. Three rules:
//
//  1. An error formatted into fmt.Errorf must use the %w verb. %v or
//     %s flattens it to text and errors.Is stops matching one hop up.
//  2. err.Error() must not feed fmt.Errorf or errors.New — that is the
//     same re-stringification with extra steps.
//  3. Flow rule: once a path has established errors.Is(err, Sentinel),
//     returning a freshly constructed error that references neither
//     err nor the sentinel silently drops the classification the
//     caller just proved it needs.
//
// Error() and String() methods are exempt — flattening to text is
// their whole job.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "sentinel-tested errors must be wrapped with %w on every propagation path, never re-stringified",
	Run:  runErrFlow,
}

func runErrFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isStringerMethod(fd) {
				continue
			}
			errFlowSyntactic(pass, fd.Body)
			errFlowGuards(pass, fd.Body)
		}
	}
}

// isStringerMethod reports whether fd is an Error() string or
// String() string method, where stringification is the contract.
func isStringerMethod(fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Error" && fd.Name.Name != "String" {
		return false
	}
	ft := fd.Type
	if ft.Params != nil && len(ft.Params.List) > 0 {
		return false
	}
	if ft.Results == nil || len(ft.Results.List) != 1 {
		return false
	}
	id, ok := ft.Results.List[0].Type.(*ast.Ident)
	return ok && id.Name == "string"
}

// errFlowSyntactic applies rules 1 and 2 to every call in the body,
// including function literals — they propagate errors too.
func errFlowSyntactic(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgFunc(info, call, "fmt", "Errorf") {
			checkErrorfVerbs(pass, call)
			checkStringified(pass, info, call, call.Args)
		}
		if pkgFunc(info, call, "errors", "New") {
			checkStringified(pass, info, call, call.Args)
		}
		return true
	})
}

// checkErrorfVerbs aligns a fmt.Errorf format string's verbs with its
// arguments and flags error-typed arguments not wrapped with %w.
func checkErrorfVerbs(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // explicit argument indexes; leave it to vet
	}
	args := call.Args[1:]
	if len(verbs) != len(args) {
		return // arity mismatch is vet's diagnostic, not ours
	}
	for i, verb := range verbs {
		if verb == 'w' || verb == '*' {
			continue
		}
		tv, ok := pass.Pkg.Info.Types[args[i]]
		if !ok || !implementsError(tv.Type) {
			continue
		}
		pass.Reportf(args[i].Pos(),
			"error formatted with %%%c loses the chain; use %%w so errors.Is keeps matching", verb)
	}
}

// formatVerbs returns the verb for each argument the format consumes,
// with '*' entries for dynamic width/precision operands. ok=false when
// the format uses explicit argument indexes.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Flags.
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// Explicit argument index: bail out.
		if i < len(format) && format[i] == '[' {
			return nil, false
		}
		// Width.
		if i < len(format) && format[i] == '*' {
			verbs = append(verbs, '*')
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i+1 < len(format) && format[i] == '.' {
			i++
			if format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs, true
}

// checkStringified flags err.Error() results fed into an error
// constructor's arguments.
func checkStringified(pass *Pass, info *types.Info, ctor *ast.CallExpr, args []ast.Expr) {
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
				return true
			}
			tv, ok := info.Types[sel.X]
			if !ok || !implementsError(tv.Type) {
				return true
			}
			pass.Reportf(call.Pos(),
				"err.Error() re-stringifies the chain inside an error constructor; wrap the error itself with %%w")
			return true
		})
	}
}

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}

// sentinelGuard is the flow fact for rule 3: on this path, errObj has
// been proven to carry the named sentinel by errors.Is.
type sentinelGuard struct {
	sentinelObj  types.Object
	sentinelName string
	guardPos     token.Pos
}

type errFlowState map[types.Object]sentinelGuard

// errFlowGuards runs the reaching-sentinel dataflow: facts are
// generated on the true edge of errors.Is(err, Sentinel) conditions,
// killed when err is reassigned, and checked at every return.
func errFlowGuards(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	g := buildCFG(body, info)

	lat := flowLattice[errFlowState]{
		Clone: func(s errFlowState) errFlowState {
			out := make(errFlowState, len(s))
			for k, v := range s {
				out[k] = v
			}
			return out
		},
		Merge: func(a, b errFlowState) errFlowState {
			// A guard holds at a join only if it held on every path.
			for k := range a {
				if _, ok := b[k]; !ok {
					delete(a, k)
				}
			}
			return a
		},
		Equal: func(a, b errFlowState) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
		Transfer: func(s errFlowState, n ast.Node) errFlowState {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := objOf(info, id); obj != nil {
							delete(s, obj)
						}
					}
				}
			}
			return s
		},
		Edge: func(s errFlowState, e cfgEdge) (errFlowState, bool) {
			if e.cond == nil {
				return s, true
			}
			cond, truth := e.cond, e.truth
			for {
				un, ok := cond.(*ast.UnaryExpr)
				if !ok || un.Op != token.NOT {
					break
				}
				cond, truth = un.X, !truth
			}
			if !truth {
				return s, true
			}
			call, ok := cond.(*ast.CallExpr)
			if !ok || !pkgFunc(info, call, "errors", "Is") || len(call.Args) != 2 {
				return s, true
			}
			errID, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return s, true
			}
			errObj := objOf(info, errID)
			sentObj := sentinelObjOf(info, call.Args[1])
			if errObj == nil || sentObj == nil {
				return s, true
			}
			s[errObj] = sentinelGuard{
				sentinelObj:  sentObj,
				sentinelName: types.ExprString(call.Args[1]),
				guardPos:     call.Pos(),
			}
			return s, true
		},
	}

	entries := runFlow(g, errFlowState{}, lat)
	replayFlow(g, entries, lat, func(n ast.Node, s errFlowState) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(s) == 0 {
			return
		}
		for _, res := range ret.Results {
			ctor, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			if !pkgFunc(info, ctor, "fmt", "Errorf") && !pkgFunc(info, ctor, "errors", "New") {
				continue
			}
			for errObj, guard := range s {
				if referencesObj(info, ctor, errObj) || referencesObj(info, ctor, guard.sentinelObj) {
					continue
				}
				pass.Reportf(res.Pos(),
					"returns a new error that drops %s established by errors.Is at line %d; return the original error or wrap it with %%w",
					guard.sentinelName, pass.Pkg.Fset.Position(guard.guardPos).Line)
			}
		}
	})
}

// sentinelObjOf resolves an errors.Is target to a package-level error
// variable (the sentinel convention: `var ErrX = errors.New(...)`).
func sentinelObjOf(info *types.Info, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := objOf(info, id)
	if obj == nil {
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return obj
}

// referencesObj reports whether the expression mentions the object.
func referencesObj(info *types.Info, e ast.Expr, target types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == target {
			found = true
		}
		return !found
	})
	return found
}
