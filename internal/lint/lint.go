// Package lint is Sommelier's in-tree static-analysis framework. It
// machine-checks the invariants the catalog's concurrency and
// determinism guarantees rest on — invariants that are otherwise only
// enforced by tests and code review: snapshots are immutable after
// publish, guarded fields are only touched under their mutex, the
// indexing pipeline stays byte-identical across worker counts, library
// code threads contexts instead of minting them, and sentinel errors
// are matched with errors.Is.
//
// The framework is built on the standard library only (go/parser,
// go/ast, go/types, go/importer — no x/tools): a small loader
// type-checks the module, a driver runs each registered analyzer over
// each loaded package, and cmd/sommlint turns the diagnostics into the
// usual file:line:col output with a vet-style exit contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package through its Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("lockcheck", ...).
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run analyzes pass.Pkg and reports diagnostics via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries everything an analyzer needs to inspect one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: where, which analyzer, and why.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path ("sommelier/internal/catalog").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset positions all of the package's files.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// Analyzers returns the full registered suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockCheck,
		SnapCheck,
		DetCheck,
		CtxCheck,
		ErrCmp,
		OptCheck,
	}
}

// ByName resolves a comma-free list of analyzer names against the
// registry, preserving registry order.
func ByName(names []string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for _, n := range names {
		if want[n] {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns all
// diagnostics sorted by position, then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Position.Filename != dj.Position.Filename {
			return di.Position.Filename < dj.Position.Filename
		}
		if di.Position.Line != dj.Position.Line {
			return di.Position.Line < dj.Position.Line
		}
		if di.Position.Column != dj.Position.Column {
			return di.Position.Column < dj.Position.Column
		}
		if di.Analyzer != dj.Analyzer {
			return di.Analyzer < dj.Analyzer
		}
		return di.Message < dj.Message
	})
	return diags
}
