// Package lint is Sommelier's in-tree static-analysis framework. It
// machine-checks the invariants the catalog's concurrency and
// determinism guarantees rest on — invariants that are otherwise only
// enforced by tests and code review: snapshots are immutable after
// publish, guarded fields are only touched under their mutex, the
// indexing pipeline stays byte-identical across worker counts, library
// code threads contexts instead of minting them, and sentinel errors
// are matched with errors.Is.
//
// The framework is built on the standard library only (go/parser,
// go/ast, go/types, go/importer — no x/tools): a small loader
// type-checks the module, a driver runs each registered analyzer over
// each loaded package, and cmd/sommlint turns the diagnostics into the
// usual file:line:col output with a vet-style exit contract.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package through its Pass and reports findings.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("lockcheck", ...).
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run analyzes pass.Pkg and reports diagnostics via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries everything an analyzer needs to inspect one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: where, which analyzer, and why.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s",
		d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the import path ("sommelier/internal/catalog").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset positions all of the package's files.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// Analyzers returns the full registered suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockCheck,
		SnapCheck,
		DetCheck,
		CtxCheck,
		ErrCmp,
		OptCheck,
		LockFlow,
		LeakCheck,
		ErrFlow,
	}
}

// ByName resolves a comma-free list of analyzer names against the
// registry, preserving registry order.
func ByName(names []string) ([]*Analyzer, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for _, n := range names {
		if want[n] {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions, and returns all surviving diagnostics sorted by
// position, then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	running := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { pkgDiags = append(pkgDiags, d) },
			}
			a.Run(pass)
		}
		diags = append(diags, applySuppressions(pkg, pkgDiags, known, running)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Position.Filename != dj.Position.Filename {
			return di.Position.Filename < dj.Position.Filename
		}
		if di.Position.Line != dj.Position.Line {
			return di.Position.Line < dj.Position.Line
		}
		if di.Position.Column != dj.Position.Column {
			return di.Position.Column < dj.Position.Column
		}
		if di.Analyzer != dj.Analyzer {
			return di.Analyzer < dj.Analyzer
		}
		return di.Message < dj.Message
	})
	return diags
}

// suppression is one parsed //lint:ignore <analyzer> <reason>
// directive. It silences matching diagnostics on its own line and the
// line immediately below, so it works both as a trailing comment and
// on a line of its own above the flagged statement.
type suppression struct {
	analyzer string
	file     string
	line     int
	pos      token.Pos
	used     bool
}

// applySuppressions filters the package's diagnostics through its
// //lint:ignore directives. Directives must name an analyzer and give
// a reason; a directive that silences nothing is itself reported, so
// suppressions cannot silently outlive the code they excuse.
func applySuppressions(pkg *Package, diags []Diagnostic, known, running map[string]bool) []Diagnostic {
	sups, out := collectSuppressions(pkg)
	for _, d := range diags {
		suppressed := false
		for _, s := range sups {
			if s.analyzer == d.Analyzer && s.file == d.Position.Filename &&
				(d.Position.Line == s.line || d.Position.Line == s.line+1) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, s := range sups {
		if s.used {
			continue
		}
		if !known[s.analyzer] {
			out = append(out, Diagnostic{
				Analyzer: "suppress",
				Position: pkg.Fset.Position(s.pos),
				Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", s.analyzer),
			})
			continue
		}
		// The named analyzer exists but was not selected for this run
		// (e.g. sommlint -only): not this run's business.
		if !running[s.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "suppress",
			Position: pkg.Fset.Position(s.pos),
			Message:  fmt.Sprintf("unused //lint:ignore for %s: it suppresses nothing; remove it", s.analyzer),
		})
	}
	return out
}

// collectSuppressions parses the package's //lint:ignore directives.
// Malformed ones (no analyzer, or no reason) come back as diagnostics.
func collectSuppressions(pkg *Package) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "suppress",
						Position: pkg.Fset.Position(c.Pos()),
						Message:  "//lint:ignore requires an analyzer name and a reason: //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sups = append(sups, &suppression{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return sups, malformed
}
