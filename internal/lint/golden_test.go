package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden tests follow the x/tools analysistest convention:
// testdata/src is a GOPATH-style source root, and `// want `-comments
// carry backquoted regexps that must match a diagnostic reported on
// the same line — in both directions: every want needs a diagnostic,
// every diagnostic needs a want.

var wantTokenRe = regexp.MustCompile("`([^`]+)`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func loadGolden(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(Config{Root: root}, patterns)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	return pkgs
}

// collectWants scans the packages' comments for want-expectations.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					toks := wantTokenRe.FindAllStringSubmatch(c.Text[idx:], -1)
					if len(toks) == 0 {
						t.Errorf("%s:%d: want-comment with no backquoted pattern", pos.Filename, pos.Line)
						continue
					}
					for _, tok := range toks {
						re, err := regexp.Compile(tok[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// runGolden runs one analyzer over the given testdata packages and
// reconciles diagnostics against want-comments.
func runGolden(t *testing.T, a *Analyzer, patterns ...string) {
	t.Helper()
	pkgs := loadGolden(t, patterns...)
	wants := collectWants(t, pkgs)
	diags := Run(pkgs, []*Analyzer{a})

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func TestLockCheckGolden(t *testing.T) { runGolden(t, LockCheck, "lockcheck") }

func TestSnapCheckGoldenDerived(t *testing.T) { runGolden(t, SnapCheck, "snapwrite") }

func TestSnapCheckGoldenInCatalog(t *testing.T) {
	runGolden(t, SnapCheck, "sommelier/internal/catalog")
}

func TestDetCheckGolden(t *testing.T) {
	runGolden(t, DetCheck, "detcheck/index", "detcheck/plain")
}

func TestCtxCheckGolden(t *testing.T) {
	runGolden(t, CtxCheck, "ctxcheck/lib", "ctxcheck/mainprog")
}

func TestErrCmpGolden(t *testing.T) { runGolden(t, ErrCmp, "errcmp") }

func TestOptCheckGolden(t *testing.T) {
	runGolden(t, OptCheck, "sommelier", "sommelier/internal/serving")
}

func TestLockFlowGolden(t *testing.T) { runGolden(t, LockFlow, "lockflow") }

func TestLeakCheckGolden(t *testing.T) { runGolden(t, LeakCheck, "leakcheck") }

func TestErrFlowGolden(t *testing.T) { runGolden(t, ErrFlow, "errflow") }

// TestSuppressGolden drives the //lint:ignore directive through the
// driver with errcmp as the finding source: used suppressions silence,
// malformed/unknown/unused ones are reported.
func TestSuppressGolden(t *testing.T) { runGolden(t, ErrCmp, "suppress") }

// TestFullSuiteOverTestdata runs every analyzer over every golden
// package at once; diagnostics must exactly cover the union of wants.
// This catches analyzers that fire on another analyzer's fixtures.
func TestFullSuiteOverTestdata(t *testing.T) {
	patterns := []string{
		"lockcheck", "snapwrite", "sommelier", "sommelier/internal/catalog",
		"sommelier/internal/serving",
		"detcheck/index", "detcheck/plain", "ctxcheck/lib", "ctxcheck/mainprog",
		"errcmp", "errcmp/deps",
		"lockflow", "leakcheck", "errflow", "suppress",
	}
	pkgs := loadGolden(t, patterns...)
	wants := collectWants(t, pkgs)
	diags := Run(pkgs, Analyzers())
	if len(diags) != len(wants) {
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "  %s\n", d)
		}
		t.Errorf("suite produced %d diagnostics for %d wants:\n%s", len(diags), len(wants), b.String())
	}
}

// TestDiagnosticOrdering pins the driver's sort contract.
func TestDiagnosticOrdering(t *testing.T) {
	pkgs := loadGolden(t, "detcheck/index")
	diags := Run(pkgs, Analyzers())
	if len(diags) < 2 {
		t.Fatalf("expected multiple diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Position, diags[i].Position
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}
