package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetCheck enforces reproducibility in the determinism-critical
// packages — the ones whose output must be byte-identical for a fixed
// seed at any indexing worker count (catalog, index, equiv, lsh,
// tensor, zoo). Three rules:
//
//   - no time.Now: wall-clock reads make output depend on when it ran;
//   - no global math/rand: the process-wide source is shared,
//     unseedable in tests, and consumed in scheduling order — use a
//     seeded *rand.Rand (tensor.RNG) threaded through explicitly;
//   - no range over a map that feeds ordered output: a map-range whose
//     body appends to a slice declared outside the loop must be
//     followed, somewhere in the same function, by a sort of that
//     slice (sort.*, slices.Sort*, or a local helper whose name starts
//     with "sort" taking the slice as an argument). Map-ranges that
//     only aggregate (sums, map-to-map copies, deletions) are fine.
var DetCheck = &Analyzer{
	Name: "detcheck",
	Doc:  "deterministic packages must not read clocks, global RNG, or leak map order",
	Run:  runDetCheck,
}

// detPackages are the import-path leaf names of the packages whose
// output must be reproducible (ISSUE 3 / DESIGN.md invariants).
// Matching is by leaf name, so internal/serving/cluster is covered
// twice over: "cluster" names both the hub cluster and the serving
// cluster simulator, and both must stay deterministic.
var detPackages = map[string]bool{
	"cas":     true,
	"catalog": true,
	"chunk":   true,
	"cluster": true,
	"index":   true,
	"equiv":   true,
	"lsh":     true,
	"tensor":  true,
	"zoo":     true,
	"repo":    true,
	"hub":     true,
	"serving": true,
}

// globalRandFuncs are the math/rand package-level functions that draw
// from the shared global source. Constructors (New, NewSource, NewZipf)
// are the fix, not the problem.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32N": true, "Int64N": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

func isDetPackage(path string) bool {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		path = path[i+1:]
	}
	return detPackages[path]
}

func runDetCheck(pass *Pass) {
	if !isDetPackage(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgFunc(info, call, "time", "Now") {
				pass.Reportf(call.Pos(),
					"time.Now in a deterministic package; inject clocks from the caller")
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
					fn.Pkg() != nil && globalRandSource(fn) {
					pass.Reportf(call.Pos(),
						"global math/rand.%s in a deterministic package; use a seeded *rand.Rand (e.g. tensor.RNG)",
						fn.Name())
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapRangeOrder(pass, fd)
			}
		}
	}
}

// globalRandSource reports whether fn is a math/rand (or math/rand/v2)
// package-level draw from the global source.
func globalRandSource(fn *types.Func) bool {
	p := fn.Pkg().Path()
	if p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return globalRandFuncs[fn.Name()]
}

// checkMapRangeOrder flags map-ranges whose iteration order escapes
// into an ordered result without an intervening sort.
func checkMapRangeOrder(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// sortedObjs collects every slice object that is the first argument
	// (or appears in the arguments) of a sorting call anywhere in the
	// function: sort.*, slices.Sort*, or a local func named sort*.
	sortedObjs := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortingCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil {
				if obj := objOf(info, root); obj != nil {
					sortedObjs[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// Does the body append to a slice declared outside the loop?
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			root := rootIdent(call.Args[0])
			if root == nil {
				return true
			}
			obj := objOf(info, root)
			if obj == nil || declaredWithin(obj, rng.Body) {
				return true // loop-local accumulator: order can't escape
			}
			if !sortedObjs[obj] {
				pass.Reportf(rng.Pos(),
					"range over map feeds %s in map iteration order with no intervening sort; output is nondeterministic",
					root.Name)
				return false // one diagnostic per range is enough
			}
			return true
		})
		return true
	})
}

// isSortingCall matches stdlib sorters plus local helpers named sort*
// (e.g. lsh.sortMatches), the repo's convention for shared sort logic.
func isSortingCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if isInPlaceSort(info, call) {
			return true
		}
		return strings.HasPrefix(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.HasPrefix(strings.ToLower(fun.Name), "sort")
	}
	return false
}
