// Package lockflow is lockflow's golden input: every mutex
// acquisition must be released on all return/panic paths, and no
// file, network, or encoding call may run while a mutex is held.
// Each flagged function is paired with an explicitly clean variant of
// the same shape.
package lockflow

import (
	"encoding/json"
	"errors"
	"os"
	"sync"
)

// Store pairs a mutex with the state it protects.
type Store struct {
	mu    sync.RWMutex
	state map[string][]byte
}

var errMissing = errors.New("missing")

// getDeferred is the canonical clean pairing: defer covers every path.
func (s *Store) getDeferred(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.state[key]
	if !ok {
		return nil, errMissing
	}
	return b, nil
}

// getSplit releases explicitly on both paths — the cas.Get idiom the
// analysis must follow precisely.
func (s *Store) getSplit(key string) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.state[key]
	if !ok {
		s.mu.RUnlock()
		return nil, errMissing
	}
	s.mu.RUnlock()
	return b, nil
}

// leakOnError forgets the release on the error path.
func (s *Store) leakOnError(key string) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.state[key]
	if !ok {
		return nil, errMissing // want `Store.leakOnError returns while s.mu is still held`
	}
	s.mu.RUnlock()
	return b, nil
}

// leakToEnd falls off the end of the function with the lock held.
func (s *Store) leakToEnd(key string) {
	s.mu.Lock()
	delete(s.state, key)
} // want `Store.leakToEnd reaches the end of the function while s.mu is still held`

// panicsHeld panics inside the critical section with no deferred
// release pending — every other goroutine wedges.
func (s *Store) panicsHeld(key string) {
	s.mu.Lock()
	if s.state == nil {
		panic("no state") // want `Store.panicsHeld panics while s.mu is still held`
	}
	delete(s.state, key)
	s.mu.Unlock()
}

// panicsDeferred panics too, but the deferred release covers it.
func (s *Store) panicsDeferred(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == nil {
		panic("no state")
	}
	delete(s.state, key)
}

// deferClosure releases inside a deferred closure — also a pairing.
func (s *Store) deferClosure(key string) {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	delete(s.state, key)
}

// writeUnderLock performs disk I/O inside the critical section — the
// exact shape of the PR-6 Repository.Publish bug.
func (s *Store) writeUnderLock(path, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(path, s.state[key], 0o644) // want `Store.writeUnderLock calls os.WriteFile while s.mu is held`
}

// writeOutsideLock copies under the lock and writes after releasing.
func (s *Store) writeOutsideLock(path, key string) error {
	s.mu.Lock()
	b := append([]byte(nil), s.state[key]...)
	s.mu.Unlock()
	return os.WriteFile(path, b, 0o644)
}

// encodeUnderLock runs the encoder while holding the read lock;
// encoding counts as I/O-shaped work that must leave the section.
func (s *Store) encodeUnderLock() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return json.Marshal(s.state) // want `Store.encodeUnderLock calls json.Marshal while s.mu is held`
}

// encodeOutsideLock snapshots under the lock, encodes after.
func (s *Store) encodeOutsideLock() ([]byte, error) {
	s.mu.RLock()
	snap := make(map[string][]byte, len(s.state))
	for k, v := range s.state {
		snap[k] = v
	}
	s.mu.RUnlock()
	return json.Marshal(snap)
}

// dropLocked runs under its caller's lock by naming convention: no
// pairing is demanded of it, and touching only memory is fine.
func (s *Store) dropLocked(key string) {
	delete(s.state, key)
}

// flushLocked breaks the convention: it runs under the caller's lock
// but performs disk I/O.
func (s *Store) flushLocked(path, key string) error {
	return os.WriteFile(path, s.state[key], 0o644) // want `Store.flushLocked runs under its caller's lock \(Locked suffix\) but calls os.WriteFile`
}

// litLeak acquires inside a function literal and loses it on one path.
func (s *Store) litLeak(keys []string) func() error {
	return func() error {
		s.mu.Lock()
		for _, k := range keys {
			if k == "" {
				return errMissing // want `returns while s.mu is still held`
			}
			delete(s.state, k)
		}
		s.mu.Unlock()
		return nil
	}
}
