// Package lockcheck is lockcheck's golden input: fields annotated
// `// guarded by <mu>` must only be touched in functions that acquire
// that mutex on the same object, with the repo's *Locked-suffix and
// local-constructor conventions honoured.
package lockcheck

import "sync"

type registry struct {
	name string // unguarded: free to touch

	mu    sync.RWMutex
	items map[string]int // guarded by mu
	order []string       // guarded by mu

	statsMu sync.Mutex
	hits    int64 // guarded by statsMu
}

type annotated struct {
	mu    sync.Mutex
	count int // guarded by missing; want `names no field of this struct`
}

// Get locks correctly — no finding.
func (r *registry) Get(id string) (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.items[id]
	return v, ok
}

// Put locks correctly with the write lock — no finding.
func (r *registry) Put(id string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.items[id]; !ok {
		r.order = append(r.order, id)
	}
	r.items[id] = v
}

// Race touches guarded state with no lock at all.
func (r *registry) Race(id string) int {
	return r.items[id] // want `accesses r\.items, which is guarded by r\.mu`
}

// WrongLock holds statsMu but touches mu-guarded state.
func (r *registry) WrongLock(id string) int {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.hits++
	return r.items[id] // want `accesses r\.items, which is guarded by r\.mu`
}

// WrongObject locks one registry and reads another.
func (r *registry) WrongObject(other *registry) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(other.items) // want `accesses other\.items, which is guarded by other\.mu`
}

// lenLocked follows the *Locked convention: the caller holds the lock,
// so no finding.
func (r *registry) lenLocked() int {
	return len(r.items)
}

// newRegistry builds an object nothing else can see yet; writing its
// guarded fields without the lock is fine.
func newRegistry() *registry {
	r := &registry{}
	r.items = make(map[string]int)
	return r
}

// Name touches only unguarded state — no finding.
func (r *registry) Name() string { return r.name }
