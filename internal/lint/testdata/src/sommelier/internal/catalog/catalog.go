// Package catalog is a miniature stand-in for the real
// sommelier/internal/catalog, letting snapcheck's golden tests resolve
// a type named Snapshot at the expected import-path suffix without
// loading the whole module. It also carries snapcheck's in-package
// golden cases: rule 1 (no field stores) applies inside the catalog
// package too, everywhere except the publishLocked commit path.
package catalog

// Candidate mirrors index.Candidate's shape.
type Candidate struct {
	ID    string
	Level float64
}

// Snapshot mirrors the real immutable snapshot: unexported data
// reachable only through accessor methods.
type Snapshot struct {
	ids  []string
	refs map[string]string
}

// NewSnapshot builds a snapshot; the only legitimate construction is a
// fresh composite literal, exactly like the real publishLocked.
func NewSnapshot(ids []string, refs map[string]string) *Snapshot {
	return &Snapshot{ids: ids, refs: refs}
}

// IDs returns a copy of the indexed IDs.
func (s *Snapshot) IDs() []string { return append([]string(nil), s.ids...) }

// Lookup returns candidates above the threshold.
func (s *Snapshot) Lookup(ref string, threshold float64) ([]Candidate, error) {
	var out []Candidate
	for _, id := range s.ids {
		if id != ref {
			out = append(out, Candidate{ID: id, Level: threshold})
		}
	}
	return out, nil
}

// Refs exposes the reference table (the real Snapshot exposes lookups
// only; this exercises map-element stores through a method result).
func (s *Snapshot) Refs() map[string]string { return s.refs }

// holder is the write side owning the published snapshot.
type holder struct {
	snap *Snapshot
}

// badStore writes a map element through a Snapshot field outside the
// commit path.
func (s *Snapshot) badStore(id string) {
	s.refs[id] = id // want `writes through catalog\.Snapshot data`
}

// badField rebinds a Snapshot field in place.
func (s *Snapshot) badField(ids []string) {
	s.ids = ids // want `writes through catalog\.Snapshot data`
}

// badElem writes a slice element through a Snapshot field.
func (h *holder) badElem() {
	h.snap.ids[0] = "overwritten" // want `writes through catalog\.Snapshot data`
}

// badAddr escapes a mutable reference to snapshot innards.
func (h *holder) badAddr() *[]string {
	return &h.snap.ids // want `takes the address of catalog\.Snapshot data`
}

// publishLocked is the commit path: building a fresh snapshot and
// swapping it in is the one legitimate "mutation", so no finding here.
func (h *holder) publishLocked(ids []string, refs map[string]string) {
	next := &Snapshot{ids: ids, refs: refs}
	next.refs["boot"] = "ref"
	h.snap = next
}
