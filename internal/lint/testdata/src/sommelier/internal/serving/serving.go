// Package serving is optcheck's golden input for the serving package's
// frozen legacy structs: Workload and FailureModel are kept only so
// pre-options callers compile, so new knobs belong on the Simulator's
// functional options (or the serving/cluster generator config), never
// here. The fixture lives at the real import path's leaf name, so it is
// also covered by every package-scoped analyzer (detcheck treats
// "serving" as determinism-critical) — it must stay clean for all of
// them.
package serving

// Workload mirrors the real frozen struct: the original fields are
// allowed, anything newer is a finding.
type Workload struct {
	Requests      int
	MeanArrivalMS float64
	BurstEvery    int
	BurstLen      int
	BurstFactor   float64
	Seed          uint64

	JitterMS float64 // want `field JitterMS added to the frozen legacy Workload struct`
}

// FailureModel mirrors the real frozen struct.
type FailureModel struct {
	SwitchFailProb float64
	Seed           uint64

	RetryBudget int // want `field RetryBudget added to the frozen legacy FailureModel struct`
}

// Result is not frozen; its fields are free.
type Result struct {
	Latencies []float64
	Anything  int
}
