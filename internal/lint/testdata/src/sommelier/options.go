// Package sommelier is optcheck's golden input: a stand-in for the
// real root package whose deprecated Options struct is frozen.
package sommelier

// embeddable exists to exercise the embedded-field finding.
type embeddable struct{}

// Options mirrors the real legacy struct: the original fields are
// allowed, anything newer is a finding.
//
// Deprecated: use functional options.
type Options struct {
	Seed             uint64
	ValidationSize   int
	Bound            int
	Segments         bool
	SegmentMinLen    int
	SampleSize       int
	IndexWorkers     int
	LatencyTable     map[string]float64
	CustomValidation *int

	ShinyNewKnob bool // want `field ShinyNewKnob added to the frozen legacy Options struct`

	embeddable // want `embedded field added to the frozen legacy Options struct`
}

// options is not named Options, so its fields are free.
type options struct {
	Whatever int
}
