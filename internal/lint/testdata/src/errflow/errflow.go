// Package errflow is errflow's golden input: errors that callers test
// with errors.Is must keep their chain intact — wrapped with %w on
// every propagation hop, never flattened to text, and never replaced
// by a fresh error on a path that just proved a sentinel. Each flagged
// function is paired with a clean variant.
package errflow

import (
	"errors"
	"fmt"
)

// ErrMissing and ErrCorrupt are the package's sentinels, matched by
// callers with errors.Is.
var (
	ErrMissing = errors.New("missing")
	ErrCorrupt = errors.New("corrupt")
)

// wrapClean propagates with %w — the sanctioned shape.
func wrapClean(id string, err error) error {
	return fmt.Errorf("load %q: %w", id, err)
}

// flattenV re-stringifies the chain with %v.
func flattenV(id string, err error) error {
	return fmt.Errorf("load %q: %v", id, err) // want `error formatted with %v loses the chain`
}

// flattenS re-stringifies with %s; width and flags must not confuse
// the verb/argument alignment.
func flattenS(id string, err error) error {
	return fmt.Errorf("load %-8q: %s", id, err) // want `error formatted with %s loses the chain`
}

// stringifyNew rebuilds the error from its text.
func stringifyNew(err error) error {
	return errors.New(err.Error()) // want `err.Error\(\) re-stringifies the chain`
}

// stringifyErrorf hides the same flattening behind a string argument.
func stringifyErrorf(id string, err error) error {
	return fmt.Errorf("load %q failed: %s", id, err.Error()) // want `err.Error\(\) re-stringifies the chain`
}

// dropsSentinel proves ErrMissing holds, then returns an error that
// carries neither the original nor the sentinel.
func dropsSentinel(err error) error {
	if errors.Is(err, ErrMissing) {
		return errors.New("not found") // want `drops ErrMissing established by errors.Is`
	}
	return err
}

// keepsOriginal wraps the proven error — the chain survives.
func keepsOriginal(err error) error {
	if errors.Is(err, ErrMissing) {
		return fmt.Errorf("lookup: %w", err)
	}
	return err
}

// keepsSentinel returns the sentinel itself — also fine.
func keepsSentinel(err error) error {
	if errors.Is(err, ErrMissing) {
		return fmt.Errorf("lookup: %w", ErrMissing)
	}
	return err
}

// negatedGuard establishes the sentinel through !errors.Is on the
// early-out path; the fall-through still holds the fact.
func negatedGuard(err error) error {
	if !errors.Is(err, ErrCorrupt) {
		return nil
	}
	return errors.New("damaged beyond repair") // want `drops ErrCorrupt established by errors.Is`
}

// reassigned kills the guard: after err is replaced, a fresh error is
// no longer dropping anything.
func reassigned(err error) error {
	if errors.Is(err, ErrMissing) {
		err = nil
		return errors.New("fresh start")
	}
	return err
}

// recordError is an Error method: flattening to text is its contract,
// so none of the rules apply inside it.
type recordError struct {
	id  string
	err error
}

func (e *recordError) Error() string {
	return fmt.Sprintf("record %s: %v", e.id, e.err)
}
