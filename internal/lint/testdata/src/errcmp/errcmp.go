// Package errcmp is errcmp's golden input: sentinel errors are
// compared with errors.Is, never == or != — identity comparison can
// never match the wrapped errors this repo actually returns.
package errcmp

import (
	"errors"
	"fmt"

	"errcmp/deps"
)

// ErrStale is a local sentinel, wrapped on return like every sentinel
// in the repo.
var ErrStale = errors.New("stale")

func load(id string) error {
	if id == "" {
		return fmt.Errorf("load %q: %w", id, ErrStale)
	}
	return nil
}

func badLocal(id string) bool {
	err := load(id)
	return err == ErrStale // want `ErrStale compared with ==`
}

func badImported(err error) bool {
	if err != deps.ErrGone { // want `ErrGone compared with !=`
		return false
	}
	return true
}

// goodIs is the sanctioned pattern — no finding.
func goodIs(id string) bool {
	return errors.Is(load(id), ErrStale)
}

// nilChecks are untouched — no finding.
func nilChecks(id string) bool {
	return load(id) == nil
}

// sentinelIdentity compares two sentinels to each other — a registry
// dispatching on identity, not an error-path test. No finding.
func sentinelIdentity() bool {
	return ErrStale == deps.ErrGone
}
