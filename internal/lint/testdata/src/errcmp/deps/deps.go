// Package deps provides a cross-package sentinel for errcmp's golden
// tests.
package deps

import "errors"

// ErrGone is wrapped by callers; match it with errors.Is.
var ErrGone = errors.New("gone")
