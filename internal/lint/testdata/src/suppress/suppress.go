// Package suppress exercises the //lint:ignore directive: a justified
// suppression silences the diagnostic on its own line or the line
// below, while malformed, unknown, and unused directives are
// themselves reported — a suppression can never silently outlive the
// code it excuses.
package suppress

import "errors"

// ErrGone is a sentinel; comparing it with == is errcmp's finding.
var ErrGone = errors.New("gone")

// silenced carries a justified suppression above the flagged line: no
// errcmp finding, no suppress finding.
func silenced(err error) bool {
	//lint:ignore errcmp the test doubles in this package return the sentinel unwrapped, so identity comparison is deliberate
	return err == ErrGone
}

// trailing suppresses from the flagged line itself.
func trailing(err error) bool {
	return err == ErrGone //lint:ignore errcmp legacy callers pass the sentinel through unwrapped
}

// stale is an unused suppression: the code below uses errors.Is, so
// the directive suppresses nothing and is reported itself.
func stale(err error) bool {
	//lint:ignore errcmp nothing left to excuse -- want `unused //lint:ignore for errcmp`
	return errors.Is(err, ErrGone)
}

// bare gives no reason, so it is malformed and suppresses nothing:
// both the directive and the comparison are reported.
func bare(err error) bool {
	/* want `requires an analyzer name and a reason` */ //lint:ignore errcmp
	return err != ErrGone // want `ErrGone compared with !=`
}

// unknown names an analyzer that does not exist.
func unknown(err error) bool {
	//lint:ignore nosuchcheck the check was renamed long ago; want `unknown analyzer "nosuchcheck"`
	return errors.Is(err, ErrGone)
}
