// Package leakcheck is leakcheck's golden input: every acquired OS
// resource must be closed on all paths (or handed off), and every
// goroutine in a library package must be visibly bounded. Each flagged
// function is paired with a clean variant of the same shape.
package leakcheck

import (
	"context"
	"errors"
	"net/http"
	"os"
	"sync"
)

var errEmpty = errors.New("empty")

// readDeferred is the canonical clean shape: open, check the error,
// defer the Close.
func readDeferred(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// leakOnError closes on the happy path but loses the handle when the
// marker check fails.
func leakOnError(path, marker string) error {
	f, err := os.Open(path) // want `the os.Open result is not closed on the return path`
	if err != nil {
		return err
	}
	if marker == "" {
		return errEmpty
	}
	f.Close()
	return nil
}

// closeSplit closes explicitly on both paths — clean without a defer.
func closeSplit(path, marker string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if marker == "" {
		f.Close()
		return errEmpty
	}
	f.Close()
	return nil
}

// leakToEnd falls off the end of the function with the file open.
func leakToEnd(path string) {
	f, err := os.Create(path) // want `the os.Create result is not closed on the fall-through path`
	if err != nil {
		return
	}
	f.Write(nil)
}

// openHandle transfers ownership to the caller: returning the
// resource is not a leak.
func openHandle(path string) (*os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// handOff transfers ownership to a callee.
func handOff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return consume(f)
}

func consume(f *os.File) error {
	defer f.Close()
	return nil
}

// discard drops the handle where it stands; nothing can close it.
func discard(path string) {
	os.Create(path) // want `result of os.Create is discarded`
}

// discardBlank assigns the handle to the blank identifier.
func discardBlank(path string) {
	_, _ = os.Create(path) // want `result of os.Create is assigned to _`
}

// fetchLeak forgets the response body on the status-check path.
func fetchLeak(c *http.Client, url string) error {
	resp, err := c.Get(url) // want `the http.Client.Get result is not closed on the return path`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return errEmpty
	}
	resp.Body.Close()
	return nil
}

// fetchDeferred defers the body close right after the error check.
func fetchDeferred(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// counter is shared state for the goroutine fixtures.
type counter struct {
	mu sync.Mutex
	n  int
}

// spawnUnbounded launches a goroutine nothing bounds or joins.
func spawnUnbounded(c *counter) {
	go func() { // want `spawnUnbounded starts a goroutine that is neither ctx-bounded nor joined`
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// spawnJoined signals a WaitGroup the spawner waits on.
func spawnJoined(c *counter, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// spawnBounded consumes a context: its lifetime is the caller's.
func spawnBounded(ctx context.Context, c *counter) {
	go func() {
		<-ctx.Done()
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// spawnChannel sends on a channel the spawner receives from — the
// join-channel idiom.
func spawnChannel(c *counter) {
	done := make(chan struct{})
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
		done <- struct{}{}
	}()
	<-done
}
