// Package index is detcheck's golden input: its import-path leaf
// ("index") marks it determinism-critical, so clock reads, global RNG,
// and order-leaking map ranges are all findings — while the idiomatic
// seeded-RNG and sort-after-range patterns stay silent.
package index

import (
	"math/rand"
	"sort"
	"time"
)

func clockLeak() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic package`
}

func globalRNG() int {
	return rand.Intn(5) // want `global math/rand\.Intn in a deterministic package`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
}

// seededRNG is the sanctioned pattern: an explicit seeded source.
func seededRNG(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(5)
}

func orderLeak(set map[string]bool) []string {
	var ids []string
	for id := range set { // want `range over map feeds ids in map iteration order`
		ids = append(ids, id)
	}
	return ids
}

// sortedAfterRange is the sanctioned pattern: collect, then sort.
func sortedAfterRange(set map[string]bool) []string {
	var ids []string
	for id := range set {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// helperSorted trusts the repo convention that sort-prefixed helpers
// establish order (lsh.sortMatches).
func helperSorted(set map[string]int) []string {
	var ids []string
	for id := range set {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

func sortIDs(ids []string) { sort.Strings(ids) }

// aggregate only folds the map into order-independent state — ranges
// like this never leak iteration order.
func aggregate(set map[string]int) int {
	total := 0
	for _, v := range set {
		total += v
	}
	return total
}

// copyMap rebuilds a map from a map; no ordered output involved.
func copyMap(src map[string]string) map[string]string {
	dst := make(map[string]string, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// localAccumulator appends inside the loop body to a slice that never
// outlives one iteration; iteration order cannot escape.
func localAccumulator(set map[string][]int) int {
	n := 0
	for _, vs := range set {
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		n += len(evens)
	}
	return n
}
