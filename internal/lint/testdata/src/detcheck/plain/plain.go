// Package plain is detcheck's negative control: it is NOT a
// determinism-critical package (its import-path leaf is not in the
// set), so the very same patterns that are findings in detcheck/index
// are silent here.
package plain

import (
	"math/rand"
	"time"
)

func clock() int64 { return time.Now().UnixNano() }

func draw() int { return rand.Intn(5) }

func order(set map[string]bool) []string {
	var ids []string
	for id := range set {
		ids = append(ids, id)
	}
	return ids
}
