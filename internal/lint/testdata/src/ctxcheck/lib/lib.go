// Package lib is ctxcheck's golden input for library packages: ctx
// goes first, and roots (Background/TODO) are never minted here.
package lib

import "context"

// Fetch threads ctx first — no finding.
func Fetch(ctx context.Context, id string) error {
	_, cancel := context.WithTimeout(ctx, 0)
	defer cancel()
	return ctx.Err()
}

// Buried takes ctx in the middle of the parameter list.
func Buried(id string, ctx context.Context, n int) error { // want `takes context\.Context at position 2`
	return ctx.Err()
}

// Minted fabricates a root, detaching work from the caller.
func Minted(id string) error {
	ctx := context.Background() // want `context\.Background in a library package`
	return ctx.Err()
}

// Todo is the same violation in TODO form.
func Todo(id string) error {
	return context.TODO().Err() // want `context\.TODO in a library package`
}

// literalBuried flags function literals too.
var literalBuried = func(n int, ctx context.Context) error { // want `takes context\.Context at position 2`
	return ctx.Err()
}

// NoCtx takes no context at all — threading is only checked where a
// ctx exists, so no finding.
func NoCtx(id string) string { return id }

// FetchLegacy wraps Fetch for pre-context callers.
//
// Deprecated: use Fetch. A deprecated compatibility shim is the one
// place a library may mint a root, so no finding here.
func FetchLegacy(id string) error {
	return Fetch(context.Background(), id)
}

// FreshMint looks like a shim but is not marked deprecated, so the
// allowance does not apply.
func FreshMint(id string) error {
	return Fetch(context.Background(), id) // want `context\.Background in a library package`
}
