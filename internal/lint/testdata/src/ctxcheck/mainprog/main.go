// Command mainprog is ctxcheck's negative control: package main is
// where context roots belong, so Background/TODO are silent here.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
