// Package snapwrite is snapcheck's golden input for rule 2: outside
// internal/catalog, data obtained from a Snapshot method is immutable —
// element writes, appends, and in-place sorts are flagged; copies are
// the sanctioned idiom.
package snapwrite

import (
	"sort"

	"sommelier/internal/catalog"
)

func mutateDerived(s *catalog.Snapshot) {
	cands, _ := s.Lookup("ref", 0.9)
	cands[0].Level = 0 // want `writes into data derived from a catalog\.Snapshot`

	ids := s.IDs()
	ids[0] = "swapped" // want `writes into data derived from a catalog\.Snapshot`

	_ = append(ids, "extra") // want `appends to a snapshot-derived slice`

	sort.Strings(ids) // want `sorts a snapshot-derived slice in place`

	s.Refs()["task"] = "model" // want `writes into data derived from a catalog\.Snapshot`
}

// copyFirst is the sanctioned pattern: copy, then do whatever you want
// — no findings.
func copyFirst(s *catalog.Snapshot) []string {
	ids := append([]string(nil), s.IDs()...)
	ids[0] = "mine"
	sort.Strings(ids)
	ids = append(ids, "extra")
	return ids
}

// reassignment kills the taint: once the variable is rebound to
// non-snapshot data, writes are fine.
func retaint(s *catalog.Snapshot, other []string) {
	ids := s.IDs()
	ids = other
	ids[0] = "fine"
	sort.Strings(ids)
}

// readOnly exercises the untainted read paths — no findings.
func readOnly(s *catalog.Snapshot) int {
	n := 0
	for _, id := range s.IDs() {
		if id != "" {
			n++
		}
	}
	return n
}
