package lint

import (
	"go/ast"
	"strings"
)

// CtxCheck enforces the context conventions for library packages:
//
//   - a function that takes a context.Context must take it as the
//     first parameter (after the receiver), so cancellation plumbs
//     uniformly through call chains;
//   - library code must not mint context.Background() or
//     context.TODO(): roots belong in package main (and tests), and a
//     library that fabricates its own root silently detaches the work
//     from the caller's deadline and cancellation.
//
// One narrow allowance: a function whose doc comment carries a
// "Deprecated:" notice may mint a root. That is the compatibility-shim
// pattern — a ctx-less legacy name wrapping its ctx-first replacement —
// and the deprecation marker is exactly the signal that the function
// exists only for callers who cannot pass a context yet. New code
// cannot use the loophole without also declaring itself deprecated.
//
// Package main is exempt from both rules, and test files are never
// loaded by the driver.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc:  "libraries thread ctx as the first parameter and never mint Background/TODO",
	Run:  runCtxCheck,
}

func runCtxCheck(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			deprecated := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				deprecated = isDeprecated(fd.Doc)
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncDecl:
					checkCtxPosition(pass, x.Type, funcScopeName(x))
				case *ast.FuncLit:
					checkCtxPosition(pass, x.Type, "function literal")
				case *ast.CallExpr:
					if deprecated {
						return true
					}
					for _, name := range [...]string{"Background", "TODO"} {
						if pkgFunc(info, x, "context", name) {
							pass.Reportf(x.Pos(),
								"context.%s in a library package; accept a ctx from the caller instead",
								name)
						}
					}
				}
				return true
			})
		}
	}
}

// isDeprecated reports whether a doc comment carries the conventional
// "Deprecated:" marker.
func isDeprecated(doc *ast.CommentGroup) bool {
	return doc != nil && strings.Contains(doc.Text(), "Deprecated:")
}

// checkCtxPosition flags context.Context parameters that are not the
// first parameter.
func checkCtxPosition(pass *Pass, ft *ast.FuncType, where string) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		isCtx := ok && namedType(tv.Type, "context", "Context")
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && pos != 0 {
			pass.Reportf(field.Pos(),
				"%s takes context.Context at position %d; ctx must be the first parameter",
				where, pos+1)
		}
		pos += n
	}
}
