package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockCheck enforces the repo's `// guarded by <mu>` annotation: a
// struct field carrying the annotation may only be accessed in
// functions that acquire that mutex on the same object.
//
// The check is intra-procedural and deliberately convention-shaped:
//
//   - Functions whose name ends in "Locked" are exempt — by repo
//     convention their callers hold the lock (publishLocked,
//     noteDefaultRefLocked).
//   - Accesses through a variable declared inside the function body are
//     exempt: a value a constructor is still building has not been
//     published to other goroutines yet.
//   - Acquisition is flow-insensitive: any <obj>.<mu>.Lock() or
//     <obj>.<mu>.RLock() call in the function counts. Helper functions
//     that take over a locked object are the "Locked" suffix's job.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated `// guarded by <mu>` must only be accessed under that mutex",
	Run:  runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardAnnotation extracts the mutex name from a field's comments.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func runLockCheck(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: collect annotated fields, mapping the field's object to
	// the guarding mutex field's name.
	guards := make(map[types.Object]string)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				if !fieldNames[mu] {
					pass.Reportf(field.Pos(),
						"`guarded by %s` names no field of this struct", mu)
					continue
				}
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return
	}

	// Pass 2: for each function, record which (object, mutex) pairs are
	// acquired, then flag guarded-field accesses with no acquisition.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockedAccesses(pass, fd, guards)
		}
	}
}

func checkLockedAccesses(pass *Pass, fd *ast.FuncDecl, guards map[types.Object]string) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	info := pass.Pkg.Info

	// acquired holds (base object, mutex field name) pairs for every
	// `base.mu.Lock()` / `base.mu.RLock()` call in the function.
	type acquisition struct {
		obj types.Object
		mu  string
	}
	acquired := make(map[acquisition]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := rootIdent(muSel.X)
		if root == nil {
			return true
		}
		if obj := objOf(info, root); obj != nil {
			acquired[acquisition{obj, muSel.Sel.Name}] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		mu, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil {
			return true
		}
		obj := objOf(info, root)
		if obj == nil || declaredWithin(obj, fd.Body) {
			return true // a local the function built itself: unpublished
		}
		if !acquired[acquisition{obj, mu}] {
			pass.Reportf(sel.Sel.Pos(),
				"%s accesses %s.%s, which is guarded by %s.%s, without acquiring it",
				funcScopeName(fd), root.Name, sel.Sel.Name, root.Name, mu)
		}
		return true
	})
}
