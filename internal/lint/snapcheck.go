package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapCheck enforces the catalog's copy-on-write contract: a published
// catalog.Snapshot is immutable. Two rules:
//
//  1. Field stores: no assignment through a Snapshot's fields (or
//     through map/slice elements reached from them), anywhere. The
//     commit path builds fresh snapshots with composite literals and
//     publishes them atomically, so even internal/catalog has no
//     legitimate field store outside publishLocked.
//
//  2. Derived data (outside internal/catalog): values returned by
//     Snapshot methods are treated as immutable. Writing an element,
//     appending to, or in-place sorting a snapshot-derived slice is
//     flagged — copy first. Tracking is intra-procedural: a variable
//     assigned from a Snapshot method call is tainted until reassigned
//     from something else.
var SnapCheck = &Analyzer{
	Name: "snapcheck",
	Doc:  "published catalog.Snapshot data must never be mutated",
	Run:  runSnapCheck,
}

const snapPkgSuffix = "internal/catalog"

func runSnapCheck(pass *Pass) {
	inCatalog := pass.Pkg.Path == snapPkgSuffix ||
		strings.HasSuffix(pass.Pkg.Path, "/"+snapPkgSuffix)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if inCatalog && fd.Name.Name == "publishLocked" {
				continue // the one place snapshots are built and swapped in
			}
			checkSnapshotWrites(pass, fd)
			if !inCatalog {
				checkDerivedWrites(pass, fd)
			}
		}
	}
}

// isSnapshotType reports whether t is catalog.Snapshot (or a pointer
// to it).
func isSnapshotType(t types.Type) bool {
	return t != nil && namedType(t, snapPkgSuffix, "Snapshot")
}

// snapshotBase walks an lvalue chain (selectors, index expressions)
// and reports whether it passes through a Snapshot value — i.e. the
// write lands in data reachable from a Snapshot's fields.
func snapshotBase(info *types.Info, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if tv, ok := info.Types[x.X]; ok && isSnapshotType(tv.Type) {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// checkSnapshotWrites flags rule 1: assignments through Snapshot
// fields.
func checkSnapshotWrites(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	report := func(lhs ast.Expr) {
		if snapshotBase(info, lhs) {
			pass.Reportf(lhs.Pos(),
				"%s writes through catalog.Snapshot data; snapshots are immutable after publish",
				funcScopeName(fd))
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				report(lhs)
			}
		case *ast.IncDecStmt:
			report(st.X)
		case *ast.UnaryExpr:
			// &s.field escapes a mutable reference to snapshot innards.
			if st.Op == token.AND && snapshotBase(info, st.X) {
				pass.Reportf(st.Pos(),
					"%s takes the address of catalog.Snapshot data; snapshots are immutable after publish",
					funcScopeName(fd))
			}
		}
		return true
	})
}

// snapshotMethodCall reports whether the expression is a method call
// with a catalog.Snapshot receiver (snap.Lookup(...), snap.IDs(), ...).
func snapshotMethodCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	return isSnapshotType(selection.Recv())
}

// checkDerivedWrites flags rule 2: mutation of snapshot-derived slices
// and maps outside internal/catalog.
func checkDerivedWrites(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	tainted := make(map[types.Object]bool)

	// taintRoot walks an expression chain down to its base; the chain
	// is tainted if any level is a Snapshot method call or the base is
	// a tainted variable.
	taintRoot := func(e ast.Expr) bool {
		for {
			if snapshotMethodCall(info, e) {
				return true
			}
			switch x := e.(type) {
			case *ast.Ident:
				obj := objOf(info, x)
				return obj != nil && tainted[obj]
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			default:
				return false
			}
		}
	}

	// ast.Inspect visits statements in source order, which is enough
	// for an intra-procedural, straight-line taint approximation.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// Flag element/field writes through tainted roots first,
			// then update taint from this statement's RHS.
			for _, lhs := range st.Lhs {
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue // rebinding the variable itself is fine
				}
				if taintRoot(lhs) {
					pass.Reportf(lhs.Pos(),
						"%s writes into data derived from a catalog.Snapshot; copy before mutating",
						funcScopeName(fd))
				}
			}
			fromSnap := len(st.Rhs) == 1 && snapshotMethodCall(info, st.Rhs[0])
			for _, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(info, id)
				if obj == nil {
					continue
				}
				if fromSnap && !isErrorType(obj.Type()) {
					tainted[obj] = true
				} else {
					delete(tainted, obj) // reassigned from elsewhere
				}
			}
		case *ast.CallExpr:
			if fn, ok := st.Fun.(*ast.Ident); ok && fn.Name == "append" &&
				len(st.Args) > 0 && taintRoot(st.Args[0]) {
				pass.Reportf(st.Pos(),
					"%s appends to a snapshot-derived slice, which may write into the snapshot's backing array; copy first",
					funcScopeName(fd))
			}
			if isInPlaceSort(info, st) && len(st.Args) > 0 && taintRoot(st.Args[0]) {
				pass.Reportf(st.Pos(),
					"%s sorts a snapshot-derived slice in place; copy before sorting",
					funcScopeName(fd))
			}
		}
		return true
	})
}

// isInPlaceSort matches the stdlib in-place sorters (sort.*, slices.Sort*).
func isInPlaceSort(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Reverse"
	}
	return false
}
