package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedType reports whether t (after deref) is the named type
// pkgSuffix.name, matching the declaring package by import-path suffix
// so the check works for both the real module layout and the golden
// testdata layout.
func namedType(t types.Type, pkgSuffix, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgSuffix || strings.HasSuffix(p, "/"+pkgSuffix)
}

// rootIdent walks selector/index/paren/star/slice chains down to the
// base identifier, or nil when the chain bottoms out in something else
// (a call, a literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object (use or def).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether the object is declared inside the
// node's source range — used to tell locals (including the locals a
// constructor builds before publishing) from receivers, parameters,
// and package-level state.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// pkgFunc reports whether the called expression is the package-level
// function pkgPath.name (methods never match).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// funcScopeName returns the name of the enclosing function declaration
// for decl-level walks; helper for diagnostics.
func funcScopeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
