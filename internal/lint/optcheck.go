package lint

import (
	"go/ast"
)

// frozenStructs maps package name → struct name → its frozen field set.
// These are the legacy configuration structs kept only so pre-options
// callers compile after a functional-options redesign. Each has a
// conversion path (Options.options, Workload → arrival stream,
// FailureModel → fault schedule) that would silently drop any field the
// author forgets to map, so the safe rule is absolute: no new fields,
// ever. New knobs are With… functional options — on the root engine,
// the serving Simulator, or the serving/cluster Sim.
var frozenStructs = map[string]map[string]map[string]bool{
	"sommelier": {
		"Options": {
			"Seed":             true,
			"ValidationSize":   true,
			"Bound":            true,
			"Segments":         true,
			"SegmentMinLen":    true,
			"SampleSize":       true,
			"IndexWorkers":     true,
			"LatencyTable":     true,
			"CustomValidation": true,
		},
	},
	"serving": {
		"Workload": {
			"Requests":      true,
			"MeanArrivalMS": true,
			"BurstEvery":    true,
			"BurstLen":      true,
			"BurstFactor":   true,
			"Seed":          true,
		},
		"FailureModel": {
			"SwitchFailProb": true,
			"Seed":           true,
		},
	},
}

// OptCheck freezes the deprecated configuration structs: the root
// package's Options plus the serving package's Workload and
// FailureModel. Configuration knobs added after the functional-options
// redesigns must be With… Option constructors, not struct fields — a
// field added to a frozen struct but not to its legacy converter would
// be silently ignored for every caller. This check turns that quiet
// divergence into a lint failure.
var OptCheck = &Analyzer{
	Name: "optcheck",
	Doc:  "legacy config structs (Options, Workload, FailureModel) are frozen; new knobs must be functional options",
	Run:  runOptCheck,
}

func runOptCheck(pass *Pass) {
	structs := frozenStructs[pass.Pkg.Types.Name()]
	if structs == nil {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				fields := structs[ts.Name.Name]
				if fields == nil {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if !fields[name.Name] {
							pass.Reportf(name.Pos(),
								"field %s added to the frozen legacy %s struct; add a With%s functional option instead",
								name.Name, ts.Name.Name, name.Name)
						}
					}
					if len(field.Names) == 0 {
						pass.Reportf(field.Pos(),
							"embedded field added to the frozen legacy %s struct; add a functional option instead",
							ts.Name.Name)
					}
				}
			}
		}
	}
}
