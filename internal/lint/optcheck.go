package lint

import (
	"go/ast"
)

// optionsFields is the frozen field set of the root package's legacy
// Options struct, as of its deprecation in favour of functional
// options. The struct is kept only so pre-options callers compile; its
// conversion path (Options.options) would silently drop any field the
// author forgets to map, so the safe rule is absolute: no new fields,
// ever. New knobs are With… functional options.
var optionsFields = map[string]bool{
	"Seed":             true,
	"ValidationSize":   true,
	"Bound":            true,
	"Segments":         true,
	"SegmentMinLen":    true,
	"SampleSize":       true,
	"IndexWorkers":     true,
	"LatencyTable":     true,
	"CustomValidation": true,
}

// OptCheck freezes the deprecated Options struct in the root sommelier
// package: configuration knobs added after the functional-options
// redesign must be With… Option constructors, not struct fields. A
// field added to Options but not to the legacy converter would be
// silently ignored for every NewEngine caller — this check turns that
// quiet divergence into a lint failure.
var OptCheck = &Analyzer{
	Name: "optcheck",
	Doc:  "the legacy Options struct is frozen; new knobs must be functional options",
	Run:  runOptCheck,
}

func runOptCheck(pass *Pass) {
	if pass.Pkg.Types.Name() != "sommelier" {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Options" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if !optionsFields[name.Name] {
							pass.Reportf(name.Pos(),
								"field %s added to the frozen legacy Options struct; add a With%s functional option instead",
								name.Name, name.Name)
						}
					}
					if len(field.Names) == 0 {
						pass.Reportf(field.Pos(),
							"embedded field added to the frozen legacy Options struct; add a functional option instead")
					}
				}
			}
		}
	}
}
