package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestShapeNumElements(t *testing.T) {
	cases := []struct {
		shape Shape
		want  int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{2, 3}, 6},
		{Shape{4, 1, 7}, 28},
	}
	for _, c := range cases {
		if got := c.shape.NumElements(); got != c.want {
			t.Errorf("NumElements(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	a := Shape{2, 3}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone not equal: %v vs %v", a, b)
	}
	b[0] = 9
	if a.Equal(b) {
		t.Fatal("mutating clone affected original comparison")
	}
	if a.Equal(Shape{2, 3, 1}) {
		t.Fatal("shapes of different rank reported equal")
	}
}

func TestNewZeroFilled(t *testing.T) {
	x := New(3, 4)
	if x.NumElements() != 12 {
		t.Fatalf("NumElements = %d, want 12", x.NumElements())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestAtSetOffsets(t *testing.T) {
	x := New(2, 3)
	x.Set(1.5, 1, 2)
	if got := x.At(1, 2); got != 1.5 {
		t.Fatalf("At(1,2) = %g, want 1.5", got)
	}
	if got := x.Data()[5]; got != 1.5 {
		t.Fatalf("flat[5] = %g, want 1.5 (row-major layout)", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice should wrap, not copy")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 7
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if !y.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("reshape shape = %v", y.Shape())
	}
	y.Data()[0] = 10
	if x.Data()[0] != 10 {
		t.Fatal("Reshape should be a view over the same data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data(); got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 10 {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2).Add(New(3))
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{3, -1, 4, 1}, 4)
	if x.Sum() != 7 {
		t.Errorf("Sum = %g", x.Sum())
	}
	if x.Mean() != 1.75 {
		t.Errorf("Mean = %g", x.Mean())
	}
	if x.Max() != 4 {
		t.Errorf("Max = %g", x.Max())
	}
	if x.ArgMax() != 2 {
		t.Errorf("ArgMax = %d", x.ArgMax())
	}
}

func TestArgMaxTieBreaksLow(t *testing.T) {
	x := FromSlice([]float64{5, 5, 1}, 3)
	if x.ArgMax() != 0 {
		t.Fatalf("ArgMax tie = %d, want 0", x.ArgMax())
	}
}

func TestL2NormAndDistance(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if !almostEqual(a.L2Norm(), 5, 1e-12) {
		t.Errorf("L2Norm = %g", a.L2Norm())
	}
	b := FromSlice([]float64{0, 0}, 2)
	if !almostEqual(L2Distance(a, b), 5, 1e-12) {
		t.Errorf("L2Distance = %g", L2Distance(a, b))
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := FromSlice([]float64{1, 0}, 2)
	b := FromSlice([]float64{0, 1}, 2)
	if !almostEqual(CosineSimilarity(a, a), 1, 1e-12) {
		t.Errorf("cos(a,a) = %g", CosineSimilarity(a, a))
	}
	if !almostEqual(CosineSimilarity(a, b), 0, 1e-12) {
		t.Errorf("cos(a,b) = %g", CosineSimilarity(a, b))
	}
	z := New(2)
	if CosineSimilarity(a, z) != 0 {
		t.Error("cosine with zero vector should be 0")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul[%d] = %g, want %g", i, v, want[i])
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(7)
	a := New(4, 4)
	rng.FillNormal(a, 0, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i := range a.Data() {
		if !almostEqual(c.Data()[i], a.Data()[i], 1e-12) {
			t.Fatalf("A*I differs at %d", i)
		}
	}
}

func TestMatVecMatchesMatMul(t *testing.T) {
	rng := NewRNG(11)
	a := New(3, 5)
	rng.FillNormal(a, 0, 1)
	x := New(5)
	rng.FillNormal(x, 0, 1)
	got := MatVec(a, x)
	want := MatMul(a, x.Reshape(5, 1)).Reshape(3)
	for i := range got.Data() {
		if !almostEqual(got.Data()[i], want.Data()[i], 1e-10) {
			t.Fatalf("MatVec[%d] = %g, want %g", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if !at.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("transpose shape %v", at.Shape())
	}
	if at.At(2, 1) != a.At(1, 2) {
		t.Fatal("transpose values wrong")
	}
}

func TestSpectralNormDiagonal(t *testing.T) {
	// For a diagonal matrix the spectral norm is the largest |entry|.
	a := New(3, 3)
	a.Set(2, 0, 0)
	a.Set(-5, 1, 1)
	a.Set(1, 2, 2)
	got := SpectralNorm(a, 50)
	if !almostEqual(got, 5, 1e-6) {
		t.Fatalf("SpectralNorm = %g, want 5", got)
	}
}

func TestSpectralNormZero(t *testing.T) {
	if got := SpectralNorm(New(3, 4), 10); got != 0 {
		t.Fatalf("SpectralNorm(zero) = %g", got)
	}
}

func TestSpectralNormBoundsFrobenius(t *testing.T) {
	// sigma_max <= ||A||_F always; check on random matrices.
	rng := NewRNG(3)
	for trial := 0; trial < 5; trial++ {
		a := New(6, 4)
		rng.FillNormal(a, 0, 1)
		s := SpectralNorm(a, 60)
		f := FrobeniusNorm(a)
		if s > f+1e-9 {
			t.Fatalf("spectral %g exceeds Frobenius %g", s, f)
		}
		if s <= 0 {
			t.Fatalf("spectral norm of random matrix should be positive")
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	s := Softmax(x)
	if !almostEqual(s.Sum(), 1, 1e-12) {
		t.Fatalf("softmax sums to %g", s.Sum())
	}
	if s.ArgMax() != 2 {
		t.Fatal("softmax should preserve argmax")
	}
	// Row-wise for rank 2.
	m := FromSlice([]float64{1, 2, 5, 1}, 2, 2)
	sm := Softmax(m)
	if !almostEqual(sm.Data()[0]+sm.Data()[1], 1, 1e-12) {
		t.Fatal("row 0 not normalized")
	}
	if !almostEqual(sm.Data()[2]+sm.Data()[3], 1, 1e-12) {
		t.Fatal("row 1 not normalized")
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := FromSlice([]float64{1000, 1001}, 2)
	s := Softmax(x)
	if math.IsNaN(s.Sum()) || !almostEqual(s.Sum(), 1, 1e-9) {
		t.Fatalf("softmax unstable: %v", s.Data())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should (almost surely) differ")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(5)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(77)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestFillXavierScale(t *testing.T) {
	r := NewRNG(13)
	w := New(100, 100)
	r.FillXavier(w)
	var sq float64
	for _, v := range w.Data() {
		sq += v * v
	}
	std := math.Sqrt(sq / float64(w.NumElements()))
	want := math.Sqrt(2.0 / 200.0)
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("xavier std = %g, want ~%g", std, want)
	}
}

// Property: triangle inequality for L2Distance.
func TestPropertyTriangleInequality(t *testing.T) {
	f := func(xs, ys, zs [4]float64) bool {
		a := FromSlice(xs[:], 4)
		b := FromSlice(ys[:], 4)
		c := FromSlice(zs[:], 4)
		return L2Distance(a, c) <= L2Distance(a, b)+L2Distance(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a, b, c := New(3, 4), New(4, 2), New(4, 2)
		rng.FillNormal(a, 0, 1)
		rng.FillNormal(b, 0, 1)
		rng.FillNormal(c, 0, 1)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		for i := range left.Data() {
			if !almostEqual(left.Data()[i], right.Data()[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ||Ax|| <= sigma_max(A) * ||x|| for unit vectors x — the exact
// inequality the error-propagation bounds in internal/equiv rely on.
func TestPropertySpectralNormDominates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		a := New(5, 5)
		rng.FillNormal(a, 0, 1)
		sigma := SpectralNorm(a, 80)
		x := New(5)
		rng.FillNormal(x, 0, 1)
		// Allow 1% slack for power-iteration convergence.
		return MatVec(a, x).L2Norm() <= sigma*x.L2Norm()*1.01+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: softmax output is a probability vector for any input.
func TestPropertySoftmaxSimplex(t *testing.T) {
	f := func(xs [6]float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true // skip degenerate quick inputs
			}
		}
		s := Softmax(FromSlice(xs[:], 6))
		sum := 0.0
		for _, v := range s.Data() {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
