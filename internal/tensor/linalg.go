package tensor

import (
	"fmt"
	"math"
)

// MatMul multiplies a (m×k) by b (k×n) and returns an m×n tensor. Both
// operands must be rank-2.
func MatMul(a, b *Tensor) *Tensor {
	if a.shape.Rank() != 2 || b.shape.Rank() != 2 {
		panic(fmt.Errorf("%w: MatMul needs rank-2 operands, got %v and %v", ErrShape, a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Errorf("%w: MatMul inner dims %d vs %d", ErrShape, k, k2))
	}
	out := New(m, n)
	// ikj loop order keeps the inner loop streaming over contiguous rows
	// of b and out, which matters for the larger models in the zoo.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatVec multiplies a (m×k) by vector x (k) and returns a length-m vector.
func MatVec(a, x *Tensor) *Tensor {
	if a.shape.Rank() != 2 || x.shape.Rank() != 1 {
		panic(fmt.Errorf("%w: MatVec needs (2,1) ranks, got %v and %v", ErrShape, a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if k != x.shape[0] {
		panic(fmt.Errorf("%w: MatVec dims %d vs %d", ErrShape, k, x.shape[0]))
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.shape.Rank() != 2 {
		panic(fmt.Errorf("%w: Transpose needs rank-2, got %v", ErrShape, a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// SpectralNorm estimates the largest singular value of a rank-2 tensor via
// power iteration on AᵀA. iters controls accuracy; 30 is plenty for the
// bound computations, which tolerate a few percent of slack.
func SpectralNorm(a *Tensor, iters int) float64 {
	if a.shape.Rank() != 2 {
		panic(fmt.Errorf("%w: SpectralNorm needs rank-2, got %v", ErrShape, a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	if m == 0 || n == 0 {
		return 0
	}
	if iters <= 0 {
		iters = 30
	}
	// Deterministic start vector: all ones, plus a ramp to avoid landing
	// exactly in a null space of structured matrices.
	v := New(n)
	for i := range v.data {
		v.data[i] = 1 + float64(i%7)*1e-3
	}
	normalize(v)
	var sigma float64
	for it := 0; it < iters; it++ {
		// u = A v ; v = Aᵀ u
		u := MatVec(a, v)
		sigma = u.L2Norm()
		if sigma == 0 {
			return 0
		}
		normalize(u)
		v = matTVec(a, u, m, n)
		if nv := v.L2Norm(); nv == 0 {
			return sigma
		}
		normalize(v)
	}
	return sigma
}

func matTVec(a, u *Tensor, m, n int) *Tensor {
	out := New(n)
	for i := 0; i < m; i++ {
		ui := u.data[i]
		if ui == 0 {
			continue
		}
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += v * ui
		}
	}
	return out
}

func normalize(v *Tensor) {
	n := v.L2Norm()
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range v.data {
		v.data[i] *= inv
	}
}

// FrobeniusNorm returns the Frobenius norm of any tensor.
func FrobeniusNorm(a *Tensor) float64 { return a.L2Norm() }

// Softmax returns the softmax of a rank-1 tensor, or row-wise softmax of a
// rank-2 tensor.
func Softmax(a *Tensor) *Tensor {
	switch a.shape.Rank() {
	case 1:
		return softmaxRow(a.data)
	case 2:
		out := New(a.shape...)
		n := a.shape[1]
		for i := 0; i < a.shape[0]; i++ {
			row := softmaxRow(a.data[i*n : (i+1)*n])
			copy(out.data[i*n:(i+1)*n], row.data)
		}
		return out
	default:
		panic(fmt.Errorf("%w: Softmax needs rank 1 or 2, got %v", ErrShape, a.shape))
	}
}

func softmaxRow(row []float64) *Tensor {
	out := New(len(row))
	m := row[0]
	for _, v := range row[1:] {
		if v > m {
			m = v
		}
	}
	s := 0.0
	for i, v := range row {
		e := math.Exp(v - m)
		out.data[i] = e
		s += e
	}
	inv := 1 / s
	for i := range out.data {
		out.data[i] *= inv
	}
	return out
}
