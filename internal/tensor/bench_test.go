package tensor

import "testing"

func benchMatrix(n int, seed uint64) *Tensor {
	m := New(n, n)
	NewRNG(seed).FillNormal(m, 0, 1)
	return m
}

func BenchmarkMatMul128(b *testing.B) {
	x := benchMatrix(128, 1)
	y := benchMatrix(128, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatVec1024(b *testing.B) {
	m := benchMatrix(1024, 3)
	v := New(1024)
	NewRNG(4).FillNormal(v, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(m, v)
	}
}

func BenchmarkSpectralNorm256(b *testing.B) {
	m := benchMatrix(256, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpectralNorm(m, 30)
	}
}

func BenchmarkSoftmax4096(b *testing.B) {
	v := New(4096)
	NewRNG(6).FillNormal(v, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(v)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(7)
	for i := 0; i < b.N; i++ {
		r.NormFloat64()
	}
}
