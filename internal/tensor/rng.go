package tensor

import "math"

// RNG is a small, fast, seedable pseudo-random generator (splitmix64 core)
// used everywhere randomness appears in the reproduction so that every
// experiment is deterministic given its seed. math/rand would also work,
// but a local implementation pins the exact sequence across Go versions.
type RNG struct {
	state uint64
	// spare holds a cached second Gaussian sample from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard-normal sample via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// ExpFloat64 returns an exponential sample with mean 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork returns an independent generator derived from this one's stream, so
// subsystems can draw without perturbing each other's sequences.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// FillUniform fills t with uniform samples in [lo, hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float64) {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*r.Float64()
	}
}

// FillNormal fills t with Gaussian samples of the given mean and stddev.
func (r *RNG) FillNormal(t *Tensor, mean, stddev float64) {
	for i := range t.data {
		t.data[i] = mean + stddev*r.NormFloat64()
	}
}

// FillXavier fills a rank-2 weight tensor using Glorot/Xavier scaling, the
// initializer the zoo uses so synthesized layers have realistic spectra.
func (r *RNG) FillXavier(t *Tensor) {
	if t.shape.Rank() != 2 {
		r.FillNormal(t, 0, 0.05)
		return
	}
	fanIn, fanOut := t.shape[1], t.shape[0]
	stddev := math.Sqrt(2.0 / float64(fanIn+fanOut))
	r.FillNormal(t, 0, stddev)
}
