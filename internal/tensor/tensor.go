// Package tensor provides the dense numeric substrate for the Sommelier
// reproduction: shapes, float64 tensors, linear algebra (including the
// spectral-norm estimates the equivalence bounds in internal/equiv rely
// on), and seeded random fills so every experiment is deterministic.
package tensor

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Shape describes the extent of each tensor dimension, outermost first.
type Shape []int

// NumElements returns the product of all dimensions. The empty shape is a
// scalar and has one element.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i, d := range s {
		if d != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	shape Shape
	data  []float64
}

// ErrShape is returned when an operation receives incompatible shapes.
var ErrShape = errors.New("tensor: shape mismatch")

// New allocates a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{shape: s, data: make([]float64, s.NumElements())}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly, not copied; len(data) must equal shape.NumElements().
func FromSlice(data []float64, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(data) {
		panic(fmt.Sprintf("tensor: %d elements do not fit shape %v", len(data), s))
	}
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the backing slice in row-major order. Mutations are visible
// to the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return len(t.data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view with a new shape covering the same data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if s.NumElements() != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, s))
	}
	return &Tensor{shape: s, data: t.data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Fill sets every element to v and returns the tensor.
func (t *Tensor) Fill(v float64) *Tensor {
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Apply replaces each element x with f(x) in place and returns the tensor.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float64) float64) *Tensor {
	return t.Clone().Apply(f)
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	r, err := zipSameShape(t, o, func(a, b float64) float64 { return a + b })
	if err != nil {
		panic(err)
	}
	return r
}

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	r, err := zipSameShape(t, o, func(a, b float64) float64 { return a - b })
	if err != nil {
		panic(err)
	}
	return r
}

// Mul returns the elementwise (Hadamard) product t * o.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	r, err := zipSameShape(t, o, func(a, b float64) float64 { return a * b })
	if err != nil {
		panic(err)
	}
	return r
}

// Scale returns t multiplied by scalar k.
func (t *Tensor) Scale(k float64) *Tensor {
	return t.Map(func(v float64) float64 { return v * k })
}

// AddInPlace accumulates o into t elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.shape.Equal(o.shape) {
		panic(fmt.Errorf("%w: %v vs %v", ErrShape, t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
}

func zipSameShape(a, b *Tensor, f func(float64, float64) float64) (*Tensor, error) {
	if !a.shape.Equal(b.shape) {
		return nil, fmt.Errorf("%w: %v vs %v", ErrShape, a.shape, b.shape)
	}
	r := New(a.shape...)
	for i := range a.data {
		r.data[i] = f(a.data[i], b.data[i])
	}
	return r, nil
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index (in flattened row-major order) of the largest
// element, breaking ties toward the lowest index.
func (t *Tensor) ArgMax() int {
	if len(t.data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// L2Distance returns the Euclidean distance between the flattened tensors.
func L2Distance(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Errorf("%w: %v vs %v", ErrShape, a.shape, b.shape))
	}
	s := 0.0
	for i := range a.data {
		d := a.data[i] - b.data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// CosineSimilarity returns the cosine of the angle between the flattened
// tensors, or 0 if either has zero norm.
func CosineSimilarity(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Errorf("%w: %v vs %v", ErrShape, a.shape, b.shape))
	}
	var dot, na, nb float64
	for i := range a.data {
		dot += a.data[i] * b.data[i]
		na += a.data[i] * a.data[i]
		nb += b.data[i] * b.data[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

func (t *Tensor) String() string {
	if len(t.data) <= 8 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%g %g %g ... %g]", t.shape, t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1])
}
