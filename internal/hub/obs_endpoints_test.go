package hub

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"sommelier/internal/obs"
	"sommelier/internal/repo"
)

// newObservedHub builds a hub whose server and client share one
// observer, plus an echo querier, so one /v1/metrics snapshot carries
// endpoint, client, and query metrics together.
func newObservedHub(t testing.TB) (*httptest.Server, *Client, *obs.Observer) {
	t.Helper()
	store := repo.NewInMemory()
	o := obs.New()
	srv, err := NewServer(store,
		WithServerObserver(o),
		WithQuerier(func(ctx context.Context, q string) (any, error) {
			if q == "boom" {
				return nil, fmt.Errorf("bad query")
			}
			return []string{"m@1"}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client(), WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	return ts, client, o
}

// TestMetricsEndpoint is the acceptance check for the unified snapshot:
// after an upload, a fetch, and a query, GET /v1/metrics returns request
// counts and latency percentiles for each endpoint in one obs.Snapshot
// JSON document — the same shape obs.Snapshot marshals to directly.
func TestMetricsEndpoint(t *testing.T) {
	ts, client, _ := newObservedHub(t)

	id, err := client.Publish(testModel(t, "observed", 1))
	if err != nil {
		t.Fatal(err)
	}
	// Fetch over raw HTTP: client.Load would serve the model from its
	// write-through cache without touching the fetch endpoint.
	if resp, err := ts.Client().Get(ts.URL + "/v1/models/" + id); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch status = %d", resp.StatusCode)
		}
	}
	if resp, err := ts.Client().Get(ts.URL + "/v1/query?q=ok"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status = %d", resp.StatusCode)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics body is not a Snapshot: %v", err)
	}

	for _, op := range []string{"upload", "fetch", "query"} {
		if got := snap.Counters["hub_"+op+"_requests_total"]; got < 1 {
			t.Errorf("hub_%s_requests_total = %d, want >= 1", op, got)
		}
		h, ok := snap.Histograms["hub_"+op+"_ms"]
		if !ok {
			t.Errorf("no hub_%s_ms histogram in snapshot", op)
			continue
		}
		if h.Count < 1 {
			t.Errorf("hub_%s_ms count = %d, want >= 1", op, h.Count)
		}
		if h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > h.Max {
			t.Errorf("hub_%s_ms percentiles not monotone: p50=%v p95=%v p99=%v max=%v",
				op, h.P50, h.P95, h.P99, h.Max)
		}
	}
	// The shared observer folds client-side gauges into the same
	// snapshot — satellite 3's one-shape contract.
	if _, ok := snap.Gauges["hub_client_breaker_state"]; !ok {
		t.Error("client breaker gauge missing from the unified snapshot")
	}
}

// TestMetricsEndpointCountsErrors checks 4xx responses land in the
// per-endpoint error counters.
func TestMetricsEndpointCountsErrors(t *testing.T) {
	ts, _, o := newObservedHub(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/models/ghost@9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch ghost status = %d", resp.StatusCode)
	}
	snap := o.Snapshot()
	if got := snap.Counters["hub_fetch_errors_total"]; got != 1 {
		t.Fatalf("hub_fetch_errors_total = %d, want 1", got)
	}
}

// TestQueryEndpoint pins the /v1/query contract: echo on success,
// 400 on missing q or query error, 501 when the hub has no engine.
func TestQueryEndpoint(t *testing.T) {
	ts, _, _ := newObservedHub(t)

	resp, err := ts.Client().Get(ts.URL + "/v1/query?q=ok")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Query   string   `json:"query"`
		Results []string `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad query response %q: %v", body, err)
	}
	if out.Query != "ok" || len(out.Results) != 1 {
		t.Fatalf("query response = %+v", out)
	}

	for _, path := range []string{"/v1/query", "/v1/query?q=boom"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s status = %d, want 400", path, resp.StatusCode)
		}
	}

	// A hub without a querier declares the endpoint unimplemented.
	bare, err := NewServer(repo.NewInMemory())
	if err != nil {
		t.Fatal(err)
	}
	bts := httptest.NewServer(bare)
	defer bts.Close()
	resp, err = bts.Client().Get(bts.URL + "/v1/query?q=ok")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("bare hub query status = %d, want 501", resp.StatusCode)
	}
}

// TestTracezEndpoint checks span recording: instrumented requests leave
// hub.<op> spans in the ring, and a hub without an observer still
// serves a valid (empty) JSON array.
func TestTracezEndpoint(t *testing.T) {
	ts, client, _ := newObservedHub(t)
	if _, err := client.Publish(testModel(t, "traced", 1)); err != nil {
		t.Fatal(err)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []obs.SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatalf("tracez body is not a span list: %v", err)
	}
	found := false
	for _, s := range spans {
		if s.Name == "hub.upload" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no hub.upload span in %d recorded spans", len(spans))
	}

	bare, err := NewServer(repo.NewInMemory())
	if err != nil {
		t.Fatal(err)
	}
	bts := httptest.NewServer(bare)
	defer bts.Close()
	resp, err = bts.Client().Get(bts.URL + "/v1/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var empty []obs.SpanRecord
	if err := json.NewDecoder(resp.Body).Decode(&empty); err != nil {
		t.Fatalf("unobserved tracez not valid JSON: %v", err)
	}
	if len(empty) != 0 {
		t.Fatalf("unobserved hub recorded %d spans", len(empty))
	}
}
