package hub

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"

	"sommelier/internal/cas"
	"sommelier/internal/chunk"
	"sommelier/internal/graph"
	"sommelier/internal/repo"
)

// ErrChunkUnsupported is wrapped by chunk-protocol errors when the hub
// deliberately refused the chunk endpoints — an older or wrapped hub.
// Callers fall back to whole-model transfer.
var ErrChunkUnsupported = errors.New("hub: chunk transfer not supported")

// chunkUnsupported classifies hub answers that mean "this hub cannot
// speak the chunk protocol" (as opposed to transient failures or a
// missing model).
func chunkUnsupported(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	switch se.Code {
	case http.StatusNotImplemented, http.StatusMethodNotAllowed, http.StatusUnsupportedMediaType:
		return true
	}
	return false
}

func (c *Client) chunkURL(hash string) string {
	return c.base + "/v1/chunks/" + url.PathEscape(hash)
}

// LoadManifest fetches a model's chunk manifest.
func (c *Client) LoadManifest(id string) (_ *cas.Manifest, err error) {
	done := c.timeOp("manifest")
	defer func() { done(err) }()
	var man *cas.Manifest
	err = c.do(true, buildGet(c.modelURL(id)+"?format=manifest"), func(resp *http.Response) error {
		if err := expectStatus(resp, http.StatusOK); err != nil {
			return err
		}
		var derr error
		man, derr = cas.DecodeManifest(resp.Body)
		return derr
	})
	if err != nil {
		if chunkUnsupported(err) {
			err = fmt.Errorf("%w: %w", ErrChunkUnsupported, err)
		}
		return nil, fmt.Errorf("hub: manifest %s: %w", id, err)
	}
	return man, nil
}

// HasChunk probes whether the hub holds a chunk.
func (c *Client) HasChunk(hash string) (bool, error) {
	has := false
	err := c.do(true,
		func() (*http.Request, error) { return http.NewRequest(http.MethodHead, c.chunkURL(hash), nil) },
		func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusOK:
				has = true
				return nil
			case http.StatusNotFound:
				return nil
			}
			return &StatusError{Code: resp.StatusCode, msg: resp.Status}
		})
	if err != nil {
		if chunkUnsupported(err) {
			err = fmt.Errorf("%w: %w", ErrChunkUnsupported, err)
		}
		return false, fmt.Errorf("hub: has chunk %s: %w", hash, err)
	}
	return has, nil
}

// GetChunk fetches one chunk, verifying the bytes against the address
// so a corrupted transfer is caught at the edge.
func (c *Client) GetChunk(hash string) (_ []byte, err error) {
	var data []byte
	err = c.do(true, buildGet(c.chunkURL(hash)), func(resp *http.Response) error {
		if err := expectStatus(resp, http.StatusOK); err != nil {
			return err
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if got := chunk.Hash(b); got != hash {
			return fmt.Errorf("chunk %s arrived hashing to %s", hash, got)
		}
		data = b
		return nil
	})
	if err != nil {
		if chunkUnsupported(err) {
			err = fmt.Errorf("%w: %w", ErrChunkUnsupported, err)
		}
		return nil, fmt.Errorf("hub: get chunk %s: %w", hash, err)
	}
	return data, nil
}

// PutChunk uploads one chunk. Chunk PUTs are idempotent by content
// addressing, so the retry machinery applies.
func (c *Client) PutChunk(hash string, data []byte) error {
	err := c.do(true,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPut, c.chunkURL(hash), bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/octet-stream")
			return req, nil
		},
		func(resp *http.Response) error { return expectStatus(resp, http.StatusCreated) })
	if err != nil {
		if chunkUnsupported(err) {
			err = fmt.Errorf("%w: %w", ErrChunkUnsupported, err)
		}
		return fmt.Errorf("hub: put chunk %s: %w", hash, err)
	}
	return nil
}

// putManifest PUTs a manifest; on 409 it returns the hub's missing
// chunk list with a nil error and created=false.
func (c *Client) putManifest(man *cas.Manifest) (created bool, missing []string, err error) {
	var body bytes.Buffer
	if err := cas.EncodeManifest(&body, man); err != nil {
		return false, nil, err
	}
	data := body.Bytes()
	err = c.do(false,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPut, c.modelURL(man.ID()), bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", ContentTypeManifest)
			return req, nil
		},
		func(resp *http.Response) error {
			switch resp.StatusCode {
			case http.StatusCreated:
				created = true
				return nil
			case http.StatusConflict:
				var wire struct {
					Missing []string `json:"missing"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
					return err
				}
				missing = wire.Missing
				return nil
			}
			return &StatusError{Code: resp.StatusCode, msg: readError(resp)}
		})
	return created, missing, err
}

// PublishEncoded publishes an already-chunked model through the
// negotiation protocol: PUT the manifest, upload exactly the chunks the
// hub says it is missing, re-PUT. Hubs that cannot speak the protocol
// get the whole model via Publish, so the call succeeds either way;
// the returned bytes count is the chunk payload actually uploaded
// (zero when the hub already held everything, -1 on fallback).
func (c *Client) PublishEncoded(enc *cas.Encoded) (_ string, sent int64, err error) {
	done := c.timeOp("publish_chunked")
	defer func() { done(err) }()
	id := enc.Manifest.ID()
	created, missing, err := c.putManifest(enc.Manifest)
	if err == nil && !created {
		sort.Strings(missing)
		for _, h := range missing {
			data, ok := enc.Chunks[h]
			if !ok {
				err = fmt.Errorf("hub needs chunk %s the encoding does not carry", h)
				break
			}
			if err = c.PutChunk(h, data); err != nil {
				break
			}
			sent += int64(len(data))
		}
		if err == nil {
			created, missing, err = c.putManifest(enc.Manifest)
			if err == nil && !created {
				err = fmt.Errorf("hub still missing %d chunks after upload", len(missing))
			}
		}
	}
	if err != nil {
		if chunkUnsupported(err) && enc.Model != nil {
			// Old hub: ship the whole model.
			id, perr := c.Publish(enc.Model)
			return id, -1, perr
		}
		return "", sent, fmt.Errorf("hub: publish %s: %w", id, err)
	}
	c.mu.Lock()
	if enc.Model != nil {
		c.cache.add(id, enc.Model)
	}
	c.mu.Unlock()
	return id, sent, nil
}

// PublishModel chunk-encodes a model and publishes it through the
// negotiation protocol (falling back to whole-model transfer for hubs
// that cannot negotiate). The graph.Model-first counterpart of
// PublishEncoded for callers without a repository to encode against.
func (c *Client) PublishModel(m *graph.Model) (string, int64, error) {
	if err := m.Validate(); err != nil {
		return "", 0, fmt.Errorf("hub: refusing invalid model: %w", err)
	}
	enc, err := cas.Encode(m, "", nil, 0)
	if err != nil {
		return "", 0, fmt.Errorf("hub: encoding: %w", err)
	}
	return c.PublishEncoded(enc)
}

// Mirror copies every hub model into a local repository — the 3-line
// migration path of §6: point Sommelier at a mirror of any hub. When
// the hub speaks the chunk protocol, each model transfers as manifest
// plus only the chunks the destination is missing, so re-mirroring a
// mostly-unchanged hub moves metadata, not tensors; older hubs fall
// back to whole-model fetches. Mirror tolerates partial failure: a
// model that cannot be fetched or stored is skipped and reported, and
// the rest of the hub still mirrors. The returned count is the number
// of models copied; the error is nil on full success, a *MirrorError on
// partial success, or a plain error if the hub could not be listed.
func (c *Client) Mirror(dst *repo.Repository) (int, error) {
	list, err := c.List()
	if err != nil {
		return 0, err
	}
	n := 0
	chunked := true
	var failed map[string]error
	for _, md := range list {
		var err error
		if chunked {
			err = c.mirrorChunked(dst, md.ID)
			if errors.Is(err, ErrChunkUnsupported) {
				chunked = false // stop asking; this hub cannot negotiate
			}
		}
		if !chunked || err != nil {
			// Whole-model path: both the fallback for old hubs and the
			// recovery path when one chunked transfer fails.
			var m *graph.Model
			m, err = c.Load(md.ID)
			if err == nil {
				_, err = dst.Publish(m)
				if err != nil {
					err = fmt.Errorf("hub: mirroring %s: %w", md.ID, err)
				}
			}
		}
		if err != nil {
			if failed == nil {
				failed = make(map[string]error)
			}
			failed[md.ID] = err
			continue
		}
		n++
	}
	if failed != nil {
		return n, &MirrorError{Errs: failed}
	}
	return n, nil
}

// mirrorChunked copies one model by manifest + missing chunks.
func (c *Client) mirrorChunked(dst *repo.Repository, id string) error {
	man, err := c.LoadManifest(id)
	if err != nil {
		return err
	}
	for _, h := range dst.MissingChunks(man) {
		data, err := c.GetChunk(h)
		if err != nil {
			return err
		}
		if err := dst.PutChunk(h, data); err != nil {
			return fmt.Errorf("hub: mirroring %s: %w", id, err)
		}
	}
	if _, err := dst.PublishManifest(man); err != nil {
		return fmt.Errorf("hub: mirroring %s: %w", id, err)
	}
	return nil
}
