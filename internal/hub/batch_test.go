package hub

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sommelier/internal/repo"
)

// newBatchHub builds a hub whose batch behavior is driven by opts, plus
// a client against it.
func newBatchHub(t testing.TB, opts ...ServerOption) (*httptest.Server, *Client) {
	t.Helper()
	srv, err := NewServer(repo.NewInMemory(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, client
}

// echoQuerier answers with the query string; "boom" fails.
func echoQuerier(ctx context.Context, q string) (any, error) {
	if q == "boom" {
		return nil, fmt.Errorf("bad query")
	}
	return []string{q}, nil
}

// TestQueryBatchOverSingleQuerier pins the compatibility rule: any hub
// with a single-query Querier answers POST /v1/query by looping it, with
// per-query error slots instead of whole-batch failure.
func TestQueryBatchOverSingleQuerier(t *testing.T) {
	_, client := newBatchHub(t, WithQuerier(echoQuerier))
	qs := []string{"alpha", "boom", "beta"}
	raws, qerrs, err := client.QueryBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(raws) != 3 || len(qerrs) != 3 {
		t.Fatalf("misaligned batch response: %d results, %d errors", len(raws), len(qerrs))
	}
	for _, i := range []int{0, 2} {
		if qerrs[i] != nil {
			t.Fatalf("slot %d: unexpected error %v", i, qerrs[i])
		}
		want := fmt.Sprintf("[%q]", qs[i])
		if string(raws[i]) != want {
			t.Fatalf("slot %d: got %s, want %s", i, raws[i], want)
		}
	}
	if qerrs[1] == nil || !strings.Contains(qerrs[1].Message, "bad query") {
		t.Fatalf("slot 1: got %v, want per-query bad-query error", qerrs[1])
	}
}

// TestQueryBatchNativeQuerier pins that a registered BatchQuerier is
// preferred over looping the single querier, and that its error codes
// survive the wire.
func TestQueryBatchNativeQuerier(t *testing.T) {
	var sawBatch bool
	_, client := newBatchHub(t,
		WithQuerier(echoQuerier),
		WithBatchQuerier(func(ctx context.Context, qs []string) ([]any, []*QueryError) {
			sawBatch = true
			results := make([]any, len(qs))
			qerrs := make([]*QueryError, len(qs))
			for i, q := range qs {
				if q == "ghost" {
					qerrs[i] = &QueryError{Message: "no such reference", Code: CodeUnknownReference}
					continue
				}
				results[i] = []string{q}
			}
			return results, qerrs
		}))
	raws, qerrs, err := client.QueryBatch(context.Background(), []string{"alpha", "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if !sawBatch {
		t.Fatal("hub looped the single querier despite a registered BatchQuerier")
	}
	if qerrs[0] != nil || string(raws[0]) != `["alpha"]` {
		t.Fatalf("slot 0: got %s / %v", raws[0], qerrs[0])
	}
	if qerrs[1] == nil || qerrs[1].Code != CodeUnknownReference {
		t.Fatalf("slot 1: got %v, want code %q", qerrs[1], CodeUnknownReference)
	}
}

// TestQueryBatchRejections pins the failure edges: a hub with no querier
// at all answers 501 (which the client folds into ErrBatchUnsupported),
// and malformed or empty batches answer 400.
func TestQueryBatchRejections(t *testing.T) {
	_, client := newBatchHub(t)
	_, _, err := client.QueryBatch(context.Background(), []string{"alpha"})
	if !errors.Is(err, ErrBatchUnsupported) {
		t.Fatalf("bare hub: err = %v, want ErrBatchUnsupported", err)
	}

	ts2, client2 := newBatchHub(t, WithQuerier(echoQuerier))
	for _, body := range []string{`{"queries":[]}`, `{not json`} {
		resp, err := ts2.Client().Post(ts2.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if _, _, err := client2.QueryBatch(context.Background(), nil); err == nil {
		t.Fatal("empty batch accepted by client")
	}
}

// TestQueryBatchUnsupportedMapping pins the mixed-version detection: a
// pre-batch hub that answers 405 (or 404/501) on POST maps onto
// ErrBatchUnsupported so callers can fall back to serial queries.
func TestQueryBatchUnsupportedMapping(t *testing.T) {
	for _, code := range []int{http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "nope", code)
		}))
		client, err := NewClient(ts.URL, ts.Client())
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = client.QueryBatch(context.Background(), []string{"alpha"})
		if !errors.Is(err, ErrBatchUnsupported) {
			t.Fatalf("status %d: err = %v, want ErrBatchUnsupported", code, err)
		}
		ts.Close()
	}
}
