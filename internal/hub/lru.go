package hub

import (
	"container/list"

	"sommelier/internal/graph"
)

// modelLRU is a size-capped model cache: the hub client's defense
// against unbounded memory growth when mirroring a large hub. Not
// safe for concurrent use — the client guards it with its own mutex.
type modelLRU struct {
	cap   int // <= 0 means unbounded
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	id string
	m  *graph.Model
}

func newModelLRU(capacity int) *modelLRU {
	return &modelLRU{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached model and marks it most-recently-used.
func (l *modelLRU) get(id string) (*graph.Model, bool) {
	e, ok := l.items[id]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(e)
	return e.Value.(*lruEntry).m, true
}

// add inserts or refreshes an entry, evicting the least-recently-used
// entries beyond the cap.
func (l *modelLRU) add(id string, m *graph.Model) {
	if e, ok := l.items[id]; ok {
		e.Value.(*lruEntry).m = m
		l.ll.MoveToFront(e)
		return
	}
	l.items[id] = l.ll.PushFront(&lruEntry{id: id, m: m})
	for l.cap > 0 && l.ll.Len() > l.cap {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry).id)
	}
}

// remove drops an entry if present.
func (l *modelLRU) remove(id string) {
	if e, ok := l.items[id]; ok {
		l.ll.Remove(e)
		delete(l.items, id)
	}
}

// len returns the number of cached models.
func (l *modelLRU) len() int { return l.ll.Len() }
