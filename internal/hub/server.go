// Package hub exposes a model repository over HTTP — the "remote
// filesystem" role TF-Hub and PyTorch Hub play in Figure 1. The server
// wraps a repo.Repository with the bare-bone publish/load/list REST
// interface existing hubs provide; the client implements the same Go
// surface as a local repository so Sommelier can interpose on a remote
// hub exactly as on a local one (§6: "only 3 lines of configuration
// change to migrate Sommelier across model repositories").
//
// Endpoints:
//
//	GET  /v1/models            — list model metadata (JSON)
//	GET  /v1/models/{id}       — fetch one model (SOMX)
//	PUT  /v1/models/{id}       — publish a model (SOMX body)
//	DELETE /v1/models/{id}     — remove a model
package hub

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"sommelier/internal/graph"
	"sommelier/internal/repo"
)

// Server serves a repository over HTTP.
type Server struct {
	store *repo.Repository
	mux   *http.ServeMux
}

// NewServer wraps a repository.
func NewServer(store *repo.Repository) (*Server, error) {
	if store == nil {
		return nil, fmt.Errorf("hub: nil repository")
	}
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/models", s.handleList)
	s.mux.HandleFunc("/v1/models/", s.handleModel)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// metaJSON is the wire form of repo.Metadata.
type metaJSON struct {
	ID      string            `json:"id"`
	Name    string            `json:"name"`
	Version string            `json:"version"`
	Task    string            `json:"task"`
	Series  string            `json:"series,omitempty"`
	Notes   map[string]string `json:"annotations,omitempty"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var out []metaJSON
	for _, md := range s.store.List() {
		out = append(out, metaJSON{
			ID: md.ID, Name: md.Name, Version: md.Version,
			Task: string(md.Task), Series: md.Series, Notes: md.Annotations,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	if id == "" {
		http.Error(w, "missing model id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		m, err := s.store.Load(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-somx")
		if err := graph.Encode(w, m); err != nil {
			// Headers are gone; nothing more to do than log via the
			// error path available to handlers.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case http.MethodPut:
		m, err := graph.Decode(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		gotID, err := s.store.Publish(m)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if gotID != id {
			// The bare-bone interface is load-by-exact-URL; a body
			// whose identity disagrees with the path would corrupt
			// later lookups.
			_ = s.store.Delete(gotID)
			http.Error(w, fmt.Sprintf("model identity %q does not match path id %q", gotID, id),
				http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		if err := s.store.Delete(id); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
