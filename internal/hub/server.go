// Package hub exposes a model repository over HTTP — the "remote
// filesystem" role TF-Hub and PyTorch Hub play in Figure 1. The server
// wraps a repo.Repository with the bare-bone publish/load/list REST
// interface existing hubs provide; the client implements the same Go
// surface as a local repository so Sommelier can interpose on a remote
// hub exactly as on a local one (§6: "only 3 lines of configuration
// change to migrate Sommelier across model repositories").
//
// Endpoints:
//
//	GET  /v1/models            — list model metadata (JSON)
//	GET  /v1/models/{id}       — fetch one model (SOMX), or its chunk
//	                             manifest with ?format=manifest
//	PUT  /v1/models/{id}       — publish a model (SOMX body), or by
//	                             manifest (chunk negotiation; see chunks.go)
//	DELETE /v1/models/{id}     — remove a model
//	HEAD/GET/PUT /v1/chunks/{hash} — probe/fetch/upload one tensor chunk
//	GET  /v1/query?q=…         — run a Sommelier query (JSON; needs WithQuerier)
//	POST /v1/query             — run a query batch ({"queries":[…]} body;
//	                             needs WithQuerier or WithBatchQuerier)
//	GET  /v1/metrics           — observability snapshot (JSON; needs WithObserver)
//	GET  /v1/tracez            — recent spans, oldest first (JSON; needs WithObserver)
//	GET  /v1/healthz           — liveness + model count (JSON)
package hub

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"sommelier/internal/graph"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
)

// Store is the repository surface the server needs — satisfied by
// *repo.Repository and by fault-injecting wrappers in tests.
type Store interface {
	Publish(m *graph.Model) (string, error)
	Load(id string) (*graph.Model, error)
	Delete(id string) error
	List() []repo.Metadata
	Metadata(id string) (repo.Metadata, bool)
	Len() int
}

// Indexer receives accepted uploads so the serving catalog stays
// current — the curated-hub mode where Sommelier indexes models as they
// arrive instead of in offline batches. The ctx is the upload request's
// context: a client that gives up mid-upload cancels the pairwise
// analysis too. An Indexer must treat an already indexed ID as success,
// not an error (re-publishing a version is legal hub behaviour).
// *sommelier.Engine satisfies it via IndexModel.
type Indexer interface {
	IndexModel(ctx context.Context, id string, m *graph.Model) error
}

// Querier answers query strings for the /v1/query endpoint. The result
// is marshaled to JSON as-is. *sommelier.Engine's QueryContext fits
// after a one-line adaptation (see cmd/sommhub); the indirection keeps
// this package free of an upward dependency on the root engine.
type Querier func(ctx context.Context, q string) (any, error)

// QueryError is the wire form of one failed query in a batch. Code
// carries machine-readable classifications a remote caller needs to
// branch on without string matching; the only code this package
// defines is CodeUnknownReference.
type QueryError struct {
	Message string `json:"message"`
	Code    string `json:"code,omitempty"`
}

// CodeUnknownReference marks a per-query failure whose cause is that
// the answering catalog does not hold the query's reference model — an
// expected per-shard condition in a sharded deployment, which cluster
// coordinators convert into an empty shard contribution.
const CodeUnknownReference = "unknown_reference"

// Error implements error.
func (e *QueryError) Error() string { return e.Message }

// BatchQuerier answers query batches for POST /v1/query: results and
// errors are aligned with the input by index, exactly one of
// results[i]/errs[i] meaningful per slot. *sommelier.Engine's
// QueryBatchContext fits after a small adaptation (see cmd/sommhub).
// When only a Querier is configured the server loops it instead, so
// the batch endpoint works against any query-enabled hub.
type BatchQuerier func(ctx context.Context, qs []string) ([]any, []*QueryError)

// DefaultMaxBodyBytes caps PUT bodies; a bare-bone hub should not be
// taken down by one oversized (or unbounded) upload.
const DefaultMaxBodyBytes int64 = 64 << 20

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithMaxBodyBytes sets the PUT body limit; n <= 0 keeps the default.
func WithMaxBodyBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBody = n
		}
	}
}

// WithIndexer makes the server index every accepted upload. When
// indexing fails, the upload is rejected and — unless the PUT
// overwrote a pre-existing version — rolled back, keeping "published
// implies indexed" true for models that arrived through this server.
func WithIndexer(ix Indexer) ServerOption {
	return func(s *Server) { s.indexer = ix }
}

// WithQuerier enables GET /v1/query, answering query strings through q.
func WithQuerier(q Querier) ServerOption {
	return func(s *Server) { s.querier = q }
}

// WithBatchQuerier enables the batched form of POST /v1/query to be
// answered natively (one snapshot, shared scratch state) instead of by
// looping the single-query Querier.
func WithBatchQuerier(bq BatchQuerier) ServerOption {
	return func(s *Server) { s.batchQuerier = bq }
}

// WithShardInfo declares the server's place in a shard cluster: this
// node serves shard `shard` of `shards`. The identity is reported in
// /v1/healthz so coordinators and operators can confirm a node serves
// the partition they think it does before routing traffic at it.
func WithShardInfo(shard, shards int) ServerOption {
	return func(s *Server) { s.shard, s.shards = shard, shards }
}

// WithServerObserver attaches an observability handle: every endpoint
// records a request counter and latency histogram through it
// (hub_<op>_requests_total / hub_<op>_errors_total / hub_<op>_ms, for
// op in list, fetch, upload, delete, query, healthz), and the snapshot
// is served at /v1/metrics with recent spans at /v1/tracez. Pass the
// same observer the engine uses and /v1/metrics becomes the one unified
// snapshot — hub, catalog, and query metrics together.
func WithServerObserver(o *obs.Observer) ServerOption {
	return func(s *Server) { s.obs = o }
}

// Server serves a repository over HTTP.
type Server struct {
	store   Store
	mux     *http.ServeMux
	maxBody int64
	indexer Indexer
	querier Querier
	// batchQuerier answers POST /v1/query natively; when nil the server
	// loops querier per batch element instead.
	batchQuerier BatchQuerier
	obs          *obs.Observer
	// shard/shards identify this node's partition when it runs as part
	// of a cluster; shards == 0 means standalone.
	shard, shards int
}

// NewServer wraps a repository.
func NewServer(store Store, opts ...ServerOption) (*Server, error) {
	if store == nil {
		return nil, fmt.Errorf("hub: nil repository")
	}
	s := &Server{store: store, mux: http.NewServeMux(), maxBody: DefaultMaxBodyBytes}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/v1/models", s.instrument("list", s.handleList))
	s.mux.HandleFunc("/v1/models/", s.handleModel)
	s.mux.HandleFunc("/v1/chunks/", s.instrument("chunk", s.handleChunk))
	s.mux.HandleFunc("/v1/query", s.instrument("query", s.handleQuery))
	s.mux.HandleFunc("/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/tracez", s.handleTracez)
	s.mux.HandleFunc("/v1/healthz", s.instrument("healthz", s.handleHealthz))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusWriter remembers the status code a handler sent so instrument
// can count errors without re-deriving them.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the per-endpoint request counter,
// error counter, latency histogram, and a span named after the
// operation. With no observer configured every obs call is a nil-safe
// no-op, so the wrapper costs nothing.
func (s *Server) instrument(op string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.obs.Counter("hub_" + op + "_requests_total").Inc()
		ctx, span := s.obs.StartSpan(r.Context(), "hub."+op, "")
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		s.obs.Histogram("hub_" + op + "_ms").Observe(span.End())
		if sw.status >= 400 {
			s.obs.Counter("hub_" + op + "_errors_total").Inc()
		}
	}
}

// metaJSON is the wire form of repo.Metadata.
type metaJSON struct {
	ID      string            `json:"id"`
	Name    string            `json:"name"`
	Version string            `json:"version"`
	Task    string            `json:"task"`
	Series  string            `json:"series,omitempty"`
	Notes   map[string]string `json:"annotations,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	health := map[string]any{
		"status": "ok",
		"models": s.store.Len(),
	}
	if s.shards > 0 {
		health["shard"] = s.shard
		health["shards"] = s.shards
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(health)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var out []metaJSON
	for _, md := range s.store.List() {
		out = append(out, metaJSON{
			ID: md.ID, Name: md.Name, Version: md.Version,
			Task: string(md.Task), Series: md.Series, Notes: md.Annotations,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.obs.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	spans := s.obs.Tracer().Recent()
	if spans == nil {
		spans = []obs.SpanRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(spans); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		s.serveQueryBatch(w, r)
		return
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.querier == nil {
		http.Error(w, "query endpoint not enabled on this hub", http.StatusNotImplemented)
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	res, err := s.querier(r.Context(), q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(map[string]any{"query": q, "results": res}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// batchRequest/batchResponse are the POST /v1/query wire forms. The
// response arrays are index-aligned with the request: for every i
// exactly one of results[i] (non-null) and errors[i] (non-null) holds.
type batchRequest struct {
	Queries []string `json:"queries"`
}

type batchResponse struct {
	Results []any         `json:"results"`
	Errors  []*QueryError `json:"errors"`
}

func (s *Server) serveQueryBatch(w http.ResponseWriter, r *http.Request) {
	if s.querier == nil && s.batchQuerier == nil {
		http.Error(w, "query endpoint not enabled on this hub", http.StatusNotImplemented)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("decoding batch body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "empty query batch", http.StatusBadRequest)
		return
	}
	results, qerrs := s.runBatch(r.Context(), req.Queries)
	if len(results) != len(req.Queries) || len(qerrs) != len(req.Queries) {
		http.Error(w, "batch querier returned misaligned results", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(batchResponse{Results: results, Errors: qerrs}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// runBatch answers a batch through the native BatchQuerier when one is
// configured, else by looping the single-query Querier. Per-query
// failures never fail the batch.
func (s *Server) runBatch(ctx context.Context, qs []string) ([]any, []*QueryError) {
	if s.batchQuerier != nil {
		return s.batchQuerier(ctx, qs)
	}
	results := make([]any, len(qs))
	qerrs := make([]*QueryError, len(qs))
	for i, q := range qs {
		res, err := s.querier(ctx, q)
		if err != nil {
			qerrs[i] = &QueryError{Message: err.Error()}
			continue
		}
		results[i] = res
	}
	return results, qerrs
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	op := "fetch"
	switch r.Method {
	case http.MethodPut:
		op = "upload"
	case http.MethodDelete:
		op = "delete"
	}
	s.instrument(op, s.serveModel)(w, r)
}

func (s *Server) serveModel(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/models/")
	if id == "" {
		http.Error(w, "missing model id", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		if r.URL.Query().Get("format") == "manifest" {
			s.serveManifestGet(w, id)
			return
		}
		m, err := s.store.Load(id)
		if err != nil {
			if errors.Is(err, repo.ErrNotFound) {
				http.Error(w, err.Error(), http.StatusNotFound)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/x-somx")
		if err := graph.Encode(w, m); err != nil {
			// Headers are gone; nothing more to do than log via the
			// error path available to handlers.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case http.MethodPut:
		if r.Header.Get("Content-Type") == ContentTypeManifest {
			s.serveManifestPut(w, r, id)
			return
		}
		m, err := graph.Decode(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				http.Error(w, fmt.Sprintf("model exceeds %d-byte upload limit", s.maxBody),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// The bare-bone interface is load-by-exact-URL; a body whose
		// identity disagrees with the path would corrupt later lookups.
		// Reject before publishing — storing first and compensating
		// with a delete could destroy a pre-existing model under the
		// body's ID.
		if gotID := m.Name + "@" + m.Version; gotID != id {
			http.Error(w, fmt.Sprintf("model identity %q does not match path id %q", gotID, id),
				http.StatusBadRequest)
			return
		}
		_, existed := s.store.Metadata(id)
		if _, err := s.store.Publish(m); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.indexer != nil {
			if err := s.indexer.IndexModel(r.Context(), id, m); err != nil {
				// Keep the hub consistent with the catalog: drop the
				// model this PUT created. A pre-existing version stays —
				// deleting it would destroy data the uploader didn't
				// send — and remains queryable under its old index entry.
				if !existed {
					_ = s.store.Delete(id)
				}
				http.Error(w, fmt.Sprintf("indexing %q: %v", id, err), http.StatusInternalServerError)
				return
			}
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		if _, ok := s.store.Metadata(id); !ok {
			http.Error(w, fmt.Sprintf("model %q not found", id), http.StatusNotFound)
			return
		}
		if err := s.store.Delete(id); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
