package hub

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"sommelier/internal/cas"
	"sommelier/internal/repo"
)

// The chunk-negotiation protocol (git/OCI style): a publisher PUTs a
// model's manifest; the server answers 409 with the chunk addresses it
// lacks; the publisher uploads exactly those and re-PUTs the manifest.
// A mirror runs the same negotiation in reverse with HEAD + GET. Either
// way only chunks the receiver is missing cross the wire, so a
// fine-tuned series costs its unique tensors, not whole models.
//
//	HEAD /v1/chunks/{hash}            — does the hub hold this chunk?
//	GET  /v1/chunks/{hash}            — fetch one chunk (binary)
//	PUT  /v1/chunks/{hash}            — upload one chunk (binary)
//	GET  /v1/models/{id}?format=manifest — fetch a model's chunk manifest
//	PUT  /v1/models/{id} (manifest)   — publish by manifest; 409 lists missing chunks

// ContentTypeManifest marks a PUT /v1/models/{id} body as a chunk
// manifest rather than a whole SOMX model.
const ContentTypeManifest = "application/x-somx-manifest"

// ChunkStore is the optional chunk-level surface a Store may implement
// — *repo.Repository does. A server whose store lacks it answers chunk
// endpoints with 501, and clients fall back to whole-model transfer.
type ChunkStore interface {
	HasChunk(hash string) bool
	GetChunk(hash string) ([]byte, error)
	PutChunk(hash string, data []byte) error
	Manifest(id string) (*cas.Manifest, bool)
	MissingChunks(man *cas.Manifest) []string
	PublishManifest(man *cas.Manifest) (string, error)
}

// chunkStore returns the store's chunk surface, or nil when the store
// cannot negotiate chunks.
func (s *Server) chunkStore() ChunkStore {
	cs, _ := s.store.(ChunkStore)
	return cs
}

func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	cs := s.chunkStore()
	if cs == nil {
		http.Error(w, "chunk transfer not supported by this hub", http.StatusNotImplemented)
		return
	}
	hash := strings.TrimPrefix(r.URL.Path, "/v1/chunks/")
	if hash == "" {
		http.Error(w, "missing chunk address", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodHead:
		if !cs.HasChunk(hash) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		data, err := cs.GetChunk(hash)
		if err != nil {
			if errors.Is(err, cas.ErrMissingChunk) {
				http.Error(w, err.Error(), http.StatusNotFound)
			} else {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				http.Error(w, fmt.Sprintf("chunk exceeds %d-byte upload limit", s.maxBody),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		// PutChunk verifies content against the address, so a corrupted
		// upload is rejected here, not discovered at hydration.
		if err := cs.PutChunk(hash, data); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// serveManifestGet answers GET /v1/models/{id}?format=manifest.
func (s *Server) serveManifestGet(w http.ResponseWriter, id string) {
	cs := s.chunkStore()
	if cs == nil {
		http.Error(w, "chunk transfer not supported by this hub", http.StatusNotImplemented)
		return
	}
	man, ok := cs.Manifest(id)
	if !ok {
		http.Error(w, fmt.Sprintf("model %q not found", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", ContentTypeManifest)
	if err := cas.EncodeManifest(w, man); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// serveManifestPut answers a manifest-typed PUT /v1/models/{id}: if the
// hub lacks referenced chunks it answers 409 Conflict with their
// addresses and the client uploads them before retrying; otherwise the
// model is published from the manifest (and indexed, with the same
// rollback discipline as a whole-model upload).
func (s *Server) serveManifestPut(w http.ResponseWriter, r *http.Request, id string) {
	cs := s.chunkStore()
	if cs == nil {
		http.Error(w, "chunk transfer not supported by this hub", http.StatusNotImplemented)
		return
	}
	man, err := cas.DecodeManifest(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("manifest exceeds %d-byte upload limit", s.maxBody),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if man.ID() != id {
		http.Error(w, fmt.Sprintf("manifest identity %q does not match path id %q", man.ID(), id),
			http.StatusBadRequest)
		return
	}
	if missing := cs.MissingChunks(man); len(missing) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string][]string{"missing": missing})
		return
	}
	_, existed := s.store.Metadata(id)
	if _, err := cs.PublishManifest(man); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.indexer != nil {
		m, err := s.store.Load(id)
		if err == nil {
			err = s.indexer.IndexModel(r.Context(), id, m)
		}
		if err != nil {
			if !existed {
				_ = s.store.Delete(id)
			}
			http.Error(w, fmt.Sprintf("indexing %q: %v", id, err), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusCreated)
}

var _ ChunkStore = (*repo.Repository)(nil)
