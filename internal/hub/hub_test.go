package hub

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/repo"
	"sommelier/internal/tensor"
)

func testModel(t testing.TB, name string, seed uint64) *graph.Model {
	t.Helper()
	b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(seed))
	b.Dense(6)
	b.ReLU()
	b.Dense(3)
	b.Softmax()
	b.Meta("series", "hub-series")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newHub(t testing.TB) (*httptest.Server, *Client, *repo.Repository) {
	t.Helper()
	store := repo.NewInMemory()
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	return ts, client, store
}

func TestNewServerNilStore(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("expected nil-store error")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("not a url", nil); err == nil {
		t.Fatal("expected URL error")
	}
	if _, err := NewClient("", nil); err == nil {
		t.Fatal("expected empty-URL error")
	}
}

func TestPublishLoadRoundTrip(t *testing.T) {
	_, client, store := newHub(t)
	m := testModel(t, "remote", 1)
	id, err := client.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	if id != "remote@1" {
		t.Fatalf("id = %q", id)
	}
	if store.Len() != 1 {
		t.Fatal("server store not updated")
	}

	got, err := client.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("round-trip changed the model")
	}
}

func TestLoadUsesCache(t *testing.T) {
	ts, client, store := newHub(t)
	m := testModel(t, "cached", 2)
	id, err := client.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	// Remove from the server; a cached load must still succeed.
	if err := store.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Load(id); err != nil {
		t.Fatalf("cached load failed: %v", err)
	}
	// A fresh client sees the deletion.
	fresh, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Load(id); err == nil {
		t.Fatal("expected not-found from fresh client")
	}
}

func TestListMetadata(t *testing.T) {
	_, client, _ := newHub(t)
	if _, err := client.Publish(testModel(t, "a", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Publish(testModel(t, "b", 2)); err != nil {
		t.Fatal(err)
	}
	list, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("list = %+v", list)
	}
	if list[0].Series != "hub-series" || list[0].Task != graph.TaskClassification {
		t.Fatalf("metadata lost: %+v", list[0])
	}
}

func TestDelete(t *testing.T) {
	_, client, store := newHub(t)
	id, err := client.Publish(testModel(t, "gone", 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(id); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("server kept deleted model")
	}
	if _, err := client.Load(id); err == nil {
		t.Fatal("deleted model still loads")
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	_, client, _ := newHub(t)
	bad := &graph.Model{Name: "bad", Version: "1", InputShape: tensor.Shape{2}}
	if _, err := client.Publish(bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestServerRejectsIdentityMismatch(t *testing.T) {
	ts, _, store := newHub(t)
	m := testModel(t, "honest", 4)
	var body strings.Builder
	if err := graph.Encode(&body, m); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/liar@9", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if store.Len() != 0 {
		t.Fatal("mismatched publish left residue")
	}
}

func TestServerMethodValidation(t *testing.T) {
	ts, _, _ := newHub(t)
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/models status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/models/x", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PATCH status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/models/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty id status = %d", resp.StatusCode)
	}
}

func TestMirrorThenIndexLocally(t *testing.T) {
	_, client, _ := newHub(t)
	for i := 0; i < 3; i++ {
		if _, err := client.Publish(testModel(t, "m"+string(rune('a'+i)), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	local := repo.NewInMemory()
	n, err := client.Mirror(local)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || local.Len() != 3 {
		t.Fatalf("mirrored %d, local %d", n, local.Len())
	}
	// The mirrored models are loadable and intact.
	for _, md := range local.List() {
		if _, err := local.Load(md.ID); err != nil {
			t.Fatal(err)
		}
	}
}

func TestClientNetworkErrors(t *testing.T) {
	// A hub that is down: every operation surfaces a transport error.
	client, err := NewClient("http://127.0.0.1:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Load("x@1"); err == nil {
		t.Fatal("expected connection error on Load")
	}
	if _, err := client.List(); err == nil {
		t.Fatal("expected connection error on List")
	}
	if err := client.Delete("x@1"); err == nil {
		t.Fatal("expected connection error on Delete")
	}
	if _, err := client.Publish(testModel(t, "m", 1)); err == nil {
		t.Fatal("expected connection error on Publish")
	}
	local := repo.NewInMemory()
	if _, err := client.Mirror(local); err == nil {
		t.Fatal("expected connection error on Mirror")
	}
}

func TestClientRejectsCorruptResponses(t *testing.T) {
	// A hub that answers garbage: decode errors must surface, not panic.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json at all"))
	}))
	defer garbage.Close()
	client, err := NewClient(garbage.URL, garbage.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Load("x@1"); err == nil {
		t.Fatal("expected decode error on Load")
	}
	if _, err := client.List(); err == nil {
		t.Fatal("expected decode error on List")
	}
}

func TestReadErrorTruncates(t *testing.T) {
	long := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, strings.Repeat("x", 2000), http.StatusTeapot)
	}))
	defer long.Close()
	client, err := NewClient(long.URL, long.Client())
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Load("x@1")
	if err == nil {
		t.Fatal("expected error")
	}
	if len(err.Error()) > 700 {
		t.Fatalf("error message not truncated: %d bytes", len(err.Error()))
	}
}
