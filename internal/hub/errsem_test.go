package hub

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sommelier/internal/repo"
)

// queryHub starts a hub whose querier echoes canned results, fronted by
// an optional flaky handler.
func queryHub(t *testing.T, querier Querier, opts ...Option) (*httptest.Server, *Client) {
	t.Helper()
	srv, err := NewServer(repo.NewInMemory(), WithQuerier(querier))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client, err := NewClient(ts.URL, ts.Client(), fastOpts(opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ts, client
}

// TestClientQueryRoundTrip drives Client.Query end to end: the raw
// results payload comes back verbatim, and a querier rejection surfaces
// as a *StatusError with the 4xx code — reachable via errors.As through
// the operation wrapping.
func TestClientQueryRoundTrip(t *testing.T) {
	calls := 0
	_, client := queryHub(t, func(ctx context.Context, q string) (any, error) {
		calls++
		if strings.Contains(q, "boom") {
			return nil, errors.New("no such reference")
		}
		return []map[string]any{{"id": "m@1", "level": 3}}, nil
	})

	raw, err := client.Query(context.Background(), "SELECT CORR \"m@1\"")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var rs []struct {
		ID    string `json:"id"`
		Level int    `json:"level"`
	}
	if err := json.Unmarshal(raw, &rs); err != nil {
		t.Fatalf("bad results payload %q: %v", raw, err)
	}
	if len(rs) != 1 || rs[0].ID != "m@1" || rs[0].Level != 3 {
		t.Fatalf("results = %+v", rs)
	}

	calls = 0
	_, err = client.Query(context.Background(), "boom")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("querier rejection = %v, want *StatusError via errors.As", err)
	}
	if se.Code != http.StatusBadRequest {
		t.Errorf("StatusError.Code = %d, want 400", se.Code)
	}
	if calls != 1 {
		t.Errorf("4xx was attempted %d times, want 1 (no retries on deliberate answers)", calls)
	}
}

// TestQueryRetriesTransientFailures confirms queries ride the idempotent
// retry path: two 503s then success must be invisible to the caller.
func TestQueryRetriesTransientFailures(t *testing.T) {
	fails := 2
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 {
			fails--
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"results": []string{"ok"}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(), fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := client.Query(context.Background(), "q")
	if err != nil {
		t.Fatalf("Query after transient 503s: %v", err)
	}
	if string(raw) != `["ok"]` {
		t.Fatalf("results = %s", raw)
	}
	if got := client.Stats().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

// TestAttemptTimeoutVsCallerDeadline is the error-semantics contract the
// coordinator's failover ladder depends on: a slow hub that blows the
// client's per-attempt timeout yields ErrAttemptTimeout ("this replica
// is slow — try another"), while the caller's own context expiring
// yields that context's error and nothing else ("stop asking anyone").
func TestAttemptTimeoutVsCallerDeadline(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	slowClient := func(timeout time.Duration) *Client {
		c, err := NewClient(ts.URL, ts.Client(),
			WithTimeout(timeout), WithRetries(0), WithBreaker(0, 0))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Per-attempt timeout fires first: the failure names the slow hub.
	_, err := slowClient(30 * time.Millisecond).Query(context.Background(), "q")
	if !errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("slow-hub error = %v, want errors.Is(_, ErrAttemptTimeout)", err)
	}
	if errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("slow-hub error %v must not look like an open breaker", err)
	}

	// Caller deadline fires first: the failure is the caller's own
	// context error, NOT an attempt timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = slowClient(10 * time.Second).Query(ctx, "q")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("caller-deadline error = %v, want errors.Is(_, context.DeadlineExceeded)", err)
	}
	if errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("caller-deadline error %v must not be blamed on the hub", err)
	}
}

// TestCallerCancelAbortsRetryBackoff: cancelling mid-backoff must end
// the operation promptly, surface the cancellation, and not charge the
// breaker for the caller's change of heart.
func TestCallerCancelAbortsRetryBackoff(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(),
		WithTimeout(time.Second), WithRetries(5),
		WithBackoff(10*time.Second, 10*time.Second), // park the retry loop in backoff
		WithBreaker(100, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err = client.Query(ctx, "q")
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled query took %v; backoff sleep ignored the context", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want errors.Is(_, context.Canceled)", err)
	}
	// The one real attempt's 503 should still be reported alongside.
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Logf("note: 503 cause not preserved in %v", err)
	}
}

// TestCircuitOpenDistinguishable trips the breaker and checks the
// fail-fast error is ErrCircuitOpen and only ErrCircuitOpen.
func TestCircuitOpenDistinguishable(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(),
		WithTimeout(time.Second), WithRetries(0),
		WithBreaker(2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := client.Query(context.Background(), "q"); err == nil {
			t.Fatal("expected 503 failure")
		}
	}
	_, err = client.Query(context.Background(), "q")
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-trip error = %v, want errors.Is(_, ErrCircuitOpen)", err)
	}
	if errors.Is(err, ErrAttemptTimeout) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("breaker error %v must not look like a timeout", err)
	}
	var se *StatusError
	if errors.As(err, &se) {
		t.Fatalf("breaker error %v must not carry a status code — the hub was never asked", err)
	}
}

// TestHealthzShardInfo: a shard-aware hub advertises its slot in the
// cluster; a standalone hub's healthz stays shard-free.
func TestHealthzShardInfo(t *testing.T) {
	srv, err := NewServer(repo.NewInMemory(), WithShardInfo(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var health map[string]any
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["shard"] != float64(2) || health["shards"] != float64(8) {
		t.Fatalf("healthz = %v, want shard 2 of 8", health)
	}

	bare, err := NewServer(repo.NewInMemory())
	if err != nil {
		t.Fatal(err)
	}
	bts := httptest.NewServer(bare)
	defer bts.Close()
	resp, err = bts.Client().Get(bts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	health = nil
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["shard"]; ok {
		t.Fatalf("standalone healthz = %v, must not claim a shard", health)
	}
}
