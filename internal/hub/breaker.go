package hub

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped) when the client's circuit
// breaker is open: the hub has failed repeatedly and the client refuses
// to send more traffic until the cooldown elapses.
var ErrCircuitOpen = errors.New("hub: circuit breaker open")

// Breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// breaker is a consecutive-failure circuit breaker: it trips open after
// `threshold` consecutive failed operations, rejects traffic for
// `cooldown`, then half-opens to let exactly one probe through. A
// successful probe closes the circuit; a failed one re-opens it for
// another cooldown. A threshold <= 0 disables the breaker.
//
// Failures here mean transport-level or 5xx outcomes — a 4xx means the
// hub is alive and counts as a success for breaker purposes.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu          sync.Mutex
	state       int       // guarded by mu
	consecutive int       // guarded by mu
	openedAt    time.Time // guarded by mu
	probing     bool      // guarded by mu
	opens       int64     // guarded by mu
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether an operation may proceed, transitioning
// open→half-open once the cooldown has elapsed.
func (b *breaker) allow() error {
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrCircuitOpen
		}
		b.state = stateHalfOpen
		b.probing = true
		return nil
	case stateHalfOpen:
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
	return nil
}

// success records a completed operation and closes the circuit.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateClosed
	b.consecutive = 0
	b.probing = false
}

// failure records a failed operation, tripping the breaker at the
// threshold or re-opening it from half-open.
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == stateHalfOpen {
		b.state = stateOpen
		b.openedAt = b.now()
		b.opens++
		return
	}
	b.consecutive++
	if b.state == stateClosed && b.consecutive >= b.threshold {
		b.state = stateOpen
		b.openedAt = b.now()
		b.opens++
	}
}

// snapshot returns the current state and total trip count.
func (b *breaker) snapshot() (state int, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

func stateName(s int) string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	}
	return "closed"
}
