package hub

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

func chunkFixtures(t *testing.T) (base, variant *graph.Model) {
	t.Helper()
	b, err := zoo.DenseResidualNet(zoo.Config{Name: "cbase", Seed: 21, Width: 32, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	b.Version = "1"
	v, err := zoo.Transfer(b, "cvariant", 8, 100, 0, 22)
	if err != nil {
		t.Fatal(err)
	}
	v.Version = "1"
	return b, v
}

func newChunkServer(t *testing.T) (*repo.Repository, *httptest.Server) {
	t.Helper()
	store := repo.NewInMemory()
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return store, ts
}

func TestPublishEncodedNegotiatesChunks(t *testing.T) {
	store, ts := newChunkServer(t)
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	base, variant := chunkFixtures(t)

	src := repo.NewInMemory()
	encBase, err := src.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	id, sentBase, err := c.PublishEncoded(encBase)
	if err != nil {
		t.Fatal(err)
	}
	if id != "cbase@1" {
		t.Fatalf("id = %q", id)
	}
	if sentBase <= 0 {
		t.Fatalf("first publish sent %d bytes; everything was new", sentBase)
	}
	if _, err := src.PublishEncoded(encBase); err != nil {
		t.Fatal(err)
	}

	// The variant shares its frozen trunk with the base the hub already
	// holds — only head chunks should cross the wire.
	encVar, err := src.Encode(variant)
	if err != nil {
		t.Fatal(err)
	}
	if _, sentVar, err := c.PublishEncoded(encVar); err != nil {
		t.Fatal(err)
	} else if sentVar <= 0 || sentVar*2 >= sentBase {
		t.Fatalf("variant sent %d bytes vs base %d; negotiation is not deduplicating", sentVar, sentBase)
	}

	// Republishing the identical model moves no chunk bytes at all.
	if _, sentAgain, err := c.PublishEncoded(encBase); err != nil {
		t.Fatal(err)
	} else if sentAgain != 0 {
		t.Fatalf("republish sent %d chunk bytes, want 0", sentAgain)
	}

	got, err := store.Load("cvariant@1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != variant.Fingerprint() {
		t.Fatal("negotiated publish changed the model")
	}
}

func TestLoadManifestAndChunkFetch(t *testing.T) {
	store, ts := newChunkServer(t)
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := chunkFixtures(t)
	if _, err := store.Publish(base); err != nil {
		t.Fatal(err)
	}
	man, err := c.LoadManifest("cbase@1")
	if err != nil {
		t.Fatal(err)
	}
	refs := man.ChunkRefs()
	if len(refs) == 0 {
		t.Fatal("manifest has no chunk refs")
	}
	has, err := c.HasChunk(refs[0])
	if err != nil || !has {
		t.Fatalf("HasChunk(%s) = %v, %v", refs[0], has, err)
	}
	data, err := c.GetChunk(refs[0])
	if err != nil || len(data) == 0 {
		t.Fatalf("GetChunk = %d bytes, %v", len(data), err)
	}
	if has, err := c.HasChunk("0000000000000000000000000000000000000000000000000000000000000000"); err != nil || has {
		t.Fatalf("absent chunk: has=%v err=%v", has, err)
	}
	if err := c.PutChunk(refs[0], []byte("tampered")); err == nil {
		t.Fatal("hub accepted a chunk whose bytes do not hash to its address")
	}
}

// countingTransport counts GET /v1/chunks/ requests — the wire cost a
// mirror pays for tensor data.
type countingTransport struct {
	inner     http.RoundTripper
	chunkGets atomic.Int64
}

func (ct *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodGet && strings.Contains(req.URL.Path, "/v1/chunks/") {
		ct.chunkGets.Add(1)
	}
	return ct.inner.RoundTrip(req)
}

func TestMirrorTransfersOnlyMissingChunks(t *testing.T) {
	store, ts := newChunkServer(t)
	ct := &countingTransport{inner: ts.Client().Transport}
	c, err := NewClient(ts.URL, &http.Client{Transport: ct})
	if err != nil {
		t.Fatal(err)
	}
	base, variant := chunkFixtures(t)
	if _, err := store.Publish(base); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish(variant); err != nil {
		t.Fatal(err)
	}

	dst := repo.NewInMemory()
	n, err := c.Mirror(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || dst.Len() != 2 {
		t.Fatalf("mirrored %d models, repo holds %d", n, dst.Len())
	}
	for _, id := range []string{"cbase@1", "cvariant@1"} {
		want, _ := store.Load(id)
		got, err := dst.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Fatalf("mirror changed %s", id)
		}
	}
	// Dedup carried across the wire: the mirror's chunk store holds each
	// shared trunk chunk once, and each distinct chunk was fetched once.
	srcStats, dstStats := store.CASStats(), dst.CASStats()
	if dstStats.Chunks != srcStats.Chunks {
		t.Fatalf("mirror holds %d chunks, source %d", dstStats.Chunks, srcStats.Chunks)
	}
	if got := ct.chunkGets.Load(); got != int64(srcStats.Chunks) {
		t.Fatalf("first mirror fetched %d chunks, want %d (each once)", got, srcStats.Chunks)
	}

	// Re-mirroring an unchanged hub moves manifests alone — zero chunk
	// fetches.
	ct.chunkGets.Store(0)
	if _, err := c.Mirror(dst); err != nil {
		t.Fatal(err)
	}
	if got := ct.chunkGets.Load(); got != 0 {
		t.Fatalf("re-mirror fetched %d chunks, want 0", got)
	}
}

// plainStore hides the chunk surface (no embedding, so no promoted
// methods), simulating a pre-chunk hub.
type plainStore struct{ r *repo.Repository }

func (p plainStore) Publish(m *graph.Model) (string, error)   { return p.r.Publish(m) }
func (p plainStore) Load(id string) (*graph.Model, error)     { return p.r.Load(id) }
func (p plainStore) Delete(id string) error                   { return p.r.Delete(id) }
func (p plainStore) List() []repo.Metadata                    { return p.r.List() }
func (p plainStore) Metadata(id string) (repo.Metadata, bool) { return p.r.Metadata(id) }
func (p plainStore) Len() int                                 { return p.r.Len() }

func TestChunkProtocolFallsBackOnOldHub(t *testing.T) {
	inner := repo.NewInMemory()
	srv, err := NewServer(plainStore{inner})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := NewClient(ts.URL, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := chunkFixtures(t)

	// Chunked publish degrades to whole-model transfer.
	src := repo.NewInMemory()
	enc, err := src.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	id, sent, err := c.PublishEncoded(enc)
	if err != nil {
		t.Fatal(err)
	}
	if id != "cbase@1" || sent != -1 {
		t.Fatalf("fallback publish: id=%q sent=%d", id, sent)
	}
	if _, err := inner.Load(id); err != nil {
		t.Fatal(err)
	}

	// Mirror degrades the same way.
	dst := repo.NewInMemory()
	if n, err := c.Mirror(dst); err != nil || n != 1 {
		t.Fatalf("fallback mirror: n=%d err=%v", n, err)
	}
	if _, err := dst.Load(id); err != nil {
		t.Fatal(err)
	}
}
