package hub

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sommelier/internal/graph"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
)

// Resilience defaults. The paper's serving case study (§7.1) assumes
// the hub is always up; these knobs make the client survive the hubs
// one actually meets over a network.
const (
	// DefaultTimeout bounds each HTTP attempt.
	DefaultTimeout = 10 * time.Second
	// DefaultRetries is the number of re-attempts after a failed
	// idempotent GET (so up to DefaultRetries+1 attempts total).
	DefaultRetries = 4
	// DefaultBaseBackoff and DefaultMaxBackoff bound the exponential
	// backoff between retries; the actual sleep is drawn uniformly from
	// [0, min(max, base<<attempt)] (full jitter).
	DefaultBaseBackoff = 25 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
	// DefaultBreakerThreshold consecutive failed operations trip the
	// circuit breaker; DefaultBreakerCooldown later it half-opens.
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 30 * time.Second
	// DefaultCacheCap bounds the client's model cache (LRU eviction).
	DefaultCacheCap = 1024
)

// Option configures a Client.
type Option func(*Client)

// WithTimeout sets the per-attempt request timeout.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithRetries sets how many times idempotent GETs are re-attempted
// after a transient failure.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the exponential-backoff base and cap for retries.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoffBase, c.backoffMax = base, max }
}

// WithBreaker sets the circuit breaker's consecutive-failure threshold
// and open-state cooldown. A threshold <= 0 disables the breaker.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) { c.breakerThreshold, c.breakerCooldown = threshold, cooldown }
}

// WithCacheCap bounds the model cache to n entries (LRU eviction);
// n <= 0 means unbounded.
func WithCacheCap(n int) Option { return func(c *Client) { c.cacheCap = n } }

// WithObserver attaches an observability handle. The client times each
// operation into hub_client_<op>_ms histograms (op in publish, load,
// list, delete), counts failures in hub_client_<op>_errors_total, and
// publishes its resilience state — retries, stale reads, breaker
// state/opens, cache population — as gauges evaluated at snapshot time,
// so Client.Stats and the observer's Snapshot always agree. Sharing one
// observer between the client, the engine, and a hub server yields a
// single unified snapshot.
func WithObserver(o *obs.Observer) Option { return func(c *Client) { c.obs = o } }

// Stats reports the client's resilience counters.
type Stats struct {
	// Retries is the total number of re-attempts performed.
	Retries int64
	// StaleLoads counts Loads served from cache while the breaker was
	// not closed — i.e. knowingly stale reads during an outage.
	StaleLoads int64
	// StaleLists counts Lists served from the last-known-good snapshot
	// because the hub was unreachable.
	StaleLists int64
	// BreakerState is "closed", "open" or "half-open".
	BreakerState string
	// BreakerOpens is how many times the breaker has tripped.
	BreakerOpens int64
	// CachedModels is the current model-cache population.
	CachedModels int
}

// Client accesses a remote hub with the same surface as a local
// repo.Repository (publish/load/list/delete), caching fetched models so
// repeated Loads — the indexing hot path — hit the network once.
//
// The client is resilient by default: every attempt carries a context
// timeout, idempotent GETs are retried with exponential backoff and
// full jitter on transport/5xx/corrupt-body failures, a circuit breaker
// sheds traffic after consecutive failures, and reads degrade gracefully
// — Load serves cached models and List serves its last-known-good
// snapshot (counted in Stats as stale) when the hub is unreachable.
type Client struct {
	base string
	http *http.Client

	timeout                 time.Duration
	retries                 int
	backoffBase, backoffMax time.Duration
	breakerThreshold        int
	breakerCooldown         time.Duration
	cacheCap                int
	breaker                 *breaker
	obs                     *obs.Observer
	retryCount              atomic.Int64
	staleLoads, staleLists  atomic.Int64

	mu       sync.Mutex
	cache    *modelLRU       // guarded by mu
	lastList []repo.Metadata // guarded by mu

	jitterMu sync.Mutex
	jitter   *rand.Rand // guarded by jitterMu
}

// clientSeq seeds each client's jitter stream: monotonic and
// process-local, so backoff never touches the wall clock or the
// global math/rand state the deterministic packages ban.
var clientSeq atomic.Int64

// NewClient returns a client for a hub at baseURL (e.g.
// "http://hub:8080"). httpClient may be nil for http.DefaultClient;
// options override the resilience defaults above.
func NewClient(baseURL string, httpClient *http.Client, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("hub: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		base:             strings.TrimRight(baseURL, "/"),
		http:             httpClient,
		timeout:          DefaultTimeout,
		retries:          DefaultRetries,
		backoffBase:      DefaultBaseBackoff,
		backoffMax:       DefaultMaxBackoff,
		breakerThreshold: DefaultBreakerThreshold,
		breakerCooldown:  DefaultBreakerCooldown,
		cacheCap:         DefaultCacheCap,
		jitter:           rand.New(rand.NewSource(clientSeq.Add(1))),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.timeout <= 0 {
		return nil, fmt.Errorf("hub: non-positive timeout")
	}
	if c.retries < 0 {
		c.retries = 0
	}
	c.breaker = newBreaker(c.breakerThreshold, c.breakerCooldown)
	c.cache = newModelLRU(c.cacheCap)
	c.registerGauges()
	return c, nil
}

// registerGauges exports the resilience counters as snapshot-time
// gauges, so Stats and the unified obs.Snapshot report the same
// numbers without double bookkeeping. Breaker state is encoded as
// 0=closed, 1=open, 2=half-open (the breaker's own constants).
func (c *Client) registerGauges() {
	if c.obs == nil {
		return
	}
	reg := c.obs.Registry()
	reg.GaugeFunc("hub_client_retries", c.retryCount.Load)
	reg.GaugeFunc("hub_client_stale_loads", c.staleLoads.Load)
	reg.GaugeFunc("hub_client_stale_lists", c.staleLists.Load)
	reg.GaugeFunc("hub_client_cached_models", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.cache.len())
	})
	reg.GaugeFunc("hub_client_breaker_state", func() int64 {
		state, _ := c.breaker.snapshot()
		return int64(state)
	})
	reg.GaugeFunc("hub_client_breaker_opens", func() int64 {
		_, opens := c.breaker.snapshot()
		return opens
	})
}

// timeOp returns a stop function recording the operation's latency and
// outcome. Call the result with the operation's error.
func (c *Client) timeOp(op string) func(error) {
	return c.obs.TimeOp("hub_client_" + op)
}

// Stats returns a snapshot of the resilience counters.
func (c *Client) Stats() Stats {
	state, opens := c.breaker.snapshot()
	c.mu.Lock()
	cached := c.cache.len()
	c.mu.Unlock()
	return Stats{
		Retries:      c.retryCount.Load(),
		StaleLoads:   c.staleLoads.Load(),
		StaleLists:   c.staleLists.Load(),
		BreakerState: stateName(state),
		BreakerOpens: opens,
		CachedModels: cached,
	}
}

func (c *Client) modelURL(id string) string {
	return c.base + "/v1/models/" + url.PathEscape(id)
}

// StatusError is a non-2xx hub response, exposed as a typed error so
// callers — the cluster coordinator in particular — can branch on the
// status code with errors.As instead of string matching. Only 5xx
// codes are transient.
type StatusError struct {
	// Code is the HTTP status code the hub answered with.
	Code int
	msg  string
}

func (e *StatusError) Error() string { return e.msg }

// ErrAttemptTimeout is wrapped by attempt failures caused by the
// client's own per-attempt timeout — as opposed to the caller's context
// expiring, which surfaces as the caller's context error. The
// distinction is what lets a scatter-gather coordinator treat a slow
// replica (fail over to the next one) differently from its own query
// deadline (stop asking anyone).
var ErrAttemptTimeout = errors.New("hub: attempt timed out")

// retryable reports whether an attempt failure is worth retrying: all
// transport and body-corruption errors are presumed transient, and so
// are 5xx responses; any other status means the hub answered
// deliberately.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	return true
}

// do runs one logical operation against the hub through the breaker and
// (for idempotent operations) the retry loop. build must return a fresh
// request per attempt; a request built with NewRequestWithContext
// threads the caller's context through every attempt — cancellation
// aborts the backoff sleep and stops further retries. handle consumes
// the response.
func (c *Client) do(idempotent bool, build func() (*http.Request, error), handle func(*http.Response) error) error {
	if err := c.breaker.allow(); err != nil {
		return err
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		req, err := build()
		if err != nil {
			return err
		}
		parent := req.Context()
		if i > 0 {
			c.retryCount.Add(1)
			if err := sleepCtx(parent, c.backoff(i)); err != nil {
				// The caller gave up between attempts; that is their
				// deadline, not a hub failure.
				return fmt.Errorf("%w (retry aborted: %w)", lastErr, err)
			}
		}
		err = c.doOnce(req, handle)
		if err == nil {
			c.breaker.success()
			return nil
		}
		lastErr = err
		if !retryable(err) {
			// The hub answered; it is alive even though it refused us.
			c.breaker.success()
			return err
		}
		if parent.Err() != nil {
			// Caller cancellation mid-flight: stop retrying and leave
			// the breaker out of it.
			return lastErr
		}
	}
	c.breaker.failure()
	return lastErr
}

// doOnce runs one attempt under the per-attempt timeout. A failure
// caused by that timeout — rather than by the request's own context —
// is wrapped in ErrAttemptTimeout so callers can tell "this hub is
// slow" from "I am out of time".
func (c *Client) doOnce(req *http.Request, handle func(*http.Response) error) error {
	parent := req.Context()
	ctx, cancel := context.WithTimeout(parent, c.timeout)
	defer cancel()
	attemptTimedOut := func(err error) error {
		if ctx.Err() != nil && parent.Err() == nil {
			return fmt.Errorf("%w after %v: %w", ErrAttemptTimeout, c.timeout, err)
		}
		return err
	}
	resp, err := c.http.Do(req.WithContext(ctx))
	if err != nil {
		return attemptTimedOut(err)
	}
	defer resp.Body.Close()
	if err := handle(resp); err != nil {
		// Body reads run under the same attempt deadline.
		return attemptTimedOut(err)
	}
	return nil
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the sleep before retry attempt k (1-based):
// exponential growth capped at max, with full jitter drawn from the
// client's own seeded stream.
func (c *Client) backoff(k int) time.Duration {
	base, max := c.backoffBase, c.backoffMax
	if base <= 0 {
		return 0
	}
	d := base << (k - 1)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	if d <= 0 {
		return 0
	}
	c.jitterMu.Lock()
	j := c.jitter.Int63n(int64(d) + 1)
	c.jitterMu.Unlock()
	return time.Duration(j)
}

func buildGet(urlStr string) func() (*http.Request, error) {
	return func() (*http.Request, error) { return http.NewRequest(http.MethodGet, urlStr, nil) }
}

func expectStatus(resp *http.Response, want int) error {
	if resp.StatusCode != want {
		return &StatusError{Code: resp.StatusCode, msg: readError(resp)}
	}
	return nil
}

// Query runs a Sommelier query on the hub's /v1/query endpoint and
// returns the raw results payload. Queries are idempotent GETs, so the
// full retry/breaker machinery applies; ctx bounds the whole operation
// (each attempt additionally carries the per-attempt timeout, and a
// per-attempt expiry is reported as ErrAttemptTimeout). This is the
// per-shard call a cluster coordinator fans out.
func (c *Client) Query(ctx context.Context, q string) (_ json.RawMessage, err error) {
	done := c.timeOp("query")
	defer func() { done(err) }()
	queryURL := c.base + "/v1/query?q=" + url.QueryEscape(q)
	var raw json.RawMessage
	err = c.do(true,
		func() (*http.Request, error) {
			return http.NewRequestWithContext(ctx, http.MethodGet, queryURL, nil)
		},
		func(resp *http.Response) error {
			if err := expectStatus(resp, http.StatusOK); err != nil {
				return err
			}
			var wire struct {
				Results json.RawMessage `json:"results"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
				return err
			}
			raw = wire.Results
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("hub: query: %w", err)
	}
	return raw, nil
}

// ErrBatchUnsupported is wrapped by QueryBatch when the hub does not
// speak the batched POST /v1/query protocol (pre-batch hubs answer 404,
// 405, or 501). Callers that hold the query strings can fall back to a
// serial Query loop; HTTPReplica does exactly that.
var ErrBatchUnsupported = errors.New("hub: batched query not supported by this hub")

// QueryBatch runs a batch of Sommelier queries in one POST /v1/query
// round trip and returns per-query raw results and per-query errors,
// both index-aligned with qs (exactly one of results[i]/qerrs[i] is
// set). The overall error is transport-level: the whole batch failed,
// nothing per-query is known. The POST is read-only, so it goes through
// the same retry/breaker machinery as Query.
func (c *Client) QueryBatch(ctx context.Context, qs []string) (_ []json.RawMessage, _ []*QueryError, err error) {
	done := c.timeOp("query_batch")
	defer func() { done(err) }()
	if len(qs) == 0 {
		return nil, nil, fmt.Errorf("hub: empty query batch")
	}
	body, err := json.Marshal(batchRequest{Queries: qs})
	if err != nil {
		return nil, nil, fmt.Errorf("hub: encoding batch: %w", err)
	}
	var wire struct {
		Results []json.RawMessage `json:"results"`
		Errors  []*QueryError     `json:"errors"`
	}
	err = c.do(true,
		func() (*http.Request, error) {
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(body))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		},
		func(resp *http.Response) error {
			if err := expectStatus(resp, http.StatusOK); err != nil {
				return err
			}
			return json.NewDecoder(resp.Body).Decode(&wire)
		})
	if err != nil {
		var se *StatusError
		if errors.As(err, &se) {
			switch se.Code {
			case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
				return nil, nil, fmt.Errorf("%w: %w", ErrBatchUnsupported, err)
			}
		}
		return nil, nil, fmt.Errorf("hub: query batch: %w", err)
	}
	if len(wire.Results) != len(qs) || len(wire.Errors) != len(qs) {
		return nil, nil, fmt.Errorf("hub: query batch: hub returned %d results / %d errors for %d queries",
			len(wire.Results), len(wire.Errors), len(qs))
	}
	return wire.Results, wire.Errors, nil
}

// Publish uploads a model and returns its hub ID. Publishes are not
// retried — PUT against a bare-bone hub is not guaranteed idempotent.
func (c *Client) Publish(m *graph.Model) (_ string, err error) {
	done := c.timeOp("publish")
	defer func() { done(err) }()
	if err := m.Validate(); err != nil {
		return "", fmt.Errorf("hub: refusing invalid model: %w", err)
	}
	id := m.Name + "@" + m.Version
	var buf bytes.Buffer
	if err := graph.Encode(&buf, m); err != nil {
		return "", fmt.Errorf("hub: encoding: %w", err)
	}
	data := buf.Bytes()
	err = c.do(false,
		func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPut, c.modelURL(id), bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/x-somx")
			return req, nil
		},
		func(resp *http.Response) error { return expectStatus(resp, http.StatusCreated) })
	if err != nil {
		return "", fmt.Errorf("hub: publish %s: %w", id, err)
	}
	c.mu.Lock()
	c.cache.add(id, m)
	c.mu.Unlock()
	return id, nil
}

// Load fetches a model by ID, serving repeats from the local cache.
// When the hub is down, previously fetched models keep loading from
// cache (counted as stale in Stats while the breaker is not closed);
// unseen models fail fast with ErrCircuitOpen once the breaker trips.
func (c *Client) Load(id string) (_ *graph.Model, err error) {
	done := c.timeOp("load")
	defer func() { done(err) }()
	c.mu.Lock()
	m, ok := c.cache.get(id)
	c.mu.Unlock()
	if ok {
		if state, _ := c.breaker.snapshot(); state != stateClosed {
			c.staleLoads.Add(1)
		}
		return m, nil
	}
	err = c.do(true, buildGet(c.modelURL(id)), func(resp *http.Response) error {
		if err := expectStatus(resp, http.StatusOK); err != nil {
			return err
		}
		var derr error
		m, derr = graph.Decode(resp.Body)
		return derr
	})
	if err != nil {
		return nil, fmt.Errorf("hub: load %s: %w", id, err)
	}
	c.mu.Lock()
	c.cache.add(id, m)
	c.mu.Unlock()
	return m, nil
}

// List returns metadata for every hub model. If the hub is unreachable
// (transport/5xx failure after retries, or open breaker) and a previous
// List succeeded, the last-known-good snapshot is returned instead and
// counted as stale in Stats.
func (c *Client) List() (_ []repo.Metadata, err error) {
	done := c.timeOp("list")
	defer func() { done(err) }()
	var out []repo.Metadata
	err = c.do(true, buildGet(c.base+"/v1/models"), func(resp *http.Response) error {
		if err := expectStatus(resp, http.StatusOK); err != nil {
			return err
		}
		var wire []metaJSON
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			return err
		}
		out = make([]repo.Metadata, len(wire))
		for i, w := range wire {
			out[i] = repo.Metadata{
				ID: w.ID, Name: w.Name, Version: w.Version,
				Task: graph.TaskKind(w.Task), Series: w.Series, Annotations: w.Notes,
			}
		}
		return nil
	})
	if err != nil {
		if retryable(err) || errors.Is(err, ErrCircuitOpen) {
			c.mu.Lock()
			last := c.lastList
			c.mu.Unlock()
			if last != nil {
				c.staleLists.Add(1)
				return append([]repo.Metadata(nil), last...), nil
			}
		}
		return nil, fmt.Errorf("hub: list: %w", err)
	}
	c.mu.Lock()
	c.lastList = append([]repo.Metadata(nil), out...)
	c.mu.Unlock()
	return out, nil
}

// Delete removes a model from the hub and the local cache. Deletes are
// not retried.
func (c *Client) Delete(id string) (err error) {
	done := c.timeOp("delete")
	defer func() { done(err) }()
	err = c.do(false,
		func() (*http.Request, error) { return http.NewRequest(http.MethodDelete, c.modelURL(id), nil) },
		func(resp *http.Response) error { return expectStatus(resp, http.StatusNoContent) })
	if err != nil {
		return fmt.Errorf("hub: delete %s: %w", id, err)
	}
	c.mu.Lock()
	c.cache.remove(id)
	c.mu.Unlock()
	return nil
}

// MirrorError aggregates the per-model failures of a partially
// successful Mirror.
type MirrorError struct {
	// Errs maps model ID to the error that lost it.
	Errs map[string]error
}

// Error lists the failed models in a stable order.
func (e *MirrorError) Error() string {
	ids := make([]string, 0, len(e.Errs))
	for id := range e.Errs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id + ": " + e.Errs[id].Error()
	}
	return fmt.Sprintf("hub: mirror: %d model(s) failed: %s", len(ids), strings.Join(parts, "; "))
}

func readError(resp *http.Response) string {
	b, err := io.ReadAll(io.LimitReader(resp.Body, 512))
	if err != nil || len(b) == 0 {
		return resp.Status
	}
	return resp.Status + ": " + strings.TrimSpace(string(b))
}
