package hub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"sommelier/internal/graph"
	"sommelier/internal/repo"
)

// Client accesses a remote hub with the same surface as a local
// repo.Repository (publish/load/list/delete), caching fetched models so
// repeated Loads — the indexing hot path — hit the network once.
type Client struct {
	base string
	http *http.Client

	mu    sync.RWMutex
	cache map[string]*graph.Model
}

// NewClient returns a client for a hub at baseURL (e.g.
// "http://hub:8080"). httpClient may be nil for http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("hub: invalid base URL %q", baseURL)
	}
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		http:  httpClient,
		cache: make(map[string]*graph.Model),
	}, nil
}

func (c *Client) modelURL(id string) string {
	return c.base + "/v1/models/" + url.PathEscape(id)
}

// Publish uploads a model and returns its hub ID.
func (c *Client) Publish(m *graph.Model) (string, error) {
	if err := m.Validate(); err != nil {
		return "", fmt.Errorf("hub: refusing invalid model: %w", err)
	}
	id := m.Name + "@" + m.Version
	var buf bytes.Buffer
	if err := graph.Encode(&buf, m); err != nil {
		return "", fmt.Errorf("hub: encoding: %w", err)
	}
	req, err := http.NewRequest(http.MethodPut, c.modelURL(id), &buf)
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/x-somx")
	resp, err := c.http.Do(req)
	if err != nil {
		return "", fmt.Errorf("hub: publish %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("hub: publish %s: %s", id, readError(resp))
	}
	c.mu.Lock()
	c.cache[id] = m
	c.mu.Unlock()
	return id, nil
}

// Load fetches a model by ID, serving repeats from the local cache.
func (c *Client) Load(id string) (*graph.Model, error) {
	c.mu.RLock()
	m, ok := c.cache[id]
	c.mu.RUnlock()
	if ok {
		return m, nil
	}
	resp, err := c.http.Get(c.modelURL(id))
	if err != nil {
		return nil, fmt.Errorf("hub: load %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("hub: load %s: %s", id, readError(resp))
	}
	m, err = graph.Decode(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("hub: load %s: %w", id, err)
	}
	c.mu.Lock()
	c.cache[id] = m
	c.mu.Unlock()
	return m, nil
}

// List returns metadata for every hub model.
func (c *Client) List() ([]repo.Metadata, error) {
	resp, err := c.http.Get(c.base + "/v1/models")
	if err != nil {
		return nil, fmt.Errorf("hub: list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("hub: list: %s", readError(resp))
	}
	var wire []metaJSON
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		return nil, fmt.Errorf("hub: list: %w", err)
	}
	out := make([]repo.Metadata, len(wire))
	for i, w := range wire {
		out[i] = repo.Metadata{
			ID: w.ID, Name: w.Name, Version: w.Version,
			Task: graph.TaskKind(w.Task), Series: w.Series, Annotations: w.Notes,
		}
	}
	return out, nil
}

// Delete removes a model from the hub and the local cache.
func (c *Client) Delete(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.modelURL(id), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("hub: delete %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("hub: delete %s: %s", id, readError(resp))
	}
	c.mu.Lock()
	delete(c.cache, id)
	c.mu.Unlock()
	return nil
}

// Mirror copies every hub model into a local repository — the 3-line
// migration path of §6: point Sommelier at a mirror of any hub.
func (c *Client) Mirror(dst *repo.Repository) (int, error) {
	list, err := c.List()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, md := range list {
		m, err := c.Load(md.ID)
		if err != nil {
			return n, err
		}
		if _, err := dst.Publish(m); err != nil {
			return n, fmt.Errorf("hub: mirroring %s: %w", md.ID, err)
		}
		n++
	}
	return n, nil
}

func readError(resp *http.Response) string {
	b, err := io.ReadAll(io.LimitReader(resp.Body, 512))
	if err != nil || len(b) == 0 {
		return resp.Status
	}
	return resp.Status + ": " + strings.TrimSpace(string(b))
}
