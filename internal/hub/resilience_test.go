package hub

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sommelier/internal/faults"
	"sommelier/internal/graph"
	"sommelier/internal/repo"
)

// fastOpts are resilience knobs tuned for tests: aggressive retries
// with near-zero backoff so fault-heavy runs stay fast.
func fastOpts(extra ...Option) []Option {
	opts := []Option{
		WithTimeout(5 * time.Second),
		WithRetries(6),
		WithBackoff(time.Millisecond, 4*time.Millisecond),
	}
	return append(opts, extra...)
}

// newFaultyHub starts a healthy hub server and a client whose transport
// injects faults per cfg.
func newFaultyHub(t *testing.T, cfg faults.Config, opts ...Option) (*httptest.Server, *Client, *repo.Repository, *faults.Injector) {
	t.Helper()
	store := repo.NewInMemory()
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	inj, err := faults.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Transport: faults.NewTransport(ts.Client().Transport, inj)}
	client, err := NewClient(ts.URL, hc, fastOpts(opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ts, client, store, inj
}

// TestMirrorRecoversFromTransientFaults is the headline acceptance
// check: at a 30% transient-error rate (connection errors, 5xx,
// truncated bodies) Mirror still copies every model — retries recover
// each transient failure, deterministically under the injector seed.
func TestMirrorRecoversFromTransientFaults(t *testing.T) {
	cfg := faults.Config{
		Seed:            1234,
		ConnErrorRate:   0.15,
		ServerErrorRate: 0.10,
		TruncateRate:    0.05,
	}
	_, client, store, inj := newFaultyHub(t, cfg)
	const models = 8
	for i := 0; i < models; i++ {
		if _, err := store.Publish(testModel(t, fmt.Sprintf("m%02d", i), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	local := repo.NewInMemory()
	n, err := client.Mirror(local)
	if err != nil {
		t.Fatalf("mirror under 30%% faults failed: %v", err)
	}
	if n != models || local.Len() != models {
		t.Fatalf("mirrored %d models, local has %d, want %d — models lost to transient faults",
			n, local.Len(), models)
	}
	// Mirrored models are intact, not truncated.
	for _, md := range local.List() {
		if _, err := local.Load(md.ID); err != nil {
			t.Fatalf("mirrored model %s corrupt: %v", md.ID, err)
		}
	}
	if inj.Counts().Injected() == 0 {
		t.Fatal("injector never fired; test exercised nothing")
	}
	if client.Stats().Retries == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
}

// TestHardDownHubStaleCacheAndBreaker covers graceful degradation: with
// the hub hard-down, a previously fetched model loads from the stale
// cache, an unseen model fails fast with ErrCircuitOpen once the
// breaker trips, and List serves its last-known-good snapshot.
func TestHardDownHubStaleCacheAndBreaker(t *testing.T) {
	store := repo.NewInMemory()
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	client, err := NewClient(ts.URL, ts.Client(),
		fastOpts(WithRetries(1), WithBreaker(3, time.Minute))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Publish(testModel(t, "seen", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Load("seen@1"); err != nil {
		t.Fatal(err)
	}
	if list, err := client.List(); err != nil || len(list) != 1 {
		t.Fatalf("healthy list = %v, %v", list, err)
	}

	ts.Close() // the hub goes hard-down

	// Previously fetched model: served from the (stale) cache.
	if _, err := client.Load("seen@1"); err != nil {
		t.Fatalf("stale-cache load failed: %v", err)
	}
	// Unseen models fail — and once the breaker trips, they fail fast
	// with ErrCircuitOpen instead of hammering a dead hub.
	var lastErr error
	for i := 0; i < 5; i++ {
		_, lastErr = client.Load(fmt.Sprintf("unseen%d@1", i))
		if lastErr == nil {
			t.Fatal("load of unseen model succeeded against a dead hub")
		}
	}
	if !errors.Is(lastErr, ErrCircuitOpen) {
		t.Fatalf("after repeated failures err = %v, want ErrCircuitOpen", lastErr)
	}
	if st := client.Stats(); st.BreakerState != "open" || st.BreakerOpens == 0 {
		t.Fatalf("breaker stats = %+v, want open", st)
	}
	// List degrades to the last-known-good snapshot, counted as stale.
	list, err := client.List()
	if err != nil || len(list) != 1 || list[0].ID != "seen@1" {
		t.Fatalf("stale list = %v, %v", list, err)
	}
	st := client.Stats()
	if st.StaleLists == 0 {
		t.Fatalf("stats = %+v, want stale list recorded", st)
	}
	if st.StaleLoads == 0 {
		// The breaker is open now; a cached load counts as stale.
		if _, err := client.Load("seen@1"); err != nil {
			t.Fatal(err)
		}
		if client.Stats().StaleLoads == 0 {
			t.Fatal("stale load not recorded while breaker open")
		}
	}
}

// TestBreakerHalfOpenRecovery drives the full breaker lifecycle against
// a flaky-then-recovering hub: closed → open (shedding traffic reaches
// no backend) → half-open probe after cooldown → closed again.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "down for maintenance", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode([]metaJSON{})
	}))
	defer backend.Close()

	const cooldown = 50 * time.Millisecond
	client, err := NewClient(backend.URL, backend.Client(),
		WithTimeout(time.Second), WithRetries(0), WithBackoff(time.Millisecond, time.Millisecond),
		WithBreaker(2, cooldown))
	if err != nil {
		t.Fatal(err)
	}

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := client.List(); err == nil {
			t.Fatal("expected failure from unhealthy hub")
		}
	}
	if st := client.Stats(); st.BreakerState != "open" {
		t.Fatalf("breaker state = %s, want open", st.BreakerState)
	}
	// While open, calls are shed without touching the backend.
	before := hits.Load()
	if _, err := client.List(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker let a request through")
	}
	// After the cooldown the hub has recovered; the half-open probe
	// succeeds and closes the circuit.
	healthy.Store(true)
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := client.List(); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if st := client.Stats(); st.BreakerState != "closed" {
		t.Fatalf("breaker state = %s, want closed after recovery", st.BreakerState)
	}
	if _, err := client.List(); err != nil {
		t.Fatalf("post-recovery list failed: %v", err)
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe sends the breaker
// straight back to open for another cooldown.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker(2, time.Hour)
	fake := time.Unix(0, 0)
	b.now = func() time.Time { return fake }
	b.failure()
	b.failure()
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow after trip = %v", err)
	}
	fake = fake.Add(2 * time.Hour)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe not allowed: %v", err)
	}
	// A second caller during the probe is still shed.
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("concurrent probe allowed: %v", err)
	}
	b.failure()
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker not re-opened after failed probe: %v", err)
	}
	fake = fake.Add(2 * time.Hour)
	if err := b.allow(); err != nil {
		t.Fatal(err)
	}
	b.success()
	if state, _ := b.snapshot(); state != stateClosed {
		t.Fatalf("state = %s, want closed", stateName(state))
	}
}

// TestClientCacheEviction: the LRU cap bounds the cache, and evicted
// models are re-fetched from the hub.
func TestClientCacheEviction(t *testing.T) {
	ts, _, store := newHub(t)
	client, err := NewClient(ts.URL, ts.Client(), WithCacheCap(2))
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 3)
	for i := range ids {
		m := testModel(t, fmt.Sprintf("c%d", i), uint64(i+1))
		if _, err := store.Publish(m); err != nil {
			t.Fatal(err)
		}
		ids[i] = m.Name + "@" + m.Version
		if _, err := client.Load(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := client.Stats(); st.CachedModels != 2 {
		t.Fatalf("cache holds %d models, want cap 2", st.CachedModels)
	}
	// ids[0] was evicted: deleting it hub-side makes the re-fetch fail,
	// proving the load goes back to the network.
	if err := store.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Load(ids[0]); err == nil {
		t.Fatal("evicted model served from cache")
	}
	// The resident entries still serve from cache.
	if err := store.Delete(ids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Load(ids[2]); err != nil {
		t.Fatalf("resident cache entry lost: %v", err)
	}
}

// TestMirrorPartialFailure: Mirror skips models it cannot fetch and
// reports them, instead of aborting the whole run.
func TestMirrorPartialFailure(t *testing.T) {
	store := repo.NewInMemory()
	for _, name := range []string{"good", "bad"} {
		if _, err := store.Publish(testModel(t, name, 9)); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(store)
	if err != nil {
		t.Fatal(err)
	}
	// A hub that permanently refuses one model.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/bad@1") {
			http.Error(w, "storage shard lost", http.StatusInternalServerError)
			return
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()
	client, err := NewClient(ts.URL, ts.Client(), fastOpts(WithRetries(1))...)
	if err != nil {
		t.Fatal(err)
	}
	local := repo.NewInMemory()
	n, err := client.Mirror(local)
	if n != 1 || local.Len() != 1 {
		t.Fatalf("mirrored %d (local %d), want the 1 healthy model", n, local.Len())
	}
	var merr *MirrorError
	if !errors.As(err, &merr) {
		t.Fatalf("err = %v, want *MirrorError", err)
	}
	if len(merr.Errs) != 1 || merr.Errs["bad@1"] == nil {
		t.Fatalf("mirror error = %+v, want bad@1 reported", merr.Errs)
	}
	if !strings.Contains(merr.Error(), "bad@1") {
		t.Fatalf("error text %q does not name the lost model", merr.Error())
	}
}

// TestServerDeleteNonexistent404: the DELETE of an unknown model is a
// 404, not a success or a 500.
func TestServerDeleteNonexistent404(t *testing.T) {
	ts, client, _ := newHub(t)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/models/ghost@1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE ghost status = %d, want 404", resp.StatusCode)
	}
	// The client surfaces it as a non-retryable error.
	if err := client.Delete("ghost@1"); err == nil {
		t.Fatal("client.Delete of nonexistent model succeeded")
	}
}

// TestServerGetNotFoundVsInternal: a missing model is 404; a failing
// store is 500 (and thus retryable client-side).
func TestServerGetNotFoundVsInternal(t *testing.T) {
	ts, _, _ := newHub(t)
	resp, err := http.Get(ts.URL + "/v1/models/ghost@1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET ghost status = %d, want 404", resp.StatusCode)
	}

	// A store with injected faults maps to 500.
	inj, err := faults.NewInjector(faults.Config{ServerErrorRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(faults.NewFlakyStore(repo.NewInMemory(), inj))
	if err != nil {
		t.Fatal(err)
	}
	flaky := httptest.NewServer(srv)
	defer flaky.Close()
	resp, err = http.Get(flaky.URL + "/v1/models/x@1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("GET on faulty store status = %d, want 500", resp.StatusCode)
	}
}

// TestMismatchedPutPreservesExisting: a PUT whose body identity
// disagrees with the path must not destroy the model already stored
// under the body's identity.
func TestMismatchedPutPreservesExisting(t *testing.T) {
	ts, client, store := newHub(t)
	m := testModel(t, "honest", 4)
	if _, err := client.Publish(m); err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := graph.Encode(&body, m); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/liar@9", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	// The pre-existing honest@1 survived the mismatched upload.
	if store.Len() != 1 {
		t.Fatalf("store has %d models, want honest@1 preserved", store.Len())
	}
	if _, err := store.Load("honest@1"); err != nil {
		t.Fatalf("honest@1 destroyed by mismatched PUT: %v", err)
	}
}

// TestServerHealthz: the liveness endpoint reports status and count.
func TestServerHealthz(t *testing.T) {
	ts, client, _ := newHub(t)
	if _, err := client.Publish(testModel(t, "h", 1)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var got struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" || got.Models != 1 {
		t.Fatalf("healthz = %+v", got)
	}
	post, err := http.Post(ts.URL+"/v1/healthz", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz status = %d", post.StatusCode)
	}
}

// TestServerPutBodyLimit: oversized uploads are rejected with 413 and
// leave no residue.
func TestServerPutBodyLimit(t *testing.T) {
	store := repo.NewInMemory()
	srv, err := NewServer(store, WithMaxBodyBytes(128))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	m := testModel(t, "big", 5)
	var body bytes.Buffer
	if err := graph.Encode(&body, m); err != nil {
		t.Fatal(err)
	}
	if body.Len() <= 128 {
		t.Fatalf("test model too small (%d bytes) to exceed the limit", body.Len())
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models/big@1", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if store.Len() != 0 {
		t.Fatal("oversized upload left residue")
	}
}

// TestConcurrentLoadsUnderFaults drives concurrent cache/breaker/retry
// paths for the race detector.
func TestConcurrentLoadsUnderFaults(t *testing.T) {
	cfg := faults.Config{Seed: 99, ConnErrorRate: 0.1, ServerErrorRate: 0.1}
	_, client, store, _ := newFaultyHub(t, cfg, WithCacheCap(4))
	const models = 8
	for i := 0; i < models; i++ {
		if _, err := store.Publish(testModel(t, fmt.Sprintf("r%d", i), uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("r%d@1", (g+i)%models)
				// Transient faults may still exhaust retries here;
				// the point is exercising the concurrent paths.
				_, _ = client.Load(id)
				_, _ = client.List()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	_ = client.Stats()
}
