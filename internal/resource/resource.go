// Package resource computes hardware-independent resource profiles for
// models (§5.3 of the paper): FLOPs as the time-complexity proxy, memory
// (parameters plus peak intermediate activations) as the space-complexity
// proxy, and a per-operator latency table combined with a critical-path
// estimate for platform-aware latency.
package resource

import (
	"fmt"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Profile is a model's resource vector. All fields are per-sample.
type Profile struct {
	// FLOPs counts multiply-accumulate operations (×2) across all
	// compute-intensive operators.
	FLOPs int64
	// MemoryBytes is the parameter storage plus the peak simultaneous
	// intermediate tensor footprint, at 4 bytes per element (models
	// serve in float32 even though this reproduction computes in
	// float64).
	MemoryBytes int64
	// LatencyMS is the critical-path latency estimate from the
	// per-operator table, in milliseconds.
	LatencyMS float64
}

// Vector returns the profile as (memoryMB, GFLOPs, latencyMS) — the
// multi-dimensional lookup key of §5.4.
func (p Profile) Vector() []float64 {
	return []float64{
		float64(p.MemoryBytes) / (1 << 20),
		float64(p.FLOPs) / 1e9,
		p.LatencyMS,
	}
}

// IsZero reports whether the profile carries no measurements — the
// zero value, as distinct from a real (if tiny) measured profile.
func (p Profile) IsZero() bool { return p == Profile{} }

// RelativeTo returns this profile's usage as fractions of a reference
// profile, the form queries express budgets in ("80% of ResNet memory").
func (p Profile) RelativeTo(ref Profile) (memFrac, flopsFrac, latFrac float64) {
	frac := func(a, b float64) float64 {
		if b == 0 {
			return 0
		}
		return a / b
	}
	return frac(float64(p.MemoryBytes), float64(ref.MemoryBytes)),
		frac(float64(p.FLOPs), float64(ref.FLOPs)),
		frac(p.LatencyMS, ref.LatencyMS)
}

const bytesPerElement = 4

// LatencyTable maps operator kinds to per-element execution cost in
// nanoseconds, the Paleo-style table of §5.3. Entries are costs per output
// element except for linear operators, which are per FLOP.
type LatencyTable map[graph.OpKind]float64

// DefaultLatencyTable models a single mid-range accelerator. Absolute
// values are synthetic; only the relative weights matter for the
// experiments, which compare models against each other.
func DefaultLatencyTable() LatencyTable {
	return LatencyTable{
		graph.OpDense:         0.00065, // ns per FLOP
		graph.OpConv2D:        0.00050, // conv kernels vectorize better
		graph.OpEmbedding:     0.5,     // ns per output element (memory bound)
		graph.OpReLU:          0.3,
		graph.OpLeakyReLU:     0.35,
		graph.OpTanh:          1.2,
		graph.OpSigmoid:       1.2,
		graph.OpSoftmax:       1.5,
		graph.OpMaxPool:       0.8,
		graph.OpMeanPool:      0.8,
		graph.OpGlobalAvgPool: 0.6,
		graph.OpBatchNorm:     0.7,
		graph.OpLayerNorm:     0.9,
		graph.OpAdd:           0.3,
		graph.OpMul:           0.3,
		graph.OpConcat:        0.2,
		graph.OpFlatten:       0.0,
		graph.OpDropout:       0.0,
		graph.OpIdentity:      0.0,
		graph.OpInput:         0.0,
	}
}

// ExecSetting captures the run-time execution configuration that perturbs
// a model's measured footprint (Figure 12(a)): batch size, activation
// precision, and the runtime's fixed overhead fraction.
type ExecSetting struct {
	Name string
	// BatchSize multiplies activation memory.
	BatchSize int
	// ActivationBytes is bytes per activation element (2 = fp16, 4 =
	// fp32).
	ActivationBytes int
	// RuntimeOverhead is a fractional memory overhead added by the
	// runtime (fragmentation, workspace buffers).
	RuntimeOverhead float64
}

// DefaultSetting is a batch-1 fp32 runtime with 5% overhead.
func DefaultSetting() ExecSetting {
	return ExecSetting{Name: "default", BatchSize: 1, ActivationBytes: 4, RuntimeOverhead: 0.05}
}

// OpFLOPs returns the FLOP count of a single layer given its input shapes.
func OpFLOPs(l *graph.Layer, in []tensor.Shape) (int64, error) {
	out, err := outShape(l, in)
	if err != nil {
		return 0, err
	}
	switch l.Op {
	case graph.OpDense:
		// 2 * units * inDim MACs plus bias adds.
		return 2*int64(l.Attrs.Units)*int64(in[0][0]) + int64(l.Attrs.Units), nil
	case graph.OpConv2D:
		inC := int64(in[0][0])
		k := int64(l.Attrs.KernelH) * int64(l.Attrs.KernelW)
		perOut := 2 * inC * k
		return perOut*int64(out.NumElements()) + int64(out.NumElements()), nil
	case graph.OpEmbedding:
		return int64(out.NumElements()), nil // gather, ~1 op per element
	case graph.OpMaxPool, graph.OpMeanPool:
		k := int64(l.Attrs.KernelH) * int64(l.Attrs.KernelW)
		return k * int64(out.NumElements()), nil
	case graph.OpGlobalAvgPool:
		return int64(in[0].NumElements()), nil
	case graph.OpBatchNorm, graph.OpLayerNorm:
		return 4 * int64(out.NumElements()), nil
	case graph.OpReLU, graph.OpLeakyReLU, graph.OpIdentity, graph.OpDropout, graph.OpFlatten:
		return int64(out.NumElements()), nil
	case graph.OpTanh, graph.OpSigmoid, graph.OpSoftmax:
		return 4 * int64(out.NumElements()), nil
	case graph.OpAdd, graph.OpMul:
		return int64(len(in)-1) * int64(out.NumElements()), nil
	case graph.OpConcat:
		return int64(out.NumElements()), nil
	case graph.OpInput:
		return 0, nil
	default:
		return 0, fmt.Errorf("resource: unknown op %s", l.Op)
	}
}

func outShape(l *graph.Layer, in []tensor.Shape) (tensor.Shape, error) {
	if l.Op == graph.OpInput {
		if len(in) == 1 {
			return in[0], nil
		}
		return nil, fmt.Errorf("resource: input layer needs its shape supplied")
	}
	return graph.InferShape(l.Op, l.Attrs, in)
}

// Profiler computes resource profiles. It is safe for concurrent use.
type Profiler struct {
	table LatencyTable
}

// NewProfiler returns a profiler using the given latency table, or the
// default table when nil. The table is copied defensively so later
// caller mutations can't race with concurrent Measure calls.
func NewProfiler(table LatencyTable) *Profiler {
	if table == nil {
		table = DefaultLatencyTable()
	}
	cp := make(LatencyTable, len(table))
	for k, v := range table {
		cp[k] = v
	}
	return &Profiler{table: cp}
}

// Measure computes the model's profile under the default execution
// setting.
func (p *Profiler) Measure(m *graph.Model) (Profile, error) {
	return p.MeasureWith(m, DefaultSetting())
}

// MeasureWith computes the model's profile under a specific execution
// setting.
func (p *Profiler) MeasureWith(m *graph.Model, setting ExecSetting) (Profile, error) {
	shapes, err := m.ShapeOf()
	if err != nil {
		return Profile{}, fmt.Errorf("resource: %w", err)
	}
	order, err := m.TopoSort()
	if err != nil {
		return Profile{}, fmt.Errorf("resource: %w", err)
	}
	if setting.BatchSize <= 0 {
		setting.BatchSize = 1
	}
	if setting.ActivationBytes <= 0 {
		setting.ActivationBytes = bytesPerElement
	}

	var flops int64
	var paramBytes int64
	var peakActivation int64
	// finish[i] is the time at which layer order[i] completes; the
	// model latency is the completion time of the sink — the longest
	// path of §5.3.
	finish := make(map[string]float64, len(order))

	for _, l := range order {
		in := make([]tensor.Shape, len(l.Inputs))
		ready := 0.0
		for i, name := range l.Inputs {
			in[i] = shapes[name]
			if finish[name] > ready {
				ready = finish[name]
			}
		}
		var opIn []tensor.Shape
		if l.Op == graph.OpInput {
			opIn = []tensor.Shape{shapes[l.Name]}
		} else {
			opIn = in
		}
		f, err := OpFLOPs(l, opIn)
		if err != nil {
			return Profile{}, fmt.Errorf("resource: layer %q: %w", l.Name, err)
		}
		flops += f
		paramBytes += l.ParamCount() * bytesPerElement

		// Simple liveness model: a layer's inputs and output are live
		// simultaneously while it runs; track the max across layers.
		live := int64(shapes[l.Name].NumElements())
		for _, s := range in {
			live += int64(s.NumElements())
		}
		act := live * int64(setting.ActivationBytes) * int64(setting.BatchSize)
		if act > peakActivation {
			peakActivation = act
		}

		finish[l.Name] = ready + p.opLatencyNS(l, f, shapes[l.Name])
	}

	var latNS float64
	for _, t := range finish {
		if t > latNS {
			latNS = t
		}
	}
	mem := float64(paramBytes+peakActivation) * (1 + setting.RuntimeOverhead)
	return Profile{
		FLOPs:       flops,
		MemoryBytes: int64(mem),
		LatencyMS:   latNS * float64(setting.BatchSize) / 1e6,
	}, nil
}

func (p *Profiler) opLatencyNS(l *graph.Layer, flops int64, out tensor.Shape) float64 {
	cost, ok := p.table[l.Op]
	if !ok {
		cost = 0.5
	}
	switch l.Op {
	case graph.OpDense, graph.OpConv2D:
		return cost * float64(flops)
	default:
		return cost * float64(out.NumElements())
	}
}
