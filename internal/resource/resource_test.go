package resource

import (
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

func mlp(t testing.TB, in, hidden, out int) *graph.Model {
	t.Helper()
	b := graph.NewBuilder("mlp", graph.TaskClassification, tensor.Shape{in}, tensor.NewRNG(1))
	b.Dense(hidden)
	b.ReLU()
	b.Dense(out)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpFLOPsDense(t *testing.T) {
	l := &graph.Layer{Op: graph.OpDense, Attrs: graph.Attrs{Units: 10}}
	f, err := OpFLOPs(l, []tensor.Shape{{20}})
	if err != nil {
		t.Fatal(err)
	}
	if f != 2*10*20+10 {
		t.Fatalf("Dense FLOPs = %d", f)
	}
}

func TestOpFLOPsConv(t *testing.T) {
	l := &graph.Layer{Op: graph.OpConv2D, Attrs: graph.Attrs{
		OutChannels: 8, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1,
	}}
	f, err := OpFLOPs(l, []tensor.Shape{{3, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	outElems := int64(8 * 16 * 16)
	want := 2*3*9*outElems + outElems
	if f != want {
		t.Fatalf("Conv FLOPs = %d, want %d", f, want)
	}
}

func TestMeasureMLP(t *testing.T) {
	m := mlp(t, 100, 50, 10)
	p, err := NewProfiler(nil).Measure(m)
	if err != nil {
		t.Fatal(err)
	}
	wantFLOPs := int64(2*50*100+50) + 50 + int64(2*10*50+10) + 4*10
	if p.FLOPs != wantFLOPs {
		t.Fatalf("FLOPs = %d, want %d", p.FLOPs, wantFLOPs)
	}
	// Parameter bytes alone: (50*100+50 + 10*50+10) * 4.
	paramBytes := int64(50*100+50+10*50+10) * 4
	if p.MemoryBytes <= paramBytes {
		t.Fatalf("MemoryBytes = %d should exceed param bytes %d (activations, overhead)",
			p.MemoryBytes, paramBytes)
	}
	if p.LatencyMS <= 0 {
		t.Fatalf("LatencyMS = %g", p.LatencyMS)
	}
}

func TestBiggerModelCostsMore(t *testing.T) {
	small := mlp(t, 50, 20, 5)
	big := mlp(t, 50, 200, 5)
	prof := NewProfiler(nil)
	ps, err := prof.Measure(small)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := prof.Measure(big)
	if err != nil {
		t.Fatal(err)
	}
	if pb.FLOPs <= ps.FLOPs || pb.MemoryBytes <= ps.MemoryBytes || pb.LatencyMS <= ps.LatencyMS {
		t.Fatalf("bigger model not more expensive: %+v vs %+v", pb, ps)
	}
}

func TestExecSettingsChangeMemory(t *testing.T) {
	m := mlp(t, 100, 100, 10)
	prof := NewProfiler(nil)
	base, err := prof.MeasureWith(m, ExecSetting{Name: "b1", BatchSize: 1, ActivationBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := prof.MeasureWith(m, ExecSetting{Name: "b32", BatchSize: 32, ActivationBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if batched.MemoryBytes <= base.MemoryBytes {
		t.Fatal("batching should raise activation memory")
	}
	half, err := prof.MeasureWith(m, ExecSetting{Name: "fp16", BatchSize: 1, ActivationBytes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if half.MemoryBytes >= base.MemoryBytes {
		t.Fatal("fp16 activations should lower memory")
	}
	// FLOPs are setting-independent.
	if batched.FLOPs != base.FLOPs || half.FLOPs != base.FLOPs {
		t.Fatal("FLOPs should not depend on execution setting")
	}
}

func TestCriticalPathUsesLongestBranch(t *testing.T) {
	// Two parallel branches joined by Add: latency should track the
	// expensive branch, not the sum.
	b := graph.NewBuilder("branch", graph.TaskRegression, tensor.Shape{256}, tensor.NewRNG(2))
	start := b.Dense(256)
	cheap := b.Add(graph.OpIdentity, graph.Attrs{}, start)
	heavy1 := b.Add(graph.OpDense, graph.Attrs{Units: 256}, start)
	heavy2 := b.Add(graph.OpDense, graph.Attrs{Units: 256}, heavy1)
	b.Add(graph.OpAdd, graph.Attrs{}, cheap, heavy2)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Sequential version of the heavy path alone.
	b2 := graph.NewBuilder("seq", graph.TaskRegression, tensor.Shape{256}, tensor.NewRNG(2))
	b2.Dense(256)
	b2.Dense(256)
	b2.Dense(256)
	seq, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}

	prof := NewProfiler(nil)
	pb, err := prof.Measure(m)
	if err != nil {
		t.Fatal(err)
	}
	psq, err := prof.Measure(seq)
	if err != nil {
		t.Fatal(err)
	}
	// Branched latency ≈ sequential latency of the long path plus the
	// join; it must be far below the naive sum of both branches.
	if pb.LatencyMS > psq.LatencyMS*1.5 {
		t.Fatalf("critical path too long: branch=%g seq=%g", pb.LatencyMS, psq.LatencyMS)
	}
	if pb.LatencyMS < psq.LatencyMS*0.9 {
		t.Fatalf("critical path shorter than its longest branch: %g vs %g", pb.LatencyMS, psq.LatencyMS)
	}
}

func TestRelativeTo(t *testing.T) {
	a := Profile{FLOPs: 50, MemoryBytes: 100, LatencyMS: 2}
	ref := Profile{FLOPs: 100, MemoryBytes: 400, LatencyMS: 4}
	mem, fl, lat := a.RelativeTo(ref)
	if mem != 0.25 || fl != 0.5 || lat != 0.5 {
		t.Fatalf("RelativeTo = %g %g %g", mem, fl, lat)
	}
	mem, fl, lat = a.RelativeTo(Profile{})
	if mem != 0 || fl != 0 || lat != 0 {
		t.Fatal("RelativeTo zero reference should yield zeros")
	}
}

func TestVectorOrder(t *testing.T) {
	p := Profile{FLOPs: 2e9, MemoryBytes: 1 << 21, LatencyMS: 3}
	v := p.Vector()
	if v[0] != 2 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Vector = %v", v)
	}
}

func TestMeasureInvalidModel(t *testing.T) {
	m := &graph.Model{Name: "bad", InputShape: tensor.Shape{2},
		Layers: []*graph.Layer{
			{Name: "input", Op: graph.OpInput},
			{Name: "x", Op: graph.OpDense, Inputs: []string{"ghost"}},
		}}
	if _, err := NewProfiler(nil).Measure(m); err == nil {
		t.Fatal("expected error for invalid graph")
	}
}
