package repo

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/zoo"
)

// Satellite of the CAS refactor: the repository must stay coherent when
// publishes, loads, and deletes of overlapping IDs race. Run with -race.

func TestParallelPublishLoadDeleteOverlapping(t *testing.T) {
	for _, mode := range []string{"memory", "dir"} {
		t.Run(mode, func(t *testing.T) {
			var r *Repository
			var err error
			if mode == "memory" {
				r = NewInMemory()
			} else if r, err = Open(t.TempDir()); err != nil {
				t.Fatal(err)
			}
			const ids = 4
			var wg sync.WaitGroup
			for g := 0; g < 3*ids; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					name := fmt.Sprintf("m%d", g%ids)
					switch g % 3 {
					case 0: // publisher: repeatedly overwrite the same slot
						for i := 0; i < 10; i++ {
							m := model(t, name, "1", uint64(g*100+i))
							if _, err := r.Publish(m); err != nil {
								t.Errorf("publish %s: %v", name, err)
								return
							}
						}
					case 1: // loader: anything but a damaged-model error is fine
						for i := 0; i < 20; i++ {
							_, err := r.Load(name + "@1")
							if err != nil && !errors.Is(err, ErrNotFound) {
								t.Errorf("load %s: %v", name, err)
								return
							}
						}
					default: // deleter
						for i := 0; i < 10; i++ {
							if err := r.Delete(name + "@1"); err != nil {
								t.Errorf("delete %s: %v", name, err)
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()

			// Whatever survived must still hydrate, and the chunk store
			// must hold exactly the survivors' references.
			for _, md := range r.List() {
				if _, err := r.Load(md.ID); err != nil {
					t.Errorf("survivor %s does not load: %v", md.ID, err)
				}
			}
			for _, md := range r.List() {
				if err := r.Delete(md.ID); err != nil {
					t.Fatal(err)
				}
			}
			if got := r.CASStats().Chunks; got != 0 {
				t.Fatalf("chunks leaked after deleting every model: %d", got)
			}
		})
	}
}

func TestPublishDedupsFineTunedVariant(t *testing.T) {
	r := NewInMemory()
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "trunkbase", Seed: 1, Width: 32, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	base.Version = "1"
	if _, err := r.Publish(base); err != nil {
		t.Fatal(err)
	}
	baseline := r.CASStats()

	variant, err := zoo.Transfer(base, "tuned", 8, 100, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	variant.Version = "1"
	id, err := r.Publish(variant)
	if err != nil {
		t.Fatal(err)
	}
	after := r.CASStats()
	added := after.Bytes - baseline.Bytes
	if added*4 >= baseline.Bytes {
		t.Fatalf("frozen-trunk variant added %d bytes on a %d-byte base; dedup missing", added, baseline.Bytes)
	}
	man, ok := r.Manifest(id)
	if !ok || man.BaseID != "trunkbase@1" {
		t.Fatalf("variant manifest base = %q, want trunkbase@1", man.BaseID)
	}

	// Deleting the base must not damage the variant: refs are per-chunk.
	if err := r.Delete("trunkbase@1"); err != nil {
		t.Fatal(err)
	}
	got, err := r.Load(id)
	if err != nil {
		t.Fatalf("variant damaged by base deletion: %v", err)
	}
	if got.Fingerprint() != variant.Fingerprint() {
		t.Fatal("variant content changed after base deletion")
	}
}

func TestDeleteReclaimsExclusiveChunksOnly(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "shared", Seed: 3, Width: 32, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	base.Version = "1"
	variant, err := zoo.Transfer(base, "leaf", 8, 100, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	variant.Version = "1"
	if _, err := r.Publish(base); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(variant); err != nil {
		t.Fatal(err)
	}
	withBoth := r.CASStats().Chunks
	if err := r.Delete("leaf@1"); err != nil {
		t.Fatal(err)
	}
	afterLeaf := r.CASStats().Chunks
	if afterLeaf >= withBoth {
		t.Fatal("deleting the variant reclaimed nothing")
	}
	if _, err := r.Load("shared@1"); err != nil {
		t.Fatalf("base damaged by variant deletion: %v", err)
	}
	if err := r.Delete("shared@1"); err != nil {
		t.Fatal(err)
	}
	if got := r.CASStats().Chunks; got != 0 {
		t.Fatalf("chunks left after deleting everything: %d", got)
	}
}

func TestDeleteRemovesDiskFileWhenMemoryEntryMissing(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A manifest written by some other process: present on disk, absent
	// from this handle's in-memory record.
	other, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, err := other.Publish(model(t, "stray", "1", 9))
	if err != nil {
		t.Fatal(err)
	}
	man, _ := other.Manifest(id)
	if err := writeManifestFile(filepath.Join(dir, safeID(id)+manifestSuffix), man); err != nil {
		t.Fatal(err)
	}

	if err := r.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, safeID(id)+manifestSuffix)); !os.IsNotExist(err) {
		t.Fatal("Delete left the on-disk manifest for an ID missing from memory")
	}
}

func TestOpenMigratesLegacySOMX(t *testing.T) {
	dir := t.TempDir()
	m := model(t, "legacy", "1", 11)
	f, err := os.Create(filepath.Join(dir, "legacy@1"+legacySuffix))
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.EncodeV1(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Load("legacy@1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("migration changed the model")
	}
	if _, err := os.Stat(filepath.Join(dir, "legacy@1"+legacySuffix)); !os.IsNotExist(err) {
		t.Fatal("migrated legacy file left behind")
	}
	// The migrated form must survive another open.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Load("legacy@1"); err != nil {
		t.Fatal(err)
	}
}
