package repo

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Failure injection: a repository must degrade loudly, not silently,
// when its on-disk state is damaged — and one damaged file must never
// take the whole repository down.

func TestOpenSweepsCorruptLegacyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken@1.somx")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt file must not fail the open: %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("corrupt file counted as a model: %d", r.Len())
	}
	if got := r.SweptFiles(); len(got) != 1 || got[0] != "broken@1.somx" {
		t.Fatalf("SweptFiles = %v, want the corrupt file", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file left on disk after sweep")
	}
}

func TestOpenSweepsTornManifest(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keepID, err := r.Publish(model(t, "keep", "1", 2))
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Publish(model(t, "torn", "1", 3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+manifestSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("torn manifest must not fail the open: %v", err)
	}
	if _, err := r2.Load(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load of swept model = %v, want ErrNotFound", err)
	}
	if _, err := r2.Load(keepID); err != nil {
		t.Fatalf("healthy sibling model lost: %v", err)
	}
	if len(r2.SweptFiles()) == 0 {
		t.Fatal("sweep left no record")
	}
}

func TestOpenSweepsManifestWithMissingChunks(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Publish(model(t, "gone", "1", 4))
	if err != nil {
		t.Fatal(err)
	}
	man, ok := r.Manifest(id)
	if !ok {
		t.Fatal("manifest missing after publish")
	}
	// Delete one chunk file behind the repository's back.
	h := man.ChunkRefs()[0]
	if err := os.Remove(filepath.Join(dir, "chunks", h[:2], h)); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("missing chunk must not fail the open: %v", err)
	}
	if _, err := r2.Load(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load = %v, want ErrNotFound after sweep", err)
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("foreign files counted as models: %d", r.Len())
	}
	if got := r.SweptFiles(); len(got) != 0 {
		t.Fatalf("foreign files swept: %v", got)
	}
}

func TestLoadAfterExternalDeletion(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Publish(model(t, "vanish", "1", 5))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an operator deleting the manifest behind the repository's
	// back, then dropping the cache via a fresh handle.
	if err := os.Remove(filepath.Join(dir, id+manifestSuffix)); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Load(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load = %v, want not-found after external deletion", err)
	}
}

func TestCorruptChunkIsDamagedNotNotFound(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Publish(model(t, "rot", "1", 6))
	if err != nil {
		t.Fatal(err)
	}
	man, _ := r.Manifest(id)
	h := man.ChunkRefs()[0]
	if err := os.WriteFile(filepath.Join(dir, "chunks", h[:2], h), []byte("bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh handle so the hydration cache is cold; the chunk table knows
	// the chunk, but its bytes no longer match the address.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r2.Load(id)
	if err == nil {
		t.Fatal("corrupt chunk loaded successfully")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatal("corruption misreported as not-found")
	}
	if !errors.Is(err, ErrDamaged) {
		t.Fatalf("Load = %v, want ErrDamaged", err)
	}
}

func TestOpenUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.MkdirAll(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(ro); err == nil {
		t.Fatal("expected open error: the chunk tree cannot be created read-only")
	}
}
