package repo

import (
	"os"
	"path/filepath"
	"testing"
)

// Failure injection: a repository must degrade loudly, not silently,
// when its on-disk state is damaged.

func TestOpenRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken@1.somx"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("expected error opening a repository with a corrupt model file")
	}
}

func TestOpenRejectsTruncatedModel(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := model(t, "trunc", "1", 3)
	id, err := r.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+".somx")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("expected error for truncated model file")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("foreign files counted as models: %d", r.Len())
	}
}

func TestLoadAfterExternalDeletion(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id, err := r.Publish(model(t, "vanish", "1", 5))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate an operator deleting the file behind the repository's
	// back, then dropping the cache via a fresh handle.
	if err := os.Remove(filepath.Join(dir, id+".somx")); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Load(id); err == nil {
		t.Fatal("expected not-found after external deletion")
	}
}

func TestOpenUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	dir := t.TempDir()
	ro := filepath.Join(dir, "ro")
	if err := os.MkdirAll(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	r, err := Open(ro)
	if err != nil {
		t.Fatal(err) // opening read-only is fine
	}
	if _, err := r.Publish(model(t, "nope", "1", 7)); err == nil {
		t.Fatal("expected publish error on read-only directory")
	}
}
