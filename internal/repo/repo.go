// Package repo implements the bare-bone DNN model repository Sommelier
// interposes on (§2.1): publish-by-name, load-by-URL, nothing else. The
// store is either directory-backed (one SOMX file per model, the TF-Hub
// stand-in) or purely in-memory for experiments that index thousands of
// models.
package repo

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sommelier/internal/graph"
)

// ErrNotFound is wrapped by Load errors for unknown model IDs, so
// callers (the hub server in particular) can tell a missing model from
// a damaged one.
var ErrNotFound = errors.New("model not found")

// Metadata is the minimal record the bare-bone repository keeps per
// model: identity and free-form annotations. Deliberately no accuracy or
// resource data — providing those is Sommelier's job.
type Metadata struct {
	ID      string
	Name    string
	Version string
	Task    graph.TaskKind
	// Series groups models derived from a common basis (BiT,
	// EfficientNet, ...), mirroring TF-Hub collections.
	Series string
	// Annotations carries optional designer-provided notes (§5.5).
	Annotations map[string]string
}

// Repository stores models. All methods are safe for concurrent use.
type Repository struct {
	dir string // empty for in-memory repositories

	mu     sync.RWMutex
	meta   map[string]Metadata     // guarded by mu
	models map[string]*graph.Model // guarded by mu; cache, authoritative for in-memory mode
	order  []string                // guarded by mu
}

// NewInMemory returns a repository that keeps models in memory only.
func NewInMemory() *Repository {
	return &Repository{
		meta:   make(map[string]Metadata),
		models: make(map[string]*graph.Model),
	}
}

// Open returns a directory-backed repository, loading metadata for any
// SOMX files already present. The directory is created if missing.
func Open(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	r := NewInMemory()
	r.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".somx") {
			continue
		}
		id := strings.TrimSuffix(e.Name(), ".somx")
		m, err := r.readFile(id)
		if err != nil {
			return nil, fmt.Errorf("repo: loading %s: %w", e.Name(), err)
		}
		r.meta[id] = metadataOf(id, m)
		r.models[id] = m
		r.order = append(r.order, id)
	}
	sort.Strings(r.order)
	return r, nil
}

func metadataOf(id string, m *graph.Model) Metadata {
	md := Metadata{ID: id, Name: m.Name, Version: m.Version, Task: m.Task}
	if m.Metadata != nil {
		md.Series = m.Metadata["series"]
		md.Annotations = m.Metadata
	}
	return md
}

// IDFor returns the repository ID Publish would assign to the model:
// name@version. Callers use it to ask about a model's slot before
// publishing (e.g. "would this publish overwrite something?").
func IDFor(m *graph.Model) string { return m.Name + "@" + m.Version }

// Publish stores a model and returns its repository ID (name@version).
// Publishing an existing ID overwrites it, matching hub semantics of
// re-pushing a version.
func (r *Repository) Publish(m *graph.Model) (string, error) {
	if err := m.Validate(); err != nil {
		return "", fmt.Errorf("repo: refusing invalid model: %w", err)
	}
	id := IDFor(m)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dir != "" {
		path := r.path(id)
		f, err := os.Create(path)
		if err != nil {
			return "", fmt.Errorf("repo: %w", err)
		}
		if err := graph.Encode(f, m); err != nil {
			f.Close()
			return "", fmt.Errorf("repo: encoding %s: %w", id, err)
		}
		if err := f.Close(); err != nil {
			return "", fmt.Errorf("repo: %w", err)
		}
	}
	if _, exists := r.meta[id]; !exists {
		r.order = append(r.order, id)
	}
	r.meta[id] = metadataOf(id, m)
	r.models[id] = m
	return id, nil
}

// Load returns the model stored under id. Directory-backed repositories
// serve from the in-memory cache, falling back to disk.
func (r *Repository) Load(id string) (*graph.Model, error) {
	r.mu.RLock()
	m, ok := r.models[id]
	r.mu.RUnlock()
	if ok {
		return m, nil
	}
	if r.dir == "" {
		return nil, fmt.Errorf("repo: model %q: %w", id, ErrNotFound)
	}
	m, err := r.readFile(id)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("repo: model %q: %w", id, ErrNotFound)
		}
		return nil, fmt.Errorf("repo: model %q: %w", id, err)
	}
	r.mu.Lock()
	r.models[id] = m
	r.mu.Unlock()
	return m, nil
}

// LoadByURL resolves a bare-bone repository URL (somx://<id>) — the
// primitive load-by-exact-URL interface existing hubs expose.
func (r *Repository) LoadByURL(url string) (*graph.Model, error) {
	const scheme = "somx://"
	if !strings.HasPrefix(url, scheme) {
		return nil, fmt.Errorf("repo: unsupported URL %q", url)
	}
	return r.Load(strings.TrimPrefix(url, scheme))
}

// URL returns the bare-bone URL for a stored model ID.
func (r *Repository) URL(id string) string { return "somx://" + id }

// Delete removes a model. Unknown IDs are a no-op.
func (r *Repository) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.meta[id]; !ok {
		return nil
	}
	delete(r.meta, id)
	delete(r.models, id)
	for i, o := range r.order {
		if o == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	if r.dir != "" {
		if err := os.Remove(r.path(id)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("repo: %w", err)
		}
	}
	return nil
}

// List returns metadata for every stored model in publication order.
func (r *Repository) List() []Metadata {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Metadata, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.meta[id])
	}
	return out
}

// Metadata returns the record for one model.
func (r *Repository) Metadata(id string) (Metadata, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	md, ok := r.meta[id]
	return md, ok
}

// Len returns the number of stored models.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.meta)
}

func (r *Repository) path(id string) string {
	// IDs contain '@'; keep them but sanitize path separators.
	safe := strings.ReplaceAll(id, string(filepath.Separator), "_")
	return filepath.Join(r.dir, safe+".somx")
}

func (r *Repository) readFile(id string) (*graph.Model, error) {
	f, err := os.Open(r.path(id))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Decode(f)
}
