// Package repo implements the bare-bone DNN model repository Sommelier
// interposes on (§2.1): publish-by-name, load-by-URL, nothing else. The
// store is either directory-backed (the TF-Hub stand-in) or purely
// in-memory for experiments that index thousands of models.
//
// Underneath the unchanged Publish/Load/Delete surface, models live in a
// content-addressed chunk store (internal/cas): a publish encodes the
// model into a manifest of SHA-256 chunk references — deduplicating
// tensors shared with an already-published base and delta-encoding
// sparse edits — a load lazily hydrates from chunks, and a delete
// releases refcounts so only chunks nothing else shares are reclaimed.
package repo

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sommelier/internal/cas"
	"sommelier/internal/graph"
)

// ErrNotFound is wrapped by Load errors for unknown model IDs, so
// callers (the hub server in particular) can tell a missing model from
// a damaged one.
var ErrNotFound = errors.New("model not found")

// ErrDamaged is wrapped by Load errors when a model is known but its
// stored form cannot be reconstructed — a corrupt or missing chunk,
// never an unknown ID.
var ErrDamaged = errors.New("model damaged")

// Metadata is the minimal record the bare-bone repository keeps per
// model: identity and free-form annotations. Deliberately no accuracy or
// resource data — providing those is Sommelier's job.
type Metadata struct {
	ID      string
	Name    string
	Version string
	Task    graph.TaskKind
	// Series groups models derived from a common basis (BiT,
	// EfficientNet, ...), mirroring TF-Hub collections.
	Series string
	// Annotations carries optional designer-provided notes (§5.5).
	Annotations map[string]string
}

// Repository stores models over a content-addressed chunk store. All
// methods are safe for concurrent use.
type Repository struct {
	dir    string     // empty for in-memory repositories
	chunks *cas.Store // refcounted chunk store; has its own lock

	mu        sync.RWMutex
	meta      map[string]Metadata      // guarded by mu
	manifests map[string]*cas.Manifest // guarded by mu; authoritative model records
	models    map[string]*graph.Model  // guarded by mu; hydration cache
	order     []string                 // guarded by mu
	swept     []string                 // guarded by mu; files Open discarded, for inspection
}

// NewInMemory returns a repository that keeps models in memory only.
func NewInMemory() *Repository {
	return &Repository{
		chunks:    cas.NewMemory(),
		meta:      make(map[string]Metadata),
		manifests: make(map[string]*cas.Manifest),
		models:    make(map[string]*graph.Model),
	}
}

// Open returns a directory-backed repository. The directory is created
// if missing. Layout: one manifest file per model plus a chunks/ tree
// holding the content-addressed tensor segments. Legacy single-file
// SOMX models found in the directory are migrated into chunked form.
// Files that cannot be decoded — a torn manifest, a truncated legacy
// model, chunks no manifest references — are swept with a logged
// warning rather than failing the open: one damaged file must not take
// the repository down.
func Open(dir string) (*Repository, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	chunks, err := cas.OpenDir(filepath.Join(dir, "chunks"))
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	r := NewInMemory()
	r.dir = dir
	r.chunks = chunks
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	var manifestFiles, legacyFiles []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), manifestSuffix):
			manifestFiles = append(manifestFiles, e.Name())
		case strings.HasSuffix(e.Name(), legacySuffix):
			legacyFiles = append(legacyFiles, e.Name())
		}
	}
	sort.Strings(manifestFiles)
	sort.Strings(legacyFiles)
	for _, name := range manifestFiles {
		id := strings.TrimSuffix(name, manifestSuffix)
		man, err := readManifestFile(filepath.Join(dir, name))
		if err == nil {
			if missing := cas.Missing(man, chunks.Has); len(missing) > 0 {
				err = fmt.Errorf("%d referenced chunks missing", len(missing))
			}
		}
		if err != nil {
			r.sweepFile(name, err)
			continue
		}
		if err := chunks.AddRefs(man.ChunkRefs()); err != nil {
			r.sweepFile(name, err)
			continue
		}
		r.meta[id] = metadataOf(man)
		r.manifests[id] = man
		r.order = append(r.order, id)
	}
	for _, name := range legacyFiles {
		m, err := readLegacyFile(filepath.Join(dir, name))
		if err != nil {
			r.sweepFile(name, err)
			continue
		}
		if _, err := r.Publish(m); err != nil {
			r.sweepFile(name, err)
			continue
		}
		// The model now lives as manifest + chunks; the single-file form
		// is redundant.
		_ = os.Remove(filepath.Join(dir, name))
	}
	if orphans := chunks.Sweep(); len(orphans) > 0 {
		log.Printf("repo: open %s: swept %d unreferenced chunks", dir, len(orphans))
		r.swept = append(r.swept, orphans...)
	}
	sort.Strings(r.order)
	return r, nil
}

const (
	manifestSuffix = ".manifest.json"
	legacySuffix   = ".somx"
)

// sweepFile removes an undecodable repository file, logging why. Only
// called from Open, before the repository is shared.
func (r *Repository) sweepFile(name string, cause error) {
	log.Printf("repo: open %s: sweeping %s: %v", r.dir, name, cause)
	_ = os.Remove(filepath.Join(r.dir, name))
	r.mu.Lock()
	r.swept = append(r.swept, name)
	r.mu.Unlock()
}

// SweptFiles returns the names of files Open discarded as undecodable,
// plus addresses of orphaned chunks it collected.
func (r *Repository) SweptFiles() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.swept...)
}

func metadataOf(man *cas.Manifest) Metadata {
	md := Metadata{ID: man.ID(), Name: man.Name, Version: man.Version, Task: man.Task}
	if man.Metadata != nil {
		md.Series = man.Metadata["series"]
		md.Annotations = man.Metadata
	}
	return md
}

// IDFor returns the repository ID Publish would assign to the model:
// name@version. Callers use it to ask about a model's slot before
// publishing (e.g. "would this publish overwrite something?").
func IDFor(m *graph.Model) string { return m.Name + "@" + m.Version }

// Publish stores a model and returns its repository ID (name@version).
// Publishing an existing ID overwrites it, matching hub semantics of
// re-pushing a version.
//
// The model is chunked against its base — the already-published model
// its metadata names under "base" or "transferred-from" — so a
// fine-tuned variant stores only the tensors (or sparse deltas) that
// differ. Encoding runs outside the repository lock; only the final
// commit of the manifest is serialized.
func (r *Repository) Publish(m *graph.Model) (string, error) {
	enc, err := r.Encode(m)
	if err != nil {
		return "", err
	}
	return r.PublishEncoded(enc)
}

// Encode chunks a model for publication, resolving its base model for
// dedup/delta encoding. Pure CPU plus at most one base Load; callers
// that publish the same model to many stores (cluster replication)
// encode once and hand the result to each PublishEncoded.
func (r *Repository) Encode(m *graph.Model) (*cas.Encoded, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("repo: refusing invalid model: %w", err)
	}
	baseID, base := r.resolveBase(m)
	enc, err := cas.Encode(m, baseID, base, 0)
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	return enc, nil
}

// resolveBase finds the published model a new model's metadata names as
// its basis ("base" wins over "transferred-from"; values may be an exact
// id or a bare name, where the most recently published version wins).
// Returns ("", nil) when there is no resolvable base — dedup then falls
// back to content addressing alone.
func (r *Repository) resolveBase(m *graph.Model) (string, *graph.Model) {
	ref := m.Metadata["base"]
	if ref == "" {
		ref = m.Metadata["transferred-from"]
	}
	if ref == "" || ref == m.Name {
		return "", nil
	}
	id := r.lookupID(ref)
	if id == "" || id == IDFor(m) {
		return "", nil
	}
	base, err := r.Load(id)
	if err != nil {
		return "", nil
	}
	return id, base
}

// lookupID resolves a base reference to a stored ID: exact id first,
// else the most recently published version of the named model.
func (r *Repository) lookupID(ref string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.meta[ref]; ok {
		return ref
	}
	for i := len(r.order) - 1; i >= 0; i-- {
		if r.meta[r.order[i]].Name == ref {
			return r.order[i]
		}
	}
	return ""
}

// PublishEncoded commits an already-encoded model: chunks first (each
// idempotent and crash-safe; an interrupted publish leaves only
// orphaned chunks for the next Open to sweep), then the manifest file,
// then the in-memory commit that flips refcounts. Returns the model ID.
func (r *Repository) PublishEncoded(enc *cas.Encoded) (string, error) {
	id := enc.Manifest.ID()
	for _, h := range sortedChunkKeys(enc.Chunks) {
		if err := r.chunks.Put(h, enc.Chunks[h]); err != nil {
			return "", fmt.Errorf("repo: publishing %s: %w", id, err)
		}
	}
	if r.dir != "" {
		if err := writeManifestFile(r.manifestPath(id), enc.Manifest); err != nil {
			return "", fmt.Errorf("repo: publishing %s: %w", id, err)
		}
	}
	refs := enc.Manifest.ChunkRefs()
	// A chunk is unreferenced between Put and AddRefs, so a racing
	// Delete of a model sharing it can GC it out from under this
	// publish. AddRefs is all-or-nothing; on that race, re-put the
	// collected chunks from the encoding and retry.
	for attempt := 0; ; attempt++ {
		if err := r.commitManifest(enc, refs); err == nil {
			return id, nil
		} else if attempt >= 8 || !errors.Is(err, cas.ErrMissingChunk) {
			return "", fmt.Errorf("repo: publishing %s: %w", id, err)
		}
		reput := false
		for _, h := range refs {
			data, ok := enc.Chunks[h]
			if !ok || r.chunks.Has(h) {
				continue
			}
			if err := r.chunks.Put(h, data); err != nil {
				return "", fmt.Errorf("repo: publishing %s: %w", id, err)
			}
			reput = true
		}
		if !reput {
			return "", fmt.Errorf("repo: publishing %s: %w and the encoding cannot resupply it", id, cas.ErrMissingChunk)
		}
	}
}

// commitManifest is the serialized tail of a publish: reference every
// chunk, release the overwritten manifest's references, and flip the
// in-memory records.
func (r *Repository) commitManifest(enc *cas.Encoded, refs []string) error {
	id := enc.Manifest.ID()
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.chunks.AddRefs(refs); err != nil {
		return err
	}
	if old, exists := r.manifests[id]; exists {
		r.chunks.Release(old.ChunkRefs())
	} else {
		r.order = append(r.order, id)
	}
	r.meta[id] = metadataOf(enc.Manifest)
	r.manifests[id] = enc.Manifest
	if enc.Model != nil {
		r.models[id] = enc.Model
	} else {
		delete(r.models, id)
	}
	return nil
}

// PublishManifest commits a model received as manifest + negotiated
// chunks (the hub's chunked upload path). Every referenced chunk must
// already be present — MissingChunks names any that are not — and the
// manifest must hydrate to a valid model, so a malformed upload is
// rejected before it becomes visible.
func (r *Repository) PublishManifest(man *cas.Manifest) (string, error) {
	if err := man.Validate(); err != nil {
		return "", fmt.Errorf("repo: %w", err)
	}
	if missing := cas.Missing(man, r.chunks.Has); len(missing) > 0 {
		return "", fmt.Errorf("repo: publishing %s: %d referenced chunks not uploaded: %w",
			man.ID(), len(missing), cas.ErrMissingChunk)
	}
	// Record chunk bytes as hydration fetches them, so the commit can
	// resupply any chunk a racing delete GCs before it is referenced.
	chunks := make(map[string][]byte)
	m, err := cas.Hydrate(man, func(h string) ([]byte, error) {
		data, err := r.chunks.Get(h)
		if err == nil {
			chunks[h] = data
		}
		return data, err
	})
	if err != nil {
		return "", fmt.Errorf("repo: publishing %s: %w", man.ID(), err)
	}
	return r.PublishEncoded(&cas.Encoded{Model: m, Manifest: man, Chunks: chunks})
}

// Load returns the model stored under id, hydrating it from chunks on
// first use and caching the result.
func (r *Repository) Load(id string) (*graph.Model, error) {
	r.mu.RLock()
	m, ok := r.models[id]
	var man *cas.Manifest
	if !ok {
		man = r.manifests[id]
	}
	r.mu.RUnlock()
	if ok {
		return m, nil
	}
	if man == nil {
		return nil, fmt.Errorf("repo: model %q: %w", id, ErrNotFound)
	}
	m, err := cas.Hydrate(man, r.chunks.Get)
	if err != nil {
		return nil, fmt.Errorf("repo: model %q: %w: %w", id, ErrDamaged, err)
	}
	r.mu.Lock()
	// Only cache if the model is still current; a racing overwrite or
	// delete wins.
	if r.manifests[id] == man {
		r.models[id] = m
	}
	r.mu.Unlock()
	return m, nil
}

// Manifest returns the stored chunk manifest for a model.
func (r *Repository) Manifest(id string) (*cas.Manifest, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	man, ok := r.manifests[id]
	return man, ok
}

// LoadByURL resolves a bare-bone repository URL (somx://<id>) — the
// primitive load-by-exact-URL interface existing hubs expose.
func (r *Repository) LoadByURL(url string) (*graph.Model, error) {
	const scheme = "somx://"
	if !strings.HasPrefix(url, scheme) {
		return nil, fmt.Errorf("repo: unsupported URL %q", url)
	}
	return r.Load(strings.TrimPrefix(url, scheme))
}

// URL returns the bare-bone URL for a stored model ID.
func (r *Repository) URL(id string) string { return "somx://" + id }

// Delete removes a model and releases its chunk references; chunks
// shared with other models survive, exclusive ones are reclaimed.
// Unknown IDs are a no-op for the in-memory record, but any stray
// on-disk files for the ID are removed regardless, so a repository
// whose memory and disk state disagree converges on deletion.
func (r *Repository) Delete(id string) error {
	var refs []string
	r.mu.Lock()
	if man, ok := r.manifests[id]; ok {
		refs = man.ChunkRefs()
		delete(r.meta, id)
		delete(r.manifests, id)
		delete(r.models, id)
		for i, o := range r.order {
			if o == id {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	if r.dir != "" {
		for _, path := range []string{r.manifestPath(id), r.legacyPath(id)} {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("repo: %w", err)
			}
		}
	}
	r.chunks.Release(refs)
	return nil
}

// List returns metadata for every stored model in publication order.
func (r *Repository) List() []Metadata {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Metadata, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.meta[id])
	}
	return out
}

// Metadata returns the record for one model.
func (r *Repository) Metadata(id string) (Metadata, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	md, ok := r.meta[id]
	return md, ok
}

// Len returns the number of stored models.
func (r *Repository) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.meta)
}

// HasChunk reports whether the repository's chunk store holds a chunk —
// the transfer-negotiation primitive ("do I need to send this?").
func (r *Repository) HasChunk(hash string) bool { return r.chunks.Has(hash) }

// GetChunk returns a chunk's verified bytes.
func (r *Repository) GetChunk(hash string) ([]byte, error) { return r.chunks.Get(hash) }

// PutChunk stores a chunk ahead of a manifest publish. The chunk is
// unreferenced until a manifest claims it; Open sweeps unclaimed ones.
func (r *Repository) PutChunk(hash string, data []byte) error { return r.chunks.Put(hash, data) }

// MissingChunks returns the manifest's chunk references this repository
// does not hold, sorted.
func (r *Repository) MissingChunks(man *cas.Manifest) []string {
	return cas.Missing(man, r.chunks.Has)
}

// CASStats reports the underlying chunk store's population and dedup
// counters.
func (r *Repository) CASStats() cas.Stats { return r.chunks.Stats() }

func sortedChunkKeys(chunks map[string][]byte) []string {
	keys := make([]string, 0, len(chunks))
	for h := range chunks {
		keys = append(keys, h)
	}
	sort.Strings(keys)
	return keys
}

func (r *Repository) manifestPath(id string) string {
	return filepath.Join(r.dir, safeID(id)+manifestSuffix)
}

func (r *Repository) legacyPath(id string) string {
	return filepath.Join(r.dir, safeID(id)+legacySuffix)
}

// safeID keeps '@' in file names but sanitizes path separators.
func safeID(id string) string {
	return strings.ReplaceAll(id, string(filepath.Separator), "_")
}

func readManifestFile(path string) (*cas.Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cas.DecodeManifest(f)
}

// writeManifestFile writes a manifest via temp file + rename so a crash
// mid-publish can never leave a torn manifest for the next Open.
func writeManifestFile(path string, man *cas.Manifest) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	if err := cas.EncodeManifest(tmp, man); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func readLegacyFile(path string) (*graph.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Decode(f)
}
