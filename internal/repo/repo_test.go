package repo

import (
	"sync"
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

func model(t testing.TB, name, version string, seed uint64) *graph.Model {
	t.Helper()
	b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(seed))
	b.Dense(6)
	b.ReLU()
	b.Dense(3)
	b.Softmax()
	b.Meta("series", "test-series")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.Version = version
	return m
}

func TestInMemoryPublishLoad(t *testing.T) {
	r := NewInMemory()
	m := model(t, "alpha", "1", 1)
	id, err := r.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	if id != "alpha@1" {
		t.Fatalf("id = %q", id)
	}
	got, err := r.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("loaded model differs")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	r := NewInMemory()
	bad := &graph.Model{Name: "bad", InputShape: tensor.Shape{2}}
	if _, err := r.Publish(bad); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestLoadByURL(t *testing.T) {
	r := NewInMemory()
	id, err := r.Publish(model(t, "m", "2", 3))
	if err != nil {
		t.Fatal(err)
	}
	url := r.URL(id)
	if url != "somx://m@2" {
		t.Fatalf("URL = %q", url)
	}
	if _, err := r.LoadByURL(url); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadByURL("http://example.com/m"); err == nil {
		t.Fatal("expected unsupported-URL error")
	}
}

func TestLoadMissing(t *testing.T) {
	r := NewInMemory()
	if _, err := r.Load("ghost@1"); err == nil {
		t.Fatal("expected not-found error")
	}
}

func TestDeleteAndList(t *testing.T) {
	r := NewInMemory()
	idA, _ := r.Publish(model(t, "a", "1", 1))
	idB, _ := r.Publish(model(t, "b", "1", 2))
	list := r.List()
	if len(list) != 2 || list[0].ID != idA || list[1].ID != idB {
		t.Fatalf("List = %+v", list)
	}
	if list[0].Series != "test-series" {
		t.Fatalf("series metadata lost: %+v", list[0])
	}
	if err := r.Delete(idA); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("ghost"); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
	if _, err := r.Load(idA); err == nil {
		t.Fatal("deleted model still loads")
	}
}

func TestPublishOverwritesVersion(t *testing.T) {
	r := NewInMemory()
	m1 := model(t, "m", "1", 1)
	m2 := model(t, "m", "1", 99)
	r.Publish(m1)
	r.Publish(m2)
	if r.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", r.Len())
	}
	got, _ := r.Load("m@1")
	if got.Fingerprint() != m2.Fingerprint() {
		t.Fatal("overwrite did not take effect")
	}
}

func TestDirectoryBackedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := model(t, "disk", "3", 5)
	id, err := r.Publish(m)
	if err != nil {
		t.Fatal(err)
	}

	// Reopen: the model must be discovered from disk.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 {
		t.Fatalf("reopened Len = %d", r2.Len())
	}
	got, err := r2.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("disk round-trip changed the model")
	}
	md, ok := r2.Metadata(id)
	if !ok || md.Name != "disk" {
		t.Fatalf("metadata = %+v", md)
	}

	if err := r2.Delete(id); err != nil {
		t.Fatal(err)
	}
	r3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Len() != 0 {
		t.Fatal("delete did not remove file")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewInMemory()
	id, _ := r.Publish(model(t, "c", "1", 7))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := r.Load(id); err != nil {
					t.Error(err)
					return
				}
				r.List()
			}
		}(i)
	}
	wg.Wait()
}
