// Package dataset supplies the labeled validation data every equivalence
// measurement in the reproduction runs on. Real Sommelier uses ImageNet,
// SQuAD, and friends; here datasets are synthetic but seeded and
// structured (Gaussian class clusters, teacher-generated labels) so the
// experiments control exactly how much two models disagree.
package dataset

import (
	"fmt"

	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

// Dataset is an ordered collection of samples with ground-truth labels.
// Classification datasets use Labels; regression datasets use Targets.
type Dataset struct {
	Name       string
	Inputs     []*tensor.Tensor
	Labels     []int
	Targets    []*tensor.Tensor
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Inputs) }

// Slice returns a view of samples [lo, hi).
func (d *Dataset) Slice(lo, hi int) *Dataset {
	s := &Dataset{Name: d.Name, NumClasses: d.NumClasses}
	s.Inputs = d.Inputs[lo:hi]
	if d.Labels != nil {
		s.Labels = d.Labels[lo:hi]
	}
	if d.Targets != nil {
		s.Targets = d.Targets[lo:hi]
	}
	return s
}

// Split partitions the dataset into a training set of trainFrac of the
// samples and a validation set of the remainder.
func (d *Dataset) Split(trainFrac float64) (train, val *Dataset) {
	n := int(float64(d.Len()) * trainFrac)
	if n < 0 {
		n = 0
	}
	if n > d.Len() {
		n = d.Len()
	}
	return d.Slice(0, n), d.Slice(n, d.Len())
}

// GaussianMixture synthesizes a classification dataset of n samples over
// dim features and k classes. Each class is an isotropic Gaussian around a
// random center; spread controls the cluster overlap (larger = harder).
func GaussianMixture(name string, n, dim, k int, spread float64, seed uint64) *Dataset {
	if n <= 0 || dim <= 0 || k <= 0 {
		panic(fmt.Sprintf("dataset: invalid GaussianMixture(%d,%d,%d)", n, dim, k))
	}
	rng := tensor.NewRNG(seed)
	centers := make([]*tensor.Tensor, k)
	for c := range centers {
		centers[c] = tensor.New(dim)
		rng.FillUniform(centers[c], -2, 2)
	}
	d := &Dataset{Name: name, NumClasses: k}
	d.Inputs = make([]*tensor.Tensor, n)
	d.Labels = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k // balanced classes
		x := tensor.New(dim)
		rng.FillNormal(x, 0, spread)
		x.AddInPlace(centers[c])
		d.Inputs[i] = x
		d.Labels[i] = c
	}
	return d
}

// RandomImages synthesizes n rank-3 image-like tensors of the given shape
// with standard-normal pixels — unlabeled probe inputs for agreement and
// segment experiments.
func RandomImages(n int, shape tensor.Shape, seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(shape...)
		rng.FillNormal(t, 0, 1)
		out[i] = t
	}
	return out
}

// TeacherLabeled builds a classification dataset whose ground truth is a
// teacher model's own predictions over random inputs. Models derived from
// the same teacher then have exactly controllable agreement with it.
func TeacherLabeled(name string, teacher *nn.Executor, n int, seed uint64) (*Dataset, error) {
	inputs := RandomImages(n, teacher.Model().InputShape, seed)
	out, err := teacher.Model().OutputShape()
	if err != nil {
		return nil, err
	}
	d := &Dataset{Name: name, NumClasses: out.NumElements()}
	d.Inputs = inputs
	d.Labels = make([]int, n)
	for i, x := range inputs {
		cls, err := teacher.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("dataset: labeling sample %d: %w", i, err)
		}
		d.Labels[i] = cls
	}
	return d, nil
}

// Accuracy returns the top-1 accuracy of the executor on a classification
// dataset.
func Accuracy(e *nn.Executor, d *Dataset) (float64, error) {
	if d.Labels == nil {
		return 0, fmt.Errorf("dataset: %q has no labels", d.Name)
	}
	if d.Len() == 0 {
		return 0, fmt.Errorf("dataset: %q is empty", d.Name)
	}
	correct := 0
	for i, x := range d.Inputs {
		cls, err := e.Predict(x)
		if err != nil {
			return 0, err
		}
		if cls == d.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len()), nil
}

// QoRDifference measures the empirical quality-of-result difference
// between two models on the dataset (§4.1). For classification datasets it
// is the absolute accuracy gap; otherwise it is the mean L2 distance
// between raw outputs on the same inputs.
func QoRDifference(a, b *nn.Executor, d *Dataset) (float64, error) {
	if d.Len() == 0 {
		return 0, fmt.Errorf("dataset: %q is empty", d.Name)
	}
	if d.Labels != nil {
		accA, err := Accuracy(a, d)
		if err != nil {
			return 0, err
		}
		accB, err := Accuracy(b, d)
		if err != nil {
			return 0, err
		}
		if accA >= accB {
			return accA - accB, nil
		}
		return accB - accA, nil
	}
	total := 0.0
	for _, x := range d.Inputs {
		oa, err := a.Forward(x)
		if err != nil {
			return 0, err
		}
		ob, err := b.Forward(x)
		if err != nil {
			return 0, err
		}
		total += tensor.L2Distance(oa, ob)
	}
	return total / float64(d.Len()), nil
}

// DisagreementRatio returns the fraction of samples on which two models
// predict different classes — the quantity "models differ by x%" that the
// synthetic-repository experiments sweep.
func DisagreementRatio(a, b *nn.Executor, d *Dataset) (float64, error) {
	r, err := nn.AgreementRatio(a, b, d.Inputs)
	if err != nil {
		return 0, err
	}
	return 1 - r, nil
}
