package dataset

import (
	"testing"
	"testing/quick"

	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

func testModel(t testing.TB, seed uint64) *nn.Executor {
	t.Helper()
	b := graph.NewBuilder("m", graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(seed))
	b.Dense(8)
	b.ReLU()
	b.Dense(3)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := nn.NewExecutor(m)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGaussianMixtureShapeAndBalance(t *testing.T) {
	d := GaussianMixture("g", 90, 5, 3, 0.5, 1)
	if d.Len() != 90 {
		t.Fatalf("Len = %d", d.Len())
	}
	counts := make([]int, 3)
	for i, x := range d.Inputs {
		if !x.Shape().Equal(tensor.Shape{5}) {
			t.Fatalf("sample %d shape %v", i, x.Shape())
		}
		counts[d.Labels[i]]++
	}
	for c, n := range counts {
		if n != 30 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
}

func TestGaussianMixtureDeterministic(t *testing.T) {
	a := GaussianMixture("a", 10, 3, 2, 0.5, 7)
	b := GaussianMixture("b", 10, 3, 2, 0.5, 7)
	for i := range a.Inputs {
		if tensor.L2Distance(a.Inputs[i], b.Inputs[i]) != 0 {
			t.Fatal("same seed should reproduce samples")
		}
	}
	c := GaussianMixture("c", 10, 3, 2, 0.5, 8)
	if tensor.L2Distance(a.Inputs[0], c.Inputs[0]) == 0 {
		t.Fatal("different seed should change samples")
	}
}

func TestSplitAndSlice(t *testing.T) {
	d := GaussianMixture("s", 100, 3, 2, 0.5, 2)
	train, val := d.Split(0.8)
	if train.Len() != 80 || val.Len() != 20 {
		t.Fatalf("split sizes %d/%d", train.Len(), val.Len())
	}
	if &train.Inputs[0] == &val.Inputs[0] {
		t.Fatal("split views overlap")
	}
	if train.NumClasses != d.NumClasses {
		t.Fatal("split lost NumClasses")
	}
}

func TestSplitClamps(t *testing.T) {
	d := GaussianMixture("c", 10, 3, 2, 0.5, 3)
	tr, v := d.Split(1.5)
	if tr.Len() != 10 || v.Len() != 0 {
		t.Fatalf("overflow split %d/%d", tr.Len(), v.Len())
	}
	tr, v = d.Split(-1)
	if tr.Len() != 0 || v.Len() != 10 {
		t.Fatalf("underflow split %d/%d", tr.Len(), v.Len())
	}
}

func TestTeacherLabeledPerfectSelfAccuracy(t *testing.T) {
	teacher := testModel(t, 1)
	d, err := TeacherLabeled("teach", teacher, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Accuracy(teacher, d)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("teacher accuracy on own labels = %g", acc)
	}
	if d.NumClasses != 3 {
		t.Fatalf("NumClasses = %d", d.NumClasses)
	}
}

func TestQoRDifferenceSymmetricOnLabels(t *testing.T) {
	a, b := testModel(t, 1), testModel(t, 2)
	d, err := TeacherLabeled("q", a, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := QoRDifference(a, b, d)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := QoRDifference(b, a, d)
	if err != nil {
		t.Fatal(err)
	}
	if ab != ba {
		t.Fatalf("QoR difference asymmetric on accuracy gap: %g vs %g", ab, ba)
	}
	if ab < 0 || ab > 1 {
		t.Fatalf("QoR difference out of range: %g", ab)
	}
	self, err := QoRDifference(a, a, d)
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Fatalf("self QoR difference = %g", self)
	}
}

func TestQoRDifferenceRegression(t *testing.T) {
	a, b := testModel(t, 3), testModel(t, 4)
	d := &Dataset{Name: "reg", Inputs: RandomImages(10, tensor.Shape{4}, 5)}
	diff, err := QoRDifference(a, b, d)
	if err != nil {
		t.Fatal(err)
	}
	if diff <= 0 {
		t.Fatalf("distinct models should have positive output distance, got %g", diff)
	}
}

func TestDisagreementRatioBounds(t *testing.T) {
	a, b := testModel(t, 5), testModel(t, 6)
	d, err := TeacherLabeled("dis", a, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := DisagreementRatio(a, b, d)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0 || r > 1 {
		t.Fatalf("disagreement = %g", r)
	}
	self, err := DisagreementRatio(a, a, d)
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Fatalf("self disagreement = %g", self)
	}
}

func TestAccuracyErrors(t *testing.T) {
	e := testModel(t, 7)
	if _, err := Accuracy(e, &Dataset{Name: "empty"}); err == nil {
		t.Fatal("expected error for unlabeled dataset")
	}
	if _, err := Accuracy(e, &Dataset{Name: "nolabel", Inputs: RandomImages(1, tensor.Shape{4}, 1)}); err == nil {
		t.Fatal("expected error for missing labels")
	}
}

func TestRandomImagesShape(t *testing.T) {
	imgs := RandomImages(5, tensor.Shape{3, 2, 2}, 4)
	if len(imgs) != 5 {
		t.Fatalf("len = %d", len(imgs))
	}
	for _, im := range imgs {
		if !im.Shape().Equal(tensor.Shape{3, 2, 2}) {
			t.Fatalf("shape %v", im.Shape())
		}
	}
}

// Property: accuracy is always within [0,1] for any labeled subset.
func TestPropertyAccuracyRange(t *testing.T) {
	e := testModel(t, 12)
	d, err := TeacherLabeled("p", e, 30, 13)
	if err != nil {
		t.Fatal(err)
	}
	f := func(loRaw, hiRaw uint8) bool {
		lo := int(loRaw) % d.Len()
		hi := lo + 1 + int(hiRaw)%(d.Len()-lo)
		acc, err := Accuracy(e, d.Slice(lo, hi))
		return err == nil && acc >= 0 && acc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
