package experiments

import (
	"fmt"
	"time"

	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/resource"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

// ---------------------------------------------------------------------
// Table 2: latency of functional equivalence detection.
// ---------------------------------------------------------------------

// Table2Config scales the timing experiment. Scale multiplies the
// paper's parameter counts (62M/60M/143M/340M); the default 0.02 keeps
// the bench fast while preserving the size ordering, and cmd/sommbench
// can run closer to full scale.
type Table2Config struct {
	Scale float64
	Seed  uint64
}

// DefaultTable2Config runs at 2% of the paper's model sizes.
func DefaultTable2Config() Table2Config { return Table2Config{Scale: 0.02, Seed: 0x7a2} }

// Table2Row is one model's timing.
type Table2Row struct {
	Model     string
	Params    int64
	SegmentMS float64
	WholeMS   float64
}

// Table2Result carries all four rows.
type Table2Result struct {
	Scale float64
	Rows  []Table2Row
}

// RunTable2 builds models at (scaled) paper sizes and times the segment
// and whole-model equivalence checks against a lightly perturbed copy.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	specs := []struct {
		name   string
		params int64
		depth  int
	}{
		{"alexnetish", 62_000_000, 8},
		{"resnetish", 60_000_000, 16},
		{"vgg19ish", 143_000_000, 19},
		{"bertish", 340_000_000, 24},
	}
	res := &Table2Result{Scale: cfg.Scale}
	for i, spec := range specs {
		target := int64(float64(spec.params) * cfg.Scale)
		m, err := zoo.PaperScaleDense(spec.name, target, spec.depth, cfg.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		twin := zoo.Perturb(m, spec.name+"-twin", 0.02, cfg.Seed+100+uint64(i))

		// Whole-model check (IO check + empirical diff + bound).
		val := &dataset.Dataset{
			Name:   "t2",
			Inputs: dataset.RandomImages(32, m.InputShape, cfg.Seed+200),
		}
		start := time.Now()
		if _, err := equiv.CheckWhole(m, twin, val, equiv.Options{Epsilon: 0.1}); err != nil {
			return nil, err
		}
		wholeMS := float64(time.Since(start).Microseconds()) / 1000

		// Segment check (extraction + propagation + replacement).
		start = time.Now()
		pairs, err := equiv.CommonSegments(m, twin, 3)
		if err != nil {
			return nil, err
		}
		if _, err := equiv.AssessReplacement(m, pairs, equiv.Options{
			Epsilon: 0.1, Seed: cfg.Seed, ProbeCount: 4,
		}); err != nil {
			return nil, err
		}
		segMS := float64(time.Since(start).Microseconds()) / 1000

		res.Rows = append(res.Rows, Table2Row{
			Model:     spec.name,
			Params:    m.ParamCount(),
			SegmentMS: segMS,
			WholeMS:   wholeMS,
		})
	}
	return res, nil
}

// Report renders the paper's Table 2 layout.
func (r *Table2Result) Report() Report {
	rep := Report{ID: "table2", Title: fmt.Sprintf("Time of functional equivalence check (model scale %.0f%% of paper)", r.Scale*100)}
	header := "metric          "
	for _, row := range r.Rows {
		header += fmt.Sprintf("%14s", row.Model)
	}
	rep.Lines = append(rep.Lines, header)
	paramsLine, segLine, wholeLine := "params (M)      ", "time (segment)  ", "time (whole)    "
	for _, row := range r.Rows {
		paramsLine += fmt.Sprintf("%14.1f", float64(row.Params)/1e6)
		segLine += fmt.Sprintf("%12.0fms", row.SegmentMS)
		wholeLine += fmt.Sprintf("%12.0fms", row.WholeMS)
	}
	rep.Lines = append(rep.Lines, paramsLine, segLine, wholeLine)
	rep.Lines = append(rep.Lines, "(paper: 1.9s..22.9s at full scale; time grows with parameter count, offline cost)")
	return rep
}

// ---------------------------------------------------------------------
// Table 3: run-time query latency vs number of records.
// ---------------------------------------------------------------------

// Table3Config scales the latency experiment.
type Table3Config struct {
	Sizes   []int
	Queries int
	Seed    uint64
}

// DefaultTable3Config mirrors the paper's 100 → 100K sweep, 20 queries
// per point.
func DefaultTable3Config() Table3Config {
	return Table3Config{Sizes: []int{100, 1000, 10000, 100000}, Queries: 20, Seed: 0x7a3}
}

// Table3Result reports mean latency in milliseconds per predicate kind.
type Table3Result struct {
	Sizes      []int
	ResourceMS []float64
	SemanticMS []float64
	BothMS     []float64
}

// RunTable3 populates the two index structures with synthetic records at
// each size and times resource-only, semantic-only, and combined
// lookups. Records are synthetic because the experiment measures index
// data-structure latency, not analysis quality (the paper does the
// same: "we prepare the model repository with different numbers of
// models").
func RunTable3(cfg Table3Config) (*Table3Result, error) {
	res := &Table3Result{Sizes: cfg.Sizes}
	for _, n := range cfg.Sizes {
		rng := tensor.NewRNG(cfg.Seed + uint64(n))
		// Resource index with n profiles.
		ri := index.NewResourceIndex(cfg.Seed)
		for i := 0; i < n; i++ {
			p := resource.Profile{
				FLOPs:       int64(1e6 + rng.Float64()*1e10),
				MemoryBytes: int64(1e5 + rng.Float64()*1e9),
				LatencyMS:   0.1 + rng.Float64()*100,
			}
			if err := ri.Insert(fmt.Sprintf("m%d", i), p); err != nil {
				return nil, err
			}
		}
		// Semantic index: one reference entry with n candidates, the
		// shape a populated hashtable entry has at query time.
		si := index.NewSemanticIndex(cfg.Seed)
		si.SampleSize = 0
		ref := index.Entry{ID: "ref", Model: tinyIndexModel(cfg.Seed)}
		if err := si.Insert(ref, nopAnalyzer{}); err != nil {
			return nil, err
		}
		if err := si.InsertPrecomputed("ref", syntheticCandidates(n, rng)); err != nil {
			return nil, err
		}

		budget := index.Budget{
			MaxMemoryBytes: int64(5e8),
			MaxFLOPs:       int64(5e9),
			MaxLatencyMS:   50,
		}
		// Warm both structures so the timings below measure steady-state
		// lookups, not first-touch cache misses.
		if _, err := ri.Candidates(budget, 0); err != nil {
			return nil, err
		}
		if _, err := si.Lookup("ref", 0.99); err != nil {
			return nil, err
		}

		var resMS, semMS, bothMS float64
		for q := 0; q < cfg.Queries; q++ {
			start := time.Now()
			if _, err := ri.Candidates(budget, 0); err != nil {
				return nil, err
			}
			resMS += ms(start)

			start = time.Now()
			if _, err := si.Lookup("ref", 0.99); err != nil {
				return nil, err
			}
			semMS += ms(start)

			start = time.Now()
			ids, err := ri.Candidates(budget, 0)
			if err != nil {
				return nil, err
			}
			cands, err := si.Lookup("ref", 0.99)
			if err != nil {
				return nil, err
			}
			intersect(ids, cands)
			bothMS += ms(start)
		}
		q := float64(cfg.Queries)
		res.ResourceMS = append(res.ResourceMS, resMS/q)
		res.SemanticMS = append(res.SemanticMS, semMS/q)
		res.BothMS = append(res.BothMS, bothMS/q)
	}
	return res, nil
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

func intersect(ids []string, cands []index.Candidate) int {
	set := make(map[string]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	n := 0
	for _, c := range cands {
		if set[c.ID] {
			n++
		}
	}
	return n
}

func syntheticCandidates(n int, rng *tensor.RNG) []index.Candidate {
	out := make([]index.Candidate, n)
	for i := range out {
		out[i] = index.Candidate{ID: fmt.Sprintf("m%d", i), Level: rng.Float64()}
	}
	return out
}

// Report renders the paper's Table 3 layout.
func (r *Table3Result) Report() Report {
	rep := Report{ID: "table3", Title: "Run-time query latency (ms)"}
	header := "predicate   "
	for _, n := range r.Sizes {
		header += fmt.Sprintf("%10d", n)
	}
	rep.Lines = append(rep.Lines, header)
	row := func(name string, xs []float64) string {
		l := fmt.Sprintf("%-12s", name)
		for _, v := range xs {
			l += fmt.Sprintf("%10.3f", v)
		}
		return l
	}
	rep.Lines = append(rep.Lines, row("resource", r.ResourceMS))
	rep.Lines = append(rep.Lines, row("semantic", r.SemanticMS))
	rep.Lines = append(rep.Lines, row("both", r.BothMS))
	rep.Lines = append(rep.Lines, "(paper: semantic lookups orders of magnitude cheaper than LSH; ~6ms at 100K)")
	return rep
}

// ---------------------------------------------------------------------
// Table 4: memory footprint of the indices.
// ---------------------------------------------------------------------

// Table4Config scales the footprint experiment.
type Table4Config struct {
	Sizes []int
	Seed  uint64
}

// DefaultTable4Config mirrors the paper's 10 → 100K sweep.
func DefaultTable4Config() Table4Config {
	return Table4Config{Sizes: []int{10, 100, 1000, 10000, 100000}, Seed: 0x7a4}
}

// Table4Result reports each index's footprint in MB per size.
type Table4Result struct {
	Sizes      []int
	ResourceMB []float64
	SemanticMB []float64
}

// RunTable4 populates both indices with synthetic records and reports
// their estimated in-memory footprints.
func RunTable4(cfg Table4Config) (*Table4Result, error) {
	res := &Table4Result{Sizes: cfg.Sizes}
	for _, n := range cfg.Sizes {
		rng := tensor.NewRNG(cfg.Seed + uint64(n))
		ri := index.NewResourceIndex(cfg.Seed)
		for i := 0; i < n; i++ {
			p := resource.Profile{
				FLOPs:       int64(rng.Float64() * 1e10),
				MemoryBytes: int64(rng.Float64() * 1e9),
				LatencyMS:   rng.Float64() * 100,
			}
			if err := ri.Insert(fmt.Sprintf("m%d", i), p); err != nil {
				return nil, err
			}
		}
		si := index.NewSemanticIndex(cfg.Seed)
		si.SampleSize = 0
		if err := si.Insert(index.Entry{ID: "ref", Model: tinyIndexModel(cfg.Seed)}, nopAnalyzer{}); err != nil {
			return nil, err
		}
		// Each model keeps a candidate list; a populated repository has
		// n entries each with a bounded list. Emulate with n candidates
		// spread over the reference entry (the dominant cost is the
		// candidate records themselves).
		if err := si.InsertPrecomputed("ref", syntheticCandidates(n, rng)); err != nil {
			return nil, err
		}
		res.ResourceMB = append(res.ResourceMB, float64(ri.MemoryBytes())/(1<<20))
		res.SemanticMB = append(res.SemanticMB, float64(si.MemoryBytes())/(1<<20))
	}
	return res, nil
}

// Report renders the paper's Table 4 layout.
func (r *Table4Result) Report() Report {
	rep := Report{ID: "table4", Title: "Memory footprint (MB) of the indices"}
	header := "# models    "
	for _, n := range r.Sizes {
		header += fmt.Sprintf("%10d", n)
	}
	rep.Lines = append(rep.Lines, header)
	row := func(name string, xs []float64) string {
		l := fmt.Sprintf("%-12s", name)
		for _, v := range xs {
			l += fmt.Sprintf("%10.3f", v)
		}
		return l
	}
	rep.Lines = append(rep.Lines, row("resource", r.ResourceMB))
	rep.Lines = append(rep.Lines, row("semantic", r.SemanticMB))
	rep.Lines = append(rep.Lines, "(paper: mostly under 80 MB even at 100K models — metadata only, models stay on disk)")
	return rep
}

// tinyIndexModel builds the smallest valid model, used as a placeholder
// entry for index-structure experiments.
func tinyIndexModel(seed uint64) *graph.Model {
	b := graph.NewBuilder("tiny", graph.TaskClassification, tensor.Shape{2}, tensor.NewRNG(seed))
	b.Dense(2)
	b.Softmax()
	return b.MustBuild()
}

// nopAnalyzer satisfies index.Analyzer without doing analysis; the index
// benchmarks measure data-structure costs, not analysis costs.
type nopAnalyzer struct{}

func (nopAnalyzer) Analyze(ref, cand index.Entry) (index.AnalysisResult, error) {
	return index.AnalysisResult{}, nil
}
