package experiments

import (
	"fmt"

	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/zoo"
)

// ---------------------------------------------------------------------
// Figure 10: segment-replacement QoR bound vs actual accuracy across
// fine-tuning levels, for three transfer tasks.
// ---------------------------------------------------------------------

// Fig10Config scales the experiment.
type Fig10Config struct {
	// FreezeLevels is the sweep of frozen-linear-layer counts
	// (mimicking different transfer attempts).
	FreezeLevels []int
	// TuneFrac is the normal fine-tuning perturbation; NoisyFrac the
	// worst-case one.
	TuneFrac, NoisyFrac float64
	Samples             int
	Seed                uint64
}

// DefaultFig10Config sweeps four freeze levels on a depth-3 base.
func DefaultFig10Config() Fig10Config {
	return Fig10Config{
		FreezeLevels: []int{6, 4, 2, 0},
		TuneFrac:     0.04,
		NoisyFrac:    0.12,
		Samples:      600,
		Seed:         0x10f,
	}
}

// Fig10Task is one transfer task's sweep results.
type Fig10Task struct {
	Task string
	// Per freeze level: the relative QoR (accuracy of the
	// segment-replaced model relative to the un-replaced variant), for
	// the bound, the normally fine-tuned variant, and the noisy
	// worst-case variant.
	FreezeLevels []int
	BoundQoR     []float64
	TunedQoR     []float64
	NoisyQoR     []float64
}

// Fig10Result bundles the three tasks' panels.
type Fig10Result struct {
	Tasks []Fig10Task
}

// RunFig10 reproduces the Figure 10 protocol: transfer a pre-trained
// base to three downstream tasks at varying freeze levels, replace the
// tuned trunk segments with the original base's, and compare the actual
// relative QoR against the propagated lower bound.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "resnet50ish", Seed: cfg.Seed, Width: 32, Depth: 3})
	if err != nil {
		return nil, err
	}
	tasks := []struct {
		name    string
		classes int
	}{
		{"image-recognition", 8},
		{"object-detection", 12},
		{"segmentation", 6},
	}
	res := &Fig10Result{}
	for ti, task := range tasks {
		panel := Fig10Task{Task: task.name, FreezeLevels: cfg.FreezeLevels}
		for _, freeze := range cfg.FreezeLevels {
			bound, tuned, noisy, err := fig10Point(base, task.classes, freeze, cfg, cfg.Seed+uint64(ti)*997)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig10 %s freeze %d: %w", task.name, freeze, err)
			}
			panel.BoundQoR = append(panel.BoundQoR, bound)
			panel.TunedQoR = append(panel.TunedQoR, tuned)
			panel.NoisyQoR = append(panel.NoisyQoR, noisy)
		}
		res.Tasks = append(res.Tasks, panel)
	}
	return res, nil
}

// fig10Point runs one (task, freeze level) cell: relative QoR when the
// variant's tuned trunk segments are replaced by the base's originals.
func fig10Point(base *graph.Model, classes, freeze int, cfg Fig10Config, seed uint64) (bound, tuned, noisy float64, err error) {
	tunedQoR := func(frac float64, s uint64) (float64, float64, error) {
		variant, err := zoo.Transfer(base, fmt.Sprintf("v-f%d", freeze), classes, freeze, frac, s)
		if err != nil {
			return 0, 0, err
		}
		pairs, err := equiv.CommonSegments(variant, base, 2)
		if err != nil {
			return 0, 0, err
		}
		// Only the transferred trunk is replaceable: the paper replaces
		// "the newly tuned model segment (i.e., layers) with the
		// counterpart in the original", never the task-specific head
		// (which is fresh weights, not shared with the base).
		pairs = dropHeadSegments(variant, pairs)
		if len(pairs) == 0 {
			return 1, 1, nil // nothing shared: no replacement possible
		}
		// Actual: replace the variant's trunk segments with the base's
		// counterparts and measure prediction agreement with the
		// unmodified variant (relative QoR, paper normalizes to 100%).
		replaced := variant
		for _, p := range pairs {
			p.A.Model = replaced
			twin, err := equiv.SynthesizeReplacement(replaced, p)
			if err != nil {
				return 0, 0, err
			}
			replaced = twin
		}
		ev, err := nn.NewExecutor(variant)
		if err != nil {
			return 0, 0, err
		}
		er, err := nn.NewExecutor(replaced)
		if err != nil {
			return 0, 0, err
		}
		probes := dataset.RandomImages(cfg.Samples, variant.InputShape, seed+5)
		actual, err := nn.AgreementRatio(ev, er, probes)
		if err != nil {
			return 0, 0, err
		}
		// Bound: the noise-replacement assessment's worst-case QoR
		// difference with every shared segment replaced.
		assess, err := equiv.AssessReplacement(variant, pairs, equiv.Options{
			Epsilon: 1, Seed: seed + 6, ProbeCount: 150,
		})
		if err != nil {
			return 0, 0, err
		}
		return 1 - assess.QoRDiff, actual, nil
	}

	// Per the paper's protocol, the theoretical lower bound is derived
	// from the *noisy* (worst-case fine-tuning) reference model; the two
	// solid curves are the actual relative QoR of the normally tuned and
	// noisy variants.
	_, tun, err := tunedQoR(cfg.TuneFrac, seed+1)
	if err != nil {
		return 0, 0, 0, err
	}
	bnd, noi, err := tunedQoR(cfg.NoisyFrac, seed+2)
	if err != nil {
		return 0, 0, 0, err
	}
	return bnd, tun, noi, nil
}

// dropHeadSegments removes segment pairs touching the model's classifier
// head (the final linear layer and everything after it in execution
// order).
func dropHeadSegments(m *graph.Model, pairs []equiv.SegmentPair) []equiv.SegmentPair {
	order, err := m.TopoSort()
	if err != nil {
		return pairs
	}
	headStart := -1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].Op.Class() == graph.ClassLinear {
			headStart = i
			break
		}
	}
	if headStart < 0 {
		return pairs
	}
	head := make(map[string]bool)
	for _, l := range order[headStart:] {
		head[l.Name] = true
	}
	var out []equiv.SegmentPair
	for _, p := range pairs {
		touches := false
		for _, name := range p.A.Layers {
			if head[name] {
				touches = true
				break
			}
		}
		if !touches {
			out = append(out, p)
		}
	}
	return out
}

// Sound reports whether the bound sits at or below both actual curves at
// every point (the property Figure 10 demonstrates).
func (r *Fig10Result) Sound(slack float64) bool {
	for _, t := range r.Tasks {
		for i := range t.BoundQoR {
			if t.BoundQoR[i] > t.TunedQoR[i]+slack || t.BoundQoR[i] > t.NoisyQoR[i]+slack {
				return false
			}
		}
	}
	return true
}

// Report renders the three panels.
func (r *Fig10Result) Report() Report {
	rep := Report{ID: "fig10", Title: "Segment-replacement QoR: estimated lower bound vs actual (relative accuracy)"}
	for _, t := range r.Tasks {
		rep.Lines = append(rep.Lines, line("task %s", t.Task))
		rep.Lines = append(rep.Lines, "  frozen-layers   bound   fine-tuned   noisy-worst-case")
		for i, f := range t.FreezeLevels {
			rep.Lines = append(rep.Lines, line("  %13d   %5.2f   %10.2f   %16.2f",
				f, t.BoundQoR[i], t.TunedQoR[i], t.NoisyQoR[i]))
		}
	}
	rep.Lines = append(rep.Lines, line("bound below actual everywhere: %v (paper: reliable lower bounds in the <=10%% loss region)",
		r.Sound(0.02)))
	return rep
}

// ---------------------------------------------------------------------
// Table 1: whole-model accuracy lower bound vs actual, by dataset size.
// ---------------------------------------------------------------------

// Table1Config scales the experiment.
type Table1Config struct {
	Sizes   []int
	Repeats int
	Seed    uint64
}

// DefaultTable1Config mirrors the paper's 100 / 1k / 10k sweep with 20
// repeats.
func DefaultTable1Config() Table1Config {
	return Table1Config{Sizes: []int{100, 1000, 10000}, Repeats: 20, Seed: 0x7a1}
}

// Table1Cell is one (model, size) cell: bound / min actual / avg actual,
// as percentages like the paper's Table 1.
type Table1Cell struct {
	Bound, MinActual, AvgActual float64
}

// Table1Result maps candidate model name → per-size cells.
type Table1Result struct {
	Sizes  []int
	Models []string
	Cells  map[string][]Table1Cell
}

// RunTable1 measures, for three candidate models vs a reference, the
// dataset-independent accuracy lower bound against the min and average
// actual accuracy over repeated validation draws of each size.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	cohort, err := zoo.CorrelatedCohort(16, 8, 4, 0.25, 0.1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ref := cohort.Models[0] // resnet50ish is the reference
	candidates := cohort.Models[1:]

	res := &Table1Result{Sizes: cfg.Sizes, Cells: make(map[string][]Table1Cell)}
	for _, cand := range candidates {
		res.Models = append(res.Models, cand.Name)
		refExec, err := nn.NewExecutor(ref)
		if err != nil {
			return nil, err
		}
		candExec, err := nn.NewExecutor(cand)
		if err != nil {
			return nil, err
		}
		for _, n := range cfg.Sizes {
			var minAct, sumAct float64 = 1, 0
			var worstEmp float64
			for rep := 0; rep < cfg.Repeats; rep++ {
				probes := dataset.RandomImages(n, ref.InputShape, cfg.Seed+uint64(n)*31+uint64(rep))
				agree, err := nn.AgreementRatio(refExec, candExec, probes)
				if err != nil {
					return nil, err
				}
				if agree < minAct {
					minAct = agree
				}
				sumAct += agree
				if emp := 1 - agree; emp > worstEmp {
					worstEmp = emp
				}
			}
			gb, err := equiv.GeneralizationBound(cand, n, 1)
			if err != nil {
				return nil, err
			}
			boundAcc := 1 - (worstEmp + gb)
			if boundAcc < 0 {
				boundAcc = 0
			}
			res.Cells[cand.Name] = append(res.Cells[cand.Name], Table1Cell{
				Bound:     boundAcc * 100,
				MinActual: minAct * 100,
				AvgActual: sumAct / float64(cfg.Repeats) * 100,
			})
		}
	}
	return res, nil
}

// Report renders the paper's Table 1 layout.
func (r *Table1Result) Report() Report {
	rep := Report{ID: "table1", Title: "Lower bound vs actual accuracy (%), cells are bound/min/avg"}
	header := "dataset size "
	for _, m := range r.Models {
		header += fmt.Sprintf("  %18s", truncate(m, 18))
	}
	rep.Lines = append(rep.Lines, header)
	for si, n := range r.Sizes {
		l := fmt.Sprintf("%12d ", n)
		for _, m := range r.Models {
			c := r.Cells[m][si]
			l += fmt.Sprintf("  %5.0f / %4.0f / %4.0f", c.Bound, c.MinActual, c.AvgActual)
		}
		rep.Lines = append(rep.Lines, l)
	}
	rep.Lines = append(rep.Lines, "(paper: bound is safe and approaches actual as n grows; within 10% at n>=1000)")
	return rep
}
