package experiments

import (
	"context"
	"testing"
)

// TestStoreBenchDedupAndFidelity is the PR's acceptance gate: a
// 32-model fine-tuned series must cost at least 3x less than the
// whole-model baseline in both storage and wire bytes, with every
// model hydrating byte-identically from chunks.
func TestStoreBenchDedupAndFidelity(t *testing.T) {
	r, err := RunStoreBench(context.Background(), DefaultStoreBenchConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Models != 32 {
		t.Fatalf("series has %d models, want 32", r.Models)
	}
	if r.StorageDedupRatio < 3 {
		t.Fatalf("storage dedup %.2fx (stored %d of %d bytes), want >= 3x",
			r.StorageDedupRatio, r.StoredBytes, r.BaselineBytes)
	}
	if r.WireReduction < 3 {
		t.Fatalf("wire reduction %.2fx (chunked %d vs dense %d bytes), want >= 3x",
			r.WireReduction, r.WireChunkedBytes, r.WireDenseBytes)
	}
	if !r.HydrationIdentical {
		t.Fatal("a model hydrated from chunks did not re-encode byte-identically")
	}
	if r.DeltaRefs == 0 {
		t.Fatal("series exercised no sparse delta refs")
	}
	if r.DedupHits == 0 {
		t.Fatal("publishing the series hit no shared chunks")
	}
}
