package experiments

import (
	"context"
	"fmt"

	"sommelier/internal/faults"
	"sommelier/internal/serving"
	"sommelier/internal/serving/cluster"
)

// ServeBenchConfig scales the serving-cluster benchmark: a policy ×
// router scenario matrix over the multi-instance simulator, each cell
// driven by the same seeded Zipf/Gamma workload with a mid-run instance
// kill, reporting per-class tail latency, SLO attainment and fairness.
// Simulation time is virtual, so the committed numbers are exactly
// reproducible — a changed p95 in BENCH_serving.json is a semantic
// change to the simulator or its policies, not measurement noise.
type ServeBenchConfig struct {
	Instances int
	// Requests is the per-cell workload length.
	Requests int
	// MeanArrivalMS is the cluster-wide mean inter-arrival gap.
	MeanArrivalMS float64
	// GammaShape shapes inter-arrival burstiness (1 = Poisson).
	GammaShape float64
	// Series/ZipfS shape model-family popularity.
	Series int
	ZipfS  float64
	// SwitchStep is the switching policy's queue-length step.
	SwitchStep int
	// SLOTargetMS is the slo policy's target.
	SLOTargetMS float64
	// AdmitRate/AdmitBurst configure the token bucket (rate 0 = admit
	// all).
	AdmitRate  float64
	AdmitBurst float64
	// KillFraction is where in instance 0's request stream its kill
	// window opens (as a fraction of its expected share), running to
	// the end of the run.
	KillFraction float64
	Seed         uint64
}

// DefaultServeBenchConfig is the committed-benchmark scenario: 4
// instances, 6k requests per cell, bursty Gamma arrivals, Zipf series
// popularity, token-bucket admission, and instance 0 dying halfway.
func DefaultServeBenchConfig() ServeBenchConfig {
	return ServeBenchConfig{
		Instances:     4,
		Requests:      6000,
		MeanArrivalMS: 26,
		GammaShape:    0.6,
		Series:        6,
		ZipfS:         1.1,
		SwitchStep:    4,
		SLOTargetMS:   40,
		AdmitRate:     800,
		AdmitBurst:    64,
		KillFraction:  0.5,
		Seed:          2022,
	}
}

// ServeBenchClass is one class's digest within a cell.
type ServeBenchClass struct {
	Class      string  `json:"class"`
	Served     int64   `json:"served"`
	P50        float64 `json:"p50_ms"`
	P95        float64 `json:"p95_ms"`
	P99        float64 `json:"p99_ms"`
	Attainment float64 `json:"slo_attainment"`
}

// ServeBenchCell is one policy × router cell of the matrix.
type ServeBenchCell struct {
	Policy    string            `json:"policy"`
	Router    string            `json:"router"`
	Rejected  int64             `json:"rejected"`
	Failed    int64             `json:"failed"`
	Failovers int64             `json:"failovers"`
	Switches  int64             `json:"switch_attempts"`
	Fairness  float64           `json:"fairness"`
	Classes   []ServeBenchClass `json:"classes"`
}

// ServeBenchResult is the benchmark report; the JSON form is what
// `make bench` writes to BENCH_serving.json, and benchdiff gates every
// *_p95_ms leaf in it.
type ServeBenchResult struct {
	Instances int              `json:"instances"`
	Requests  int              `json:"requests_per_cell"`
	Cells     []ServeBenchCell `json:"cells"`
}

// servebenchCandidates is the model ladder every cell serves.
func servebenchCandidates() []serving.ModelChoice {
	return []serving.ModelChoice{
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.975},
		{ID: "compact", ServiceMS: 3, Level: 0.955},
		{ID: "tiny", ServiceMS: 1, Level: 0.93},
	}
}

// servebenchClasses is the SLO class mix.
func servebenchClasses() []cluster.Class {
	return []cluster.Class{
		{Name: "gold", Weight: 0.2, TargetMS: 30},
		{Name: "silver", Weight: 0.3, TargetMS: 80},
		{Name: "batch", Weight: 0.5},
	}
}

// RunServeBench sweeps {fixed, switching, slo} × {round-robin,
// least-loaded, affinity} over the cluster simulator and digests each
// cell.
func RunServeBench(ctx context.Context, cfg ServeBenchConfig) (*ServeBenchResult, error) {
	if cfg.Instances <= 0 {
		cfg = DefaultServeBenchConfig()
	}
	candidates := servebenchCandidates()
	policies := []struct {
		name    string
		factory func() serving.Policy
	}{
		{"fixed", func() serving.Policy { return serving.FixedPolicy{Model: candidates[0]} }},
		{"switching", func() serving.Policy {
			p, err := serving.NewSwitchingPolicy(candidates, cfg.SwitchStep)
			if err != nil {
				panic(err) // static candidate ladder; cannot fail
			}
			return p
		}},
		{"slo", func() serving.Policy {
			p, err := serving.NewSLOPolicy(candidates, cfg.SLOTargetMS)
			if err != nil {
				panic(err)
			}
			return p
		}},
	}
	routers := []struct {
		name string
		mk   func() (cluster.Router, error)
	}{
		{"round-robin", func() (cluster.Router, error) { return cluster.NewRoundRobin(), nil }},
		{"least-loaded", func() (cluster.Router, error) { return cluster.NewLeastLoaded(), nil }},
		{"affinity", func() (cluster.Router, error) { return cluster.AffinityRouter(cfg.Instances) }},
	}

	res := &ServeBenchResult{Instances: cfg.Instances, Requests: cfg.Requests}
	for _, pol := range policies {
		for _, rt := range routers {
			cell, err := runServeBenchCell(ctx, cfg, pol.name, pol.factory, rt.mk)
			if err != nil {
				return nil, fmt.Errorf("experiments: servebench %s/%s: %w", pol.name, rt.name, err)
			}
			res.Cells = append(res.Cells, *cell)
		}
	}
	return res, nil
}

func runServeBenchCell(ctx context.Context, cfg ServeBenchConfig, policy string,
	factory func() serving.Policy, mkRouter func() (cluster.Router, error)) (*ServeBenchCell, error) {
	router, err := mkRouter()
	if err != nil {
		return nil, err
	}
	src, err := cluster.NewGenerator(cluster.GeneratorConfig{
		Requests:      cfg.Requests,
		MeanArrivalMS: cfg.MeanArrivalMS / float64(cfg.Instances),
		GammaShape:    cfg.GammaShape,
		Classes:       servebenchClasses(),
		Series:        cfg.Series,
		ZipfS:         cfg.ZipfS,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Instance 0 dies partway through its own request stream and stays
	// dead: the cluster must absorb its share through failover.
	sched := faults.NewSchedule(cfg.Seed + 1)
	from := int64(float64(cfg.Requests) / float64(cfg.Instances) * cfg.KillFraction)
	sched.Set(cluster.InstanceTarget(0), faults.Kill(from, 1<<62))

	admission := cluster.AdmitAll()
	if cfg.AdmitRate > 0 {
		admission = cluster.NewTokenBucket(cfg.AdmitRate, cfg.AdmitBurst)
	}
	sim, err := cluster.New(
		cluster.WithInstances(cfg.Instances),
		cluster.WithPolicy(factory),
		cluster.WithRouter(router),
		cluster.WithAdmission(admission),
		cluster.WithClasses(servebenchClasses()...),
		cluster.WithFaultSchedule(sched),
		cluster.WithSeed(cfg.Seed),
	)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(ctx, src)
	if err != nil {
		return nil, err
	}
	cell := &ServeBenchCell{
		Policy:    policy,
		Router:    r.Router,
		Rejected:  r.Rejected,
		Failed:    r.Failed,
		Failovers: r.Failovers,
		Switches:  r.SwitchAttempts,
		Fairness:  r.Fairness,
	}
	for _, c := range r.Classes {
		cell.Classes = append(cell.Classes, ServeBenchClass{
			Class: c.Class, Served: c.Served,
			P50: c.P50, P95: c.P95, P99: c.P99,
			Attainment: c.Attainment,
		})
	}
	return cell, nil
}

// Report renders the paper-style summary block.
func (r *ServeBenchResult) Report() Report {
	rep := Report{
		ID:    "servebench",
		Title: "cluster serving tail latency by policy and router under instance failure",
	}
	rep.Lines = append(rep.Lines,
		line("cluster:          %d instances, %d requests/cell, instance 0 killed mid-run", r.Instances, r.Requests),
		line("%-10s %-13s %9s %9s %9s %8s %7s %7s %9s",
			"POLICY", "ROUTER", "GOLD-P95", "SILV-P95", "BATCH-P95", "FAIRNESS", "REJECT", "FAIL", "FAILOVERS"),
	)
	for _, c := range r.Cells {
		p95 := map[string]float64{}
		for _, cl := range c.Classes {
			p95[cl.Class] = cl.P95
		}
		rep.Lines = append(rep.Lines,
			line("%-10s %-13s %8.1fms %8.1fms %8.1fms %8.3f %7d %7d %9d",
				c.Policy, c.Router, p95["gold"], p95["silver"], p95["batch"],
				c.Fairness, c.Rejected, c.Failed, c.Failovers))
	}
	return rep
}
