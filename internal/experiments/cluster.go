package experiments

import (
	"context"
	"errors"
	"fmt"

	"sommelier"
	"sommelier/internal/cas"
	"sommelier/internal/cluster"
	"sommelier/internal/graph"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// EngineReplica is one in-process shard replica: a private in-memory
// store with a Sommelier engine over it, satisfying cluster.Replica.
// Replicas of the same shard, built with the same seed and fed the
// same publishes, produce byte-identical query answers — which is what
// makes replica failover invisible to clients.
type EngineReplica struct {
	store          *repo.Repository
	eng            *sommelier.Engine
	seed           uint64
	validationSize int
	obs            *obs.Observer
}

// NewEngineReplica builds an empty replica. o may be nil; a shared
// observer folds the replica's engine metrics into the cluster
// snapshot.
func NewEngineReplica(seed uint64, validationSize int, o *obs.Observer) (*EngineReplica, error) {
	store := repo.NewInMemory()
	eng, err := sommelier.NewEngine(store,
		sommelier.WithSeed(seed),
		sommelier.WithValidationSize(validationSize),
		sommelier.WithObserver(o))
	if err != nil {
		return nil, err
	}
	return &EngineReplica{store: store, eng: eng, seed: seed, validationSize: validationSize, obs: o}, nil
}

// Engine exposes the replica's engine (tests assert against it).
func (r *EngineReplica) Engine() *sommelier.Engine { return r.eng }

// Query answers through the replica's engine. An unknown reference is
// an empty contribution — in a sharded catalog most shards do not hold
// any given reference model.
func (r *EngineReplica) Query(ctx context.Context, q string) ([]cluster.Result, error) {
	rs, err := r.eng.QueryContext(ctx, q)
	if err != nil {
		if errors.Is(err, sommelier.ErrUnknownReference) {
			return nil, nil
		}
		return nil, err
	}
	return toClusterResults(rs), nil
}

// QueryBatch answers the whole batch through the engine's batched
// query path — one catalog snapshot and one reprofile memo for all
// queries — with the same unknown-reference-is-empty mapping as Query.
func (r *EngineReplica) QueryBatch(ctx context.Context, qs []string) ([][]cluster.Result, []error, error) {
	rss, qerrs := r.eng.QueryBatchContext(ctx, qs)
	results := make([][]cluster.Result, len(qs))
	errs := make([]error, len(qs))
	for i := range qs {
		if err := qerrs[i]; err != nil {
			if !errors.Is(err, sommelier.ErrUnknownReference) {
				errs[i] = err
			}
			continue
		}
		results[i] = toClusterResults(rss[i])
	}
	return results, errs, nil
}

func toClusterResults(rs []sommelier.Result) []cluster.Result {
	out := make([]cluster.Result, len(rs))
	for i, res := range rs {
		out[i] = cluster.Result{
			ID:          res.ID,
			Level:       res.Level,
			Synthesized: res.Synthesized,
			DonorID:     res.DonorID,
			Segment:     res.Segment,
			Derived:     res.Derived,
			Profile:     res.Profile,
		}
	}
	return out
}

// Publish stores and indexes the model, rolling the store back if
// indexing a fresh upload fails — the hub server's "published implies
// indexed" rule.
func (r *EngineReplica) Publish(ctx context.Context, m *graph.Model) (string, error) {
	id := m.Name + "@" + m.Version
	_, existed := r.store.Metadata(id)
	if _, err := r.store.Publish(m); err != nil {
		return "", err
	}
	if err := r.eng.IndexModel(ctx, id, m); err != nil {
		if !existed {
			_ = r.store.Delete(id)
		}
		return "", fmt.Errorf("indexing %q: %w", id, err)
	}
	return id, nil
}

// PublishEncoded stores an already-chunked model. The replica's store
// deduplicates against chunks it already holds — replicating a
// fine-tuned series costs each replica only the series' unique tensors
// — with the same rollback-on-index-failure rule as Publish.
func (r *EngineReplica) PublishEncoded(ctx context.Context, enc *cas.Encoded) (string, error) {
	id := enc.Manifest.ID()
	_, existed := r.store.Metadata(id)
	if _, err := r.store.PublishEncoded(enc); err != nil {
		return "", err
	}
	m := enc.Model
	if m == nil {
		var err error
		if m, err = r.store.Load(id); err != nil {
			return "", err
		}
	}
	if err := r.eng.IndexModel(ctx, id, m); err != nil {
		if !existed {
			_ = r.store.Delete(id)
		}
		return "", fmt.Errorf("indexing %q: %w", id, err)
	}
	return id, nil
}

// Load fetches from the replica's store.
func (r *EngineReplica) Load(ctx context.Context, id string) (*graph.Model, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.store.Load(id)
}

// List returns the replica's metadata.
func (r *EngineReplica) List(ctx context.Context) ([]repo.Metadata, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.store.List(), nil
}

// Delete removes the model from the store. The engine's index keeps
// its entry until Rebuild; callers that delete outside a rebalance
// (which rebuilds) accept briefly-stale index entries, the same
// trade-off the hub server makes.
func (r *EngineReplica) Delete(ctx context.Context, id string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.store.Delete(id)
}

// Rebuild replaces the engine with a fresh one indexed from the
// current store contents — the post-rebalance step that drops moved
// models from the index.
func (r *EngineReplica) Rebuild(ctx context.Context) error {
	eng, err := sommelier.NewEngine(r.store,
		sommelier.WithSeed(r.seed),
		sommelier.WithValidationSize(r.validationSize),
		sommelier.WithObserver(r.obs))
	if err != nil {
		return err
	}
	if err := eng.IndexAllContext(ctx); err != nil {
		return err
	}
	r.eng = eng
	return nil
}

// ClusterTopology sizes an in-process cluster.
type ClusterTopology struct {
	Shards, Replicas int
	// Seed drives every engine; replicas of a shard share it so their
	// answers are interchangeable.
	Seed uint64
	// ValidationSize is the per-task probe dataset size (speed knob).
	ValidationSize int
}

// ReplicaWrap decorates a freshly built replica — the chaos hook where
// tests interpose cluster.NewFaultyReplica. nil means no wrapping.
type ReplicaWrap func(shard, replica int, r cluster.Replica) cluster.Replica

// BuildCluster assembles Shards×Replicas in-process engine replicas
// into a cluster and a coordinator over it, both reporting to o (which
// may be nil).
func BuildCluster(top ClusterTopology, wrap ReplicaWrap, o *obs.Observer,
	copts ...cluster.CoordinatorOption) (*cluster.Cluster, *cluster.Coordinator, error) {
	if top.Shards <= 0 || top.Replicas <= 0 {
		return nil, nil, fmt.Errorf("experiments: cluster topology needs positive shards and replicas, got %d×%d",
			top.Shards, top.Replicas)
	}
	shards := make([][]cluster.Replica, top.Shards)
	for s := 0; s < top.Shards; s++ {
		shards[s] = make([]cluster.Replica, top.Replicas)
		for r := 0; r < top.Replicas; r++ {
			rep, err := NewEngineReplica(top.Seed, top.ValidationSize, nil)
			if err != nil {
				return nil, nil, err
			}
			var replica cluster.Replica = rep
			if wrap != nil {
				replica = wrap(s, r, replica)
			}
			shards[s][r] = replica
		}
	}
	cl, err := cluster.NewCluster(shards, cluster.WithClusterObserver(o))
	if err != nil {
		return nil, nil, err
	}
	opts := append([]cluster.CoordinatorOption{cluster.WithCoordinatorObserver(o)}, copts...)
	co, err := cluster.NewCoordinator(cl.Backends(), opts...)
	if err != nil {
		return nil, nil, err
	}
	return cl, co, nil
}

// SeedClusterModels publishes a correlated model family into the
// cluster: one base model broadcast to every shard (the reference every
// shard can correlate against) and n perturbed variants sharded by the
// ring. Variant perturbations grow with the index, so equivalence
// levels — and therefore the merged top-K order — are non-trivial.
// Returns the reference ID and the variant IDs in publish order.
func SeedClusterModels(ctx context.Context, c *cluster.Cluster, n, width, depth int, seed uint64) (string, []string, error) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "cluster-base", Seed: seed, Width: width, Depth: depth})
	if err != nil {
		return "", nil, err
	}
	refID, err := c.Broadcast(ctx, base)
	if err != nil {
		return "", nil, err
	}
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		frac := 0.005 * float64(i+1)
		v := zoo.Perturb(base, fmt.Sprintf("cluster-v%02d", i), frac, seed+uint64(i)+1)
		id, err := c.Publish(ctx, v)
		if err != nil {
			return "", nil, fmt.Errorf("publishing variant %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return refID, ids, nil
}
