package experiments

import (
	"fmt"
	"time"

	"sommelier"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

// ---------------------------------------------------------------------
// Ablation 1: generalization bound on vs off (extensional vs
// intensional scoring) — how much the bound costs in score and buys in
// stability across validation draws.
// ---------------------------------------------------------------------

// AblationBoundResult compares bound-on and bound-off scores for the
// same pair across validation dataset draws.
type AblationBoundResult struct {
	// Spread is max-min of the testing-only score across draws.
	TestingSpread float64
	// FloorViolations counts draws where the bounded floor exceeded the
	// testing score (must be zero for a sound bound).
	FloorViolations int
	Draws           int
	MeanTesting     float64
	Floor           float64
}

// RunAblationBound measures score stability with and without the bound.
func RunAblationBound(seed uint64) (*AblationBoundResult, error) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "ab-bound", Seed: seed, Width: 32})
	if err != nil {
		return nil, err
	}
	variant := zoo.Perturb(base, "ab-variant", 0.1, seed+1)
	res := &AblationBoundResult{Draws: 20}
	var minS, maxS, sum float64 = 1, 0, 0
	var worstEmp float64
	scores := make([]float64, 0, res.Draws)
	for d := 0; d < res.Draws; d++ {
		val := probeDataset(base.InputShape, 250, seed+10+uint64(d))
		r, err := equiv.CheckWhole(base, variant, val, equiv.Options{Epsilon: 1, Bound: equiv.BoundOff})
		if err != nil {
			return nil, err
		}
		s := r.Score()
		scores = append(scores, s)
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
		sum += s
		if r.EmpiricalDiff > worstEmp {
			worstEmp = r.EmpiricalDiff
		}
	}
	gb, err := equiv.GeneralizationBound(variant, 250, 1)
	if err != nil {
		return nil, err
	}
	res.Floor = 1 - (worstEmp + gb)
	if res.Floor < 0 {
		res.Floor = 0
	}
	for _, s := range scores {
		if res.Floor > s {
			res.FloorViolations++
		}
	}
	res.TestingSpread = maxS - minS
	res.MeanTesting = sum / float64(res.Draws)
	return res, nil
}

// Report renders the ablation.
func (r *AblationBoundResult) Report() Report {
	rep := Report{ID: "ablation-bound", Title: "Ablation: generalization bound on vs off"}
	rep.Lines = append(rep.Lines, line("testing-only score: mean %.3f, spread %.3f across %d draws",
		r.MeanTesting, r.TestingSpread, r.Draws))
	rep.Lines = append(rep.Lines, line("bounded floor: %.3f, violations: %d (must be 0)", r.Floor, r.FloorViolations))
	return rep
}

// ---------------------------------------------------------------------
// Ablation 2: 5-sample insertion vs full pairwise indexing.
// ---------------------------------------------------------------------

// AblationSamplingResult compares indexing cost and ranking quality at
// different sample sizes.
type AblationSamplingResult struct {
	SampleSizes []int
	IndexMS     []float64
	// Top1Hit is whether the closest variant is still ranked first.
	Top1Hit []bool
}

// RunAblationSampling builds the same 16-model repository under several
// insertion sample sizes and compares indexing time and top-1 quality.
func RunAblationSampling(seed uint64) (*AblationSamplingResult, error) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "ab-sample", Seed: seed, Width: 32})
	if err != nil {
		return nil, err
	}
	probes := probeDataset(base.InputShape, 300, seed+1).Inputs
	type variant struct {
		m    *zooModel
		diff float64
	}
	var variants []variant
	for i := 0; i < 15; i++ {
		target := 0.02 + 0.012*float64(i)
		v, dis, err := zoo.CalibratedVariant(base, fmt.Sprintf("ab-v%02d", i), target, probes, seed+10+uint64(i))
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{m: v, diff: dis})
	}
	ideal := "ab-v00@1"

	res := &AblationSamplingResult{SampleSizes: []int{2, 5, 16}}
	for _, k := range res.SampleSizes {
		store := repo.NewInMemory()
		eng, err := sommelier.New(store, sommelier.Options{
			Seed: seed, ValidationSize: 400, SampleSize: k, Bound: equiv.BoundOff,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		refID, err := eng.Register(base)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			if _, err := eng.Register(v.m); err != nil {
				return nil, err
			}
		}
		res.IndexMS = append(res.IndexMS, ms(start))
		top, err := eng.TopEquivalents(refID, 1)
		if err != nil {
			return nil, err
		}
		res.Top1Hit = append(res.Top1Hit, len(top) > 0 && top[0].ID == ideal)
	}
	return res, nil
}

type zooModel = graph.Model

// Report renders the ablation.
func (r *AblationSamplingResult) Report() Report {
	rep := Report{ID: "ablation-sampling", Title: "Ablation: sampled insertion (k pairwise measurements per insert)"}
	rep.Lines = append(rep.Lines, "sample size   index time(ms)   top-1 still ideal")
	for i, k := range r.SampleSizes {
		rep.Lines = append(rep.Lines, line("%11d   %14.1f   %17v", k, r.IndexMS[i], r.Top1Hit[i]))
	}
	rep.Lines = append(rep.Lines, "(paper: sampling dramatically improves scalability without degrading quality much)")
	return rep
}

// ---------------------------------------------------------------------
// Ablation 3: LSH vs linear scan for resource lookup.
// ---------------------------------------------------------------------

// AblationLSHResult compares lookup latencies and recall.
type AblationLSHResult struct {
	Sizes    []int
	LSHMS    []float64
	LinearMS []float64
	Recall   []float64
}

// RunAblationLSH times budget lookups via the LSH path against exact
// scans at increasing index sizes.
func RunAblationLSH(seed uint64) (*AblationLSHResult, error) {
	res := &AblationLSHResult{Sizes: []int{1000, 10000, 100000}}
	for _, n := range res.Sizes {
		rng := tensor.NewRNG(seed + uint64(n))
		ri := index.NewResourceIndex(seed)
		for i := 0; i < n; i++ {
			p := resource.Profile{
				FLOPs:       int64(1e6 + rng.Float64()*1e10),
				MemoryBytes: int64(1e5 + rng.Float64()*1e9),
				LatencyMS:   0.1 + rng.Float64()*100,
			}
			if err := ri.Insert(fmt.Sprintf("m%d", i), p); err != nil {
				return nil, err
			}
		}
		budget := index.Budget{MaxMemoryBytes: int64(3e8), MaxFLOPs: int64(3e9), MaxLatencyMS: 30}
		const reps = 10
		var lshMS, linMS float64
		var lshN, linN int
		for q := 0; q < reps; q++ {
			start := time.Now()
			ids, err := ri.Candidates(budget, 0)
			if err != nil {
				return nil, err
			}
			lshMS += ms(start)
			lshN = len(ids)

			start = time.Now()
			exact := ri.CandidatesExact(budget)
			linMS += ms(start)
			linN = len(exact)
		}
		res.LSHMS = append(res.LSHMS, lshMS/reps)
		res.LinearMS = append(res.LinearMS, linMS/reps)
		recall := 1.0
		if linN > 0 {
			recall = float64(lshN) / float64(linN)
		}
		res.Recall = append(res.Recall, recall)
	}
	return res, nil
}

// Report renders the ablation.
func (r *AblationLSHResult) Report() Report {
	rep := Report{ID: "ablation-lsh", Title: "Ablation: LSH vs linear scan for resource lookup"}
	rep.Lines = append(rep.Lines, "records       LSH(ms)   linear(ms)   recall")
	for i, n := range r.Sizes {
		rep.Lines = append(rep.Lines, line("%7d   %11.3f   %10.3f   %6.2f", n, r.LSHMS[i], r.LinearMS[i], r.Recall[i]))
	}
	return rep
}

// ---------------------------------------------------------------------
// Ablation 4: segment-level matching vs whole-model-only.
// ---------------------------------------------------------------------

// AblationSegmentResult compares what each mode finds for a transfer
// pair whose whole models diverge but whose trunks match.
type AblationSegmentResult struct {
	WholeLevel   float64
	SegmentLevel float64
}

// RunAblationSegment builds a base and a heavily re-headed transfer
// variant: whole-model equivalence is poor, yet segment analysis
// recovers a high-level synthesized candidate.
func RunAblationSegment(seed uint64) (*AblationSegmentResult, error) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "ab-seg", Seed: seed, Width: 24, Depth: 1})
	if err != nil {
		return nil, err
	}
	variant, err := zoo.Transfer(base, "ab-seg-variant", 8, 99, 0, seed+1)
	if err != nil {
		return nil, err
	}
	val := probeDataset(base.InputShape, 300, seed+2)
	whole, err := equiv.CheckWhole(base, variant, val, equiv.Options{Epsilon: 1, Bound: equiv.BoundOff})
	if err != nil {
		return nil, err
	}
	pairs, err := equiv.CommonSegments(base, variant, 3)
	if err != nil {
		return nil, err
	}
	assess, err := equiv.AssessReplacement(base, pairs, equiv.Options{Epsilon: 0.1, Seed: seed, ProbeCount: 16})
	if err != nil {
		return nil, err
	}
	return &AblationSegmentResult{WholeLevel: whole.Score(), SegmentLevel: assess.Level()}, nil
}

// Report renders the ablation.
func (r *AblationSegmentResult) Report() Report {
	rep := Report{ID: "ablation-segment", Title: "Ablation: segment-level vs whole-model-only matching"}
	rep.Lines = append(rep.Lines, line("whole-model equivalence level:   %.3f", r.WholeLevel))
	rep.Lines = append(rep.Lines, line("segment replacement level:       %.3f", r.SegmentLevel))
	rep.Lines = append(rep.Lines, "(segment analysis recovers reuse that whole-model comparison misses)")
	return rep
}
