package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"

	"sommelier/internal/cas"
	"sommelier/internal/graph"
	"sommelier/internal/hub"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// StoreBenchConfig scales the content-addressed storage harness: a
// fine-tuned model series (one base, Models-1 derived variants mixing
// frozen-trunk transfers, lightly tuned transfers, and sparse edits) is
// published into a disk-backed repository and across a hub wire, and
// the chunk layer's dedup is measured against the whole-model baseline
// the pre-chunking stack paid.
type StoreBenchConfig struct {
	// Models is the series length, base included.
	Models       int
	Width, Depth int
	// HeadClasses sizes each transfer variant's fresh classifier head.
	HeadClasses int
	// Edits is the per-layer element count of each sparse-edit variant.
	Edits int
	Seed  uint64
}

// DefaultStoreBenchConfig is a 32-model fine-tuned series.
func DefaultStoreBenchConfig() StoreBenchConfig {
	return StoreBenchConfig{Models: 32, Width: 48, Depth: 3, HeadClasses: 8, Edits: 8, Seed: 2022}
}

// LatencyDigest is one operation's latency summary.
type LatencyDigest struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// StoreBenchResult is the harness report; the JSON form is what
// `make bench` writes to BENCH_store.json.
type StoreBenchResult struct {
	Models int `json:"models"`
	// BaselineBytes is the series' whole-model storage cost: each
	// model's chunk payload counted standalone, no cross-model sharing.
	BaselineBytes int64 `json:"baseline_bytes"`
	// StoredBytes is what the shared chunk store actually holds.
	StoredBytes       int64   `json:"stored_chunk_bytes"`
	StorageDedupRatio float64 `json:"storage_dedup_ratio"`
	Chunks            int     `json:"chunks"`
	DedupHits         int64   `json:"dedup_hits"`
	DeltaRefs         int     `json:"delta_refs"`
	// WireDenseBytes / WireChunkedBytes are the uploaded request bytes
	// publishing the series to a fresh hub whole-model vs negotiated.
	WireDenseBytes   int64   `json:"wire_dense_bytes"`
	WireChunkedBytes int64   `json:"wire_chunked_bytes"`
	WireReduction    float64 `json:"wire_reduction_ratio"`
	// HydrationIdentical reports whether every model re-loaded from
	// chunks re-encodes byte-identically to its original.
	HydrationIdentical bool          `json:"hydration_identical"`
	PublishMs          LatencyDigest `json:"publish_ms"`
	LoadMs             LatencyDigest `json:"load_ms"`
}

// storeBenchSeries builds the fine-tuned series: the base, then
// variants cycling through sparse edits (delta territory), frozen-trunk
// transfers (pure head swaps), and lightly tuned transfers (last trunk
// layer perturbed).
func storeBenchSeries(cfg StoreBenchConfig) ([]*graph.Model, error) {
	base, err := zoo.DenseResidualNet(zoo.Config{
		Name: "storebench-base", Seed: cfg.Seed,
		Width: cfg.Width, Depth: cfg.Depth, Series: "storebench",
	})
	if err != nil {
		return nil, err
	}
	base.Version = "1"
	models := []*graph.Model{base}
	trunkLinears := 1 + 2*cfg.Depth // stem + two Dense per residual block
	for i := 1; i < cfg.Models; i++ {
		name := fmt.Sprintf("storebench-v%02d", i)
		var v *graph.Model
		switch i % 3 {
		case 0:
			v, err = zoo.SparseEdit(base, name, cfg.Edits, cfg.Seed+uint64(i))
		case 1:
			v, err = zoo.Transfer(base, name, cfg.HeadClasses, trunkLinears, 0, cfg.Seed+uint64(i))
		default:
			v, err = zoo.Transfer(base, name, cfg.HeadClasses, trunkLinears-1, 0.02, cfg.Seed+uint64(i))
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: storebench variant %d: %w", i, err)
		}
		v.Version = "1"
		models = append(models, v)
	}
	return models, nil
}

// uploadMeter counts request body bytes leaving a hub client — the
// wire cost of a publish, dense or chunked.
type uploadMeter struct {
	inner http.RoundTripper
	sent  atomic.Int64
}

func (u *uploadMeter) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.ContentLength > 0 {
		u.sent.Add(req.ContentLength)
	}
	return u.inner.RoundTrip(req)
}

// RunStoreBench publishes the series into a disk-backed repository
// (measuring dedup and publish latency), re-opens it cold (measuring
// hydration latency and byte-identity), then replays the series over
// HTTP to two fresh hubs — once whole-model, once through chunk
// negotiation — and reports the bytes each protocol put on the wire.
func RunStoreBench(ctx context.Context, cfg StoreBenchConfig) (*StoreBenchResult, error) {
	if cfg.Models <= 0 {
		cfg = DefaultStoreBenchConfig()
	}
	if cfg.Models < 2 {
		return nil, fmt.Errorf("experiments: storebench needs a base plus variants, got %d models", cfg.Models)
	}
	models, err := storeBenchSeries(cfg)
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "storebench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	r, err := repo.Open(dir)
	if err != nil {
		return nil, err
	}

	o := obs.New()
	res := &StoreBenchResult{Models: len(models)}
	ids := make([]string, len(models))
	for i, m := range models {
		standalone, err := cas.Encode(m, "", nil, 0)
		if err != nil {
			return nil, err
		}
		for _, data := range standalone.Chunks {
			res.BaselineBytes += int64(len(data))
		}
		enc, err := r.Encode(m)
		if err != nil {
			return nil, err
		}
		stop := o.Time("storebench_publish_ms")
		id, err := r.PublishEncoded(enc)
		stop()
		if err != nil {
			return nil, fmt.Errorf("experiments: storebench publish %s: %w", m.Name, err)
		}
		ids[i] = id
	}
	stats := r.CASStats()
	res.StoredBytes = stats.Bytes
	res.Chunks = stats.Chunks
	res.DedupHits = stats.DedupHits
	if res.StoredBytes > 0 {
		res.StorageDedupRatio = float64(res.BaselineBytes) / float64(res.StoredBytes)
	}
	for _, id := range ids {
		man, ok := r.Manifest(id)
		if !ok {
			return nil, fmt.Errorf("experiments: storebench: no manifest for %s", id)
		}
		for _, l := range man.Layers {
			for _, ref := range l.Params {
				if ref.Delta != nil {
					res.DeltaRefs++
				}
			}
		}
	}

	// Cold reads: a fresh repository over the same directory hydrates
	// every model from chunks; each must re-encode byte-identically.
	cold, err := repo.Open(dir)
	if err != nil {
		return nil, err
	}
	res.HydrationIdentical = true
	for i, id := range ids {
		stop := o.Time("storebench_load_ms")
		m, err := cold.Load(id)
		stop()
		if err != nil {
			return nil, fmt.Errorf("experiments: storebench cold load %s: %w", id, err)
		}
		var want, got bytes.Buffer
		if err := graph.Encode(&want, models[i]); err != nil {
			return nil, err
		}
		if err := graph.Encode(&got, m); err != nil {
			return nil, err
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			res.HydrationIdentical = false
		}
	}

	// Wire cost: the same series to two fresh hubs, whole-model vs
	// chunk-negotiated.
	res.WireDenseBytes, err = wireCost(models, func(c *hub.Client, i int) error {
		_, err := c.Publish(models[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	res.WireChunkedBytes, err = wireCost(models, func(c *hub.Client, i int) error {
		enc, err := r.Encode(models[i])
		if err != nil {
			return err
		}
		_, _, err = c.PublishEncoded(enc)
		return err
	})
	if err != nil {
		return nil, err
	}
	if res.WireChunkedBytes > 0 {
		res.WireReduction = float64(res.WireDenseBytes) / float64(res.WireChunkedBytes)
	}

	snap := o.Snapshot()
	pub := snap.Histograms["storebench_publish_ms"]
	res.PublishMs = LatencyDigest{Count: int64(len(models)), P50: pub.P50, P95: pub.P95, P99: pub.P99, Max: pub.Max}
	ld := snap.Histograms["storebench_load_ms"]
	res.LoadMs = LatencyDigest{Count: int64(len(models)), P50: ld.P50, P95: ld.P95, P99: ld.P99, Max: ld.Max}
	return res, nil
}

// wireCost publishes the series to a fresh in-memory hub through
// publish, returning the request bytes that crossed the wire.
func wireCost(models []*graph.Model, publish func(c *hub.Client, i int) error) (int64, error) {
	srv, err := hub.NewServer(repo.NewInMemory())
	if err != nil {
		return 0, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	meter := &uploadMeter{inner: ts.Client().Transport}
	c, err := hub.NewClient(ts.URL, &http.Client{Transport: meter})
	if err != nil {
		return 0, err
	}
	for i := range models {
		if err := publish(c, i); err != nil {
			return 0, fmt.Errorf("experiments: storebench wire publish %s: %w", models[i].Name, err)
		}
	}
	return meter.sent.Load(), nil
}

// Report renders the paper-style summary block.
func (r *StoreBenchResult) Report() Report {
	rep := Report{
		ID:    "storebench",
		Title: "content-addressed storage dedup on a fine-tuned series",
	}
	rep.Lines = append(rep.Lines,
		line("series:           %d models (1 base + %d variants)", r.Models, r.Models-1),
		line("storage:          %d -> %d bytes in %d chunks (%.1fx dedup, %d chunk hits, %d delta refs)",
			r.BaselineBytes, r.StoredBytes, r.Chunks, r.StorageDedupRatio, r.DedupHits, r.DeltaRefs),
		line("wire:             %d -> %d bytes uploaded (%.1fx reduction vs whole-model)",
			r.WireDenseBytes, r.WireChunkedBytes, r.WireReduction),
		line("hydration:        byte-identical = %v", r.HydrationIdentical),
		line("publish latency:  p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms",
			r.PublishMs.P50, r.PublishMs.P95, r.PublishMs.P99, r.PublishMs.Max),
		line("cold load:        p50 %.2fms p95 %.2fms p99 %.2fms max %.2fms",
			r.LoadMs.P50, r.LoadMs.P95, r.LoadMs.P99, r.LoadMs.Max),
	)
	return rep
}
