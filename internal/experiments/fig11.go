package experiments

import (
	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/modeldiff"
	"sommelier/internal/nn"
	"sommelier/internal/stats"
	"sommelier/internal/zoo"
)

// ---------------------------------------------------------------------
// Figure 11: Sommelier (testing-only and bounded) vs ModelDiff.
// ---------------------------------------------------------------------

// Fig11Config scales the comparison.
type Fig11Config struct {
	// TuneFrac is the fine-tuning level applied to each family's
	// variant, following the ModelDiff protocol.
	TuneFrac float64
	// Draws is the number of distinct probe datasets (error bars).
	Draws   int
	Samples int
	Seed    uint64
}

// DefaultFig11Config follows the paper: three families, 20 dataset draws.
func DefaultFig11Config() Fig11Config {
	return Fig11Config{TuneFrac: 0.2, Draws: 20, Samples: 300, Seed: 0xf11}
}

// Fig11Family is one family's comparison row.
type Fig11Family struct {
	Family string
	// SommelierTesting is the testing-only similarity (1 - empirical
	// disagreement) per draw.
	SommelierTesting stats.Summary
	// ModelDiff is the baseline similarity per draw.
	ModelDiff stats.Summary
	// BoundedFloor is Sommelier's dataset-independent lower bound on
	// similarity (constant across draws — that is the point).
	BoundedFloor float64
}

// Fig11Result bundles all families.
type Fig11Result struct {
	Families []Fig11Family
}

// RunFig11 fine-tunes three model families and measures the similarity
// between each original and its variant, under Sommelier testing-only
// scoring, Sommelier's generalization-bounded floor, and ModelDiff —
// across multiple probe-dataset draws.
func RunFig11(cfg Fig11Config) (*Fig11Result, error) {
	res := &Fig11Result{}
	for fi, family := range []string{"mobile", "dense-residual", "transformerish"} {
		base, err := zoo.Build(family, zoo.Config{
			Name: "f11-" + family, Seed: cfg.Seed + uint64(fi)*31, Width: 32, Depth: 2,
		})
		if err != nil {
			return nil, err
		}
		variant := zoo.Perturb(base, base.Name+"-tuned", cfg.TuneFrac, cfg.Seed+uint64(fi)*67)

		baseExec, err := nn.NewExecutor(base)
		if err != nil {
			return nil, err
		}
		varExec, err := nn.NewExecutor(variant)
		if err != nil {
			return nil, err
		}

		var sommelierScores []float64
		var worstEmp float64
		for d := 0; d < cfg.Draws; d++ {
			probes := dataset.RandomImages(cfg.Samples, base.InputShape, cfg.Seed+uint64(fi)*1009+uint64(d))
			agree, err := nn.AgreementRatio(baseExec, varExec, probes)
			if err != nil {
				return nil, err
			}
			sommelierScores = append(sommelierScores, agree)
			if emp := 1 - agree; emp > worstEmp {
				worstEmp = emp
			}
		}
		mdScores, err := modeldiff.SimilarityAcrossDatasets(base, variant,
			modeldiff.Config{Pairs: 24, PerturbScale: 0.15, Seed: cfg.Seed + uint64(fi)}, cfg.Draws)
		if err != nil {
			return nil, err
		}
		gb, err := equiv.GeneralizationBound(variant, cfg.Samples, 1)
		if err != nil {
			return nil, err
		}
		floor := 1 - (worstEmp + gb)
		if floor < 0 {
			floor = 0
		}
		res.Families = append(res.Families, Fig11Family{
			Family:           family,
			SommelierTesting: stats.Summarize(sommelierScores),
			ModelDiff:        stats.Summarize(mdScores),
			BoundedFloor:     floor,
		})
	}
	return res, nil
}

// Report renders the comparison with error bars (min..max across draws).
func (r *Fig11Result) Report() Report {
	rep := Report{ID: "fig11", Title: "DNN similarity score comparison (Sommelier vs ModelDiff)"}
	rep.Lines = append(rep.Lines,
		"family           sommelier-testing (min..max)   modeldiff (min..max)   bounded floor")
	for _, f := range r.Families {
		rep.Lines = append(rep.Lines, line("%-16s %8.3f (%.3f..%.3f)      %8.3f (%.3f..%.3f)   %10.3f",
			f.Family,
			f.SommelierTesting.Mean, f.SommelierTesting.MinV, f.SommelierTesting.MaxV,
			f.ModelDiff.Mean, f.ModelDiff.MinV, f.ModelDiff.MaxV,
			f.BoundedFloor))
	}
	rep.Lines = append(rep.Lines,
		"(paper: averages comparable; ModelDiff varies ~30% across datasets; only Sommelier has a floor)")
	return rep
}
