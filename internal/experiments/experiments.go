// Package experiments contains one driver per table and figure of the
// paper's evaluation (§7). Each driver synthesizes its workload from
// internal/zoo, runs the relevant subsystems, and returns a structured
// result that renders the same rows/series the paper reports. The
// drivers are shared by cmd/sommbench and the root bench suite.
//
// Absolute numbers are not expected to match the paper (the substrate is
// a simulator; see DESIGN.md); the assertions in this package's tests
// pin the *shape*: who wins, by roughly what factor, and where the
// crossovers fall.
package experiments

import (
	"fmt"
	"strings"

	"sommelier/internal/dataset"
	"sommelier/internal/tensor"
)

// Report is a printable experiment result.
type Report struct {
	ID    string // e.g. "fig9a", "table3"
	Title string
	Lines []string
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func line(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// probeDataset builds an unlabeled probe dataset of n inputs.
func probeDataset(shape tensor.Shape, n int, seed uint64) *dataset.Dataset {
	return &dataset.Dataset{
		Name:   "probe",
		Inputs: dataset.RandomImages(n, shape, seed),
	}
}
