package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sommelier/internal/cluster"
	"sommelier/internal/faults"
	"sommelier/internal/obs"
)

// ClusterBenchConfig scales the cluster load harness: an in-process
// Shards×Replicas cluster is seeded with a broadcast reference plus
// sharded variants, then Clients concurrent simulated clients drive
// queries through the scatter-gather coordinator while a fault
// schedule degrades part of the cluster mid-run — one shard loses a
// single replica (failover territory) and another loses every replica
// (degradation territory).
type ClusterBenchConfig struct {
	Shards, Replicas int
	// Variants is the number of sharded (non-broadcast) models.
	Variants     int
	Width, Depth int
	// Clients is the number of concurrent simulated clients;
	// QueriesPerClient is each one's query count.
	Clients          int
	QueriesPerClient int
	ValidationSize   int
	Seed             uint64
	// FaultFraction is the point in each client's query stream — as a
	// fraction of QueriesPerClient — where the fault windows open.
	FaultFraction float64
}

// DefaultClusterBenchConfig drives 64 clients × 8 queries against a
// 4×2 cluster.
func DefaultClusterBenchConfig() ClusterBenchConfig {
	return ClusterBenchConfig{
		Shards: 4, Replicas: 2,
		Variants: 12, Width: 16, Depth: 2,
		Clients: 64, QueriesPerClient: 8,
		ValidationSize: 64, Seed: 2022,
		FaultFraction: 0.5,
	}
}

// OutcomeLatency is one outcome class's latency digest.
type OutcomeLatency struct {
	Outcome string  `json:"outcome"`
	Count   int64   `json:"count"`
	P50     float64 `json:"p50_ms"`
	P95     float64 `json:"p95_ms"`
	P99     float64 `json:"p99_ms"`
	Max     float64 `json:"max_ms"`
}

// ClusterBenchResult is the harness report; the JSON form is what
// `make bench` writes to BENCH_cluster.json.
type ClusterBenchResult struct {
	Shards          int              `json:"shards"`
	Replicas        int              `json:"replicas"`
	Models          int              `json:"models"`
	Clients         int              `json:"clients"`
	Queries         int64            `json:"queries"`
	Errors          int64            `json:"query_errors"`
	Failovers       int64            `json:"failovers"`
	DegradedQueries int64            `json:"degraded_queries"`
	StaleShards     int64            `json:"stale_shards"`
	MissingShards   int64            `json:"missing_shards"`
	Outcomes        []OutcomeLatency `json:"outcomes"`
}

// RunClusterBench builds the cluster, opens the fault windows, and
// drives the concurrent client load, reporting latency percentiles per
// outcome class (full / degraded / failed) from the observability
// histograms — the numbers that say what a partially dead cluster
// costs its callers.
func RunClusterBench(ctx context.Context, cfg ClusterBenchConfig) (*ClusterBenchResult, error) {
	if cfg.Shards <= 0 {
		cfg = DefaultClusterBenchConfig()
	}
	if cfg.Shards < 3 {
		return nil, fmt.Errorf("experiments: clusterbench needs >= 3 shards (two get faulted), got %d", cfg.Shards)
	}
	o := obs.New()
	sched := faults.NewSchedule(cfg.Seed)
	wrap := func(shard, replica int, r cluster.Replica) cluster.Replica {
		return cluster.NewFaultyReplica(r, cluster.Target(shard, replica), sched)
	}
	cl, co, err := BuildCluster(ClusterTopology{
		Shards: cfg.Shards, Replicas: cfg.Replicas,
		Seed: cfg.Seed, ValidationSize: cfg.ValidationSize,
	}, wrap, o, cluster.WithReplicaTimeout(250*time.Millisecond))
	if err != nil {
		return nil, err
	}
	refID, _, err := SeedClusterModels(ctx, cl, cfg.Variants, cfg.Width, cfg.Depth, cfg.Seed)
	if err != nil {
		return nil, err
	}
	models, err := cl.List(ctx)
	if err != nil {
		return nil, err
	}

	// Program the chaos (Set resets each target's op counter, so the
	// seeding publishes don't shift the windows): shard 1's primary dies
	// mid-run — pure failover territory — while shard 2 loses its
	// primary immediately and its last replica mid-run, so the second
	// half of the load degrades to the stale/missing rungs. Window
	// offsets are per-target operations; a replica serving its shard's
	// queries sees about one op per cluster query.
	from := int64(float64(cfg.Clients*cfg.QueriesPerClient) * cfg.FaultFraction)
	sched.Set(cluster.Target(1, 0), faults.Kill(from, 0))
	sched.Set(cluster.Target(2, 0), faults.Kill(0, 0))
	for r := 1; r < cfg.Replicas; r++ {
		sched.Set(cluster.Target(2, r), faults.Kill(from, 0))
	}

	queries := []string{
		fmt.Sprintf("SELECT CORR %q WITHIN 85%% PICK most_similar", refID),
		fmt.Sprintf("SELECT CORR %q WITHIN 85%% ON memory <= 120%% PICK smallest", refID),
		fmt.Sprintf("SELECT CORR %q WITHIN 90%% PICK fastest LIMIT 5", refID),
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Clients)
	for cli := 0; cli < cfg.Clients; cli++ {
		wg.Add(1)
		go func(cli int) {
			defer wg.Done()
			for i := 0; i < cfg.QueriesPerClient; i++ {
				q := queries[(cli+i)%len(queries)]
				stop := o.Time("clusterbench_query_ms")
				resp, err := co.Query(ctx, q)
				ms := stop()
				if err != nil {
					errCh <- fmt.Errorf("client %d: %w", cli, err)
					return
				}
				o.Histogram("cluster_outcome_" + resp.Class() + "_ms").Observe(ms)
				o.Counter("cluster_outcome_" + resp.Class() + "_total").Inc()
			}
		}(cli)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}

	snap := o.Snapshot()
	res := &ClusterBenchResult{
		Shards:          cfg.Shards,
		Replicas:        cfg.Replicas,
		Models:          len(models),
		Clients:         cfg.Clients,
		Queries:         snap.Counters["cluster_queries_total"],
		Errors:          snap.Counters["cluster_query_errors_total"],
		Failovers:       snap.Counters["cluster_failovers_total"],
		DegradedQueries: snap.Counters["cluster_degraded_queries"],
		StaleShards:     snap.Counters["cluster_stale_shards_total"],
		MissingShards:   snap.Counters["cluster_missing_shards_total"],
	}
	for _, class := range []string{cluster.OutcomeFull, cluster.OutcomeDegraded, cluster.OutcomeFailed} {
		h := snap.Histograms["cluster_outcome_"+class+"_ms"]
		res.Outcomes = append(res.Outcomes, OutcomeLatency{
			Outcome: class,
			Count:   snap.Counters["cluster_outcome_"+class+"_total"],
			P50:     h.P50, P95: h.P95, P99: h.P99, Max: h.Max,
		})
	}
	return res, nil
}

// Report renders the paper-style summary block.
func (r *ClusterBenchResult) Report() Report {
	rep := Report{
		ID:    "clusterbench",
		Title: "scatter-gather latency by outcome class under partial failure",
	}
	rep.Lines = append(rep.Lines,
		line("cluster:          %d shards x %d replicas, %d models", r.Shards, r.Replicas, r.Models),
		line("load:             %d clients, %d queries (%d errors)", r.Clients, r.Queries, r.Errors),
		line("degradation:      %d failovers, %d degraded queries (%d stale, %d missing shard reads)",
			r.Failovers, r.DegradedQueries, r.StaleShards, r.MissingShards),
		line("%-10s %8s %8s %8s %8s %8s", "OUTCOME", "COUNT", "P50", "P95", "P99", "MAX"),
	)
	for _, o := range r.Outcomes {
		rep.Lines = append(rep.Lines,
			line("%-10s %8d %7.2fms %7.2fms %7.2fms %7.2fms", o.Outcome, o.Count, o.P50, o.P95, o.P99, o.Max))
	}
	return rep
}
