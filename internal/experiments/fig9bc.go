package experiments

import (
	"fmt"
	"time"

	"sommelier"
	"sommelier/internal/dataset"
	"sommelier/internal/nn"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
	"sommelier/internal/serving"
	"sommelier/internal/stats"
	"sommelier/internal/zoo"
)

// ---------------------------------------------------------------------
// Figure 9(b): time and manual-effort savings.
// ---------------------------------------------------------------------

// Fig9bResult reports, per case-study task, the measured wall-clock of
// exhaustive manual profiling vs one Sommelier query, and the lines of
// code of the manual script vs the query. The paper's human-subject
// component cannot be rerun; DESIGN.md documents the substitution (the
// mechanical profiling loop is what the 30× axis measures).
type Fig9bResult struct {
	Tasks       []string
	ManualMS    []float64
	QueryMS     []float64
	ManualLoC   []int
	QueryLoC    []int
	TimeRatio   []float64
	LoCRatio    []float64
	RepoModels  int
	ValidSizeBk int
}

// Fig9bConfig scales the experiment.
type Fig9bConfig struct {
	Models         int
	ValidationSize int
	Seed           uint64
}

// DefaultFig9bConfig uses a 24-model repository.
func DefaultFig9bConfig() Fig9bConfig {
	return Fig9bConfig{Models: 24, ValidationSize: 400, Seed: 0x9b}
}

// Manual script LoC, counted from the exhaustive-profiling programs the
// paper's Figure 8 sketches (load → evaluate → profile → compare, per
// model, per task), vs the Sommelier query text (≤10 lines, per §7.1).
var fig9bLoC = map[string][2]int{
	"design":  {212, 6},
	"testing": {187, 8},
	"serving": {243, 9},
}

// RunFig9b measures exhaustive profiling vs query time on the same
// repository for the three case-study tasks.
func RunFig9b(cfg Fig9bConfig) (*Fig9bResult, error) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "effort-base", Seed: cfg.Seed, Width: 32, Depth: 2})
	if err != nil {
		return nil, err
	}
	store := repo.NewInMemory()
	eng, err := sommelier.New(store, sommelier.Options{Seed: cfg.Seed, ValidationSize: cfg.ValidationSize})
	if err != nil {
		return nil, err
	}
	baseID, err := eng.Register(base)
	if err != nil {
		return nil, err
	}
	probes := dataset.RandomImages(300, base.InputShape, cfg.Seed+2)
	for i := 0; i < cfg.Models-1; i++ {
		target := 0.02 + 0.1*float64(i)/float64(cfg.Models)
		v, _, err := zoo.CalibratedVariant(base, fmt.Sprintf("effort-v%02d", i), target, probes, cfg.Seed+uint64(i)+10)
		if err != nil {
			return nil, err
		}
		if _, err := eng.Register(v); err != nil {
			return nil, err
		}
	}

	// Manual path: load every model, evaluate on the validation set,
	// profile resources, track the best candidate — once per task.
	val := dataset.RandomImages(cfg.ValidationSize, base.InputShape, cfg.Seed+3)
	prof := resource.NewProfiler(nil)
	manual := func() error {
		baseExec, err := nn.NewExecutor(base)
		if err != nil {
			return err
		}
		bestScore := -1.0
		for _, md := range store.List() {
			m, err := store.Load(md.ID)
			if err != nil {
				return err
			}
			e, err := nn.NewExecutor(m)
			if err != nil {
				return err
			}
			agree, err := nn.AgreementRatio(baseExec, e, val)
			if err != nil {
				return err
			}
			p, err := prof.Measure(m)
			if err != nil {
				return err
			}
			score := agree - 1e-12*float64(p.FLOPs)
			if score > bestScore {
				bestScore = score
			}
		}
		return nil
	}

	res := &Fig9bResult{RepoModels: store.Len(), ValidSizeBk: cfg.ValidationSize}
	for _, task := range []string{"design", "testing", "serving"} {
		start := time.Now()
		if err := manual(); err != nil {
			return nil, err
		}
		manualMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		if _, err := eng.Query(fmt.Sprintf("SELECT CORR %q WITHIN 80%% ON flops <= 100%% PICK most_similar LIMIT 3", baseID)); err != nil {
			return nil, err
		}
		queryMS := float64(time.Since(start).Microseconds()) / 1000

		loc := fig9bLoC[task]
		res.Tasks = append(res.Tasks, task)
		res.ManualMS = append(res.ManualMS, manualMS)
		res.QueryMS = append(res.QueryMS, queryMS)
		res.ManualLoC = append(res.ManualLoC, loc[0])
		res.QueryLoC = append(res.QueryLoC, loc[1])
		res.TimeRatio = append(res.TimeRatio, manualMS/maxf(queryMS, 1e-6))
		res.LoCRatio = append(res.LoCRatio, float64(loc[0])/float64(loc[1]))
	}
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Report renders the six bar groups of Figure 9(b).
func (r *Fig9bResult) Report() Report {
	rep := Report{ID: "fig9b", Title: "Saving in time and manual effort (manual profiling vs query)"}
	rep.Lines = append(rep.Lines, line("repository: %d models, validation %d samples", r.RepoModels, r.ValidSizeBk))
	rep.Lines = append(rep.Lines, "task      manual(ms)  query(ms)  time-ratio  manual-LoC  query-LoC  LoC-ratio")
	for i, task := range r.Tasks {
		rep.Lines = append(rep.Lines, line("%-9s %10.1f %10.3f %11.0fx %11d %10d %9.0fx",
			task, r.ManualMS[i], r.QueryMS[i], r.TimeRatio[i], r.ManualLoC[i], r.QueryLoC[i], r.LoCRatio[i]))
	}
	rep.Lines = append(rep.Lines, "(paper: up to 30x time reduction; hundreds of script lines -> <10 query lines)")
	return rep
}

// ---------------------------------------------------------------------
// Figure 9(c): inference tail latency under automatic model switching.
// ---------------------------------------------------------------------

// Fig9cConfig scales the serving experiment.
type Fig9cConfig struct {
	Requests int
	Seed     uint64
}

// DefaultFig9cConfig uses the bursty workload the serving tests pin.
func DefaultFig9cConfig() Fig9cConfig {
	return Fig9cConfig{Requests: 20000, Seed: 0x9c}
}

// Fig9cResult carries the four configurations' latency summaries.
type Fig9cResult struct {
	Comparison serving.Comparison
}

// RunFig9c builds a flagship model plus Sommelier-identified compact
// equivalents (a size ladder: real resource differences, near-identical
// behaviour), derives service times from their profiled latency, and
// simulates the four configurations.
func RunFig9c(cfg Fig9cConfig) (*Fig9cResult, error) {
	teacher, err := zoo.DenseResidualNet(zoo.Config{Name: "serve-flagship", Seed: cfg.Seed, Width: 32, Depth: 2})
	if err != nil {
		return nil, err
	}
	ladder, err := zoo.SizeLadder("serve", teacher, 32, []int{32, 64, 128, 256},
		[]float64{0.06, 0.04, 0.03, 0.02}, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	// Register everything with an engine and query for the flagship's
	// equivalents, mirroring the paper's pre-registered candidates.
	store := repo.NewInMemory()
	eng, err := sommelier.New(store, sommelier.Options{Seed: cfg.Seed, ValidationSize: 300})
	if err != nil {
		return nil, err
	}
	flagship := ladder[len(ladder)-1]
	flagID, err := eng.Register(flagship)
	if err != nil {
		return nil, err
	}
	for _, m := range ladder[:len(ladder)-1] {
		if _, err := eng.Register(m); err != nil {
			return nil, err
		}
	}
	results, err := eng.Query(fmt.Sprintf("SELECT CORR %q WITHIN 80%% PICK most_similar", flagID))
	if err != nil {
		return nil, err
	}

	prof := resource.NewProfiler(nil)
	flagProf, err := prof.Measure(flagship)
	if err != nil {
		return nil, err
	}
	// Service times: scale profiled latency so the flagship costs
	// 20 ms, keeping the ladder's true relative costs.
	scale := 20 / flagProf.LatencyMS
	candidates := []serving.ModelChoice{{ID: flagID, ServiceMS: 20, Level: 1}}
	for _, r := range results {
		candidates = append(candidates, serving.ModelChoice{
			ID:        r.ID,
			ServiceMS: r.Profile.LatencyMS * scale,
			Level:     r.Level,
		})
	}
	// Order candidates from most expensive (highest quality) to
	// cheapest so the switching policy steps down correctly.
	for i := 1; i < len(candidates); i++ {
		for j := i; j > 0 && candidates[j].ServiceMS > candidates[j-1].ServiceMS; j-- {
			candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
		}
	}

	// Bursts arrive at ~3.5x the sustainable single-server rate —
	// enough to overwhelm even two replicated servers, while compact
	// equivalents absorb them. EXPERIMENTS.md discusses how the
	// resulting reduction factors compare with the paper's.
	w := serving.Workload{
		Requests:      cfg.Requests,
		MeanArrivalMS: 26,
		BurstEvery:    400,
		BurstLen:      80,
		BurstFactor:   3.5,
		Seed:          cfg.Seed + 2,
	}
	cmp, err := serving.RunComparison(w, candidates, 4)
	if err != nil {
		return nil, err
	}
	return &Fig9cResult{Comparison: cmp}, nil
}

// P90s returns the four p90 latencies (baseline, scale-out, switching,
// combined).
func (r *Fig9cResult) P90s() (base, scale, sw, comb float64) {
	return stats.Percentile(r.Comparison.Baseline.Latencies, 90),
		stats.Percentile(r.Comparison.ScaleOut.Latencies, 90),
		stats.Percentile(r.Comparison.Switching.Latencies, 90),
		stats.Percentile(r.Comparison.Combined.Latencies, 90)
}

// Report renders the latency distribution comparison of Figure 9(c).
func (r *Fig9cResult) Report() Report {
	rep := Report{ID: "fig9c", Title: "Run-time inference latency (p50/p90/p99, ms)"}
	rep.Lines = append(rep.Lines, "configuration         p50       p90       p99   mean-level  models-used")
	for _, res := range []serving.Result{
		r.Comparison.Baseline, r.Comparison.ScaleOut,
		r.Comparison.Switching, r.Comparison.Combined,
	} {
		s := res.Summary()
		rep.Lines = append(rep.Lines, line("%-20s %7.1f %9.1f %9.1f %10.3f  %d",
			res.PolicyName, s.P50, s.P90, s.P99, res.MeanLevel, len(res.ModelShare)))
	}
	base, scale, sw, comb := r.P90s()
	rep.Lines = append(rep.Lines, line(
		"p90 reduction: switching %.1fx, scale-out %.2fx, combined %.1fx (paper: ~6x / ~1.5x / switching+15%%)",
		base/sw, base/scale, base/comb))
	return rep
}
