package experiments

import (
	"fmt"

	"sommelier"
	"sommelier/internal/equiv"
	"sommelier/internal/repo"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

// ---------------------------------------------------------------------
// Figure 13: cross-series DNN similarity in the TF-Hub-like catalog.
// ---------------------------------------------------------------------

// Fig13Config scales the catalog experiment.
type Fig13Config struct {
	Catalog zoo.CatalogConfig
	// SeriesCounts is the x-axis: how many randomly selected series are
	// indexed at each step.
	SeriesCounts []int
	// Repeats is the number of random series orders (the paper uses 5).
	Repeats int
	// ValidationSize for the engine's equivalence probes.
	ValidationSize int
	Seed           uint64
}

// DefaultFig13Config uses a reduced catalog (12 series) so the full
// sweep stays tractable in CI; cmd/sommbench can run the paper-scale 30.
func DefaultFig13Config() Fig13Config {
	cat := zoo.DefaultCatalogConfig()
	cat.NumSeries = 12
	cat.MinPerSeries, cat.MaxPerSeries = 4, 6
	cat.NumTrunks = 4
	return Fig13Config{
		Catalog:        cat,
		SeriesCounts:   []int{4, 8, 12},
		Repeats:        3,
		ValidationSize: 600,
		Seed:           0x13f,
	}
}

// Fig13Result reports, per indexed-series count, the fraction of series
// whose models find their top-1 / top-5 functional equivalents outside
// their own series (averaged over repeats).
type Fig13Result struct {
	SeriesCounts []int
	Top1Outside  []float64
	Top5Outside  []float64
	TotalModels  int
}

// RunFig13 incrementally indexes randomly chosen series and measures how
// often the best equivalents of a series' models live in another series.
func RunFig13(cfg Fig13Config) (*Fig13Result, error) {
	series, err := zoo.Catalog(cfg.Catalog)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range series {
		total += len(s.Models)
	}
	res := &Fig13Result{SeriesCounts: cfg.SeriesCounts, TotalModels: total}
	rng := tensor.NewRNG(cfg.Seed)

	for _, count := range cfg.SeriesCounts {
		if count > len(series) {
			return nil, fmt.Errorf("experiments: fig13 requested %d series, catalog has %d", count, len(series))
		}
		var t1Sum, t5Sum float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			perm := rng.Perm(len(series))
			chosen := make([]zoo.Series, count)
			for i := 0; i < count; i++ {
				chosen[i] = series[perm[i]]
			}
			t1, t5, err := fig13Round(chosen, cfg, cfg.Seed+uint64(rep)*103)
			if err != nil {
				return nil, err
			}
			t1Sum += t1
			t5Sum += t5
		}
		res.Top1Outside = append(res.Top1Outside, t1Sum/float64(cfg.Repeats))
		res.Top5Outside = append(res.Top5Outside, t5Sum/float64(cfg.Repeats))
	}
	return res, nil
}

// fig13Round indexes the chosen series and returns the fraction of
// series containing at least one model whose top-1 (resp. any of top-5)
// equivalent lies outside its own series.
func fig13Round(chosen []zoo.Series, cfg Fig13Config, seed uint64) (top1, top5 float64, err error) {
	store := repo.NewInMemory()
	// Testing-only scoring: the case study measures where the empirical
	// semantic correlation lives; the architecture-dependent bound term
	// would otherwise dominate the small gaps between catalog rungs of
	// different widths.
	eng, err := sommelier.New(store, sommelier.Options{
		Seed:           seed,
		ValidationSize: cfg.ValidationSize,
		Bound:          equiv.BoundOff,
	})
	if err != nil {
		return 0, 0, err
	}
	seriesOf := make(map[string]string)
	for _, s := range chosen {
		for _, m := range s.Models {
			id, err := eng.Register(m)
			if err != nil {
				return 0, 0, err
			}
			seriesOf[id] = s.Name
		}
	}
	t1Series := make(map[string]bool)
	t5Series := make(map[string]bool)
	for id, own := range seriesOf {
		top, err := eng.TopEquivalents(id, 5)
		if err != nil {
			return 0, 0, err
		}
		if len(top) > 0 && seriesOf[top[0].ID] != own {
			t1Series[own] = true
		}
		for _, c := range top {
			if seriesOf[c.ID] != own {
				t5Series[own] = true
				break
			}
		}
	}
	n := float64(len(chosen))
	return float64(len(t1Series)) / n, float64(len(t5Series)) / n, nil
}

// Report renders the x → fraction series.
func (r *Fig13Result) Report() Report {
	rep := Report{ID: "fig13", Title: "Cross-series DNN similarity (top-K equivalents found outside own series)"}
	rep.Lines = append(rep.Lines, line("catalog: %d models", r.TotalModels))
	rep.Lines = append(rep.Lines, "series indexed   top-1 outside   top-5 outside")
	for i, c := range r.SeriesCounts {
		rep.Lines = append(rep.Lines, line("%14d   %12.0f%%   %12.0f%%",
			c, r.Top1Outside[i]*100, r.Top5Outside[i]*100))
	}
	rep.Lines = append(rep.Lines, "(paper: up to 40% top-1 and 80% top-5 found in another series; grows with coverage)")
	return rep
}
