package experiments

import (
	"fmt"

	"sommelier"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
	"sommelier/internal/zoo"
)

// ---------------------------------------------------------------------
// Figure 12(a): memory variation across execution settings.
// ---------------------------------------------------------------------

// Fig12aConfig scales the resource-variation experiment.
type Fig12aConfig struct {
	Widths []int
	Seed   uint64
}

// DefaultFig12aConfig builds a five-rung BiT-like ladder.
func DefaultFig12aConfig() Fig12aConfig {
	return Fig12aConfig{Widths: []int{32, 48, 64, 96, 128}, Seed: 0x12a}
}

// Fig12aResult reports, per BiT-like model, the memory footprint under
// each execution setting and the max relative variation.
type Fig12aResult struct {
	Models    []string
	Settings  []string
	MemoryMB  [][]float64 // [model][setting]
	Variation []float64   // max/min - 1 per model
}

// RunFig12a profiles each ladder model under a grid of execution
// settings (batch size, precision, runtime overhead) and measures how
// much its memory consumption varies.
func RunFig12a(cfg Fig12aConfig) (*Fig12aResult, error) {
	teacher, err := zoo.DenseResidualNet(zoo.Config{Name: "bit-teacher", Seed: cfg.Seed, Width: 32, Depth: 2})
	if err != nil {
		return nil, err
	}
	ladder, err := zoo.SizeLadder("bitish", teacher, 32, cfg.Widths, fig12aTargets(len(cfg.Widths)), cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	settings := []resource.ExecSetting{
		{Name: "b1-fp32", BatchSize: 1, ActivationBytes: 4, RuntimeOverhead: 0.02},
		{Name: "b8-fp32", BatchSize: 8, ActivationBytes: 4, RuntimeOverhead: 0.05},
		{Name: "b32-fp32", BatchSize: 32, ActivationBytes: 4, RuntimeOverhead: 0.08},
		{Name: "b8-fp16", BatchSize: 8, ActivationBytes: 2, RuntimeOverhead: 0.05},
		{Name: "b1-fp16", BatchSize: 1, ActivationBytes: 2, RuntimeOverhead: 0.12},
	}
	prof := resource.NewProfiler(nil)
	res := &Fig12aResult{}
	for _, s := range settings {
		res.Settings = append(res.Settings, s.Name)
	}
	for _, m := range ladder {
		res.Models = append(res.Models, m.Name)
		row := make([]float64, len(settings))
		lo, hi := -1.0, -1.0
		for si, s := range settings {
			p, err := prof.MeasureWith(m, s)
			if err != nil {
				return nil, err
			}
			mb := float64(p.MemoryBytes) / (1 << 20)
			row[si] = mb
			if lo < 0 || mb < lo {
				lo = mb
			}
			if mb > hi {
				hi = mb
			}
		}
		res.MemoryMB = append(res.MemoryMB, row)
		res.Variation = append(res.Variation, hi/lo-1)
	}
	return res, nil
}

// fig12aTargets returns the decreasing per-rung disagreement schedule of
// a realistic accuracy ladder.
func fig12aTargets(n int) []float64 {
	out := make([]float64, n)
	den := n - 1
	if den < 1 {
		den = 1
	}
	for i := range out {
		out[i] = 0.02 + 0.08*float64(n-1-i)/float64(den)
	}
	return out
}

// Report renders the variation table.
func (r *Fig12aResult) Report() Report {
	rep := Report{ID: "fig12a", Title: "Resource variation across execution settings (memory, MB)"}
	header := "model           "
	for _, s := range r.Settings {
		header += fmt.Sprintf("%10s", s)
	}
	header += "   variation"
	rep.Lines = append(rep.Lines, header)
	for i, m := range r.Models {
		l := fmt.Sprintf("%-16s", truncate(m, 15))
		for _, v := range r.MemoryMB[i] {
			l += fmt.Sprintf("%10.3f", v)
		}
		l += fmt.Sprintf("   %8.0f%%", r.Variation[i]*100)
		rep.Lines = append(rep.Lines, l)
	}
	rep.Lines = append(rep.Lines, "(paper: memory varies ~25% across settings, motivating the resource index)")
	return rep
}

// ---------------------------------------------------------------------
// Figure 12(b): cross-series replacement for the flagship model.
// ---------------------------------------------------------------------

// Fig12bConfig scales the cross-series experiment.
type Fig12bConfig struct {
	Seed uint64
}

// DefaultFig12bConfig uses the paper's 13-model BiT+EfficientNet layout.
func DefaultFig12bConfig() Fig12bConfig { return Fig12bConfig{Seed: 0x12b} }

// Fig12bResult lists the candidates (compact models from both series)
// with their equivalence level to the flagship reference.
type Fig12bResult struct {
	Reference string
	// Candidates in descending level order.
	IDs    []string
	Series []string
	Levels []float64
	MemMB  []float64
	// BestSeries is the series of the best compact candidate.
	BestSeries string
}

// RunFig12b indexes a BiT-like series (5 models) and an
// EfficientNet-like series (8 models), uses the largest BiT-like model
// as the reference, and asks for a replacement at roughly one-eighth its
// memory. The paper's surprise: the best candidate comes from the other
// series.
func RunFig12b(cfg Fig12bConfig) (*Fig12bResult, error) {
	teacher, err := zoo.DenseResidualNet(zoo.Config{Name: "cv-teacher", Seed: cfg.Seed, Width: 32, Depth: 2})
	if err != nil {
		return nil, err
	}
	// BiT-like: 5 rungs ending at a large flagship; its small rungs
	// drift further from the flagship's behaviour (coreDiff 0.12).
	bit, err := zoo.SizeLadder("bitish", teacher, 32, []int{32, 48, 96, 192, 288},
		[]float64{0.25, 0.18, 0.12, 0.06, 0.02}, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	// EfficientNet-like: 8 rungs, behaviourally closer to the task
	// teacher (coreDiff 0.03) — the series that "surprisingly" wins.
	eff, err := zoo.SizeLadder("efficientish", teacher, 32, []int{32, 36, 40, 48, 64, 96, 128, 160},
		[]float64{0.09, 0.085, 0.08, 0.075, 0.07, 0.06, 0.05, 0.045}, cfg.Seed+2)
	if err != nil {
		return nil, err
	}

	store := repo.NewInMemory()
	eng, err := sommelier.New(store, sommelier.Options{Seed: cfg.Seed, ValidationSize: 500, SampleSize: 16})
	if err != nil {
		return nil, err
	}
	flagship := bit[len(bit)-1]
	refID, err := eng.Register(flagship)
	if err != nil {
		return nil, err
	}
	for _, m := range bit[:len(bit)-1] {
		if _, err := eng.Register(m); err != nil {
			return nil, err
		}
	}
	for _, m := range eff {
		if _, err := eng.Register(m); err != nil {
			return nil, err
		}
	}

	// One-eighth the flagship's memory, with slack for rung granularity.
	results, err := eng.Query(fmt.Sprintf(
		"SELECT CORR %q WITHIN 0%% ON memory <= 16%% PICK most_similar", refID))
	if err != nil {
		return nil, err
	}
	res := &Fig12bResult{Reference: refID}
	for _, r := range results {
		m, err := store.Load(r.ID)
		if err != nil {
			return nil, err
		}
		res.IDs = append(res.IDs, r.ID)
		res.Series = append(res.Series, m.Metadata["series"])
		res.Levels = append(res.Levels, r.Level)
		res.MemMB = append(res.MemMB, float64(r.Profile.MemoryBytes)/(1<<20))
	}
	if len(res.Series) > 0 {
		res.BestSeries = res.Series[0]
	}
	return res, nil
}

// Report renders the candidate ranking.
func (r *Fig12bResult) Report() Report {
	rep := Report{ID: "fig12b", Title: "Functional equivalence across series (1/8-size replacement for the flagship)"}
	rep.Lines = append(rep.Lines, line("reference: %s", r.Reference))
	rep.Lines = append(rep.Lines, "rank  candidate                series          level   memory(MB)")
	for i := range r.IDs {
		rep.Lines = append(rep.Lines, line("%4d  %-24s %-14s %6.3f   %10.3f",
			i+1, truncate(r.IDs[i], 24), r.Series[i], r.Levels[i], r.MemMB[i]))
	}
	rep.Lines = append(rep.Lines, line("best series: %s (paper: the better 1/8-size model comes from EfficientNet, not BiT)",
		r.BestSeries))
	return rep
}
