package experiments

import (
	"context"
	"fmt"

	"sommelier"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// QueryBenchConfig scales the query-latency benchmark: a synthesized
// catalog is indexed once, then a batch of Figure 7 queries runs
// through the instrumented query path and the per-stage latency
// percentiles are read back from the engine's histograms.
type QueryBenchConfig struct {
	// Series/PerSeries/Trunks shape the synthesized catalog.
	Series    int
	PerSeries int
	Trunks    int
	// Queries is the number of queries executed per query shape.
	Queries int
	// ValidationSize is the probe dataset size per shape.
	ValidationSize int
	Seed           uint64
}

// DefaultQueryBenchConfig queries a 24-model catalog 50 times per
// query shape.
func DefaultQueryBenchConfig() QueryBenchConfig {
	return QueryBenchConfig{Series: 6, PerSeries: 4, Trunks: 3, Queries: 50, ValidationSize: 200, Seed: 2022}
}

// StageLatency is one query stage's latency digest, drawn from the
// corresponding query_*_ms histogram.
type StageLatency struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// QueryBenchResult reports end-to-end and per-stage query latency
// percentiles. The JSON form is what `make bench` writes to
// BENCH_query.json.
type QueryBenchResult struct {
	Models  int            `json:"models"`
	Queries int            `json:"queries"`
	Errors  int64          `json:"query_errors"`
	Total   StageLatency   `json:"total"`
	Stages  []StageLatency `json:"stages"`
}

// queryStages maps histogram names to report labels, total first.
var queryStages = []struct{ metric, label string }{
	{"query_total_ms", "total"},
	{"query_parse_ms", "parse"},
	{"query_candidates_ms", "candidates"},
	{"query_filter_ms", "filter"},
	{"query_rank_ms", "rank"},
}

// RunQueryBench synthesizes and indexes a zoo catalog, then drives
// cfg.Queries repetitions of each query shape (similarity-only,
// resource-constrained, segment-pick) through QueryContext. All
// timings come from the observability layer: the result's percentiles
// are exactly the query_*_ms histogram summaries a live daemon exports
// at /v1/metrics, so the benchmark measures the instrumented path the
// paper's latency claims ride on.
func RunQueryBench(ctx context.Context, cfg QueryBenchConfig) (*QueryBenchResult, error) {
	if cfg.Series <= 0 {
		cfg = DefaultQueryBenchConfig()
	}
	series, err := zoo.Catalog(zoo.CatalogConfig{
		NumSeries:    cfg.Series,
		MinPerSeries: cfg.PerSeries,
		MaxPerSeries: cfg.PerSeries,
		NumTrunks:    cfg.Trunks,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	store := repo.NewInMemory()
	var refID string
	for _, s := range series {
		for _, m := range s.Models {
			id, err := store.Publish(m)
			if err != nil {
				return nil, err
			}
			if refID == "" {
				refID = id
			}
		}
	}
	o := obs.New()
	eng, err := sommelier.NewEngine(store,
		sommelier.WithSeed(cfg.Seed),
		sommelier.WithValidationSize(cfg.ValidationSize),
		sommelier.WithObserver(o))
	if err != nil {
		return nil, err
	}
	if err := eng.IndexAllContext(ctx); err != nil {
		return nil, err
	}

	queries := []string{
		fmt.Sprintf("SELECT CORR %q WITHIN 85%% PICK most_similar", refID),
		fmt.Sprintf("SELECT CORR %q WITHIN 85%% ON memory <= 120%% PICK smallest", refID),
		fmt.Sprintf("SELECT CORR %q WITHIN 90%% ON flops <= 150%% PICK most_similar", refID),
	}
	executed := 0
	for i := 0; i < cfg.Queries; i++ {
		for _, q := range queries {
			// Empty result sets are fine — only hard errors abort the
			// benchmark; soft per-query errors land in query_errors_total.
			if _, err := eng.QueryContext(ctx, q); err != nil {
				return nil, fmt.Errorf("query %q: %w", q, err)
			}
			executed++
		}
	}

	snap := o.Snapshot()
	res := &QueryBenchResult{
		Models:  eng.IndexedLen(),
		Queries: executed,
		Errors:  snap.Counters["query_errors_total"],
	}
	for _, st := range queryStages {
		h := snap.Histograms[st.metric]
		sl := StageLatency{
			Stage: st.label,
			Count: h.Count,
			P50:   h.P50,
			P95:   h.P95,
			P99:   h.P99,
			Max:   h.Max,
		}
		if st.label == "total" {
			res.Total = sl
		} else {
			res.Stages = append(res.Stages, sl)
		}
	}
	return res, nil
}

// Report renders the paper-style summary block.
func (r *QueryBenchResult) Report() Report {
	rep := Report{
		ID:    "querybench",
		Title: "query latency percentiles from the observability histograms",
	}
	rep.Lines = append(rep.Lines,
		line("models indexed:  %d", r.Models),
		line("queries run:     %d  (%d errors)", r.Queries, r.Errors),
		line("%-12s %8s %8s %8s %8s", "STAGE", "P50", "P95", "P99", "MAX"),
		line("%-12s %7.3fms %7.3fms %7.3fms %7.3fms",
			r.Total.Stage, r.Total.P50, r.Total.P95, r.Total.P99, r.Total.Max),
	)
	for _, s := range r.Stages {
		rep.Lines = append(rep.Lines,
			line("%-12s %7.3fms %7.3fms %7.3fms %7.3fms", s.Stage, s.P50, s.P95, s.P99, s.Max))
	}
	return rep
}
