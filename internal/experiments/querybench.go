package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"sommelier"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// QueryBenchConfig scales the query-latency benchmark: a synthesized
// catalog is indexed once, then a batch of Figure 7 queries runs
// through the instrumented query path and the per-stage latency
// percentiles are read back from the engine's histograms.
type QueryBenchConfig struct {
	// Series/PerSeries/Trunks shape the synthesized catalog.
	Series    int
	PerSeries int
	Trunks    int
	// Queries is the number of queries executed per query shape.
	Queries int
	// ValidationSize is the probe dataset size per shape.
	ValidationSize int
	Seed           uint64
	// BatchSize is the overlapping-workload size for the batch-vs-serial
	// comparison; 0 skips it.
	BatchSize int
	// BatchRounds is how many times the workload runs in each mode.
	BatchRounds int
	// BatchWorkers bounds the batch worker pool (0 = engine default).
	BatchWorkers int
}

// DefaultQueryBenchConfig queries a 24-model catalog 50 times per
// query shape, then compares an overlapping 64-query batch against a
// serial loop over the same workload.
func DefaultQueryBenchConfig() QueryBenchConfig {
	return QueryBenchConfig{
		Series: 6, PerSeries: 4, Trunks: 3, Queries: 50, ValidationSize: 200, Seed: 2022,
		BatchSize: 64, BatchRounds: 8,
	}
}

// StageLatency is one query stage's latency digest, drawn from the
// corresponding query_*_ms histogram.
type StageLatency struct {
	Stage string  `json:"stage"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// BatchLatency compares QueryBatchContext against a serial QueryContext
// loop over the same overlapping workload: per-round wall-clock
// percentiles for each mode, and whether the two modes returned
// byte-identical results every round.
type BatchLatency struct {
	BatchSize int `json:"batch_size"`
	Rounds    int `json:"rounds"`
	// Workers is the configured pool bound (0 = engine default).
	Workers   int     `json:"workers"`
	SerialP50 float64 `json:"serial_p50_ms"`
	SerialP95 float64 `json:"serial_p95_ms"`
	BatchP50  float64 `json:"batch_p50_ms"`
	BatchP95  float64 `json:"batch_p95_ms"`
	Identical bool    `json:"identical_results"`
}

// QueryBenchResult reports end-to-end and per-stage query latency
// percentiles. The JSON form is what `make bench` writes to
// BENCH_query.json.
type QueryBenchResult struct {
	Models  int            `json:"models"`
	Queries int            `json:"queries"`
	Errors  int64          `json:"query_errors"`
	Total   StageLatency   `json:"total"`
	Stages  []StageLatency `json:"stages"`
	Batch   *BatchLatency  `json:"batch,omitempty"`
}

// queryStages maps histogram names to report labels, total first.
var queryStages = []struct{ metric, label string }{
	{"query_total_ms", "total"},
	{"query_parse_ms", "parse"},
	{"query_candidates_ms", "candidates"},
	{"query_filter_ms", "filter"},
	{"query_rank_ms", "rank"},
}

// RunQueryBench synthesizes and indexes a zoo catalog, then drives
// cfg.Queries repetitions of each query shape (similarity-only,
// resource-constrained, segment-pick) through QueryContext. All
// timings come from the observability layer: the result's percentiles
// are exactly the query_*_ms histogram summaries a live daemon exports
// at /v1/metrics, so the benchmark measures the instrumented path the
// paper's latency claims ride on.
func RunQueryBench(ctx context.Context, cfg QueryBenchConfig) (*QueryBenchResult, error) {
	if cfg.Series <= 0 {
		cfg = DefaultQueryBenchConfig()
	}
	series, err := zoo.Catalog(zoo.CatalogConfig{
		NumSeries:    cfg.Series,
		MinPerSeries: cfg.PerSeries,
		MaxPerSeries: cfg.PerSeries,
		NumTrunks:    cfg.Trunks,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	store := repo.NewInMemory()
	var refIDs []string
	for _, s := range series {
		for i, m := range s.Models {
			id, err := store.Publish(m)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				refIDs = append(refIDs, id)
			}
		}
	}
	refID := refIDs[0]
	// A few reference models are enough overlap for the batch workload.
	if len(refIDs) > 4 {
		refIDs = refIDs[:4]
	}
	o := obs.New()
	engOpts := []sommelier.Option{
		sommelier.WithSeed(cfg.Seed),
		sommelier.WithValidationSize(cfg.ValidationSize),
		sommelier.WithObserver(o),
	}
	if cfg.BatchWorkers > 0 {
		engOpts = append(engOpts, sommelier.WithQueryWorkers(cfg.BatchWorkers))
	}
	eng, err := sommelier.NewEngine(store, engOpts...)
	if err != nil {
		return nil, err
	}
	if err := eng.IndexAllContext(ctx); err != nil {
		return nil, err
	}

	queries := []string{
		fmt.Sprintf("SELECT CORR %q WITHIN 85%% PICK most_similar", refID),
		fmt.Sprintf("SELECT CORR %q WITHIN 85%% ON memory <= 120%% PICK smallest", refID),
		fmt.Sprintf("SELECT CORR %q WITHIN 90%% ON flops <= 150%% PICK most_similar", refID),
	}
	executed := 0
	for i := 0; i < cfg.Queries; i++ {
		for _, q := range queries {
			// Empty result sets are fine — only hard errors abort the
			// benchmark; soft per-query errors land in query_errors_total.
			if _, err := eng.QueryContext(ctx, q); err != nil {
				return nil, fmt.Errorf("query %q: %w", q, err)
			}
			executed++
		}
	}

	snap := o.Snapshot()
	res := &QueryBenchResult{
		Models:  eng.IndexedLen(),
		Queries: executed,
		Errors:  snap.Counters["query_errors_total"],
	}
	for _, st := range queryStages {
		h := snap.Histograms[st.metric]
		sl := StageLatency{
			Stage: st.label,
			Count: h.Count,
			P50:   h.P50,
			P95:   h.P95,
			P99:   h.P99,
			Max:   h.Max,
		}
		if st.label == "total" {
			res.Total = sl
		} else {
			res.Stages = append(res.Stages, sl)
		}
	}
	// The comparison runs after the snapshot above, so the per-stage
	// percentiles stay a pure measurement of the serial shape loop.
	if cfg.BatchSize > 0 && cfg.BatchRounds > 0 {
		bl, err := runBatchCompare(ctx, eng, refIDs, cfg)
		if err != nil {
			return nil, err
		}
		res.Batch = bl
	}
	return res, nil
}

// batchWorkload builds n overlapping queries: the three Figure 7 shapes
// plus an EXEC re-profiling shape, cycled across several reference
// models so each distinct query recurs within one batch — the workload
// batching is built to amortize (one snapshot, one parse pass, shared
// re-profile memo).
func batchWorkload(refIDs []string, n int) []string {
	shapes := []func(ref string) string{
		func(ref string) string { return fmt.Sprintf("SELECT CORR %q WITHIN 85%% PICK most_similar", ref) },
		func(ref string) string {
			return fmt.Sprintf("SELECT CORR %q WITHIN 85%% ON memory <= 120%% PICK smallest", ref)
		},
		func(ref string) string {
			return fmt.Sprintf("SELECT CORR %q WITHIN 90%% ON flops <= 150%% PICK most_similar", ref)
		},
		func(ref string) string {
			return fmt.Sprintf("SELECT CORR %q WITHIN 80%% ON latency <= 300%% EXEC batch=8 PICK fastest", ref)
		},
	}
	out := make([]string, n)
	for i := range out {
		out[i] = shapes[i%len(shapes)](refIDs[(i/len(shapes))%len(refIDs)])
	}
	return out
}

// runBatchCompare times the workload through a serial QueryContext loop
// and through QueryBatchContext, round-robin, and checks each round
// that the two modes return byte-identical results.
func runBatchCompare(ctx context.Context, eng *sommelier.Engine, refIDs []string, cfg QueryBenchConfig) (*BatchLatency, error) {
	workload := batchWorkload(refIDs, cfg.BatchSize)
	serialOnce := func() ([][]sommelier.Result, error) {
		out := make([][]sommelier.Result, len(workload))
		for i, q := range workload {
			rs, err := eng.QueryContext(ctx, q)
			if err != nil {
				return nil, fmt.Errorf("serial query %q: %w", q, err)
			}
			out[i] = rs
		}
		return out, nil
	}
	batchOnce := func() ([][]sommelier.Result, error) {
		rss, errs := eng.QueryBatchContext(ctx, workload)
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("batched query %q: %w", workload[i], err)
			}
		}
		return rss, nil
	}
	// One untimed warmup per mode so neither pays first-touch costs.
	if _, err := serialOnce(); err != nil {
		return nil, err
	}
	if _, err := batchOnce(); err != nil {
		return nil, err
	}
	bl := &BatchLatency{
		BatchSize: len(workload), Rounds: cfg.BatchRounds,
		Workers: cfg.BatchWorkers, Identical: true,
	}
	serialMS := make([]float64, 0, cfg.BatchRounds)
	batchMS := make([]float64, 0, cfg.BatchRounds)
	for r := 0; r < cfg.BatchRounds; r++ {
		start := time.Now()
		sres, err := serialOnce()
		if err != nil {
			return nil, err
		}
		serialMS = append(serialMS, float64(time.Since(start).Nanoseconds())/1e6)
		start = time.Now()
		bres, err := batchOnce()
		if err != nil {
			return nil, err
		}
		batchMS = append(batchMS, float64(time.Since(start).Nanoseconds())/1e6)
		sb, err := json.Marshal(sres)
		if err != nil {
			return nil, err
		}
		bb, err := json.Marshal(bres)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(sb, bb) {
			bl.Identical = false
		}
	}
	bl.SerialP50, bl.SerialP95 = pct(serialMS, 0.50), pct(serialMS, 0.95)
	bl.BatchP50, bl.BatchP95 = pct(batchMS, 0.50), pct(batchMS, 0.95)
	return bl, nil
}

// pct returns the p-quantile of the samples by nearest rank.
func pct(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[int(p*float64(len(s)-1)+0.5)]
}

// Report renders the paper-style summary block.
func (r *QueryBenchResult) Report() Report {
	rep := Report{
		ID:    "querybench",
		Title: "query latency percentiles from the observability histograms",
	}
	rep.Lines = append(rep.Lines,
		line("models indexed:  %d", r.Models),
		line("queries run:     %d  (%d errors)", r.Queries, r.Errors),
		line("%-12s %8s %8s %8s %8s", "STAGE", "P50", "P95", "P99", "MAX"),
		line("%-12s %7.3fms %7.3fms %7.3fms %7.3fms",
			r.Total.Stage, r.Total.P50, r.Total.P95, r.Total.P99, r.Total.Max),
	)
	for _, s := range r.Stages {
		rep.Lines = append(rep.Lines,
			line("%-12s %7.3fms %7.3fms %7.3fms %7.3fms", s.Stage, s.P50, s.P95, s.P99, s.Max))
	}
	if b := r.Batch; b != nil {
		identical := "identical"
		if !b.Identical {
			identical = "DIVERGED"
		}
		rep.Lines = append(rep.Lines,
			line("batch of %d x %d rounds (%s results):", b.BatchSize, b.Rounds, identical),
			line("%-12s %7.3fms %7.3fms", "serial loop", b.SerialP50, b.SerialP95),
			line("%-12s %7.3fms %7.3fms", "batched", b.BatchP50, b.BatchP95),
		)
	}
	return rep
}
