package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"sommelier"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// IndexBenchConfig scales the parallel-indexing benchmark: how fast the
// staged catalog pipeline ingests a zoo catalog with N workers versus
// one, and whether the two runs commit byte-identical indexes.
type IndexBenchConfig struct {
	// Series/PerSeries/Trunks shape the synthesized catalog
	// (Series × PerSeries models).
	Series    int
	PerSeries int
	Trunks    int
	// Workers is the parallel run's worker count (0 = GOMAXPROCS).
	Workers int
	// ValidationSize is the probe dataset size per shape.
	ValidationSize int
	Seed           uint64
}

// DefaultIndexBenchConfig indexes a 24-model catalog.
func DefaultIndexBenchConfig() IndexBenchConfig {
	return IndexBenchConfig{Series: 6, PerSeries: 4, Trunks: 3, ValidationSize: 200, Seed: 2022}
}

// IndexBenchResult reports serial-vs-parallel IndexAll over the same
// model population. The JSON form is what `make bench` writes to
// BENCH_index.json.
type IndexBenchResult struct {
	Models             int     `json:"models"`
	Workers            int     `json:"workers"`
	SerialMS           float64 `json:"serial_ms"`
	ParallelMS         float64 `json:"parallel_ms"`
	SerialModelsPerSec float64 `json:"serial_models_per_sec"`
	ParModelsPerSec    float64 `json:"parallel_models_per_sec"`
	Speedup            float64 `json:"speedup"`
	IdenticalSnapshots bool    `json:"identical_snapshots"`
}

// RunIndexBench builds one zoo catalog, publishes it into two fresh
// repositories, and runs IndexAll once with a single worker and once
// with cfg.Workers. Both engines share a seed, so the committed indexes
// must serialize to identical bytes — the determinism contract of the
// staged pipeline — which the result records alongside the timings.
func RunIndexBench(cfg IndexBenchConfig) (*IndexBenchResult, error) {
	if cfg.Series <= 0 {
		cfg = DefaultIndexBenchConfig()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	series, err := zoo.Catalog(zoo.CatalogConfig{
		NumSeries:    cfg.Series,
		MinPerSeries: cfg.PerSeries,
		MaxPerSeries: cfg.PerSeries,
		NumTrunks:    cfg.Trunks,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	run := func(w int) (int, time.Duration, []byte, error) {
		store := repo.NewInMemory()
		for _, s := range series {
			for _, m := range s.Models {
				if _, err := store.Publish(m); err != nil {
					return 0, 0, nil, err
				}
			}
		}
		eng, err := sommelier.New(store, sommelier.Options{
			Seed:           cfg.Seed,
			ValidationSize: cfg.ValidationSize,
			IndexWorkers:   w,
		})
		if err != nil {
			return 0, 0, nil, err
		}
		start := time.Now()
		if err := eng.IndexAll(); err != nil {
			return 0, 0, nil, err
		}
		elapsed := time.Since(start)
		var buf bytes.Buffer
		if err := eng.SaveIndexes(&buf); err != nil {
			return 0, 0, nil, err
		}
		return eng.IndexedLen(), elapsed, buf.Bytes(), nil
	}

	nSerial, serialDur, serialSnap, err := run(1)
	if err != nil {
		return nil, fmt.Errorf("serial run: %w", err)
	}
	nPar, parDur, parSnap, err := run(workers)
	if err != nil {
		return nil, fmt.Errorf("parallel run: %w", err)
	}
	if nSerial != nPar {
		return nil, fmt.Errorf("serial indexed %d models, parallel %d", nSerial, nPar)
	}

	res := &IndexBenchResult{
		Models:             nSerial,
		Workers:            workers,
		SerialMS:           float64(serialDur.Microseconds()) / 1e3,
		ParallelMS:         float64(parDur.Microseconds()) / 1e3,
		IdenticalSnapshots: bytes.Equal(serialSnap, parSnap),
	}
	if serialDur > 0 {
		res.SerialModelsPerSec = float64(nSerial) / serialDur.Seconds()
	}
	if parDur > 0 {
		res.ParModelsPerSec = float64(nPar) / parDur.Seconds()
		res.Speedup = serialDur.Seconds() / parDur.Seconds()
	}
	return res, nil
}

// Report renders the paper-style summary block.
func (r *IndexBenchResult) Report() Report {
	rep := Report{
		ID:    "indexbench",
		Title: "parallel catalog indexing: staged pipeline vs serial",
	}
	rep.Lines = append(rep.Lines,
		line("models indexed:      %d", r.Models),
		line("serial (1 worker):   %8.1f ms  (%.2f models/s)", r.SerialMS, r.SerialModelsPerSec),
		line("parallel (%2d):       %8.1f ms  (%.2f models/s)", r.Workers, r.ParallelMS, r.ParModelsPerSec),
		line("speedup:             %.2fx", r.Speedup),
		line("identical snapshots: %v", r.IdenticalSnapshots),
	)
	return rep
}
