package experiments

import (
	"fmt"

	"sommelier/internal/dataset"
	"sommelier/internal/nn"
	"sommelier/internal/zoo"
)

// Fig3Result is the pairwise agreement matrix of Figure 3: diagonal
// entries are each model's own top-1 accuracy (agreement with ground
// truth); off-diagonal entries are pairwise output agreement.
type Fig3Result struct {
	Names  []string
	Matrix [][]float64
}

// Fig3Config scales the experiment.
type Fig3Config struct {
	Models  int
	Samples int
	Seed    uint64
}

// DefaultFig3Config mirrors the paper's five-model setup.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{Models: 5, Samples: 2000, Seed: 0xf163}
}

// RunFig3 builds a correlated cohort (five models "trained on the same
// data") and measures the agreement matrix.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	if cfg.Models <= 1 {
		return nil, fmt.Errorf("experiments: fig3 needs at least two models")
	}
	cohort, err := zoo.CorrelatedCohort(16, 8, cfg.Models, 0.28, 0.1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	teacher, err := nn.NewExecutor(cohort.Teacher)
	if err != nil {
		return nil, err
	}
	probes := dataset.RandomImages(cfg.Samples, cohort.Teacher.InputShape, cfg.Seed+1)

	execs := make([]*nn.Executor, len(cohort.Models))
	names := make([]string, len(cohort.Models))
	for i, m := range cohort.Models {
		e, err := nn.NewExecutor(m)
		if err != nil {
			return nil, err
		}
		execs[i] = e
		names[i] = m.Name
	}
	res := &Fig3Result{Names: names, Matrix: make([][]float64, len(execs))}
	for i := range execs {
		res.Matrix[i] = make([]float64, len(execs))
		for j := range execs {
			var v float64
			if i == j {
				v, err = nn.AgreementRatio(execs[i], teacher, probes)
			} else {
				v, err = nn.AgreementRatio(execs[i], execs[j], probes)
			}
			if err != nil {
				return nil, err
			}
			res.Matrix[i][j] = v
		}
	}
	return res, nil
}

// MinOffDiagonal returns the smallest pairwise agreement.
func (r *Fig3Result) MinOffDiagonal() float64 {
	min := 1.0
	for i := range r.Matrix {
		for j := range r.Matrix[i] {
			if i != j && r.Matrix[i][j] < min {
				min = r.Matrix[i][j]
			}
		}
	}
	return min
}

// MaxDiagonal returns the largest own accuracy.
func (r *Fig3Result) MaxDiagonal() float64 {
	max := 0.0
	for i := range r.Matrix {
		if r.Matrix[i][i] > max {
			max = r.Matrix[i][i]
		}
	}
	return max
}

// Report renders the matrix like the paper's heatmap.
func (r *Fig3Result) Report() Report {
	rep := Report{ID: "fig3", Title: "Extent of equivalence between DNN models (agreement matrix)"}
	header := "model            "
	for _, n := range r.Names {
		header += fmt.Sprintf("%14s", truncate(n, 13))
	}
	rep.Lines = append(rep.Lines, header)
	for i, row := range r.Matrix {
		l := fmt.Sprintf("%-17s", truncate(r.Names[i], 16))
		for _, v := range row {
			l += fmt.Sprintf("%14.3f", v)
		}
		rep.Lines = append(rep.Lines, l)
	}
	rep.Lines = append(rep.Lines,
		line("min pairwise agreement %.3f vs max own accuracy %.3f (paper: off-diagonal > diagonal)",
			r.MinOffDiagonal(), r.MaxDiagonal()))
	return rep
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
