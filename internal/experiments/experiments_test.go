package experiments

import (
	"strings"
	"testing"
)

// The tests here run each experiment at a reduced scale and assert the
// paper's qualitative shape — who wins, roughly by how much, and where
// the crossovers fall — not absolute numbers.

func TestFig3OffDiagonalExceedsDiagonal(t *testing.T) {
	cfg := DefaultFig3Config()
	cfg.Samples = 600
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrix) != cfg.Models {
		t.Fatalf("matrix size %d", len(res.Matrix))
	}
	if res.MinOffDiagonal() <= res.MaxDiagonal() {
		t.Fatalf("Figure 3 shape violated: min pair %.3f vs max acc %.3f",
			res.MinOffDiagonal(), res.MaxDiagonal())
	}
	rep := res.Report()
	if rep.ID != "fig3" || len(rep.Lines) < cfg.Models+1 {
		t.Fatalf("report malformed: %+v", rep)
	}
	if !strings.Contains(rep.String(), "fig3") {
		t.Fatal("report string missing ID")
	}
}

func TestFig3Validation(t *testing.T) {
	if _, err := RunFig3(Fig3Config{Models: 1}); err == nil {
		t.Fatal("expected error for one model")
	}
}

func TestFig9aHitRateShape(t *testing.T) {
	cfg := Fig9aConfig{
		Spreads:         []float64{0.04, 0.10},
		Bases:           4,
		VariantsPerBase: 6,
		ValidationSize:  800,
		Seed:            7,
	}
	res, err := RunFig9a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HitRates) != 2 {
		t.Fatalf("hit rates %v", res.HitRates)
	}
	// Wider spreads are easier: the 10% hit rate must dominate the 4%
	// one, the 10% rate must be high, and the 4% rate must be clearly
	// imperfect (near-identical candidates are essentially random).
	if res.HitRates[1] <= res.HitRates[0] {
		t.Fatalf("hit rates not ordered by spread: %v", res.HitRates)
	}
	if res.HitRates[1] < 0.75 {
		t.Fatalf("10%% spread hit rate too low: %v", res.HitRates)
	}
	if res.HitRates[0] > 0.95 {
		t.Fatalf("4%% spread hit rate implausibly perfect: %v", res.HitRates)
	}
	if res.Report().ID != "fig9a" {
		t.Fatal("report ID")
	}
}

func TestFig9bQueryBeatsManual(t *testing.T) {
	cfg := Fig9bConfig{Models: 10, ValidationSize: 200, Seed: 3}
	res, err := RunFig9b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 3 {
		t.Fatalf("tasks = %v", res.Tasks)
	}
	for i, task := range res.Tasks {
		if res.TimeRatio[i] < 5 {
			t.Fatalf("task %s: query only %.1fx faster than manual profiling", task, res.TimeRatio[i])
		}
		if res.LoCRatio[i] < 10 {
			t.Fatalf("task %s: LoC ratio %.1f", task, res.LoCRatio[i])
		}
	}
	if res.Report().ID != "fig9b" {
		t.Fatal("report ID")
	}
}

func TestFig9cTailLatencyShape(t *testing.T) {
	cfg := Fig9cConfig{Requests: 6000, Seed: 5}
	res, err := RunFig9c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, scale, sw, comb := res.P90s()
	// Paper shape: switching cuts p90 by a large factor (~6x), far more
	// than scale-out alone (~1.5x); combined at least matches switching.
	if base/sw < 3 {
		t.Fatalf("switching win too small: base %.1f vs switching %.1f", base, sw)
	}
	if base/scale > base/sw {
		t.Fatalf("scale-out (%.1f) should not beat switching (%.1f)", scale, sw)
	}
	if comb > sw*1.1 {
		t.Fatalf("combined (%.1f) regressed vs switching (%.1f)", comb, sw)
	}
	// Accuracy cost of switching stays small (paper: 90th percentile
	// relative accuracy change 1.7-2.4%).
	if res.Comparison.Switching.MeanLevel < 0.9 {
		t.Fatalf("switching mean level %.3f", res.Comparison.Switching.MeanLevel)
	}
	if res.Report().ID != "fig9c" {
		t.Fatal("report ID")
	}
}

func TestFig10BoundIsReliableFloor(t *testing.T) {
	cfg := DefaultFig10Config()
	cfg.Samples = 300
	res, err := RunFig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 3 {
		t.Fatalf("tasks = %d", len(res.Tasks))
	}
	if !res.Sound(0.02) {
		t.Fatalf("bound exceeded actual: %+v", res)
	}
	for _, task := range res.Tasks {
		// With everything frozen, replacing the trunk with the original
		// is lossless: relative QoR near 1 for the tuned variant.
		if task.TunedQoR[0] < 0.95 {
			t.Fatalf("%s: fully frozen replacement lost accuracy: %v", task.Task, task.TunedQoR)
		}
		// Noisy (worst-case) fine-tuning must hurt at least as much as
		// normal fine-tuning at the least-frozen level.
		last := len(task.FreezeLevels) - 1
		if task.NoisyQoR[last] > task.TunedQoR[last]+0.02 {
			t.Fatalf("%s: noisy QoR above tuned: %v vs %v", task.Task, task.NoisyQoR, task.TunedQoR)
		}
	}
	if res.Report().ID != "fig10" {
		t.Fatal("report ID")
	}
}

func TestTable1BoundSafeAndTightens(t *testing.T) {
	cfg := Table1Config{Sizes: []int{100, 1000, 10000}, Repeats: 8, Seed: 9}
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 3 {
		t.Fatalf("models = %v", res.Models)
	}
	for _, m := range res.Models {
		cells := res.Cells[m]
		for i, c := range cells {
			if c.Bound > c.MinActual+1 {
				t.Fatalf("%s n=%d: bound %.1f above min actual %.1f", m, res.Sizes[i], c.Bound, c.MinActual)
			}
			if c.MinActual > c.AvgActual+1e-9 {
				t.Fatalf("%s: min above avg", m)
			}
		}
		// The bound tightens with n.
		if !(cells[0].Bound < cells[1].Bound && cells[1].Bound < cells[2].Bound) {
			t.Fatalf("%s: bound not tightening: %+v", m, cells)
		}
		// Paper: within 10 points of actual at n >= 1000.
		if cells[2].MinActual-cells[2].Bound > 15 {
			t.Fatalf("%s: bound too loose at 10k: %+v", m, cells[2])
		}
	}
	if res.Report().ID != "table1" {
		t.Fatal("report ID")
	}
}

func TestFig11SommelierVsModelDiff(t *testing.T) {
	cfg := DefaultFig11Config()
	cfg.Draws = 10
	cfg.Samples = 200
	res, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Families) != 3 {
		t.Fatalf("families = %d", len(res.Families))
	}
	for _, f := range res.Families {
		// Both detect similarity (positive mean scores).
		if f.SommelierTesting.Mean <= 0.5 || f.ModelDiff.Mean <= 0 {
			t.Fatalf("%s: means %.3f / %.3f", f.Family, f.SommelierTesting.Mean, f.ModelDiff.Mean)
		}
		// ModelDiff's dataset dependence: measurable spread.
		mdSpread := f.ModelDiff.MaxV - f.ModelDiff.MinV
		if mdSpread <= 0 {
			t.Fatalf("%s: ModelDiff spread %.4f", f.Family, mdSpread)
		}
		// The bounded floor sits at or below every testing score.
		if f.BoundedFloor > f.SommelierTesting.MinV+1e-9 {
			t.Fatalf("%s: floor %.3f above min testing %.3f", f.Family, f.BoundedFloor, f.SommelierTesting.MinV)
		}
	}
	if res.Report().ID != "fig11" {
		t.Fatal("report ID")
	}
}

func TestFig12aMemoryVariesAcrossSettings(t *testing.T) {
	cfg := Fig12aConfig{Widths: []int{32, 64}, Seed: 4}
	res, err := RunFig12a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Variation {
		// Paper: settings swing memory by ~25%.
		if v < 0.15 {
			t.Fatalf("model %s: variation only %.0f%%", res.Models[i], v*100)
		}
	}
	if res.Report().ID != "fig12a" {
		t.Fatal("report ID")
	}
}

func TestFig12bCrossSeriesWins(t *testing.T) {
	res, err := RunFig12b(DefaultFig12bConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 {
		t.Fatal("no candidates at 1/8 size")
	}
	if res.BestSeries != "efficientish" {
		t.Fatalf("best series = %q, want the cross-series EfficientNet-like winner\n%+v",
			res.BestSeries, res.Report().String())
	}
	if res.Report().ID != "fig12b" {
		t.Fatal("report ID")
	}
}

func TestFig13CrossSeriesGrowsWithCoverage(t *testing.T) {
	cfg := DefaultFig13Config()
	cfg.Catalog.NumSeries = 8
	cfg.Catalog.NumTrunks = 3
	cfg.Catalog.MinPerSeries, cfg.Catalog.MaxPerSeries = 3, 4
	cfg.SeriesCounts = []int{4, 8}
	cfg.Repeats = 2
	cfg.ValidationSize = 200
	res, err := RunFig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.SeriesCounts) - 1
	// With shared trunks, a substantial fraction of series find
	// equivalents outside themselves once coverage is broad.
	if res.Top5Outside[last] < 0.5 {
		t.Fatalf("top-5 outside fraction too low: %v", res.Top5Outside)
	}
	if res.Top1Outside[last] > res.Top5Outside[last]+1e-9 {
		t.Fatalf("top-1 cannot exceed top-5: %v vs %v", res.Top1Outside, res.Top5Outside)
	}
	if res.Report().ID != "fig13" {
		t.Fatal("report ID")
	}
}

func TestTable2TimeGrowsWithModelSize(t *testing.T) {
	cfg := Table2Config{Scale: 0.002, Seed: 2}
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// BERT-scale must dominate AlexNet-scale in both checks; parameter
	// counts must be ordered as in the paper.
	first, last := res.Rows[0], res.Rows[3]
	if last.Params <= first.Params {
		t.Fatalf("param ordering: %d vs %d", first.Params, last.Params)
	}
	if last.WholeMS <= first.WholeMS {
		t.Fatalf("whole-model time not growing: %.1f vs %.1f", first.WholeMS, last.WholeMS)
	}
	if res.Report().ID != "table2" {
		t.Fatal("report ID")
	}
}

func TestTable3LatencyShape(t *testing.T) {
	cfg := Table3Config{Sizes: []int{100, 10000}, Queries: 5, Seed: 3}
	res, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Semantic lookups are much cheaper than resource (LSH) lookups at
	// scale, and resource latency grows with records.
	if res.SemanticMS[1] >= res.ResourceMS[1] {
		t.Fatalf("semantic (%.3f) should be cheaper than resource (%.3f)",
			res.SemanticMS[1], res.ResourceMS[1])
	}
	if res.ResourceMS[1] <= res.ResourceMS[0] {
		t.Fatalf("resource latency should grow with records: %v", res.ResourceMS)
	}
	// Combined includes the resource lookup, so it should be in the
	// same band or above (0.7 slack absorbs cache-warming jitter).
	if res.BothMS[1] < 0.7*res.ResourceMS[1] {
		t.Fatalf("combined latency below resource-only: %v vs %v", res.BothMS, res.ResourceMS)
	}
	if res.Report().ID != "table3" {
		t.Fatal("report ID")
	}
}

func TestTable4MemoryShape(t *testing.T) {
	cfg := Table4Config{Sizes: []int{10, 1000, 100000}, Seed: 4}
	res, err := RunTable4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(cfg.Sizes); i++ {
		if res.ResourceMB[i] <= res.ResourceMB[i-1] {
			t.Fatalf("resource footprint not growing: %v", res.ResourceMB)
		}
		if res.SemanticMB[i] <= res.SemanticMB[i-1] {
			t.Fatalf("semantic footprint not growing: %v", res.SemanticMB)
		}
	}
	// Paper: mostly under 80 MB even at 100K.
	if res.ResourceMB[2] > 80 || res.SemanticMB[2] > 80 {
		t.Fatalf("footprint exceeds paper band: %v %v", res.ResourceMB, res.SemanticMB)
	}
	if res.Report().ID != "table4" {
		t.Fatal("report ID")
	}
}

func TestAblationBoundFloorSound(t *testing.T) {
	res, err := RunAblationBound(6)
	if err != nil {
		t.Fatal(err)
	}
	if res.FloorViolations != 0 {
		t.Fatalf("floor violated %d times", res.FloorViolations)
	}
	if res.TestingSpread <= 0 {
		t.Fatal("testing-only scores show no dataset dependence")
	}
	if res.Report().ID != "ablation-bound" {
		t.Fatal("report ID")
	}
}

func TestAblationSamplingFasterAtSmallK(t *testing.T) {
	res, err := RunAblationSampling(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SampleSizes) != 3 {
		t.Fatalf("sample sizes %v", res.SampleSizes)
	}
	// Smaller k must index faster than full pairwise.
	if res.IndexMS[0] >= res.IndexMS[2] {
		t.Fatalf("sampled insertion not faster: %v", res.IndexMS)
	}
	// Full pairwise must retain the ideal top-1.
	if !res.Top1Hit[2] {
		t.Fatal("full pairwise lost the ideal top-1")
	}
	if res.Report().ID != "ablation-sampling" {
		t.Fatal("report ID")
	}
}

func TestAblationLSHFasterAtScale(t *testing.T) {
	res, err := RunAblationLSH(8)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Sizes) - 1
	if res.LSHMS[last] >= res.LinearMS[last] {
		t.Fatalf("LSH not faster at %d records: %.3f vs %.3f",
			res.Sizes[last], res.LSHMS[last], res.LinearMS[last])
	}
	if res.Recall[last] <= 0.2 {
		t.Fatalf("LSH recall collapsed: %v", res.Recall)
	}
	if res.Report().ID != "ablation-lsh" {
		t.Fatal("report ID")
	}
}

func TestAblationSegmentRecoversReuse(t *testing.T) {
	res, err := RunAblationSegment(9)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentLevel <= res.WholeLevel {
		t.Fatalf("segment level %.3f should beat whole-model %.3f", res.SegmentLevel, res.WholeLevel)
	}
	if res.SegmentLevel < 0.85 {
		t.Fatalf("frozen-trunk segment level too low: %.3f", res.SegmentLevel)
	}
	if res.Report().ID != "ablation-segment" {
		t.Fatal("report ID")
	}
}

func TestAblationSwitchCostShape(t *testing.T) {
	res, err := RunAblationSwitchCost(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Names) != 4 {
		t.Fatalf("configs = %v", res.Names)
	}
	free, fg, bg := res.P99[0], res.P99[1], res.P99[3]
	if fg < free {
		t.Fatalf("foreground swaps should not beat free swaps: %.1f vs %.1f", fg, free)
	}
	// Background swapping must recover most of the foreground penalty.
	if bg-free > (fg-free)/2+1e-9 {
		t.Fatalf("background swap recovered too little: free %.1f fg %.1f bg %.1f", free, fg, bg)
	}
	if res.Report().ID != "ablation-switchcost" {
		t.Fatal("report ID")
	}
}
