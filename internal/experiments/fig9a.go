package experiments

import (
	"fmt"

	"sommelier"
	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/nn"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// Fig9aConfig scales the query-quality experiment.
type Fig9aConfig struct {
	// Spreads are the maximum model-difference levels to sweep; the
	// paper reports >95% ideal hits at 0.10 and ~60% at 0.04.
	Spreads []float64
	// Bases and VariantsPerBase size each synthetic repository.
	Bases, VariantsPerBase int
	// ValidationSize is the engine's probe-set size.
	ValidationSize int
	// SampleSize overrides the index's pairwise sampling (0 = measure
	// every pair, the configuration the paper's synthetic experiments
	// effectively use for ground-truth comparison).
	SampleSize int
	// Repeats re-runs each spread with fresh repositories; hit rates
	// average across repeats.
	Repeats int
	Seed    uint64
}

// DefaultFig9aConfig mirrors the paper's 200-model setup at a tractable
// scale: 8 bases × 8 variants per spread, full pairwise measurement.
func DefaultFig9aConfig() Fig9aConfig {
	return Fig9aConfig{
		Spreads:         []float64{0.04, 0.06, 0.08, 0.10},
		Bases:           6,
		VariantsPerBase: 8,
		ValidationSize:  1500,
		Repeats:         3,
		Seed:            0x9a,
	}
}

// Fig9aResult reports per-spread ideal-hit rates. HitRates scores every
// rank position of the returned list against the ground-truth ranking (a
// strictly harder metric); Top1Rates scores only whether the single best
// answer is the true closest model — the paper's "returns the ideal
// model" framing.
type Fig9aResult struct {
	Spreads   []float64
	HitRates  []float64
	Top1Rates []float64
	Queries   int
}

// RunFig9a measures how often the engine's top-1 answer for "the model
// most interchangeable with this base" matches the ground-truth closest
// variant, per difference spread.
func RunFig9a(cfg Fig9aConfig) (*Fig9aResult, error) {
	if len(cfg.Spreads) == 0 {
		return nil, fmt.Errorf("experiments: fig9a needs spreads")
	}
	repeats := cfg.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	res := &Fig9aResult{Spreads: cfg.Spreads}
	for si, spread := range cfg.Spreads {
		var hits, total, top1, refs int
		for rep := 0; rep < repeats; rep++ {
			sr, err := fig9aSpread(cfg, spread, cfg.Seed+uint64(si)*7001+uint64(rep)*293)
			if err != nil {
				return nil, err
			}
			hits += sr.hits
			total += sr.total
			top1 += sr.top1
			refs += sr.refs
		}
		res.HitRates = append(res.HitRates, float64(hits)/float64(total))
		res.Top1Rates = append(res.Top1Rates, float64(top1)/float64(refs))
		res.Queries += total
	}
	return res, nil
}

// spreadResult accumulates one repetition's counters.
type spreadResult struct {
	hits, total int // all-rank metric
	top1, refs  int // top-1-only metric
}

func fig9aSpread(cfg Fig9aConfig, spread float64, seed uint64) (spreadResult, error) {
	var sr spreadResult
	synth, err := zoo.SyntheticRepository(cfg.Bases, cfg.VariantsPerBase, spread, seed)
	if err != nil {
		return sr, err
	}
	// One engine per base keeps ground truth exact: every variant of a
	// base is calibrated against that base only.
	perBase := make(map[string][]zoo.SyntheticEntry)
	for _, e := range synth.Entries {
		perBase[e.Base] = append(perBase[e.Base], e)
	}
	for _, base := range synth.Bases {
		store := repo.NewInMemory()
		sampleSize := cfg.SampleSize
		if sampleSize == 0 {
			sampleSize = cfg.Bases*cfg.VariantsPerBase + 1 // full pairwise
		}
		eng, err := sommelier.New(store, sommelier.Options{
			Seed:           seed,
			ValidationSize: cfg.ValidationSize,
			Bound:          equiv.BoundOff, // ranking quality; the bound shifts all scores equally
			SampleSize:     sampleSize,
		})
		if err != nil {
			return sr, err
		}
		baseID, err := eng.Register(base)
		if err != nil {
			return sr, err
		}
		entries := perBase[base.Name]
		for _, e := range entries {
			if _, err := eng.Register(e.Model); err != nil {
				return sr, err
			}
		}
		// Re-measure ground truth on a large, independent probe set: the
		// calibration-time estimate is itself noisy, and the experiment
		// needs a reference ranking more accurate than the engine's own
		// measurement.
		baseExec, err := nn.NewExecutor(base)
		if err != nil {
			return sr, err
		}
		gtProbes := dataset.RandomImages(4000, base.InputShape, seed+0x61)
		for i := range entries {
			ve, err := nn.NewExecutor(entries[i].Model)
			if err != nil {
				return sr, err
			}
			agree, err := nn.AgreementRatio(baseExec, ve, gtProbes)
			if err != nil {
				return sr, err
			}
			entries[i].TrueDiff = 1 - agree
		}
		// Ground-truth ranking: ascending re-measured difference.
		truth := append([]zoo.SyntheticEntry(nil), entries...)
		for i := 1; i < len(truth); i++ {
			for j := i; j > 0 && truth[j].TrueDiff < truth[j-1].TrueDiff; j-- {
				truth[j], truth[j-1] = truth[j-1], truth[j]
			}
		}
		results, err := eng.Query(fmt.Sprintf("SELECT CORR %q WITHIN 0%% PICK most_similar", baseID))
		if err != nil {
			return sr, err
		}
		// Each rank position is one query instance: the "ideal model
		// for the k-th most demanding query" is ground-truth rank k.
		for k := range truth {
			sr.total++
			if k < len(results) && results[k].ID == truth[k].Model.Name+"@"+truth[k].Model.Version {
				sr.hits++
				if k == 0 {
					sr.top1++
				}
			}
		}
		sr.refs++
	}
	return sr, nil
}

// Report renders the spread → hit-rate series of Figure 9(a).
func (r *Fig9aResult) Report() Report {
	rep := Report{ID: "fig9a", Title: "Query quality (Sommelier top-1 vs ideal model)"}
	rep.Lines = append(rep.Lines, "max model difference    all-ranks hit    top-1 hit")
	for i, s := range r.Spreads {
		rep.Lines = append(rep.Lines, line("%18.0f%%    %12.0f%%    %8.0f%%",
			s*100, r.HitRates[i]*100, r.Top1Rates[i]*100))
	}
	rep.Lines = append(rep.Lines, line("(%d queries; paper: >95%% ideal at 10%% spread, ~60%% at 4%%)", r.Queries))
	return rep
}
