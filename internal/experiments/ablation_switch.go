package experiments

import (
	"sommelier/internal/serving"
	"sommelier/internal/stats"
)

// ---------------------------------------------------------------------
// Ablation 5: model-swap overhead and its mitigations (paper footnote 1:
// "the overhead in GPU memory swap can be mitigated by switching models
// in the background").
// ---------------------------------------------------------------------

// AblationSwitchCostResult compares p90/p99 latency of switching under
// different swap-cost regimes.
type AblationSwitchCostResult struct {
	// Rows: free swaps, foreground swaps, foreground+hysteresis,
	// background swaps.
	Names []string
	P90   []float64
	P99   []float64
}

// RunAblationSwitchCost simulates the Figure 9(c) switching policy with
// a 25 ms model-swap penalty under the three mitigation settings.
func RunAblationSwitchCost(seed uint64) (*AblationSwitchCostResult, error) {
	candidates := []serving.ModelChoice{
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.975},
		{ID: "compact", ServiceMS: 3, Level: 0.955},
	}
	w := serving.Workload{
		Requests:      10000,
		MeanArrivalMS: 26,
		BurstEvery:    400,
		BurstLen:      80,
		BurstFactor:   3.5,
		Seed:          seed,
	}
	const swapMS = 25
	configs := []struct {
		name       string
		swap       float64
		background bool
		hysteresis int
	}{
		{"free-swap", 0, false, 0},
		{"fg-swap", swapMS, false, 0},
		{"fg-swap+hysteresis", swapMS, false, 2},
		{"bg-swap", swapMS, true, 0},
	}
	res := &AblationSwitchCostResult{}
	for _, c := range configs {
		sw, err := serving.NewSwitchingPolicy(candidates, 4)
		if err != nil {
			return nil, err
		}
		p, err := serving.NewSwitchCostPolicy(sw, c.swap, c.background, c.hysteresis)
		if err != nil {
			return nil, err
		}
		r, err := serving.Simulate(w, p, 1)
		if err != nil {
			return nil, err
		}
		res.Names = append(res.Names, c.name)
		res.P90 = append(res.P90, stats.Percentile(r.Latencies, 90))
		res.P99 = append(res.P99, stats.Percentile(r.Latencies, 99))
	}
	return res, nil
}

// Report renders the ablation.
func (r *AblationSwitchCostResult) Report() Report {
	rep := Report{ID: "ablation-switchcost", Title: "Ablation: model-swap overhead and mitigations (ms)"}
	rep.Lines = append(rep.Lines, "configuration            p90       p99")
	for i, n := range r.Names {
		rep.Lines = append(rep.Lines, line("%-22s %7.1f  %8.1f", n, r.P90[i], r.P99[i]))
	}
	rep.Lines = append(rep.Lines, "(background swapping recovers most of the free-swap tail, per the paper's footnote)")
	return rep
}
