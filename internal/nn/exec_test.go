package nn

import (
	"math"
	"testing"
	"testing/quick"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

func mustExec(t testing.TB, m *graph.Model) *Executor {
	t.Helper()
	e, err := NewExecutor(m)
	if err != nil {
		t.Fatalf("NewExecutor(%s): %v", m.Name, err)
	}
	return e
}

func denseLayer(t testing.TB, w []float64, b []float64, in, out int) *graph.Layer {
	t.Helper()
	return &graph.Layer{
		Name: "d", Op: graph.OpDense, Inputs: []string{"input"},
		Attrs: graph.Attrs{Units: out},
		Params: map[string]*tensor.Tensor{
			"W": tensor.FromSlice(w, out, in),
			"B": tensor.FromSlice(b, out),
		},
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	m := &graph.Model{
		Name: "dense", Task: graph.TaskRegression, InputShape: tensor.Shape{2},
		Layers: []*graph.Layer{
			{Name: "input", Op: graph.OpInput},
			denseLayer(t, []float64{1, 2, 3, 4}, []float64{0.5, -0.5}, 2, 2),
		},
	}
	e := mustExec(t, m)
	out, err := e.Forward(tensor.FromSlice([]float64{1, 1}, 2))
	if err != nil {
		t.Fatal(err)
	}
	// W·x + b = [1+2+0.5, 3+4-0.5] = [3.5, 6.5]
	if out.Data()[0] != 3.5 || out.Data()[1] != 6.5 {
		t.Fatalf("Dense output = %v", out.Data())
	}
}

func TestActivations(t *testing.T) {
	x := tensor.FromSlice([]float64{-2, 0, 3}, 3)
	relu, _ := Apply(&graph.Layer{Op: graph.OpReLU}, []*tensor.Tensor{x})
	if relu.Data()[0] != 0 || relu.Data()[2] != 3 {
		t.Errorf("ReLU = %v", relu.Data())
	}
	leaky, _ := Apply(&graph.Layer{Op: graph.OpLeakyReLU, Attrs: graph.Attrs{Alpha: 0.1}}, []*tensor.Tensor{x})
	if math.Abs(leaky.Data()[0]+0.2) > 1e-12 {
		t.Errorf("LeakyReLU = %v", leaky.Data())
	}
	tanh, _ := Apply(&graph.Layer{Op: graph.OpTanh}, []*tensor.Tensor{x})
	if math.Abs(tanh.Data()[2]-math.Tanh(3)) > 1e-12 {
		t.Errorf("Tanh = %v", tanh.Data())
	}
	sig, _ := Apply(&graph.Layer{Op: graph.OpSigmoid}, []*tensor.Tensor{x})
	if math.Abs(sig.Data()[1]-0.5) > 1e-12 {
		t.Errorf("Sigmoid = %v", sig.Data())
	}
}

func TestConvIdentityKernel(t *testing.T) {
	// A 1x1 conv with identity weights must copy the input channel.
	b := graph.NewBuilder("conv1", graph.TaskRegression, tensor.Shape{1, 3, 3}, nil)
	b.Conv(1, 1, 1, 0)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.Layer("Conv2D_1").Params["W"].Data()[0] = 1
	e := mustExec(t, m)
	in := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	out, err := e.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data() {
		if out.Data()[i] != in.Data()[i] {
			t.Fatalf("identity conv differs at %d: %v", i, out.Data())
		}
	}
}

func TestConvSumKernel(t *testing.T) {
	// A 3x3 all-ones kernel with pad 1 computes neighborhood sums.
	b := graph.NewBuilder("conv3", graph.TaskRegression, tensor.Shape{1, 3, 3}, nil)
	b.Conv(1, 3, 1, 1)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.Layer("Conv2D_1").Params["W"].Fill(1)
	e := mustExec(t, m)
	in := tensor.New(1, 3, 3).Fill(1)
	out, err := e.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	// Center pixel sees all 9 ones; corners see 4.
	if out.At(0, 1, 1) != 9 {
		t.Errorf("center = %g, want 9", out.At(0, 1, 1))
	}
	if out.At(0, 0, 0) != 4 {
		t.Errorf("corner = %g, want 4", out.At(0, 0, 0))
	}
}

func TestPooling(t *testing.T) {
	in := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	maxl := &graph.Layer{Op: graph.OpMaxPool, Attrs: graph.Attrs{KernelH: 2, KernelW: 2, Stride: 2}}
	mx, err := Apply(maxl, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if mx.At(0, 0, 0) != 6 || mx.At(0, 1, 1) != 16 {
		t.Errorf("MaxPool = %v", mx.Data())
	}
	meanl := &graph.Layer{Op: graph.OpMeanPool, Attrs: graph.Attrs{KernelH: 2, KernelW: 2, Stride: 2}}
	mn, err := Apply(meanl, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if mn.At(0, 0, 0) != 3.5 {
		t.Errorf("MeanPool = %v", mn.Data())
	}
}

func TestGlobalAvgPool(t *testing.T) {
	in := tensor.FromSlice([]float64{1, 3, 10, 20}, 2, 2)
	out, err := Apply(&graph.Layer{Op: graph.OpGlobalAvgPool}, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 2 || out.Data()[1] != 15 {
		t.Errorf("GlobalAvgPool = %v", out.Data())
	}
}

func TestBatchNormKnown(t *testing.T) {
	l := &graph.Layer{
		Op: graph.OpBatchNorm, Attrs: graph.Attrs{Eps: 0},
		Params: map[string]*tensor.Tensor{
			"Gamma": tensor.FromSlice([]float64{2}, 1),
			"Beta":  tensor.FromSlice([]float64{1}, 1),
			"Mean":  tensor.FromSlice([]float64{3}, 1),
			"Var":   tensor.FromSlice([]float64{4}, 1),
		},
	}
	in := tensor.FromSlice([]float64{5}, 1)
	out, err := Apply(l, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	// (5-3)/2 * 2 + 1 = 3 (up to the default epsilon the layer applies)
	if math.Abs(out.Data()[0]-3) > 1e-4 {
		t.Fatalf("BatchNorm = %v", out.Data())
	}
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	l := &graph.Layer{Op: graph.OpLayerNorm, Attrs: graph.Attrs{Eps: 1e-12}}
	in := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 6)
	out, err := Apply(l, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Mean()) > 1e-9 {
		t.Fatalf("LayerNorm mean = %g", out.Mean())
	}
	var sq float64
	for _, v := range out.Data() {
		sq += v * v
	}
	if math.Abs(sq/6-1) > 1e-6 {
		t.Fatalf("LayerNorm variance = %g", sq/6)
	}
}

func TestEmbeddingLookupAndClamp(t *testing.T) {
	l := &graph.Layer{
		Op: graph.OpEmbedding, Attrs: graph.Attrs{VocabSize: 3, EmbedDim: 2},
		Params: map[string]*tensor.Tensor{
			"W": tensor.FromSlice([]float64{0, 1, 10, 11, 20, 21}, 3, 2),
		},
	}
	in := tensor.FromSlice([]float64{2, 0, 99}, 3)
	out, err := Apply(l, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 20 || out.At(1, 1) != 1 {
		t.Fatalf("Embedding = %v", out.Data())
	}
	// Out-of-vocab ids clamp to the last row.
	if out.At(2, 0) != 20 {
		t.Fatalf("OOV should clamp: %v", out.Data())
	}
}

func TestMultiSourceOps(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2}, 2)
	b := tensor.FromSlice([]float64{3, 4}, 2)
	add, _ := Apply(&graph.Layer{Op: graph.OpAdd}, []*tensor.Tensor{a, b})
	if add.Data()[0] != 4 || add.Data()[1] != 6 {
		t.Errorf("Add = %v", add.Data())
	}
	mul, _ := Apply(&graph.Layer{Op: graph.OpMul}, []*tensor.Tensor{a, b})
	if mul.Data()[1] != 8 {
		t.Errorf("Mul = %v", mul.Data())
	}
	cat, err := Apply(&graph.Layer{Op: graph.OpConcat}, []*tensor.Tensor{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumElements() != 4 || cat.Data()[2] != 3 {
		t.Errorf("Concat = %v", cat.Data())
	}
}

func TestForwardCaptureHasAllLayers(t *testing.T) {
	b := graph.NewBuilder("cap", graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(5))
	b.Dense(8)
	b.ReLU()
	b.Dense(3)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := mustExec(t, m)
	acts, err := e.ForwardCapture(tensor.New(4).Fill(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != len(m.Layers) {
		t.Fatalf("captured %d activations for %d layers", len(acts), len(m.Layers))
	}
}

func TestForwardFromPinsActivations(t *testing.T) {
	b := graph.NewBuilder("pin", graph.TaskRegression, tensor.Shape{4}, tensor.NewRNG(6))
	d1 := b.Dense(4)
	b.ReLU()
	b.Dense(2)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := mustExec(t, m)
	sample := tensor.New(4).Fill(1)
	base, err := e.Forward(sample)
	if err != nil {
		t.Fatal(err)
	}
	// Pinning the first dense output to zeros must change the result
	// (bias-only propagation).
	pinned := map[string]*tensor.Tensor{d1: tensor.New(4)}
	alt, err := e.ForwardFrom(sample, pinned)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.L2Distance(base, alt) == 0 {
		t.Fatal("pinned activations had no effect")
	}
	// Pinning to the true activation must reproduce the base output.
	acts, _ := e.ForwardCapture(sample)
	same, err := e.ForwardFrom(sample, map[string]*tensor.Tensor{d1: acts[d1]})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.L2Distance(base, same) > 1e-12 {
		t.Fatal("pinning true activation changed the output")
	}
}

func TestForwardRejectsWrongShape(t *testing.T) {
	b := graph.NewBuilder("ws", graph.TaskRegression, tensor.Shape{4}, nil)
	b.Dense(2)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := mustExec(t, m)
	if _, err := e.Forward(tensor.New(5)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestPreprocessorApplied(t *testing.T) {
	RegisterPreprocessor("halve_test", func(raw *tensor.Tensor) *tensor.Tensor {
		return raw.Scale(0.5)
	})
	b := graph.NewBuilder("pp", graph.TaskRegression, tensor.Shape{2}, nil)
	b.Add(graph.OpIdentity, graph.Attrs{})
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.Preprocessor = "halve_test"
	e := mustExec(t, m)
	out, err := e.Forward(tensor.FromSlice([]float64{4, 8}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.Data()[0] != 2 || out.Data()[1] != 4 {
		t.Fatalf("preprocessor not applied: %v", out.Data())
	}
	if _, ok := LookupPreprocessor("halve_test"); !ok {
		t.Fatal("LookupPreprocessor failed")
	}
}

func TestAgreementRatioSelfIsOne(t *testing.T) {
	b := graph.NewBuilder("agree", graph.TaskClassification, tensor.Shape{6}, tensor.NewRNG(9))
	b.Dense(10)
	b.ReLU()
	b.Dense(4)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := mustExec(t, m)
	rng := tensor.NewRNG(10)
	samples := make([]*tensor.Tensor, 20)
	for i := range samples {
		s := tensor.New(6)
		rng.FillNormal(s, 0, 1)
		samples[i] = s
	}
	r, err := AgreementRatio(e, e, samples)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("self agreement = %g", r)
	}
}

// Property: the executor is deterministic — same input, same output.
func TestPropertyForwardDeterministic(t *testing.T) {
	b := graph.NewBuilder("det", graph.TaskClassification, tensor.Shape{5}, tensor.NewRNG(20))
	b.Dense(7)
	b.Tanh()
	b.Dense(3)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := mustExec(t, m)
	f := func(xs [5]float64) bool {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		in := tensor.FromSlice(xs[:], 5)
		a, err1 := e.Forward(in)
		b2, err2 := e.Forward(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return tensor.L2Distance(a, b2) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ReLU and pooling never increase the L2 norm of differences —
// the non-linear operator bound of §4.2 for these operators.
func TestPropertyNonExpansiveOps(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		x := tensor.New(1, 4, 4)
		y := tensor.New(1, 4, 4)
		rng.FillNormal(x, 0, 2)
		rng.FillNormal(y, 0, 2)
		inDiff := tensor.L2Distance(x, y)
		relu := &graph.Layer{Op: graph.OpReLU}
		rx, _ := Apply(relu, []*tensor.Tensor{x})
		ry, _ := Apply(relu, []*tensor.Tensor{y})
		if tensor.L2Distance(rx, ry) > inDiff+1e-9 {
			return false
		}
		pool := &graph.Layer{Op: graph.OpMeanPool, Attrs: graph.Attrs{KernelH: 2, KernelW: 2, Stride: 2}}
		px, _ := Apply(pool, []*tensor.Tensor{x})
		py, _ := Apply(pool, []*tensor.Tensor{y})
		return tensor.L2Distance(px, py) <= inDiff+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
