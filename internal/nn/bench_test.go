package nn

import (
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

func benchModel(b *testing.B, width, depth int) *Executor {
	b.Helper()
	bl := graph.NewBuilder("bench", graph.TaskClassification, tensor.Shape{width}, tensor.NewRNG(1))
	for i := 0; i < depth; i++ {
		bl.Dense(width)
		bl.ReLU()
	}
	bl.Dense(10)
	bl.Softmax()
	m, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewExecutor(m)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkForwardDense64x4(b *testing.B) {
	e := benchModel(b, 64, 4)
	x := tensor.New(64)
	tensor.NewRNG(2).FillNormal(x, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardConv(b *testing.B) {
	bl := graph.NewBuilder("cnn", graph.TaskClassification, tensor.Shape{3, 16, 16}, tensor.NewRNG(3))
	bl.Conv(8, 3, 1, 1)
	bl.ReLU()
	bl.MaxPool(2, 2)
	bl.Conv(16, 3, 1, 1)
	bl.ReLU()
	bl.GlobalAvgPool()
	bl.Dense(10)
	bl.Softmax()
	m, err := bl.Build()
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewExecutor(m)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(3, 16, 16)
	tensor.NewRNG(4).FillNormal(x, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForwardCapture(b *testing.B) {
	e := benchModel(b, 64, 4)
	x := tensor.New(64)
	tensor.NewRNG(5).FillNormal(x, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ForwardCapture(x); err != nil {
			b.Fatal(err)
		}
	}
}
