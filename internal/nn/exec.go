// Package nn executes graph.Model DNNs: single-sample and batched forward
// passes, per-layer activation capture (needed by the segment-equivalence
// analysis in internal/equiv), and input preprocessor registration per
// §4.1 of the paper.
package nn

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Preprocessor transforms a raw input sample into the tensor a model
// consumes. Models reference preprocessors by registered name so that two
// models with different input shapes can still be compared when they share
// a preprocessing pipeline (§4.1).
type Preprocessor func(raw *tensor.Tensor) *tensor.Tensor

var (
	preprocMu sync.RWMutex
	preprocs  = make(map[string]Preprocessor)
)

// RegisterPreprocessor installs a named preprocessor. Registering an empty
// name or nil function panics; re-registering a name overwrites it.
func RegisterPreprocessor(name string, p Preprocessor) {
	if name == "" || p == nil {
		panic("nn: invalid preprocessor registration")
	}
	preprocMu.Lock()
	defer preprocMu.Unlock()
	preprocs[name] = p
}

// LookupPreprocessor returns the named preprocessor, if registered.
func LookupPreprocessor(name string) (Preprocessor, bool) {
	preprocMu.RLock()
	defer preprocMu.RUnlock()
	p, ok := preprocs[name]
	return p, ok
}

// Executor runs forward passes over a validated model. It caches the
// topological order and per-layer fan-out so repeated inference (the
// serving simulator's hot path) does no graph work.
type Executor struct {
	model  *graph.Model
	order  []*graph.Layer
	output string
}

// NewExecutor prepares an executor for m. The model must validate.
func NewExecutor(m *graph.Model) (*Executor, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	order, err := m.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	out, err := m.OutputLayerName()
	if err != nil {
		return nil, fmt.Errorf("nn: %w", err)
	}
	return &Executor{model: m, order: order, output: out}, nil
}

// Model returns the model this executor runs.
func (e *Executor) Model() *graph.Model { return e.model }

// OutputLayer returns the name of the model's sink layer.
func (e *Executor) OutputLayer() string { return e.output }

// Forward runs one sample through the model and returns the output tensor.
func (e *Executor) Forward(sample *tensor.Tensor) (*tensor.Tensor, error) {
	acts, err := e.forward(sample, nil)
	if err != nil {
		return nil, err
	}
	return acts[e.output], nil
}

// ForwardCapture runs one sample and returns the activations of every
// layer, keyed by layer name. The map includes the output layer.
func (e *Executor) ForwardCapture(sample *tensor.Tensor) (map[string]*tensor.Tensor, error) {
	return e.forward(sample, nil)
}

// ForwardFrom runs the model with the activations of some layers pinned to
// the supplied values (the "feed the rest of M after the segment just ran"
// step of §4.2's replacement assessment). Pinned layers are not executed;
// their values are used directly.
func (e *Executor) ForwardFrom(sample *tensor.Tensor, pinned map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	acts, err := e.forward(sample, pinned)
	if err != nil {
		return nil, err
	}
	return acts[e.output], nil
}

func (e *Executor) forward(sample *tensor.Tensor, pinned map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	in := sample
	if e.model.Preprocessor != "" {
		if p, ok := LookupPreprocessor(e.model.Preprocessor); ok {
			in = p(sample)
		}
	}
	if !in.Shape().Equal(e.model.InputShape) {
		return nil, fmt.Errorf("nn: input shape %v, model %q wants %v",
			in.Shape(), e.model.Name, e.model.InputShape)
	}
	acts := make(map[string]*tensor.Tensor, len(e.order))
	for _, l := range e.order {
		if v, ok := pinned[l.Name]; ok {
			acts[l.Name] = v
			continue
		}
		var out *tensor.Tensor
		var err error
		if l.Op == graph.OpInput {
			out = in
		} else {
			ins := make([]*tensor.Tensor, len(l.Inputs))
			for i, name := range l.Inputs {
				ins[i] = acts[name]
			}
			out, err = Apply(l, ins)
			if err != nil {
				return nil, fmt.Errorf("nn: layer %q: %w", l.Name, err)
			}
		}
		acts[l.Name] = out
	}
	return acts, nil
}

// ForwardBatch runs each sample through the model and returns the outputs
// in order.
func (e *Executor) ForwardBatch(samples []*tensor.Tensor) ([]*tensor.Tensor, error) {
	outs := make([]*tensor.Tensor, len(samples))
	for i, s := range samples {
		o, err := e.Forward(s)
		if err != nil {
			return nil, fmt.Errorf("nn: sample %d: %w", i, err)
		}
		outs[i] = o
	}
	return outs, nil
}

// Predict returns the argmax class index for a classification model.
func (e *Executor) Predict(sample *tensor.Tensor) (int, error) {
	out, err := e.Forward(sample)
	if err != nil {
		return 0, err
	}
	return out.ArgMax(), nil
}

// Apply evaluates a single layer on its input activations. It is exported
// so the equivalence analysis can drive individual operators.
func Apply(l *graph.Layer, in []*tensor.Tensor) (*tensor.Tensor, error) {
	switch l.Op {
	case graph.OpDense:
		return applyDense(l, in[0])
	case graph.OpConv2D:
		return applyConv(l, in[0])
	case graph.OpEmbedding:
		return applyEmbedding(l, in[0])
	case graph.OpReLU:
		return in[0].Map(func(v float64) float64 { return math.Max(0, v) }), nil
	case graph.OpLeakyReLU:
		alpha := l.Attrs.Alpha
		if alpha == 0 {
			alpha = 0.01
		}
		return in[0].Map(func(v float64) float64 {
			if v >= 0 {
				return v
			}
			return alpha * v
		}), nil
	case graph.OpTanh:
		return in[0].Map(math.Tanh), nil
	case graph.OpSigmoid:
		return in[0].Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }), nil
	case graph.OpSoftmax:
		return tensor.Softmax(in[0].Reshape(in[0].NumElements())).Reshape(in[0].Shape()...), nil
	case graph.OpMaxPool:
		return applyPool(l, in[0], true)
	case graph.OpMeanPool:
		return applyPool(l, in[0], false)
	case graph.OpGlobalAvgPool:
		return applyGlobalAvgPool(in[0])
	case graph.OpBatchNorm:
		return applyBatchNorm(l, in[0])
	case graph.OpLayerNorm:
		return applyLayerNorm(l, in[0])
	case graph.OpAdd:
		out := in[0].Clone()
		for _, x := range in[1:] {
			out.AddInPlace(x)
		}
		return out, nil
	case graph.OpMul:
		out := in[0].Clone()
		for _, x := range in[1:] {
			out = out.Mul(x)
		}
		return out, nil
	case graph.OpConcat:
		return applyConcat(in)
	case graph.OpFlatten:
		return in[0].Reshape(in[0].NumElements()), nil
	case graph.OpDropout, graph.OpIdentity:
		return in[0], nil
	default:
		return nil, fmt.Errorf("nn: cannot execute op %q", l.Op)
	}
}

func applyDense(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	w, b := l.Param("W"), l.Param("B")
	if w == nil || b == nil {
		return nil, fmt.Errorf("nn: Dense missing parameters")
	}
	out := tensor.MatVec(w, x)
	out.AddInPlace(b)
	return out, nil
}

func applyConv(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	w, b := l.Param("W"), l.Param("B")
	if w == nil || b == nil {
		return nil, fmt.Errorf("nn: Conv2D missing parameters")
	}
	a := l.Attrs
	stride := a.Stride
	if stride == 0 {
		stride = 1
	}
	inC, inH, inW := x.Shape()[0], x.Shape()[1], x.Shape()[2]
	outH := (inH+2*a.Pad-a.KernelH)/stride + 1
	outW := (inW+2*a.Pad-a.KernelW)/stride + 1
	// im2col: columns of receptive fields, then one matmul.
	cols := tensor.New(inC*a.KernelH*a.KernelW, outH*outW)
	cd := cols.Data()
	xd := x.Data()
	colW := outH * outW
	for c := 0; c < inC; c++ {
		for kh := 0; kh < a.KernelH; kh++ {
			for kw := 0; kw < a.KernelW; kw++ {
				row := ((c*a.KernelH)+kh)*a.KernelW + kw
				base := row * colW
				for oh := 0; oh < outH; oh++ {
					ih := oh*stride + kh - a.Pad
					if ih < 0 || ih >= inH {
						continue
					}
					xrow := (c*inH + ih) * inW
					orow := base + oh*outW
					for ow := 0; ow < outW; ow++ {
						iw := ow*stride + kw - a.Pad
						if iw < 0 || iw >= inW {
							continue
						}
						cd[orow+ow] = xd[xrow+iw]
					}
				}
			}
		}
	}
	prod := tensor.MatMul(w, cols) // [outC, outH*outW]
	pd := prod.Data()
	bd := b.Data()
	for oc := 0; oc < a.OutChannels; oc++ {
		off := oc * colW
		for i := 0; i < colW; i++ {
			pd[off+i] += bd[oc]
		}
	}
	return prod.Reshape(a.OutChannels, outH, outW), nil
}

func applyEmbedding(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	w := l.Param("W")
	if w == nil {
		return nil, fmt.Errorf("nn: Embedding missing parameter")
	}
	vocab, dim := w.Shape()[0], w.Shape()[1]
	seq := x.NumElements()
	out := tensor.New(seq, dim)
	for i, idf := range x.Data() {
		id := int(idf)
		if id < 0 {
			id = 0
		}
		if id >= vocab {
			id = vocab - 1
		}
		copy(out.Data()[i*dim:(i+1)*dim], w.Data()[id*dim:(id+1)*dim])
	}
	return out, nil
}

func applyPool(l *graph.Layer, x *tensor.Tensor, isMax bool) (*tensor.Tensor, error) {
	a := l.Attrs
	stride := a.Stride
	if stride == 0 {
		stride = a.KernelH
	}
	c, h, w := x.Shape()[0], x.Shape()[1], x.Shape()[2]
	outH := (h-a.KernelH)/stride + 1
	outW := (w-a.KernelW)/stride + 1
	out := tensor.New(c, outH, outW)
	for ch := 0; ch < c; ch++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				var acc float64
				if isMax {
					acc = math.Inf(-1)
				}
				for kh := 0; kh < a.KernelH; kh++ {
					for kw := 0; kw < a.KernelW; kw++ {
						v := x.At(ch, oh*stride+kh, ow*stride+kw)
						if isMax {
							if v > acc {
								acc = v
							}
						} else {
							acc += v
						}
					}
				}
				if !isMax {
					acc /= float64(a.KernelH * a.KernelW)
				}
				out.Set(acc, ch, oh, ow)
			}
		}
	}
	return out, nil
}

func applyGlobalAvgPool(x *tensor.Tensor) (*tensor.Tensor, error) {
	c := x.Shape()[0]
	per := x.NumElements() / c
	out := tensor.New(c)
	xd := x.Data()
	for ch := 0; ch < c; ch++ {
		s := 0.0
		for i := ch * per; i < (ch+1)*per; i++ {
			s += xd[i]
		}
		out.Data()[ch] = s / float64(per)
	}
	return out, nil
}

func applyBatchNorm(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	gamma, beta := l.Param("Gamma"), l.Param("Beta")
	mean, variance := l.Param("Mean"), l.Param("Var")
	if gamma == nil || beta == nil || mean == nil || variance == nil {
		return nil, fmt.Errorf("nn: BatchNorm missing parameters")
	}
	eps := l.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	c := x.Shape()[0]
	per := x.NumElements() / c
	out := x.Clone()
	od := out.Data()
	for ch := 0; ch < c; ch++ {
		scale := gamma.Data()[ch] / math.Sqrt(variance.Data()[ch]+eps)
		shift := beta.Data()[ch] - mean.Data()[ch]*scale
		for i := ch * per; i < (ch+1)*per; i++ {
			od[i] = od[i]*scale + shift
		}
	}
	return out, nil
}

func applyLayerNorm(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	eps := l.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	n := x.NumElements()
	mean := x.Mean()
	var sq float64
	for _, v := range x.Data() {
		d := v - mean
		sq += d * d
	}
	std := math.Sqrt(sq/float64(n) + eps)
	out := tensor.New(n)
	gamma, beta := l.Param("Gamma"), l.Param("Beta")
	for i, v := range x.Data() {
		nv := (v - mean) / std
		if gamma != nil {
			nv = nv*gamma.Data()[i] + beta.Data()[i]
		}
		out.Data()[i] = nv
	}
	return out.Reshape(x.Shape()...), nil
}

func applyConcat(in []*tensor.Tensor) (*tensor.Tensor, error) {
	shapes := make([]tensor.Shape, len(in))
	for i, t := range in {
		shapes[i] = t.Shape()
	}
	outShape, err := graph.InferShape(graph.OpConcat, graph.Attrs{}, shapes)
	if err != nil {
		return nil, err
	}
	out := tensor.New(outShape...)
	off := 0
	for _, t := range in {
		copy(out.Data()[off:], t.Data())
		off += t.NumElements()
	}
	return out, nil
}

// AgreementRatio returns the fraction of samples on which two executors
// produce the same argmax class — the pairwise agreement of Figure 3.
func AgreementRatio(a, b *Executor, samples []*tensor.Tensor) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no samples")
	}
	agree := 0
	for _, s := range samples {
		pa, err := a.Predict(s)
		if err != nil {
			return 0, err
		}
		pb, err := b.Predict(s)
		if err != nil {
			return 0, err
		}
		if pa == pb {
			agree++
		}
	}
	return float64(agree) / float64(len(samples)), nil
}

// RegisteredPreprocessors returns the sorted names of all registered
// preprocessors, mainly for diagnostics.
func RegisteredPreprocessors() []string {
	preprocMu.RLock()
	defer preprocMu.RUnlock()
	names := make([]string, 0, len(preprocs))
	for n := range preprocs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
