// Package equiv implements the paper's core algorithmic contribution
// (§4): assessing generalized functional equivalence between DNN models,
// both holistically and between structurally identical model segments.
//
// Whole-model equivalence proceeds in three phases mirroring §4.1: an
// input/output structure check (type check), an empirical
// quality-of-result difference on a validation dataset (value check), and
// a generalization-bound refinement that turns the dataset-dependent
// measurement into a dataset-independent upper bound.
//
// Segment equivalence (§4.2) extracts the longest common operator
// sequences between two model DAGs, propagates worst-case output
// differences through them layer by layer, and assesses replacement
// impact by perturbing segment outputs with bound-scaled Gaussian noise.
package equiv

import (
	"fmt"

	"sommelier/internal/dataset"
	"sommelier/internal/graph"
	"sommelier/internal/nn"
)

// BoundMode selects how the generalization-bound analysis runs (§5.5's
// configuration knob).
type BoundMode int

const (
	// BoundOn adds the generalization error bound to the empirical QoR
	// difference (the default, extensional mode).
	BoundOn BoundMode = iota
	// BoundOff uses the raw empirical difference only (intensional,
	// ModelDiff-style testing mode).
	BoundOff
)

// Options configures equivalence assessment.
type Options struct {
	// Epsilon is the acceptable QoR difference threshold.
	Epsilon float64
	// Bound selects whether the generalization bound refines the
	// empirical measurement.
	Bound BoundMode
	// Gamma is the margin parameter of the bound, determined by the
	// accuracy metric of the task; 0 means the default of 1.
	Gamma float64
	// ProbeCount is the number of random probe inputs used by the
	// segment-replacement assessment; 0 means a default of 16.
	ProbeCount int
	// Seed drives the probe generation and noise injection.
	Seed uint64
}

func (o Options) gamma() float64 {
	if o.Gamma <= 0 {
		return 1
	}
	return o.Gamma
}

func (o Options) probes() int {
	if o.ProbeCount <= 0 {
		return 16
	}
	return o.ProbeCount
}

// WholeResult reports the outcome of a whole-model equivalence check of a
// candidate model against a reference model.
type WholeResult struct {
	// Compatible is false when the input/output structure check already
	// rules the pair out; Reason explains why.
	Compatible bool
	Reason     string
	// EmpiricalDiff is the measured QoR difference on the validation
	// dataset.
	EmpiricalDiff float64
	// GeneralizationBound is the additive dataset-independence term
	// (zero when the bound is off).
	GeneralizationBound float64
	// BoundedDiff = EmpiricalDiff + GeneralizationBound, capped at 1.
	BoundedDiff float64
	// Equivalent reports BoundedDiff <= Epsilon.
	Equivalent bool
}

// Score converts the result into the functional-equivalence score stored
// in the semantic index: 1 - BoundedDiff, floored at 0. Incompatible pairs
// score 0.
func (r WholeResult) Score() float64 {
	if !r.Compatible {
		return 0
	}
	s := 1 - r.BoundedDiff
	if s < 0 {
		return 0
	}
	return s
}

// CheckWhole assesses whether candidate is functionally equivalent to
// reference, treating both as black boxes (§4.1). The validation dataset
// must exercise the reference's task. The relation is asymmetric: the
// bound is computed from the candidate's architecture, since the
// candidate is what would be deployed in the reference's place.
func CheckWhole(reference, candidate *graph.Model, val *dataset.Dataset, opts Options) (WholeResult, error) {
	if ok, reason := IOCompatible(reference, candidate); !ok {
		return WholeResult{Compatible: false, Reason: reason}, nil
	}
	refExec, err := nn.NewExecutor(reference)
	if err != nil {
		return WholeResult{}, fmt.Errorf("equiv: reference: %w", err)
	}
	candExec, err := nn.NewExecutor(candidate)
	if err != nil {
		return WholeResult{}, fmt.Errorf("equiv: candidate: %w", err)
	}
	// Empirical QoR difference: with ground-truth labels, the accuracy
	// gap; without labels, classification pairs use the prediction
	// disagreement ratio — the "probability of producing the same
	// results" the paper's semantic correlation is defined by — and
	// regression pairs fall back to mean output distance.
	var emp float64
	if val.Labels == nil && reference.Task == graph.TaskClassification {
		emp, err = dataset.DisagreementRatio(refExec, candExec, val)
	} else {
		emp, err = dataset.QoRDifference(refExec, candExec, val)
	}
	if err != nil {
		return WholeResult{}, fmt.Errorf("equiv: measuring QoR difference: %w", err)
	}
	res := WholeResult{Compatible: true, EmpiricalDiff: emp}
	if opts.Bound == BoundOn {
		gb, err := GeneralizationBound(candidate, val.Len(), opts.gamma())
		if err != nil {
			return WholeResult{}, fmt.Errorf("equiv: generalization bound: %w", err)
		}
		res.GeneralizationBound = gb
	}
	res.BoundedDiff = res.EmpiricalDiff + res.GeneralizationBound
	if res.BoundedDiff > 1 {
		res.BoundedDiff = 1
	}
	res.Equivalent = res.BoundedDiff <= opts.Epsilon
	return res, nil
}

// IOCompatible performs the input/output layer check of §4.1. It returns
// false with a human-readable reason when the models cannot capture the
// same task semantics.
func IOCompatible(a, b *graph.Model) (bool, string) {
	// Input check: strict shape comparison unless preprocessing is
	// declared (then the preprocessor identity is authoritative).
	switch {
	case a.Preprocessor != "" && b.Preprocessor != "":
		if a.Preprocessor != b.Preprocessor {
			return false, fmt.Sprintf("different preprocessors %q vs %q", a.Preprocessor, b.Preprocessor)
		}
	case a.Preprocessor == "" && b.Preprocessor == "":
		if !a.InputShape.Equal(b.InputShape) {
			return false, fmt.Sprintf("input shapes %v vs %v", a.InputShape, b.InputShape)
		}
	default:
		// Exactly one declares preprocessing; the raw source may
		// still be shared, so do not reject on shape.
	}

	outA, errA := a.OutputShape()
	outB, errB := b.OutputShape()
	if errA != nil || errB != nil {
		return false, "output shape unavailable"
	}
	if a.Task != b.Task {
		return false, fmt.Sprintf("task kinds %s vs %s", a.Task, b.Task)
	}
	if a.Task == graph.TaskClassification && len(a.OutputLabels) > 0 && len(b.OutputLabels) > 0 {
		// Finer-grained syntax check (§4.1): per-dimension labels.
		if len(a.OutputLabels) != len(b.OutputLabels) {
			return false, fmt.Sprintf("output syntax sizes %d vs %d", len(a.OutputLabels), len(b.OutputLabels))
		}
		for i := range a.OutputLabels {
			if a.OutputLabels[i] != b.OutputLabels[i] {
				return false, fmt.Sprintf("output syntax differs at dim %d: %q vs %q",
					i, a.OutputLabels[i], b.OutputLabels[i])
			}
		}
		return true, ""
	}
	if !outA.Equal(outB) {
		return false, fmt.Sprintf("output shapes %v vs %v", outA, outB)
	}
	return true, ""
}
