package equiv

import (
	"fmt"
	"sort"

	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

func newExecutor(m *graph.Model) (*nn.Executor, error) { return nn.NewExecutor(m) }

// ReplacementResult reports the outcome of the segment-replacement
// assessment of §4.2.
type ReplacementResult struct {
	// Kept are the segment pairs that survived step (iii) — replacing
	// all of them keeps the QoR difference within epsilon.
	Kept []SegmentPair
	// Bounds are the propagated output-difference bounds for each kept
	// pair, index-aligned with Kept.
	Bounds []float64
	// QoRDiff is the estimated quality degradation when every kept
	// segment is replaced (fraction of changed predictions for
	// classification, mean relative output distance otherwise).
	QoRDiff float64
	// Equivalent reports QoRDiff <= epsilon with at least one segment
	// kept.
	Equivalent bool
}

// Level converts the result into a functional-equivalence level for the
// semantic index: 1 - QoRDiff when any segment survived, 0 otherwise.
func (r ReplacementResult) Level() float64 {
	if len(r.Kept) == 0 {
		return 0
	}
	l := 1 - r.QoRDiff
	if l < 0 {
		return 0
	}
	return l
}

// AssessReplacement estimates the quality impact of replacing segments of
// model M (the A side of every pair) with their structural twins from
// another model (the B side), implementing steps (i)–(iii) of §4.2:
//
//	(i)   probe M with random inputs and record unperturbed outputs;
//	(ii)  emulate replacing each segment by perturbing its output with
//	      Gaussian noise scaled to the propagated difference bound — the
//	      worst case for completely unknown error distributions;
//	(iii) if the resulting QoR difference exceeds epsilon, drop segments
//	      in order of increasing computational complexity and retry.
func AssessReplacement(m *graph.Model, pairs []SegmentPair, opts Options) (ReplacementResult, error) {
	if len(pairs) == 0 {
		return ReplacementResult{}, nil
	}
	for i, p := range pairs {
		if p.A.Model != m {
			return ReplacementResult{}, fmt.Errorf("equiv: pair %d A-side is not the assessed model", i)
		}
	}
	exec, err := newExecutor(m)
	if err != nil {
		return ReplacementResult{}, err
	}

	// Propagated bound per segment (weights-only difference: the twin
	// receives the same input, so the initial difference is zero).
	bounds := make([]float64, len(pairs))
	for i, p := range pairs {
		inNorm, err := SegmentInputNorm(p.A, opts.probes(), opts.Seed+uint64(i))
		if err != nil {
			return ReplacementResult{}, err
		}
		b, err := PropagateBound(p, 0, inNorm)
		if err != nil {
			return ReplacementResult{}, err
		}
		bounds[i] = b
	}

	// Step (i): probe inputs and unperturbed outputs.
	rng := tensor.NewRNG(opts.Seed + 0x9e37)
	probes := make([]*tensor.Tensor, opts.probes())
	baseline := make([]*tensor.Tensor, len(probes))
	for i := range probes {
		x := tensor.New(m.InputShape...)
		rng.FillNormal(x, 0, 1)
		probes[i] = x
		out, err := exec.Forward(x)
		if err != nil {
			return ReplacementResult{}, err
		}
		baseline[i] = out
	}

	// Candidate order: step (iii) removes cheapest segments first, so
	// iterate subsets from "all" downward dropping by ascending FLOPs.
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return pairs[idx[a]].A.FLOPs() < pairs[idx[b]].A.FLOPs()
	})

	active := append([]int(nil), idx...)
	for {
		qor, err := replacementQoR(exec, m, pairs, bounds, active, probes, baseline, rng)
		if err != nil {
			return ReplacementResult{}, err
		}
		if qor <= opts.Epsilon || len(active) == 0 {
			res := ReplacementResult{QoRDiff: qor}
			for _, i := range active {
				res.Kept = append(res.Kept, pairs[i])
				res.Bounds = append(res.Bounds, bounds[i])
			}
			res.Equivalent = len(res.Kept) > 0 && qor <= opts.Epsilon
			return res, nil
		}
		active = active[1:] // drop the cheapest remaining segment
	}
}

// replacementQoR executes step (ii) for one subset of segments.
func replacementQoR(exec *nn.Executor, m *graph.Model, pairs []SegmentPair, bounds []float64,
	active []int, probes, baseline []*tensor.Tensor, rng *tensor.RNG) (float64, error) {
	if len(active) == 0 {
		return 0, nil
	}
	classification := m.Task == graph.TaskClassification
	var changed int
	var relDist float64
	for pi, x := range probes {
		acts, err := exec.ForwardCapture(x)
		if err != nil {
			return 0, err
		}
		pinned := make(map[string]*tensor.Tensor, len(active))
		for _, si := range active {
			last := pairs[si].A.Last()
			act := acts[last]
			if act == nil {
				return 0, fmt.Errorf("equiv: missing activation for %q", last)
			}
			noise := tensor.New(act.Shape()...)
			rng.FillNormal(noise, 0, 1)
			if n := noise.L2Norm(); n > 0 {
				noise = noise.Scale(bounds[si] / n)
			}
			pinned[last] = act.Add(noise)
		}
		out, err := exec.ForwardFrom(x, pinned)
		if err != nil {
			return 0, err
		}
		if classification {
			if out.ArgMax() != baseline[pi].ArgMax() {
				changed++
			}
		} else {
			d := tensor.L2Distance(out, baseline[pi])
			if n := baseline[pi].L2Norm(); n > 0 {
				d /= n
			}
			relDist += d
		}
	}
	if classification {
		return float64(changed) / float64(len(probes)), nil
	}
	qor := relDist / float64(len(probes))
	if qor > 1 {
		qor = 1
	}
	return qor, nil
}

// SynthesizeReplacement builds the "twin" model M′ of §4.2: model m with
// segment pair.A's weights replaced by pair.B's. The structure is
// unchanged; only parameters move. It is used to materialize synthesized
// candidates the semantic index advertises.
func SynthesizeReplacement(m *graph.Model, pair SegmentPair) (*graph.Model, error) {
	if pair.A.Model != m {
		return nil, fmt.Errorf("equiv: pair A-side is not the source model")
	}
	if pair.A.Len() != pair.B.Len() {
		return nil, fmt.Errorf("equiv: segment lengths differ")
	}
	twin := m.Clone()
	twin.Name = m.Name + "+seg:" + pair.B.Model.Name
	for i, name := range pair.A.Layers {
		dst := twin.Layer(name)
		src := pair.B.Model.Layer(pair.B.Layers[i])
		if dst == nil || src == nil {
			return nil, fmt.Errorf("equiv: segment layer missing during synthesis")
		}
		if dst.Op != src.Op {
			return nil, fmt.Errorf("equiv: ops differ at %q: %s vs %s", name, dst.Op, src.Op)
		}
		for pname, p := range src.Params {
			d := dst.Param(pname)
			if d == nil || !d.Shape().Equal(p.Shape()) {
				return nil, fmt.Errorf("equiv: param %q incompatible at %q", pname, name)
			}
			dst.Params[pname] = p.Clone()
		}
	}
	if err := twin.Validate(); err != nil {
		return nil, fmt.Errorf("equiv: synthesized twin invalid: %w", err)
	}
	return twin, nil
}
