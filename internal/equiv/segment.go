package equiv

import (
	"fmt"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Segment is a consecutive chain of layers inside one model, in execution
// order. Segments are the unit of partial equivalence (§4.2).
type Segment struct {
	Model  *graph.Model
	Layers []string
}

// Len returns the number of layers in the segment.
func (s Segment) Len() int { return len(s.Layers) }

// First and Last return the boundary layer names.
func (s Segment) First() string { return s.Layers[0] }
func (s Segment) Last() string  { return s.Layers[len(s.Layers)-1] }

// FLOPs returns the segment's computational complexity — the ordering key
// for step (iii) of the replacement assessment, which drops segments in
// order of increasing complexity.
func (s Segment) FLOPs() int64 {
	shapes, err := s.Model.ShapeOf()
	if err != nil {
		return 0
	}
	var total int64
	for _, name := range s.Layers {
		l := s.Model.Layer(name)
		if l == nil {
			continue
		}
		// Cheap proxy: parameters dominate linear-layer cost; for
		// parameterless ops count output elements.
		if pc := l.ParamCount(); pc > 0 {
			total += 2 * pc
		} else {
			total += int64(shapes[name].NumElements())
		}
	}
	return total
}

// SegmentPair couples two structurally identical segments from different
// models — candidates for interchange.
type SegmentPair struct {
	A, B Segment
}

// layerSignature describes a layer structurally: operator, attributes, and
// output shape. Two layers with equal signatures are "structurally
// identical" and may differ only in weights.
type layerSignature string

func signatureOf(l *graph.Layer, outShape tensor.Shape) layerSignature {
	return layerSignature(fmt.Sprintf("%s|%+v|%v", l.Op, l.Attrs, outShape))
}

// ExtractChains decomposes the model DAG into its maximal operator
// sequences — the recursive extraction of Figure 4. Walking the full
// topological order and breaking chains at every fan-out or fan-in yields
// the same set of sequences as extracting the top-level sequence and then
// recursing into each parallel branch: every branch becomes its own chain.
func ExtractChains(m *graph.Model) ([][]*graph.Layer, error) {
	order, err := m.TopoSort()
	if err != nil {
		return nil, err
	}
	consumers := make(map[string]int, len(order))
	for _, l := range order {
		for _, in := range l.Inputs {
			consumers[in]++
		}
	}
	var chains [][]*graph.Layer
	var current []*graph.Layer
	flush := func() {
		if len(current) > 0 {
			chains = append(chains, current)
			current = nil
		}
	}
	prevName := ""
	for _, l := range order {
		// Multi-source combination layers are the fan-in points of
		// Figure 4's decomposition: they form singleton chains so no
		// operator sequence spans a merge.
		if l.Op.Class() == graph.ClassMultiSource {
			flush()
			chains = append(chains, []*graph.Layer{l})
			prevName = l.Name
			continue
		}
		continues := len(current) > 0 &&
			len(l.Inputs) == 1 &&
			l.Inputs[0] == prevName &&
			consumers[prevName] == 1
		if !continues {
			flush()
		}
		current = append(current, l)
		prevName = l.Name
	}
	flush()
	return chains, nil
}

// CommonSegments finds the longest common operator sequences between two
// models (§4.2): for every pair of chains, the longest common contiguous
// run of structurally identical layers, O(N²) per pair. Only runs of at
// least minLen layers are reported; pass 0 for the default of 2.
// Overlapping matches within a model are pruned greedily, longest first.
func CommonSegments(a, b *graph.Model, minLen int) ([]SegmentPair, error) {
	if minLen <= 0 {
		minLen = 2
	}
	shapesA, err := a.ShapeOf()
	if err != nil {
		return nil, fmt.Errorf("equiv: %w", err)
	}
	shapesB, err := b.ShapeOf()
	if err != nil {
		return nil, fmt.Errorf("equiv: %w", err)
	}
	chainsA, err := ExtractChains(a)
	if err != nil {
		return nil, err
	}
	chainsB, err := ExtractChains(b)
	if err != nil {
		return nil, err
	}

	sigs := func(chain []*graph.Layer, shapes map[string]tensor.Shape) []layerSignature {
		out := make([]layerSignature, len(chain))
		for i, l := range chain {
			out[i] = signatureOf(l, shapes[l.Name])
		}
		return out
	}

	type match struct {
		pair SegmentPair
		n    int
	}
	var matches []match
	for _, ca := range chainsA {
		sa := sigs(ca, shapesA)
		for _, cb := range chainsB {
			sb := sigs(cb, shapesB)
			ai, bi, n := longestCommonRun(sa, sb)
			if n < minLen {
				continue
			}
			pa := make([]string, n)
			pb := make([]string, n)
			for k := 0; k < n; k++ {
				pa[k] = ca[ai+k].Name
				pb[k] = cb[bi+k].Name
			}
			matches = append(matches, match{
				pair: SegmentPair{
					A: Segment{Model: a, Layers: pa},
					B: Segment{Model: b, Layers: pb},
				},
				n: n,
			})
		}
	}

	// Greedy longest-first selection of non-overlapping matches.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j].n > matches[j-1].n; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	usedA := make(map[string]bool)
	usedB := make(map[string]bool)
	var out []SegmentPair
	for _, m := range matches {
		overlap := false
		for _, n := range m.pair.A.Layers {
			if usedA[n] {
				overlap = true
				break
			}
		}
		for _, n := range m.pair.B.Layers {
			if usedB[n] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, n := range m.pair.A.Layers {
			usedA[n] = true
		}
		for _, n := range m.pair.B.Layers {
			usedB[n] = true
		}
		out = append(out, m.pair)
	}
	return out, nil
}

// longestCommonRun returns the start indices and length of the longest
// common contiguous run between two signature sequences (classic O(N²)
// dynamic program).
func longestCommonRun(a, b []layerSignature) (ai, bi, n int) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > n {
					n = cur[j]
					ai = i - n
					bi = j - n
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return ai, bi, n
}
