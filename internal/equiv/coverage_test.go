package equiv

import (
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Tests for the regression-model and option-default paths.

func regressionNet(t testing.TB, name string, seed uint64, out int) *graph.Model {
	t.Helper()
	b := graph.NewBuilder(name, graph.TaskRegression, tensor.Shape{6}, tensor.NewRNG(seed))
	b.Dense(10)
	b.Tanh()
	b.Dense(out)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckWholeRegressionModels(t *testing.T) {
	a := regressionNet(t, "reg-a", 1, 4)
	bm := regressionNet(t, "reg-b", 2, 4)
	val := &dataset.Dataset{
		Name:   "reg-val",
		Inputs: dataset.RandomImages(40, a.InputShape, 3),
	}
	res, err := CheckWhole(a, bm, val, Options{Epsilon: 0.5, Bound: BoundOn})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible {
		t.Fatalf("same-shape regression models incompatible: %+v", res)
	}
	// Regression pairs use mean output distance; random nets differ.
	if res.EmpiricalDiff <= 0 {
		t.Fatal("regression QoR difference should be positive")
	}
	// The regression output-norm estimate probes the model (no Softmax
	// cap), exercising outputNormEstimate's main path.
	gb, err := GeneralizationBound(a, 100, 0) // gamma=0 → default 1
	if err != nil {
		t.Fatal(err)
	}
	if gb <= 0 {
		t.Fatalf("regression generalization bound = %g", gb)
	}
}

func TestGeneralizationBoundNoLinearLayers(t *testing.T) {
	b := graph.NewBuilder("nolin", graph.TaskRegression, tensor.Shape{4}, nil)
	b.ReLU()
	b.Tanh()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	gb, err := GeneralizationBound(m, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gb != 0 {
		t.Fatalf("model without learned capacity should bound 0, got %g", gb)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.gamma() != 1 {
		t.Fatalf("default gamma = %g", o.gamma())
	}
	if o.probes() != 16 {
		t.Fatalf("default probes = %d", o.probes())
	}
	o.Gamma, o.ProbeCount = 2, 5
	if o.gamma() != 2 || o.probes() != 5 {
		t.Fatal("explicit options ignored")
	}
}

func TestPropagateBoundErrorPaths(t *testing.T) {
	a := regressionNet(t, "pa", 1, 4)
	bm := regressionNet(t, "pb", 2, 4)
	// Length mismatch.
	bad := SegmentPair{
		A: Segment{Model: a, Layers: []string{"Dense_1", "Tanh_2"}},
		B: Segment{Model: bm, Layers: []string{"Dense_1"}},
	}
	if _, err := PropagateBound(bad, 0, 1); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	// Missing layer.
	ghost := SegmentPair{
		A: Segment{Model: a, Layers: []string{"ghost"}},
		B: Segment{Model: bm, Layers: []string{"Dense_1"}},
	}
	if _, err := PropagateBound(ghost, 0, 1); err == nil {
		t.Fatal("expected missing-layer error")
	}
	// Op mismatch.
	mixed := SegmentPair{
		A: Segment{Model: a, Layers: []string{"Dense_1"}},
		B: Segment{Model: bm, Layers: []string{"Tanh_2"}},
	}
	if _, err := PropagateBound(mixed, 0, 1); err == nil {
		t.Fatal("expected op-mismatch error")
	}
	// Zero input norm defaults to 1 rather than dividing by zero.
	ok := SegmentPair{
		A: Segment{Model: a, Layers: []string{"Dense_1"}},
		B: Segment{Model: bm, Layers: []string{"Dense_1"}},
	}
	if _, err := PropagateBound(ok, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestReplacementResultLevel(t *testing.T) {
	if (ReplacementResult{}).Level() != 0 {
		t.Fatal("empty result level should be 0")
	}
	r := ReplacementResult{Kept: make([]SegmentPair, 1), QoRDiff: 0.3}
	if r.Level() != 0.7 {
		t.Fatalf("level = %g", r.Level())
	}
	r.QoRDiff = 2
	if r.Level() != 0 {
		t.Fatalf("overflowed level = %g", r.Level())
	}
}

func TestAssessReplacementRegressionQoR(t *testing.T) {
	// Regression models exercise the relative-distance branch of the
	// replacement QoR instead of the argmax branch.
	a := regressionNet(t, "ra", 5, 4)
	twin := a.Clone()
	twin.Name = "ra-twin"
	w := twin.Layer("Dense_1").Param("W")
	for i := range w.Data() {
		w.Data()[i] += 0.02
	}
	pairs, err := CommonSegments(a, twin, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	res, err := AssessReplacement(a, pairs, Options{Epsilon: 0.9, Seed: 3, ProbeCount: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.QoRDiff < 0 || res.QoRDiff > 1 {
		t.Fatalf("regression QoR diff out of range: %g", res.QoRDiff)
	}
}

func TestWholeResultScoreIncompatible(t *testing.T) {
	r := WholeResult{Compatible: false}
	if r.Score() != 0 {
		t.Fatal("incompatible score must be 0")
	}
	r = WholeResult{Compatible: true, BoundedDiff: 1.4}
	if r.Score() != 0 {
		t.Fatal("score floors at 0")
	}
}
