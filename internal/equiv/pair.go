package equiv

import (
	"fmt"

	"sommelier/internal/dataset"
	"sommelier/internal/graph"
)

// This file holds the pure pairwise entry points the indexing pipeline
// is built on. Every input is explicit — models, probe datasets, and
// seeded options — so calls are deterministic and safe to fan out
// across worker goroutines: no engine state, no shared RNG, no caches.

// CheckPair measures whole-model equivalence in both directions of a
// model pair (§4.3: the relation is asymmetric). fwd assesses cand
// standing in for ref, probed with ref's validation data; rev assesses
// ref standing in for cand, probed with cand's validation data.
func CheckPair(ref, cand *graph.Model, refVal, candVal *dataset.Dataset, opts Options) (fwd, rev WholeResult, err error) {
	fwd, err = CheckWhole(ref, cand, refVal, opts)
	if err != nil {
		return WholeResult{}, WholeResult{}, err
	}
	rev, err = CheckWhole(cand, ref, candVal, opts)
	if err != nil {
		return WholeResult{}, WholeResult{}, err
	}
	return fwd, rev, nil
}

// SwapCandidate summarizes a viable segment transplant: the bounded
// equivalence level of the synthesized model and a label for the
// replaced run.
type SwapCandidate struct {
	Level   float64
	Segment string
}

// AssessSwapBoth finds the common segments of a and b (§4.2) and
// assesses the transplant in both directions: b's segment into a
// (intoA) and a's segment into b (intoB). A nil result means no viable
// transplant in that direction. Failures degrade to nil rather than
// erroring — segment synthesis is a recall enhancement, never a reason
// to fail an insertion.
func AssessSwapBoth(a, b *graph.Model, minLen int, opts Options) (intoA, intoB *SwapCandidate) {
	if minLen <= 0 {
		minLen = 3
	}
	pairs, err := CommonSegments(a, b, minLen)
	if err != nil || len(pairs) == 0 {
		return nil, nil
	}
	if r, err := AssessReplacement(a, pairs, opts); err == nil && len(r.Kept) > 0 {
		intoA = &SwapCandidate{Level: r.Level(), Segment: SegmentLabel(r.Kept)}
	}
	// Reverse direction: segments of a transplanted into b.
	rev := make([]SegmentPair, len(pairs))
	for i, p := range pairs {
		rev[i] = SegmentPair{A: p.B, B: p.A}
	}
	if r, err := AssessReplacement(b, rev, opts); err == nil && len(r.Kept) > 0 {
		intoB = &SwapCandidate{Level: r.Level(), Segment: SegmentLabel(r.Kept)}
	}
	return intoA, intoB
}

// SegmentLabel renders a human-readable label for a kept segment set:
// the first run's endpoints plus a count of any further runs.
func SegmentLabel(pairs []SegmentPair) string {
	if len(pairs) == 0 {
		return ""
	}
	s := pairs[0].A
	label := fmt.Sprintf("%s..%s", s.First(), s.Last())
	if len(pairs) > 1 {
		label += fmt.Sprintf("+%d", len(pairs)-1)
	}
	return label
}
