package equiv

import (
	"fmt"
	"math"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// PropagateBound computes the worst-case L2 difference between the
// outputs of two structurally identical segments when segment B's weights
// stand in for segment A's, following the inductive layer-wise analysis
// of §4.2.
//
// State per layer i: Δᵢ, an upper bound on the output difference, and Xᵢ,
// an upper bound on the activation norm. The base case starts from the
// segment input (inputDiff, inputNorm); each operator class transforms
// the state:
//
//   - linear:      Δ' ≤ σmax(W)·Δ + σmax(ΔW)·X ;  X' = σmax(W)·X + ‖b‖
//   - activations: |act(x)| ≤ |x| ⇒ Δ' = Δ, X' = X (tanh/sigmoid/softmax
//     additionally cap X' by the co-domain size)
//   - pooling:     non-expansive in L2 ⇒ Δ' ≤ Δ, X' ≤ X
//   - normalize:   Δ' = Δ / X (the paper's ‖ΔX‖/‖X‖ scaling), X' set to
//     the normalized vector's norm bound
//   - structural:  pass-through
//
// Multi-source combination layers never appear inside a chain (chains
// break at fan-in), so they are rejected here.
func PropagateBound(pair SegmentPair, inputDiff, inputNorm float64) (float64, error) {
	if pair.A.Len() != pair.B.Len() {
		return 0, fmt.Errorf("equiv: segment lengths differ: %d vs %d", pair.A.Len(), pair.B.Len())
	}
	if inputNorm <= 0 {
		inputNorm = 1
	}
	shapesA, err := pair.A.Model.ShapeOf()
	if err != nil {
		return 0, err
	}
	diff, norm := inputDiff, inputNorm
	for i := range pair.A.Layers {
		la := pair.A.Model.Layer(pair.A.Layers[i])
		lb := pair.B.Model.Layer(pair.B.Layers[i])
		if la == nil || lb == nil {
			return 0, fmt.Errorf("equiv: segment references missing layer")
		}
		if la.Op != lb.Op {
			return 0, fmt.Errorf("equiv: segment layer %d ops differ: %s vs %s", i, la.Op, lb.Op)
		}
		diff, norm, err = propagateLayer(la, lb, shapesA[la.Name], diff, norm)
		if err != nil {
			return 0, err
		}
	}
	return diff, nil
}

func propagateLayer(la, lb *graph.Layer, outShape tensor.Shape, diff, norm float64) (float64, float64, error) {
	switch la.Op {
	case graph.OpDense, graph.OpConv2D, graph.OpEmbedding:
		wa, wb := la.Param("W"), lb.Param("W")
		if wa == nil || wb == nil {
			return 0, 0, fmt.Errorf("equiv: linear layer %q missing weights", la.Name)
		}
		if !wa.Shape().Equal(wb.Shape()) {
			return 0, 0, fmt.Errorf("equiv: weight shapes differ at %q: %v vs %v",
				la.Name, wa.Shape(), wb.Shape())
		}
		sigmaW := tensor.SpectralNorm(wa, 30)
		sigmaDW := tensor.SpectralNorm(wa.Sub(wb), 30)
		newDiff := sigmaW*diff + sigmaDW*norm
		newNorm := sigmaW * norm
		if ba := la.Param("B"); ba != nil {
			newNorm += ba.L2Norm()
			if bb := lb.Param("B"); bb != nil {
				newDiff += ba.Sub(bb).L2Norm()
			}
		}
		return newDiff, newNorm, nil

	case graph.OpReLU, graph.OpLeakyReLU, graph.OpMaxPool, graph.OpMeanPool,
		graph.OpGlobalAvgPool:
		// Non-expansive: |act(x)| ≤ |x| and pooling shrinks L2 mass.
		return diff, norm, nil

	case graph.OpTanh, graph.OpSigmoid:
		// 1-Lipschitz (tanh) or 1/4-Lipschitz (sigmoid); output norm is
		// capped by the co-domain: every element in (-1,1) / (0,1).
		cap := math.Sqrt(float64(outShape.NumElements()))
		lip := 1.0
		if la.Op == graph.OpSigmoid {
			lip = 0.25
		}
		return lip * diff, math.Min(norm, cap), nil

	case graph.OpSoftmax:
		// Softmax is 1-Lipschitz in L2 and outputs a probability
		// vector, so the norm is at most 1.
		return diff, math.Min(norm, 1), nil

	case graph.OpBatchNorm:
		// Affine per-channel scaling: both the difference and the norm
		// scale by the largest |gamma| / sqrt(var + eps).
		gamma, variance := la.Param("Gamma"), la.Param("Var")
		scale := 1.0
		if gamma != nil && variance != nil {
			eps := la.Attrs.Eps
			if eps == 0 {
				eps = 1e-5
			}
			for i, g := range gamma.Data() {
				s := math.Abs(g) / math.Sqrt(variance.Data()[i]+eps)
				if s > scale {
					scale = s
				}
			}
		}
		// Weight differences between the two BatchNorm variants add a
		// secondary error term proportional to the norm.
		var paramDiff float64
		for _, name := range []string{"Gamma", "Beta", "Mean", "Var"} {
			pa, pb := la.Param(name), lb.Param(name)
			if pa != nil && pb != nil {
				paramDiff += pa.Sub(pb).L2Norm()
			}
		}
		return scale*diff + paramDiff, scale * norm, nil

	case graph.OpLayerNorm:
		// The paper's normalization rule: the output difference is the
		// input difference scaled by 1/‖X‖; the normalized vector has
		// norm √n (times any affine gamma).
		n := math.Sqrt(float64(outShape.NumElements()))
		newDiff := diff
		if norm > 0 {
			newDiff = diff / norm * n
		}
		newNorm := n
		if gamma := la.Param("Gamma"); gamma != nil {
			g := gamma.Data()
			maxG := 0.0
			for _, v := range g {
				if a := math.Abs(v); a > maxG {
					maxG = a
				}
			}
			newDiff *= maxG
			newNorm *= maxG
			if gb := lb.Param("Gamma"); gb != nil {
				newDiff += gamma.Sub(gb).L2Norm()
			}
		}
		return newDiff, newNorm, nil

	case graph.OpFlatten, graph.OpIdentity, graph.OpDropout, graph.OpInput:
		return diff, norm, nil

	case graph.OpAdd, graph.OpMul, graph.OpConcat:
		return 0, 0, fmt.Errorf("equiv: multi-source op %s cannot appear inside a segment chain", la.Op)

	default:
		return 0, 0, fmt.Errorf("equiv: no propagation rule for op %s", la.Op)
	}
}

// SegmentInputNorm estimates the activation norm arriving at a segment by
// probing the model with random inputs and measuring the activation
// feeding the segment's first layer. This grounds the X₀ of the
// layer-wise induction.
func SegmentInputNorm(seg Segment, probes int, seed uint64) (float64, error) {
	if probes <= 0 {
		probes = 8
	}
	exec, err := newExecutor(seg.Model)
	if err != nil {
		return 0, err
	}
	first := seg.Model.Layer(seg.First())
	if first == nil {
		return 0, fmt.Errorf("equiv: segment first layer %q missing", seg.First())
	}
	rng := tensor.NewRNG(seed)
	max := 0.0
	for i := 0; i < probes; i++ {
		x := tensor.New(seg.Model.InputShape...)
		rng.FillNormal(x, 0, 1)
		acts, err := exec.ForwardCapture(x)
		if err != nil {
			return 0, err
		}
		var inNorm float64
		if len(first.Inputs) == 0 {
			inNorm = x.L2Norm()
		} else {
			for _, name := range first.Inputs {
				if a := acts[name]; a != nil {
					inNorm += a.L2Norm()
				}
			}
		}
		if inNorm > max {
			max = inNorm
		}
	}
	return max, nil
}
