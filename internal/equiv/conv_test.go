package equiv

import (
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

// buildCNN returns a small convolutional classifier.
func buildCNN(t testing.TB, name string, seed uint64, channels int) *graph.Model {
	t.Helper()
	b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{3, 8, 8}, tensor.NewRNG(seed))
	b.Conv(channels, 3, 1, 1)
	b.ReLU()
	b.MaxPool(2, 2)
	b.Conv(channels*2, 3, 1, 1)
	b.ReLU()
	b.GlobalAvgPool()
	b.Dense(5)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckWholeConvModels(t *testing.T) {
	a := buildCNN(t, "cnn-a", 1, 4)
	twin := a.Clone()
	twin.Name = "cnn-twin"
	val := &dataset.Dataset{
		Name:   "conv-val",
		Inputs: dataset.RandomImages(60, a.InputShape, 2),
	}
	res, err := CheckWhole(a, twin, val, Options{Epsilon: 0.05, Bound: BoundOff})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || res.EmpiricalDiff != 0 {
		t.Fatalf("identical CNNs not equivalent: %+v", res)
	}
	// The generalization bound must handle Conv weight matrices too.
	gb, err := GeneralizationBound(a, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gb <= 0 || gb > 1 {
		t.Fatalf("conv generalization bound = %g", gb)
	}
}

func TestCheckWholeConvDifferentChannels(t *testing.T) {
	a := buildCNN(t, "cnn-a", 1, 4)
	b := buildCNN(t, "cnn-b", 2, 8)
	val := &dataset.Dataset{
		Name:   "conv-val",
		Inputs: dataset.RandomImages(40, a.InputShape, 3),
	}
	// Same IO contract despite different internals: compatible, scored
	// by disagreement.
	res, err := CheckWhole(a, b, val, Options{Epsilon: 0.05, Bound: BoundOff})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible {
		t.Fatalf("same-IO CNNs should be comparable: %+v", res)
	}
	if res.EmpiricalDiff <= 0 {
		t.Fatal("random CNNs should disagree somewhere")
	}
}

func TestCommonSegmentsConvTrunk(t *testing.T) {
	a := buildCNN(t, "cnn-a", 1, 4)
	// A structural twin with perturbed second conv: the first conv
	// block must match as a segment.
	b := a.Clone()
	b.Name = "cnn-b"
	w := b.Layer("Conv2D_4").Param("W")
	for i := range w.Data() {
		w.Data()[i] += 0.05
	}
	pairs, err := CommonSegments(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("conv trunk not matched")
	}
	// The identical prefix should yield a near-zero propagated bound...
	var prefix *SegmentPair
	for i := range pairs {
		for _, name := range pairs[i].A.Layers {
			if name == "Conv2D_1" {
				prefix = &pairs[i]
			}
		}
	}
	if prefix == nil {
		t.Fatalf("no segment containing the first conv: %+v", pairs)
	}
	if contains(prefix.A.Layers, "Conv2D_4") {
		// The perturbed conv sits inside the same chain, so the bound
		// must be positive.
		bound, err := PropagateBound(*prefix, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		if bound <= 0 {
			t.Fatalf("perturbed conv chain bound = %g", bound)
		}
		return
	}
	bound, err := PropagateBound(*prefix, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if bound > 1e-9 {
		t.Fatalf("identical conv prefix bound = %g", bound)
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func TestPropagateBoundConvSoundness(t *testing.T) {
	// The propagated bound must dominate actual activation differences
	// for conv chains, exactly as for dense chains.
	a := buildCNN(t, "cnn-a", 3, 4)
	b := a.Clone()
	b.Name = "cnn-b"
	for _, lname := range []string{"Conv2D_1", "Conv2D_4"} {
		w := b.Layer(lname).Param("W")
		rng := tensor.NewRNG(9)
		for i, v := range w.Data() {
			w.Data()[i] = v + 0.03*rng.NormFloat64()
		}
	}
	pairs, err := CommonSegments(a, b, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v (%d pairs)", err, len(pairs))
	}
	execA, err := nn.NewExecutor(a)
	if err != nil {
		t.Fatal(err)
	}
	execB, err := nn.NewExecutor(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range pairs {
		inNorm, err := SegmentInputNorm(pair.A, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := PropagateBound(pair, 0, inNorm)
		if err != nil {
			t.Fatal(err)
		}
		rng := tensor.NewRNG(5)
		for i := 0; i < 6; i++ {
			x := tensor.New(3, 8, 8)
			rng.FillNormal(x, 0, 1)
			actsA, err := execA.ForwardCapture(x)
			if err != nil {
				t.Fatal(err)
			}
			actsB, err := execB.ForwardCapture(x)
			if err != nil {
				t.Fatal(err)
			}
			last := pair.A.Last()
			actual := tensor.L2Distance(actsA[last], actsB[last])
			if actual > bound*1.001 {
				t.Fatalf("segment %v: bound %g < actual %g", pair.A.Layers, bound, actual)
			}
		}
	}
}

func TestBatchNormSegmentPropagation(t *testing.T) {
	// BatchNorm inside a chain: differing Gamma parameters must yield a
	// positive, sound bound.
	build := func(name string, gammaShift float64) *graph.Model {
		b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{6}, tensor.NewRNG(11))
		b.Dense(8)
		b.BatchNorm()
		b.ReLU()
		b.Dense(3)
		b.Softmax()
		m, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if gammaShift != 0 {
			g := m.Layer("BatchNorm_2").Param("Gamma")
			for i := range g.Data() {
				g.Data()[i] += gammaShift
			}
		}
		return m
	}
	a := build("bn-a", 0)
	b := build("bn-b", 0.2)
	pairs, err := CommonSegments(a, b, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	bound, err := PropagateBound(pairs[0], 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatalf("gamma shift should produce positive bound, got %g", bound)
	}
	execA, err := nn.NewExecutor(a)
	if err != nil {
		t.Fatal(err)
	}
	execB, err := nn.NewExecutor(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(13)
	last := pairs[0].A.Last()
	for i := 0; i < 10; i++ {
		x := tensor.New(6)
		rng.FillNormal(x, 0, 1)
		actsA, _ := execA.ForwardCapture(x)
		actsB, _ := execB.ForwardCapture(x)
		if d := tensor.L2Distance(actsA[last], actsB[last]); d > bound*1.001 {
			t.Fatalf("batchnorm bound %g < actual %g", bound, d)
		}
	}
}

func TestLayerNormSegmentPropagation(t *testing.T) {
	build := func(name string, shift float64) *graph.Model {
		b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{6}, tensor.NewRNG(17))
		b.Dense(8)
		b.LayerNorm()
		b.Tanh()
		b.Dense(3)
		b.Softmax()
		m, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if shift != 0 {
			w := m.Layer("Dense_1").Param("W")
			for i := range w.Data() {
				w.Data()[i] += shift
			}
		}
		return m
	}
	a := build("ln-a", 0)
	b := build("ln-b", 0.05)
	pairs, err := CommonSegments(a, b, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	bound, err := PropagateBound(pairs[0], 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatal("layernorm chain with differing weights should bound positive")
	}
}
