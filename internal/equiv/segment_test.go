package equiv

import (
	"math"
	"testing"
	"testing/quick"

	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

// transferPair builds a base model and a transfer variant that shares the
// base's first two Dense blocks verbatim but has a different head.
func transferPair(t testing.TB, headUnits int, perturbFrac float64) (base, variant *graph.Model) {
	t.Helper()
	mk := func(name string, head int, seed uint64) *graph.Model {
		b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{12}, tensor.NewRNG(seed))
		b.Dense(24)
		b.ReLU()
		b.Dense(24)
		b.ReLU()
		b.Dense(head)
		b.Softmax()
		m, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base = mk("base", 5, 1)
	variant = mk("variant", headUnits, 2)
	// Copy the shared trunk weights from base into variant, optionally
	// perturbing them to mimic fine-tuning.
	rng := tensor.NewRNG(77)
	for _, name := range []string{"Dense_1", "Dense_3"} {
		src := base.Layer(name)
		dst := variant.Layer(name)
		for pname, p := range src.Params {
			c := p.Clone()
			if perturbFrac > 0 {
				for i, v := range c.Data() {
					c.Data()[i] = v + perturbFrac*rng.NormFloat64()*math.Abs(v)
				}
			}
			dst.Params[pname] = c
		}
	}
	return base, variant
}

func TestExtractChainsSequential(t *testing.T) {
	b := graph.NewBuilder("seq", graph.TaskClassification, tensor.Shape{8}, tensor.NewRNG(1))
	b.Dense(8)
	b.ReLU()
	b.Dense(4)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	chains, err := ExtractChains(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("sequential model should be one chain, got %d", len(chains))
	}
	if len(chains[0]) != len(m.Layers) {
		t.Fatalf("chain length %d vs %d layers", len(chains[0]), len(m.Layers))
	}
}

func TestExtractChainsBreaksAtBranches(t *testing.T) {
	b := graph.NewBuilder("res", graph.TaskClassification, tensor.Shape{8}, tensor.NewRNG(2))
	b.Dense(8)
	b.Residual(func(b *graph.Builder) {
		b.Dense(8)
		b.ReLU()
	})
	b.Dense(3)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	chains, err := ExtractChains(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) < 3 {
		t.Fatalf("residual model should split into >=3 chains, got %d", len(chains))
	}
	// Every layer appears exactly once across chains.
	seen := make(map[string]int)
	for _, c := range chains {
		for _, l := range c {
			seen[l.Name]++
		}
	}
	for _, l := range m.Layers {
		if seen[l.Name] != 1 {
			t.Fatalf("layer %q appears %d times in chains", l.Name, seen[l.Name])
		}
	}
}

func TestLongestCommonRun(t *testing.T) {
	a := []layerSignature{"x", "A", "B", "C", "y"}
	b := []layerSignature{"A", "B", "C", "z"}
	ai, bi, n := longestCommonRun(a, b)
	if n != 3 || ai != 1 || bi != 0 {
		t.Fatalf("LCR = (%d,%d,%d)", ai, bi, n)
	}
	_, _, n = longestCommonRun(a, []layerSignature{"q"})
	if n != 0 {
		t.Fatalf("no-match LCR = %d", n)
	}
	_, _, n = longestCommonRun(nil, b)
	if n != 0 {
		t.Fatalf("empty LCR = %d", n)
	}
}

func TestCommonSegmentsTransferTrunk(t *testing.T) {
	base, variant := transferPair(t, 7, 0)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("shared trunk not detected")
	}
	best := pairs[0]
	// The shared trunk is input + Dense/ReLU x2 = at least 4 layers.
	if best.A.Len() < 4 {
		t.Fatalf("trunk segment too short: %d layers %v", best.A.Len(), best.A.Layers)
	}
	// Heads differ in width, so the head must not be in the segment.
	for _, name := range best.A.Layers {
		if name == "Dense_5" || name == "Softmax_6" {
			t.Fatalf("head layer %q wrongly matched", name)
		}
	}
}

func TestCommonSegmentsDifferentArchitectures(t *testing.T) {
	b1 := graph.NewBuilder("m1", graph.TaskClassification, tensor.Shape{8}, tensor.NewRNG(1))
	b1.Dense(16)
	b1.Tanh()
	b1.Dense(3)
	b1.Softmax()
	m1, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}
	b2 := graph.NewBuilder("m2", graph.TaskClassification, tensor.Shape{8}, tensor.NewRNG(2))
	b2.Dense(20)
	b2.ReLU()
	b2.Dense(3)
	b2.Softmax()
	m2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := CommonSegments(m1, m2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Widths and activations differ; no >=3 layer structural match
	// should exist beyond the input layer.
	if len(pairs) != 0 {
		t.Fatalf("unexpected segment match: %+v", pairs)
	}
}

func TestPropagateBoundZeroForIdenticalWeights(t *testing.T) {
	base, variant := transferPair(t, 7, 0)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v, %d pairs", err, len(pairs))
	}
	bound, err := PropagateBound(pairs[0], 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if bound > 1e-9 {
		t.Fatalf("identical weights should give ~0 bound, got %g", bound)
	}
}

func TestPropagateBoundGrowsWithPerturbation(t *testing.T) {
	_, v1 := transferPair(t, 7, 0.01)
	base, v2 := transferPair(t, 7, 0.3)
	p1, err := CommonSegments(base, v1, 2)
	if err != nil || len(p1) == 0 {
		t.Fatalf("setup small: %v", err)
	}
	p2, err := CommonSegments(base, v2, 2)
	if err != nil || len(p2) == 0 {
		t.Fatalf("setup large: %v", err)
	}
	b1, err := PropagateBound(p1[0], 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := PropagateBound(p2[0], 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b1 >= b2 {
		t.Fatalf("bound should grow with perturbation: %g vs %g", b1, b2)
	}
	if b1 <= 0 {
		t.Fatalf("perturbed weights should give positive bound, got %g", b1)
	}
}

func TestPropagateBoundIsSound(t *testing.T) {
	// The propagated bound must dominate the actual output difference
	// observed when running both segments on the same inputs.
	base, variant := transferPair(t, 7, 0.1)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	pair := pairs[0]
	inNorm, err := SegmentInputNorm(pair.A, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := PropagateBound(pair, 0, inNorm)
	if err != nil {
		t.Fatal(err)
	}

	execA, err := nn.NewExecutor(base)
	if err != nil {
		t.Fatal(err)
	}
	twin, err := SynthesizeReplacement(base, pair)
	if err != nil {
		t.Fatal(err)
	}
	execT, err := nn.NewExecutor(twin)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	for i := 0; i < 12; i++ {
		x := tensor.New(12)
		rng.FillNormal(x, 0, 1)
		actsA, err := execA.ForwardCapture(x)
		if err != nil {
			t.Fatal(err)
		}
		actsT, err := execT.ForwardCapture(x)
		if err != nil {
			t.Fatal(err)
		}
		last := pair.A.Last()
		actual := tensor.L2Distance(actsA[last], actsT[last])
		if actual > bound*1.001 {
			t.Fatalf("bound %g violated by actual segment difference %g", bound, actual)
		}
	}
}

func TestSynthesizeReplacementChangesOnlySegment(t *testing.T) {
	base, variant := transferPair(t, 7, 0.2)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	twin, err := SynthesizeReplacement(base, pairs[0])
	if err != nil {
		t.Fatal(err)
	}
	inSeg := make(map[string]bool)
	for _, n := range pairs[0].A.Layers {
		inSeg[n] = true
	}
	for _, l := range base.Layers {
		tw := twin.Layer(l.Name)
		for pname, p := range l.Params {
			d := tensor.L2Distance(p, tw.Param(pname))
			if inSeg[l.Name] {
				continue // segment weights are expected to change
			}
			if d != 0 {
				t.Fatalf("non-segment layer %q weights changed", l.Name)
			}
		}
	}
}

func TestAssessReplacementIdenticalSegmentsEquivalent(t *testing.T) {
	base, variant := transferPair(t, 7, 0)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	res, err := AssessReplacement(base, pairs, Options{Epsilon: 0.1, Seed: 9, ProbeCount: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || len(res.Kept) != len(pairs) {
		t.Fatalf("identical segments should be fully replaceable: %+v", res)
	}
	if res.Level() <= 0.9 {
		t.Fatalf("level = %g", res.Level())
	}
}

func TestAssessReplacementDropsNoisySegments(t *testing.T) {
	base, variant := transferPair(t, 7, 3.0) // massive fine-tuning noise
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	res, err := AssessReplacement(base, pairs, Options{Epsilon: 0.05, Seed: 9, ProbeCount: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) == len(pairs) && res.Equivalent {
		t.Fatalf("heavily perturbed segments should not all survive: %+v", res)
	}
}

func TestAssessReplacementRejectsForeignPairs(t *testing.T) {
	base, variant := transferPair(t, 7, 0)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	if _, err := AssessReplacement(variant, pairs, Options{Epsilon: 0.1}); err == nil {
		t.Fatal("expected error when A-side is not the assessed model")
	}
}

func TestSegmentFLOPsOrdering(t *testing.T) {
	base, variant := transferPair(t, 7, 0)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	if pairs[0].A.FLOPs() <= 0 {
		t.Fatal("segment FLOPs should be positive")
	}
}

// Property: the propagated bound is monotone in the input difference.
func TestPropertyBoundMonotoneInInputDiff(t *testing.T) {
	base, variant := transferPair(t, 7, 0.1)
	pairs, err := CommonSegments(base, variant, 2)
	if err != nil || len(pairs) == 0 {
		t.Fatalf("setup: %v", err)
	}
	pair := pairs[0]
	f := func(d1, d2 float64) bool {
		d1, d2 = math.Abs(d1), math.Abs(d2)
		if math.IsNaN(d1) || math.IsNaN(d2) || math.IsInf(d1, 0) || math.IsInf(d2, 0) {
			return true
		}
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		b1, err1 := PropagateBound(pair, d1, 4)
		b2, err2 := PropagateBound(pair, d2, 4)
		return err1 == nil && err2 == nil && b1 <= b2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
