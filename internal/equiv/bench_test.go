package equiv

import (
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/zoo"
)

func BenchmarkCheckWhole(b *testing.B) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "bw", Seed: 1, Width: 32, Depth: 2})
	if err != nil {
		b.Fatal(err)
	}
	cand := zoo.Perturb(base, "bw-v", 0.05, 2)
	val := &dataset.Dataset{
		Name:   "bench",
		Inputs: dataset.RandomImages(200, base.InputShape, 3),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckWhole(base, cand, val, Options{Epsilon: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralizationBound(b *testing.B) {
	m, err := zoo.DenseResidualNet(zoo.Config{Name: "gb", Seed: 4, Width: 64, Depth: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GeneralizationBound(m, 1000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommonSegments(b *testing.B) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "cs", Seed: 5, Width: 32, Depth: 3})
	if err != nil {
		b.Fatal(err)
	}
	variant, err := zoo.Transfer(base, "cs-v", 8, 99, 0, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CommonSegments(base, variant, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssessReplacement(b *testing.B) {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "ar", Seed: 7, Width: 24, Depth: 1})
	if err != nil {
		b.Fatal(err)
	}
	variant, err := zoo.Transfer(base, "ar-v", 8, 99, 0, 8)
	if err != nil {
		b.Fatal(err)
	}
	pairs, err := CommonSegments(base, variant, 3)
	if err != nil || len(pairs) == 0 {
		b.Fatalf("setup: %v (%d pairs)", err, len(pairs))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssessReplacement(base, pairs, Options{Epsilon: 0.1, Seed: 9, ProbeCount: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
