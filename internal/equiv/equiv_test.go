package equiv

import (
	"math"
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

// buildClassifier returns a small Dense classifier with the given seed.
func buildClassifier(t testing.TB, name string, seed uint64, in, hidden, classes int) *graph.Model {
	t.Helper()
	b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{in}, tensor.NewRNG(seed))
	b.Dense(hidden)
	b.ReLU()
	b.Dense(hidden)
	b.ReLU()
	b.Dense(classes)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m.Name = name
	return m
}

// perturb returns a clone of m with every weight nudged by Gaussian noise
// of relative magnitude frac.
func perturb(t testing.TB, m *graph.Model, frac float64, seed uint64) *graph.Model {
	t.Helper()
	c := m.Clone()
	c.Name = m.Name + "-perturbed"
	rng := tensor.NewRNG(seed)
	for _, l := range c.Layers {
		for _, p := range l.Params {
			for i, v := range p.Data() {
				p.Data()[i] = v + frac*rng.NormFloat64()*math.Abs(v)
			}
		}
	}
	return c
}

func valSet(t testing.TB, m *graph.Model, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	exec, err := nn.NewExecutor(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.TeacherLabeled("val", exec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIOCompatibleShapes(t *testing.T) {
	a := buildClassifier(t, "a", 1, 8, 16, 4)
	b := buildClassifier(t, "b", 2, 8, 32, 4)
	if ok, reason := IOCompatible(a, b); !ok {
		t.Fatalf("same-shape models incompatible: %s", reason)
	}
	c := buildClassifier(t, "c", 3, 9, 16, 4)
	if ok, _ := IOCompatible(a, c); ok {
		t.Fatal("different input shapes should be incompatible")
	}
	d := buildClassifier(t, "d", 4, 8, 16, 5)
	if ok, _ := IOCompatible(a, d); ok {
		t.Fatal("different output shapes should be incompatible")
	}
}

func TestIOCompatiblePreprocessorOverridesShape(t *testing.T) {
	a := buildClassifier(t, "a", 1, 8, 16, 4)
	c := buildClassifier(t, "c", 3, 9, 16, 4)
	a.Preprocessor, c.Preprocessor = "resize224", "resize224"
	if ok, reason := IOCompatible(a, c); !ok {
		t.Fatalf("shared preprocessor should bypass shape check: %s", reason)
	}
	c.Preprocessor = "resize96"
	if ok, _ := IOCompatible(a, c); ok {
		t.Fatal("different preprocessors should be incompatible")
	}
}

func TestIOCompatibleSyntaxCheck(t *testing.T) {
	a := buildClassifier(t, "a", 1, 8, 16, 3)
	b := buildClassifier(t, "b", 2, 8, 16, 3)
	a.OutputLabels = []string{"cat", "dog", "fox"}
	b.OutputLabels = []string{"cat", "dog", "fox"}
	if ok, _ := IOCompatible(a, b); !ok {
		t.Fatal("matching syntax should be compatible")
	}
	b.OutputLabels = []string{"cat", "dog", "owl"}
	if ok, _ := IOCompatible(a, b); ok {
		t.Fatal("different syntax labels should be incompatible")
	}
}

func TestIOCompatibleTaskKind(t *testing.T) {
	a := buildClassifier(t, "a", 1, 8, 16, 4)
	b := buildClassifier(t, "b", 2, 8, 16, 4)
	b.Task = graph.TaskRegression
	if ok, _ := IOCompatible(a, b); ok {
		t.Fatal("different task kinds should be incompatible")
	}
}

func TestCheckWholeSelfEquivalence(t *testing.T) {
	m := buildClassifier(t, "self", 5, 8, 16, 4)
	val := valSet(t, m, 200, 7)
	res, err := CheckWhole(m, m.Clone(), val, Options{Epsilon: 0.05, Bound: BoundOff})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible || res.EmpiricalDiff != 0 || !res.Equivalent {
		t.Fatalf("self-check failed: %+v", res)
	}
	if res.Score() != 1 {
		t.Fatalf("self score = %g", res.Score())
	}
}

func TestCheckWholePerturbationOrdering(t *testing.T) {
	m := buildClassifier(t, "base", 6, 10, 24, 4)
	val := valSet(t, m, 400, 9)
	small := perturb(t, m, 0.02, 1)
	large := perturb(t, m, 0.8, 2)
	rs, err := CheckWhole(m, small, val, Options{Epsilon: 0.1, Bound: BoundOff})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := CheckWhole(m, large, val, Options{Epsilon: 0.1, Bound: BoundOff})
	if err != nil {
		t.Fatal(err)
	}
	if rs.EmpiricalDiff >= rl.EmpiricalDiff {
		t.Fatalf("small perturbation (%g) should diverge less than large (%g)",
			rs.EmpiricalDiff, rl.EmpiricalDiff)
	}
	if rs.Score() <= rl.Score() {
		t.Fatalf("scores not ordered: %g vs %g", rs.Score(), rl.Score())
	}
}

func TestCheckWholeIncompatibleScoresZero(t *testing.T) {
	a := buildClassifier(t, "a", 1, 8, 16, 4)
	c := buildClassifier(t, "c", 3, 9, 16, 4)
	val := valSet(t, a, 50, 3)
	res, err := CheckWhole(a, c, val, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compatible || res.Score() != 0 || res.Reason == "" {
		t.Fatalf("incompatible pair mishandled: %+v", res)
	}
}

func TestGeneralizationBoundShrinksWithN(t *testing.T) {
	m := buildClassifier(t, "gb", 8, 10, 32, 5)
	b100, err := GeneralizationBound(m, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1k, err := GeneralizationBound(m, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b10k, err := GeneralizationBound(m, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(b100 > b1k && b1k > b10k) {
		t.Fatalf("bound not shrinking with n: %g, %g, %g", b100, b1k, b10k)
	}
	// 1/sqrt(n) scaling: b100/b1k should be ~sqrt(10) unless capped.
	if b100 < 1 {
		ratio := b100 / b1k
		if math.Abs(ratio-math.Sqrt(10)) > 0.5 {
			t.Fatalf("bound scaling off: ratio %g, want ~%g", ratio, math.Sqrt(10))
		}
	}
	if b10k < 0 || b10k > 1 {
		t.Fatalf("bound out of range: %g", b10k)
	}
}

func TestGeneralizationBoundGrowsWithDepth(t *testing.T) {
	shallow := buildClassifier(t, "shallow", 9, 10, 16, 4)
	bDeep := graph.NewBuilder("deep", graph.TaskClassification, tensor.Shape{10}, tensor.NewRNG(9))
	for i := 0; i < 8; i++ {
		bDeep.Dense(16)
		bDeep.ReLU()
	}
	bDeep.Dense(4)
	bDeep.Softmax()
	deep, err := bDeep.Build()
	if err != nil {
		t.Fatal(err)
	}
	bs, err := GeneralizationBound(shallow, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := GeneralizationBound(deep, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bd <= bs {
		t.Fatalf("deeper model should have larger bound: %g vs %g", bd, bs)
	}
}

func TestGeneralizationBoundInvalidN(t *testing.T) {
	m := buildClassifier(t, "x", 1, 4, 8, 2)
	if _, err := GeneralizationBound(m, 0, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
}

func TestBoundOnIsMoreConservative(t *testing.T) {
	m := buildClassifier(t, "cons", 11, 8, 16, 4)
	cand := perturb(t, m, 0.05, 3)
	val := valSet(t, m, 300, 5)
	off, err := CheckWhole(m, cand, val, Options{Epsilon: 0.1, Bound: BoundOff})
	if err != nil {
		t.Fatal(err)
	}
	on, err := CheckWhole(m, cand, val, Options{Epsilon: 0.1, Bound: BoundOn})
	if err != nil {
		t.Fatal(err)
	}
	if on.BoundedDiff <= off.BoundedDiff {
		t.Fatalf("bound-on should be more conservative: %g vs %g", on.BoundedDiff, off.BoundedDiff)
	}
	if on.GeneralizationBound <= 0 {
		t.Fatal("generalization bound missing")
	}
}
