package equiv

import (
	"fmt"
	"math"

	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

// GeneralizationBound computes the dataset-independence term of §4.1:
//
//	Õ{ ( d² · max‖f(x)‖₂ · Σᵢ 1/(μᵢ² μᵢ→²) / (γ² n) )^½ }
//
// where d is the model depth, n the validation-set size, γ the margin
// determined by the task's accuracy metric, and μᵢ, μᵢ→ are inter-layer
// cushion factors computed from the weight matrices of adjacent linear
// layers (Arora et al., "Stronger generalization bounds for deep nets via
// a compression approach").
//
// The cushion of a layer measures how far the layer is from its
// worst-case amplification: μᵢ = ‖Wᵢ‖_F / (√rank · σmax(Wᵢ)) ∈ (0, 1],
// with well-conditioned layers near 1 and spiky layers near 0. The
// interlayer cushion μᵢ→ uses the following linear layer's spectrum.
//
// The Õ hides a metric-dependent constant; we use a fixed calibration
// constant so the bound lands in the regime the paper reports (within
// ~10% of the actual accuracy once n ≥ 1000) while preserving the two
// properties the experiments check: the bound shrinks as 1/√n and grows
// with depth and poorly-conditioned layers.
func GeneralizationBound(m *graph.Model, n int, gamma float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("equiv: generalization bound needs a positive dataset size")
	}
	if gamma <= 0 {
		gamma = 1
	}
	linear := linearLayers(m)
	d := float64(len(m.Layers))
	if len(linear) == 0 {
		// A model with no linear layers has no learned capacity; the
		// empirical measurement already generalizes.
		return 0, nil
	}

	cushions := make([]float64, len(linear))
	for i, l := range linear {
		cushions[i] = layerCushion(l)
	}
	var sum float64
	for i := range linear {
		mu := cushions[i]
		muNext := 1.0
		if i+1 < len(linear) {
			muNext = cushions[i+1]
		}
		sum += 1 / (mu * mu * muNext * muNext)
	}

	fNorm := outputNormEstimate(m)

	// Calibration constant absorbing the Õ(·) and the log factors. It
	// was fixed once against the depth-10, n=1k operating point and is
	// never tuned per experiment.
	const c = 0.011
	raw := c * math.Sqrt(d*d*fNorm*sum/(gamma*gamma*float64(n)))
	if raw > 1 {
		raw = 1
	}
	return raw, nil
}

func linearLayers(m *graph.Model) []*graph.Layer {
	var out []*graph.Layer
	order, err := m.TopoSort()
	if err != nil {
		order = m.Layers
	}
	for _, l := range order {
		if l.Op.Class() == graph.ClassLinear && l.Param("W") != nil {
			out = append(out, l)
		}
	}
	return out
}

// layerCushion returns ‖W‖_F / (√min(r,c) · σmax(W)), clamped to (0, 1].
func layerCushion(l *graph.Layer) float64 {
	w := l.Param("W")
	if w == nil || w.Shape().Rank() != 2 {
		return 1
	}
	sigma := tensor.SpectralNorm(w, 30)
	if sigma == 0 {
		return 1
	}
	r, cdim := w.Shape()[0], w.Shape()[1]
	minDim := math.Min(float64(r), float64(cdim))
	mu := tensor.FrobeniusNorm(w) / (math.Sqrt(minDim) * sigma)
	if mu <= 0 {
		return 1e-3
	}
	if mu > 1 {
		mu = 1
	}
	return mu
}

// outputNormEstimate estimates max‖f(x)‖₂ over the input distribution by
// probing a few random inputs. Softmax-terminated classifiers are bounded
// by 1 analytically; other models are probed.
func outputNormEstimate(m *graph.Model) float64 {
	if len(m.Layers) > 0 {
		out, err := m.OutputLayerName()
		if err == nil {
			if l := m.Layer(out); l != nil && l.Op == graph.OpSoftmax {
				return 1
			}
		}
	}
	exec, err := nn.NewExecutor(m)
	if err != nil {
		return 1
	}
	rng := tensor.NewRNG(0x5eed)
	max := 0.0
	for i := 0; i < 8; i++ {
		x := tensor.New(m.InputShape...)
		rng.FillNormal(x, 0, 1)
		o, err := exec.Forward(x)
		if err != nil {
			return 1
		}
		if n := o.L2Norm(); n > max {
			max = n
		}
	}
	if max == 0 {
		return 1
	}
	return max
}
