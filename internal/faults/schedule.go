package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Schedule drives cluster-level chaos: named targets (one per shard
// replica, typically "shard1/replica0") each carry a list of fault
// windows over the target's own operation counter. A window applies a
// fault kind to operations [From, To) at a given rate, so a test can
// kill a replica outright for its whole life, slow it for ops 10..20,
// or flake it at 30% — and replay the exact same behaviour from the
// same seed.
//
// Determinism is per target: every target draws from its own rand
// stream seeded by the schedule seed and the target name, so the fault
// sequence a target sees depends only on its own operation count — not
// on how operations on different targets interleave. That is what makes
// whole-cluster chaos tests reproducible under concurrency.
type Schedule struct {
	seed uint64

	mu      sync.Mutex
	targets map[string]*targetState // guarded by mu
}

// targetState is one target's windows, op counter and rand stream.
type targetState struct {
	windows []Window
	ops     int64
	rng     *rand.Rand
}

// Window applies Kind to a target's operations [From, To).
type Window struct {
	// From and To bound the affected operation indices, half-open;
	// To <= 0 means the window never closes.
	From, To int64
	// Kind is the fault applied inside the window.
	Kind Kind
	// Rate is the per-operation probability inside the window; values
	// outside (0,1) mean "every operation".
	Rate float64
	// Latency is the injected delay for Latency windows.
	Latency time.Duration
}

// Kill returns a window that fails every operation in [from, to) with a
// connection error — the dead-replica schedule.
func Kill(from, to int64) Window { return Window{From: from, To: to, Kind: ConnError} }

// Slow returns a window that delays every operation in [from, to) by d.
func Slow(from, to int64, d time.Duration) Window {
	return Window{From: from, To: to, Kind: Latency, Latency: d}
}

// Flake returns a window that fails operations in [from, to) with a
// connection error at the given rate — the intermittent-replica
// schedule.
func Flake(from, to int64, rate float64) Window {
	return Window{From: from, To: to, Kind: ConnError, Rate: rate}
}

// NewSchedule returns an empty schedule; targets without windows see no
// faults (but their operations are still counted).
func NewSchedule(seed uint64) *Schedule {
	return &Schedule{seed: seed, targets: make(map[string]*targetState)}
}

// Set replaces the target's fault windows and resets its operation
// counter and rand stream, so a schedule can be programmed in full
// before the run it drives.
func (s *Schedule) Set(target string, windows ...Window) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.targets[target] = &targetState{
		windows: append([]Window(nil), windows...),
		rng:     rand.New(rand.NewSource(targetSeed(s.seed, target))),
	}
}

// targetSeed derives an independent, reproducible stream seed per
// target name.
func targetSeed(seed uint64, target string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, target)
	return int64(h.Sum64())
}

// Decision is the fault applied to one operation.
type Decision struct {
	Kind    Kind
	Latency time.Duration
}

// Next advances the target's operation counter and returns the fault
// decision for that operation. Unknown targets are registered with no
// windows, so counters stay comparable across runs.
func (s *Schedule) Next(target string) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.targets[target]
	if st == nil {
		st = &targetState{rng: rand.New(rand.NewSource(targetSeed(s.seed, target)))}
		s.targets[target] = st
	}
	op := st.ops
	st.ops++
	for _, w := range st.windows {
		if op < w.From || (w.To > 0 && op >= w.To) {
			continue
		}
		// Windows with a rate still consume one draw per in-window
		// operation even when they decline to fire, so the stream
		// position depends only on the operation index.
		if w.Rate > 0 && w.Rate < 1 && st.rng.Float64() >= w.Rate {
			continue
		}
		return Decision{Kind: w.Kind, Latency: w.Latency}
	}
	return Decision{Kind: None}
}

// Ops returns how many operations the target has performed.
func (s *Schedule) Ops(target string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.targets[target]; st != nil {
		return st.ops
	}
	return 0
}

// Targets returns the known target names, sorted.
func (s *Schedule) Targets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.targets))
	for t := range s.targets {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
