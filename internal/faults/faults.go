// Package faults is a deterministic fault-injection framework for the
// hub and serving layers. A seeded Injector decides, per operation,
// whether to inject a connection error, a 5xx server error, a latency
// spike, or a truncated response body — at configurable rates — so every
// failure mode the resilience layer must survive is reproducible in
// tests: the same seed and config always yield the same fault sequence.
//
// The injector is exposed through two wrappers:
//
//   - Transport, an http.RoundTripper decorator that injects faults into
//     HTTP traffic (the remote-hub path of §6);
//   - FlakyStore, a repo-surface decorator that injects faults into
//     direct repository calls (the local-hub path).
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind identifies one injectable failure mode.
type Kind int

const (
	// None: the operation proceeds untouched.
	None Kind = iota
	// ConnError: the operation fails with a transport-level error
	// before reaching the backend.
	ConnError
	// ServerError: the backend is replaced by a 503 response (or an
	// opaque internal error on the repo surface).
	ServerError
	// Latency: the operation is delayed by Config.Latency, then
	// proceeds normally.
	Latency
	// Truncate: the operation reaches the backend but its response body
	// is cut in half, corrupting the payload.
	Truncate
)

// String names the fault kind for reports.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case ConnError:
		return "conn-error"
	case ServerError:
		return "server-error"
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is wrapped by every error the injector fabricates, so
// tests can tell injected faults from real ones.
var ErrInjected = errors.New("injected fault")

// Config sets the per-operation probability of each fault kind. The
// rates must each lie in [0,1] and sum to at most 1; the remainder is
// the probability of an untouched operation.
type Config struct {
	// Seed drives the fault sequence; equal seeds and rates produce
	// equal sequences.
	Seed uint64
	// ConnErrorRate is the probability of a transport-level failure.
	ConnErrorRate float64
	// ServerErrorRate is the probability of a 503 / internal error.
	ServerErrorRate float64
	// LatencyRate is the probability of a latency spike of Latency.
	LatencyRate float64
	// Latency is the injected delay for Latency faults.
	Latency time.Duration
	// TruncateRate is the probability of a truncated response body.
	TruncateRate float64
}

// Counts tallies operations seen and faults injected, by kind.
type Counts struct {
	Operations   int64
	ConnErrors   int64
	ServerErrors int64
	Latencies    int64
	Truncations  int64
}

// Injected returns the total number of injected faults.
func (c Counts) Injected() int64 {
	return c.ConnErrors + c.ServerErrors + c.Latencies + c.Truncations
}

// Injector draws a fault decision per operation from a seeded stream.
// It is safe for concurrent use; under concurrency the set of drawn
// faults is still determined by the seed, though their assignment to
// operations follows scheduling order.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    *rand.Rand // guarded by mu
	counts Counts     // guarded by mu
}

// NewInjector validates the config and returns a seeded injector.
func NewInjector(cfg Config) (*Injector, error) {
	rates := []float64{cfg.ConnErrorRate, cfg.ServerErrorRate, cfg.LatencyRate, cfg.TruncateRate}
	sum := 0.0
	for _, r := range rates {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("faults: rate %v outside [0,1]", r)
		}
		sum += r
	}
	if sum > 1 {
		return nil, fmt.Errorf("faults: rates sum to %v > 1", sum)
	}
	if cfg.LatencyRate > 0 && cfg.Latency <= 0 {
		return nil, fmt.Errorf("faults: latency rate set without a positive latency")
	}
	return &Injector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(int64(cfg.Seed))),
	}, nil
}

// Next draws the fault decision for the next operation.
func (in *Injector) Next() Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts.Operations++
	u := in.rng.Float64()
	switch {
	case u < in.cfg.ConnErrorRate:
		in.counts.ConnErrors++
		return ConnError
	case u < in.cfg.ConnErrorRate+in.cfg.ServerErrorRate:
		in.counts.ServerErrors++
		return ServerError
	case u < in.cfg.ConnErrorRate+in.cfg.ServerErrorRate+in.cfg.LatencyRate:
		in.counts.Latencies++
		return Latency
	case u < in.cfg.ConnErrorRate+in.cfg.ServerErrorRate+in.cfg.LatencyRate+in.cfg.TruncateRate:
		in.counts.Truncations++
		return Truncate
	}
	return None
}

// Counts returns a snapshot of the injection tallies.
func (in *Injector) Counts() Counts {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts
}

// Latency returns the configured injected delay.
func (in *Injector) Latency() time.Duration { return in.cfg.Latency }

func injectedErr(kind Kind, op string) error {
	return fmt.Errorf("faults: %s on %s: %w", kind, op, ErrInjected)
}
