package faults

import (
	"time"

	"sommelier/internal/graph"
	"sommelier/internal/repo"
)

// Store is the bare-bone repository surface (§2.1) the hub layers on —
// satisfied by *repo.Repository and by hub-side stand-ins.
type Store interface {
	Publish(m *graph.Model) (string, error)
	Load(id string) (*graph.Model, error)
	Delete(id string) error
	List() []repo.Metadata
	Metadata(id string) (repo.Metadata, bool)
	Len() int
}

// FlakyStore decorates a Store with injected faults so repository-level
// failure handling is testable without a faulty disk. Publish, Load and
// Delete can fail with an ErrInjected-wrapped error (ConnError,
// ServerError and Truncate kinds all surface as errors here — there is
// no wire to truncate) or stall on a Latency fault. List, Metadata and
// Len are cheap local reads and pass through untouched except for
// latency spikes on List.
type FlakyStore struct {
	inner Store
	inj   *Injector
}

// NewFlakyStore wraps a store with the injector.
func NewFlakyStore(inner Store, inj *Injector) *FlakyStore {
	return &FlakyStore{inner: inner, inj: inj}
}

func (s *FlakyStore) fault(op string) error {
	switch kind := s.inj.Next(); kind {
	case ConnError, ServerError, Truncate:
		return injectedErr(kind, op)
	case Latency:
		time.Sleep(s.inj.Latency())
	}
	return nil
}

// Publish stores the model unless a fault is injected.
func (s *FlakyStore) Publish(m *graph.Model) (string, error) {
	if err := s.fault("publish"); err != nil {
		return "", err
	}
	return s.inner.Publish(m)
}

// Load fetches the model unless a fault is injected.
func (s *FlakyStore) Load(id string) (*graph.Model, error) {
	if err := s.fault("load " + id); err != nil {
		return nil, err
	}
	return s.inner.Load(id)
}

// Delete removes the model unless a fault is injected.
func (s *FlakyStore) Delete(id string) error {
	if err := s.fault("delete " + id); err != nil {
		return err
	}
	return s.inner.Delete(id)
}

// List passes through, delayed by latency faults only.
func (s *FlakyStore) List() []repo.Metadata {
	if s.inj.Next() == Latency {
		time.Sleep(s.inj.Latency())
	}
	return s.inner.List()
}

// Metadata passes through.
func (s *FlakyStore) Metadata(id string) (repo.Metadata, bool) { return s.inner.Metadata(id) }

// Len passes through.
func (s *FlakyStore) Len() int { return s.inner.Len() }
