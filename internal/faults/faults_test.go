package faults

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sommelier/internal/graph"
	"sommelier/internal/repo"
	"sommelier/internal/tensor"
)

func testModel(t testing.TB, name string, seed uint64) *graph.Model {
	t.Helper()
	b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(seed))
	b.Dense(5)
	b.ReLU()
	b.Dense(3)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{ConnErrorRate: -0.1},
		{ConnErrorRate: 1.2},
		{ConnErrorRate: 0.6, ServerErrorRate: 0.6},
		{LatencyRate: 0.5}, // latency rate without a latency
	}
	for _, cfg := range cases {
		if _, err := NewInjector(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
	if _, err := NewInjector(Config{ConnErrorRate: 0.3, ServerErrorRate: 0.3, TruncateRate: 0.2}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, ConnErrorRate: 0.2, ServerErrorRate: 0.2, TruncateRate: 0.1}
	a, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if ka, kb := a.Next(), b.Next(); ka != kb {
			t.Fatalf("draw %d diverged: %v vs %v", i, ka, kb)
		}
	}
	// A different seed produces a different sequence.
	cfg.Seed = 43
	c, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	d, _ := NewInjector(Config{Seed: 42, ConnErrorRate: 0.2, ServerErrorRate: 0.2, TruncateRate: 0.1})
	for i := 0; i < 1000; i++ {
		if c.Next() == d.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestInjectorRates(t *testing.T) {
	cfg := Config{Seed: 7, ConnErrorRate: 0.15, ServerErrorRate: 0.1, TruncateRate: 0.05}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	for i := 0; i < n; i++ {
		in.Next()
	}
	c := in.Counts()
	if c.Operations != n {
		t.Fatalf("operations = %d", c.Operations)
	}
	checks := []struct {
		name string
		got  int64
		want float64
	}{
		{"conn", c.ConnErrors, 0.15},
		{"server", c.ServerErrors, 0.1},
		{"truncate", c.Truncations, 0.05},
	}
	for _, ch := range checks {
		frac := float64(ch.got) / n
		if math.Abs(frac-ch.want) > 0.02 {
			t.Errorf("%s rate = %.3f, want ~%.2f", ch.name, frac, ch.want)
		}
	}
	if got, want := c.Injected(), c.ConnErrors+c.ServerErrors+c.Truncations; got != want {
		t.Errorf("Injected() = %d, want %d", got, want)
	}
}

// alwaysInjector returns an injector whose first draws are all of one
// kind, by setting that kind's rate to 1.
func alwaysInjector(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestTransportConnError(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer ts.Close()
	in := alwaysInjector(t, Config{ConnErrorRate: 1})
	client := &http.Client{Transport: NewTransport(nil, in)}
	_, err := client.Get(ts.URL)
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if hits != 0 {
		t.Fatal("conn-error fault reached the backend")
	}
}

func TestTransportServerError(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { hits++ }))
	defer ts.Close()
	in := alwaysInjector(t, Config{ServerErrorRate: 1})
	client := &http.Client{Transport: NewTransport(nil, in)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if hits != 0 {
		t.Fatal("server-error fault reached the backend")
	}
}

func TestTransportTruncate(t *testing.T) {
	const payload = "0123456789abcdef"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()
	in := alwaysInjector(t, Config{TruncateRate: 1})
	client := &http.Client{Transport: NewTransport(nil, in)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload[:len(payload)/2] {
		t.Fatalf("body = %q, want first half of %q", got, payload)
	}
}

func TestTransportLatency(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	in := alwaysInjector(t, Config{LatencyRate: 1, Latency: 30 * time.Millisecond})
	client := &http.Client{Transport: NewTransport(nil, in)}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency fault not applied: %v", elapsed)
	}
	if in.Counts().Latencies != 1 {
		t.Fatal("latency not counted")
	}
}

func TestTransportPassThrough(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	in := alwaysInjector(t, Config{}) // no faults
	client := &http.Client{Transport: NewTransport(nil, in)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "ok" {
		t.Fatalf("body = %q", b)
	}
}

func TestFlakyStoreInjectsErrors(t *testing.T) {
	in := alwaysInjector(t, Config{ConnErrorRate: 1})
	fs := NewFlakyStore(repo.NewInMemory(), in)
	if _, err := fs.Publish(testModel(t, "m", 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Publish err = %v", err)
	}
	if _, err := fs.Load("m@1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Load err = %v", err)
	}
	if err := fs.Delete("m@1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Delete err = %v", err)
	}
}

func TestFlakyStorePassThrough(t *testing.T) {
	in := alwaysInjector(t, Config{})
	store := repo.NewInMemory()
	fs := NewFlakyStore(store, in)
	id, err := fs.Publish(testModel(t, "ok", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Load(id); err != nil {
		t.Fatal(err)
	}
	if len(fs.List()) != 1 || fs.Len() != 1 {
		t.Fatal("list/len mismatch")
	}
	if _, ok := fs.Metadata(id); !ok {
		t.Fatal("metadata missing")
	}
	if err := fs.Delete(id); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatal("delete did not reach inner store")
	}
}

func TestErrorStringsNameTheFault(t *testing.T) {
	err := injectedErr(ServerError, "load x@1")
	if !strings.Contains(err.Error(), "server-error") || !strings.Contains(err.Error(), "load x@1") {
		t.Fatalf("err = %v", err)
	}
}
