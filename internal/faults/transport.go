package faults

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport decorates an http.RoundTripper with injected faults: the
// standard way to make a hub client see a flaky network without a flaky
// network. Wrap a client's transport and every request rolls the
// injector's dice.
type Transport struct {
	inner http.RoundTripper
	inj   *Injector
}

// NewTransport wraps inner (nil means http.DefaultTransport) with the
// injector.
func NewTransport(inner http.RoundTripper, inj *Injector) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, inj: inj}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch t.inj.Next() {
	case ConnError:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, injectedErr(ConnError, req.Method+" "+req.URL.Path)
	case ServerError:
		if req.Body != nil {
			req.Body.Close()
		}
		body := "injected server error"
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        make(http.Header),
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case Latency:
		time.Sleep(t.inj.Latency())
		return t.inner.RoundTrip(req)
	case Truncate:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return truncateBody(resp)
	}
	return t.inner.RoundTrip(req)
}

// truncateBody replaces the response body with its first half, the way
// a connection dropped mid-transfer leaves a partial payload.
func truncateBody(resp *http.Response) (*http.Response, error) {
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	half := data[:len(data)/2]
	resp.Body = io.NopCloser(bytes.NewReader(half))
	resp.ContentLength = int64(len(half))
	resp.Header.Del("Content-Length")
	return resp, nil
}
