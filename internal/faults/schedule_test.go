package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// TestScheduleWindows pins the window semantics: [From, To) half-open,
// To <= 0 open-ended, and untouched targets always None.
func TestScheduleWindows(t *testing.T) {
	s := NewSchedule(1)
	s.Set("a", Kill(2, 4))
	s.Set("b", Slow(0, 0, 5*time.Millisecond))

	wantA := []Kind{None, None, ConnError, ConnError, None, None}
	for i, want := range wantA {
		if got := s.Next("a").Kind; got != want {
			t.Errorf("a op %d = %s, want %s", i, got, want)
		}
	}
	for i := 0; i < 3; i++ {
		d := s.Next("b")
		if d.Kind != Latency || d.Latency != 5*time.Millisecond {
			t.Errorf("b op %d = %+v, want open-ended latency window", i, d)
		}
	}
	if got := s.Next("untouched").Kind; got != None {
		t.Errorf("untouched target = %s, want none", got)
	}
	if ops := s.Ops("a"); ops != int64(len(wantA)) {
		t.Errorf("Ops(a) = %d, want %d", ops, len(wantA))
	}
}

// TestScheduleInterleavingIndependence is the property the cluster chaos
// tests lean on: a target's fault sequence depends only on its own
// operation index, not on how operations across targets interleave. The
// same flake windows are replayed serially per target, round-robin, and
// concurrently — and every target sees the same per-op decisions.
func TestScheduleInterleavingIndependence(t *testing.T) {
	targets := []string{"shard0/replica0", "shard0/replica1", "shard1/replica0"}
	const ops = 200
	build := func() *Schedule {
		s := NewSchedule(99)
		for _, tg := range targets {
			s.Set(tg, Flake(10, 150, 0.4), Slow(150, 0, time.Microsecond))
		}
		return s
	}
	record := func(run func(s *Schedule, record func(target string, d Decision))) map[string][]Decision {
		s := build()
		var mu sync.Mutex
		out := make(map[string][]Decision, len(targets))
		run(s, func(target string, d Decision) {
			mu.Lock()
			out[target] = append(out[target], d)
			mu.Unlock()
		})
		return out
	}

	serial := record(func(s *Schedule, rec func(string, Decision)) {
		for _, tg := range targets {
			for i := 0; i < ops; i++ {
				rec(tg, s.Next(tg))
			}
		}
	})
	roundRobin := record(func(s *Schedule, rec func(string, Decision)) {
		for i := 0; i < ops; i++ {
			for _, tg := range targets {
				rec(tg, s.Next(tg))
			}
		}
	})
	concurrent := record(func(s *Schedule, rec func(string, Decision)) {
		var wg sync.WaitGroup
		for _, tg := range targets {
			wg.Add(1)
			go func(tg string) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					rec(tg, s.Next(tg))
				}
			}(tg)
		}
		wg.Wait()
	})

	fired := 0
	for _, tg := range targets {
		for i := 0; i < ops; i++ {
			if serial[tg][i] != roundRobin[tg][i] || serial[tg][i] != concurrent[tg][i] {
				t.Fatalf("%s op %d diverges across interleavings: serial %+v, round-robin %+v, concurrent %+v",
					tg, i, serial[tg][i], roundRobin[tg][i], concurrent[tg][i])
			}
			if serial[tg][i].Kind == ConnError {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Fatal("flake windows never fired; interleaving comparison proves nothing")
	}

	// Distinct targets must not share a stream: with 140 in-window ops at
	// rate 0.4, identical sequences would mean the per-target seeding is
	// broken.
	same := true
	for i := 10; i < 150; i++ {
		if serial[targets[0]][i] != serial[targets[1]][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two targets drew identical flake sequences; streams are not per-target")
	}
}

// TestComposedFlakyStoresReplay stacks two FlakyStore wrappers — an
// outer transport-ish flake over an inner disk-ish flake — and replays
// the composed tower twice from fixed seeds. The visible behaviour
// (which ops fail, with which injected kind, and the surviving store
// contents) must be identical run to run: composing injectors must not
// entangle their streams.
func TestComposedFlakyStoresReplay(t *testing.T) {
	model, err := zoo.DenseResidualNet(zoo.Config{Name: "compose", Seed: 7, Width: 4, Depth: 1})
	if err != nil {
		t.Fatalf("zoo.DenseResidualNet: %v", err)
	}

	run := func() ([]string, int) {
		inner, err := NewInjector(Config{Seed: 11, ServerErrorRate: 0.3})
		if err != nil {
			t.Fatalf("inner injector: %v", err)
		}
		outer, err := NewInjector(Config{Seed: 22, ConnErrorRate: 0.3})
		if err != nil {
			t.Fatalf("outer injector: %v", err)
		}
		store := NewFlakyStore(NewFlakyStore(repo.NewInMemory(), inner), outer)

		var trace []string
		for i := 0; i < 40; i++ {
			m := model.Clone()
			m.Version = fmt.Sprintf("1.0.%d", i)
			_, err := store.Publish(m)
			switch {
			case err == nil:
				trace = append(trace, "ok")
			case errors.Is(err, ErrInjected):
				trace = append(trace, err.Error())
			default:
				t.Fatalf("publish %d: unexpected non-injected error %v", i, err)
			}
		}
		return trace, store.Len()
	}

	traceA, lenA := run()
	traceB, lenB := run()
	if len(traceA) != len(traceB) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(traceA), len(traceB))
	}
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("composed replay diverges at op %d: %q vs %q", i, traceA[i], traceB[i])
		}
	}
	if lenA != lenB {
		t.Fatalf("surviving store sizes diverge: %d vs %d", lenA, lenB)
	}
	failures := 0
	for _, tr := range traceA {
		if tr != "ok" {
			failures++
		}
	}
	if failures == 0 || failures == len(traceA) {
		t.Fatalf("composed tower produced %d/%d failures; want a mix so both layers are exercised", failures, len(traceA))
	}
	if lenA != len(traceA)-failures {
		t.Errorf("store holds %d models, want %d (successful publishes)", lenA, len(traceA)-failures)
	}
}

// TestScheduleSetResets verifies Set replaces windows AND rewinds the
// op counter and rand stream, so a schedule can be reprogrammed between
// phases of one test run and still replay.
func TestScheduleSetResets(t *testing.T) {
	s := NewSchedule(5)
	s.Set("x", Flake(0, 0, 0.5))
	first := make([]Kind, 50)
	for i := range first {
		first[i] = s.Next("x").Kind
	}
	s.Set("x", Flake(0, 0, 0.5))
	for i := range first {
		if got := s.Next("x").Kind; got != first[i] {
			t.Fatalf("after Set, op %d = %s, want %s (stream did not rewind)", i, got, first[i])
		}
	}
	if got := s.Ops("x"); got != int64(len(first)) {
		t.Errorf("Ops after reset replay = %d, want %d", got, len(first))
	}
}
