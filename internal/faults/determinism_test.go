package faults

import (
	"testing"
	"time"
)

// TestInjectorScheduleReproducible complements TestInjectorDeterminism
// (faults_test.go) by recording full schedules: two injectors built
// from the same config must draw an identical 1k-fault schedule AND
// finish with identical tallies, with every fault kind — including
// Latency, which the other test's config never enables — exercised at
// least once. If someone swaps the seeded source for a global or
// time-derived one, the schedules diverge here long before a flaky
// resilience test does.
func TestInjectorScheduleReproducible(t *testing.T) {
	cfg := Config{
		Seed:            42,
		ConnErrorRate:   0.15,
		ServerErrorRate: 0.1,
		LatencyRate:     0.05,
		Latency:         time.Millisecond,
		TruncateRate:    0.1,
	}
	const draws = 1000

	schedule := func() ([]Kind, Counts) {
		in, err := NewInjector(cfg)
		if err != nil {
			t.Fatalf("NewInjector: %v", err)
		}
		out := make([]Kind, draws)
		for i := range out {
			out[i] = in.Next()
		}
		return out, in.Counts()
	}

	a, aCounts := schedule()
	b, bCounts := schedule()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at draw %d: %s vs %s", i, a[i], b[i])
		}
	}
	if aCounts != bCounts {
		t.Errorf("counts diverge: %+v vs %+v", aCounts, bCounts)
	}
	if aCounts.Operations != draws {
		t.Errorf("Operations = %d, want %d", aCounts.Operations, draws)
	}
	// With these rates and 1k draws, every fault kind should have fired
	// at least once — otherwise the schedule comparison proves little.
	if aCounts.ConnErrors == 0 || aCounts.ServerErrors == 0 ||
		aCounts.Latencies == 0 || aCounts.Truncations == 0 {
		t.Errorf("some fault kind never fired in %d draws: %+v", draws, aCounts)
	}
}
