package query

import (
	"fmt"
	"strings"
)

// Metric names a resource dimension a constraint may bound.
type Metric string

const (
	MetricMemory  Metric = "memory"
	MetricFLOPs   Metric = "flops"
	MetricLatency Metric = "latency"
)

// CmpOp is a constraint comparison operator.
type CmpOp string

const (
	OpLT CmpOp = "<"
	OpLE CmpOp = "<="
	OpGT CmpOp = ">"
	OpGE CmpOp = ">="
	OpEQ CmpOp = "=="
)

// Unit qualifies a constraint value.
type Unit string

const (
	// UnitRelative marks a percentage of the reference model's usage.
	UnitRelative Unit = "%"
	UnitMB       Unit = "MB"
	UnitGB       Unit = "GB"
	UnitGFLOPs   Unit = "GFLOPS"
	UnitTFLOPs   Unit = "TFLOPS"
	UnitMS       Unit = "ms"
	UnitNone     Unit = ""
)

// Constraint is one resource predicate, e.g. memory <= 80%.
type Constraint struct {
	Metric Metric
	Op     CmpOp
	Value  float64
	Unit   Unit
}

// Relative reports whether the constraint is expressed against the
// reference model rather than in absolute units.
func (c Constraint) Relative() bool { return c.Unit == UnitRelative }

func (c Constraint) String() string {
	return fmt.Sprintf("%s %s %g%s", c.Metric, c.Op, c.Value, c.Unit)
}

// PickKind is the final selection criterion (§5.1).
type PickKind string

const (
	PickMostSimilar PickKind = "most_similar"
	PickSmallest    PickKind = "smallest"
	PickFastest     PickKind = "fastest"
	PickCheapest    PickKind = "cheapest" // fewest FLOPs
	PickAll         PickKind = "all"
)

// Query is the parsed AST of one Sommelier query.
type Query struct {
	// Ref is the reference model ID; empty when the query names a task
	// category instead and expects a default reference.
	Ref string
	// Task is the inference task category used when Ref is empty.
	Task string
	// Threshold is the functional-equivalence threshold in [0,1]
	// (WITHIN 95% → 0.95). Defaults to 0.95.
	Threshold float64
	// Constraints are the resource predicates, ANDed together.
	Constraints []Constraint
	// Exec carries the optional execution spec key/value pairs.
	Exec map[string]string
	// Pick is the final selection criterion; defaults to most_similar.
	Pick PickKind
	// Limit caps the result count; 0 means no cap.
	Limit int
}

// Validate checks semantic well-formedness beyond the grammar.
func (q *Query) Validate() error {
	if q.Ref == "" && q.Task == "" {
		return fmt.Errorf("query: needs a CORR reference model or a TASK category")
	}
	if q.Threshold < 0 || q.Threshold > 1 {
		return fmt.Errorf("query: threshold %g outside [0,1]", q.Threshold)
	}
	if q.Limit < 0 {
		return fmt.Errorf("query: negative LIMIT")
	}
	// A metric may appear in several constraints — they AND together,
	// so ranges (MEM > 10MB AND MEM < 100MB) and redundant bounds are
	// both well-defined; executors must take the tightest bound per
	// metric when building prefilter budgets.
	for _, c := range q.Constraints {
		switch c.Metric {
		case MetricMemory, MetricFLOPs, MetricLatency:
		default:
			return fmt.Errorf("query: unknown metric %q", c.Metric)
		}
		if c.Value < 0 {
			return fmt.Errorf("query: negative constraint value in %s", c)
		}
		if err := validUnit(c); err != nil {
			return err
		}
	}
	switch q.Pick {
	case PickMostSimilar, PickSmallest, PickFastest, PickCheapest, PickAll:
	default:
		return fmt.Errorf("query: unknown PICK criterion %q", q.Pick)
	}
	return nil
}

func validUnit(c Constraint) error {
	ok := map[Metric][]Unit{
		MetricMemory:  {UnitRelative, UnitMB, UnitGB, UnitNone},
		MetricFLOPs:   {UnitRelative, UnitGFLOPs, UnitTFLOPs, UnitNone},
		MetricLatency: {UnitRelative, UnitMS, UnitNone},
	}
	for _, u := range ok[c.Metric] {
		if c.Unit == u {
			return nil
		}
	}
	return fmt.Errorf("query: unit %q not valid for metric %s", c.Unit, c.Metric)
}

// String renders the query back in canonical syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Ref != "" {
		fmt.Fprintf(&b, "CORR %q", q.Ref)
	} else {
		fmt.Fprintf(&b, "TASK %s", q.Task)
	}
	fmt.Fprintf(&b, " WITHIN %g%%", q.Threshold*100)
	for i, c := range q.Constraints {
		if i == 0 {
			b.WriteString(" ON ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(c.String())
	}
	if len(q.Exec) > 0 {
		b.WriteString(" EXEC")
		keys := make([]string, 0, len(q.Exec))
		for k := range q.Exec {
			keys = append(keys, k)
		}
		// Stable order for reproducible output.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, q.Exec[k])
		}
	}
	fmt.Fprintf(&b, " PICK %s", q.Pick)
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
