package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseFigure6Example(t *testing.T) {
	// The paper's running example: most interchangeable with ResNet,
	// 20% less memory, 40% less computation.
	q, err := Parse(`SELECT CORR "resnet50@1" WITHIN 95% ON memory <= 80% AND flops <= 60% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Ref != "resnet50@1" {
		t.Fatalf("Ref = %q", q.Ref)
	}
	if q.Threshold != 0.95 {
		t.Fatalf("Threshold = %g", q.Threshold)
	}
	if len(q.Constraints) != 2 {
		t.Fatalf("Constraints = %+v", q.Constraints)
	}
	c := q.Constraints[0]
	if c.Metric != MetricMemory || c.Op != OpLE || c.Value != 80 || !c.Relative() {
		t.Fatalf("memory constraint = %+v", c)
	}
	if q.Pick != PickMostSimilar {
		t.Fatalf("Pick = %q", q.Pick)
	}
}

func TestParseAbsoluteUnits(t *testing.T) {
	q, err := Parse(`SELECT CORR m ON memory < 200 MB AND flops < 50 GFLOPS AND latency < 30 ms`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Constraints[0].Unit != UnitMB || q.Constraints[1].Unit != UnitGFLOPs || q.Constraints[2].Unit != UnitMS {
		t.Fatalf("units = %+v", q.Constraints)
	}
	if q.Constraints[2].Op != OpLT || q.Constraints[2].Value != 30 {
		t.Fatalf("latency constraint = %+v", q.Constraints[2])
	}
}

func TestParseTaskDefaultReference(t *testing.T) {
	q, err := Parse(`SELECT TASK vision WITHIN 90% PICK smallest LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Task != "vision" || q.Ref != "" {
		t.Fatalf("task = %q ref = %q", q.Task, q.Ref)
	}
	if q.Pick != PickSmallest || q.Limit != 5 {
		t.Fatalf("pick/limit = %q/%d", q.Pick, q.Limit)
	}
	if q.Threshold != 0.9 {
		t.Fatalf("threshold = %g", q.Threshold)
	}
}

func TestParseExecSpec(t *testing.T) {
	q, err := Parse(`SELECT CORR m EXEC batch=8 device=gpu mode=throughput`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Exec["batch"] != "8" || q.Exec["device"] != "gpu" || q.Exec["mode"] != "throughput" {
		t.Fatalf("exec = %+v", q.Exec)
	}
}

func TestParseDefaults(t *testing.T) {
	q, err := Parse(`SELECT CORR base`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Threshold != 0.95 || q.Pick != PickMostSimilar || q.Limit != 0 {
		t.Fatalf("defaults = %+v", q)
	}
}

func TestParseModelNoiseWord(t *testing.T) {
	if _, err := Parse(`SELECT model CORR base`); err != nil {
		t.Fatal(err)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`select corr base within 80% on memory <= 50% pick fastest`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Ref != "base" || q.Pick != PickFastest {
		t.Fatalf("parsed = %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{``, "expected SELECT"},
		{`SELECT`, "missing CORR or TASK"},
		{`SELECT ON memory < 1`, "missing CORR or TASK"},
		{`SELECT CORR`, "expected reference model"},
		{`SELECT CORR m WITHIN banana`, "expected a number"},
		{`SELECT CORR m WITHIN 150%`, "outside [0,1]"},
		{`SELECT CORR m ON memory memory`, "expected a comparison"},
		{`SELECT CORR m ON weight < 5`, "unknown metric"},
		{`SELECT CORR m PICK banana`, "unknown PICK"},
		{`SELECT CORR m LIMIT x`, "expected LIMIT count"},
		{`SELECT CORR m ON latency < 5 GB`, "not valid for metric"},
		{`SELECT CORR "unterminated`, "unterminated string"},
		{`SELECT CORR m $$$`, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want %q", c.in, err, c.want)
		}
	}
}

// A metric may be constrained more than once: the constraints AND
// together, which makes both ranges and redundant bounds legal. The
// engine takes the tightest bound per metric when building budgets.
func TestDuplicateMetricConstraintsAllowed(t *testing.T) {
	q, err := Parse(`SELECT CORR m ON memory < 50 MB AND memory < 100 MB`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Constraints) != 2 {
		t.Fatalf("Constraints = %+v", q.Constraints)
	}
	if q, err = Parse(`SELECT CORR m ON memory > 10 MB AND memory < 100 MB`); err != nil {
		t.Fatalf("range constraint rejected: %v", err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestConstraintUnitValidation(t *testing.T) {
	if _, err := Parse(`SELECT CORR m ON flops < 5 MB`); err == nil {
		t.Fatal("flops in MB should be rejected")
	}
	if _, err := Parse(`SELECT CORR m ON memory < 5 GB`); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	in := `SELECT CORR "resnet50@1" WITHIN 95% ON memory <= 80% AND latency < 30 ms EXEC batch=4 PICK smallest LIMIT 2`
	q, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", q.String(), err)
	}
	if q2.Ref != q.Ref || q2.Threshold != q.Threshold || len(q2.Constraints) != len(q.Constraints) ||
		q2.Pick != q.Pick || q2.Limit != q.Limit || q2.Exec["batch"] != "4" {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", q, q2)
	}
}

// Property: String() of a parsed query always re-parses to an equivalent
// query for a generated family of inputs.
func TestPropertyRoundTrip(t *testing.T) {
	metrics := []string{"memory", "flops", "latency"}
	picks := []string{"most_similar", "smallest", "fastest", "cheapest", "all"}
	f := func(thr uint8, mi, pi uint8, val uint16, lim uint8) bool {
		threshold := float64(thr % 101) // 0..100
		metric := metrics[int(mi)%len(metrics)]
		pick := picks[int(pi)%len(picks)]
		in := `SELECT CORR base WITHIN ` + itoa(int(threshold)) + `% ON ` +
			metric + ` <= ` + itoa(int(val%1000)) + `% PICK ` + pick
		if lim%2 == 0 {
			in += ` LIMIT ` + itoa(int(lim))
		}
		q, err := Parse(in)
		if err != nil {
			return false
		}
		q2, err := Parse(q.String())
		if err != nil {
			return false
		}
		return q2.Threshold == q.Threshold && q2.Pick == q.Pick && q2.Limit == q.Limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
