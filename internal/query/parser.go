package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse turns a query string into a validated AST.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) keyword(word string) bool {
	t := p.cur()
	if t.kind == tokIdent && strings.EqualFold(t.text, word) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.keyword(word) {
		return fmt.Errorf("query: expected %s, got %s", strings.ToUpper(word), p.cur())
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{Threshold: 0.95, Pick: PickMostSimilar}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Optional noise word "model(s)".
	if p.keyword("model") || p.keyword("models") {
	}

	sawTarget := false
	for p.cur().kind != tokEOF {
		switch {
		case p.keyword("CORR"):
			name, err := p.parseName("reference model")
			if err != nil {
				return nil, err
			}
			q.Ref = name
			sawTarget = true
		case p.keyword("TASK"):
			name, err := p.parseName("task category")
			if err != nil {
				return nil, err
			}
			q.Task = name
			sawTarget = true
		case p.keyword("WITHIN"):
			v, isPct, err := p.parseNumber()
			if err != nil {
				return nil, err
			}
			if isPct {
				v /= 100
			}
			q.Threshold = v
		case p.keyword("ON"):
			for {
				c, err := p.parseConstraint()
				if err != nil {
					return nil, err
				}
				q.Constraints = append(q.Constraints, c)
				if !p.keyword("AND") {
					break
				}
			}
		case p.keyword("EXEC"):
			if q.Exec == nil {
				q.Exec = make(map[string]string)
			}
			for p.cur().kind == tokIdent && p.peekIs(tokEquals) {
				key := p.next().text
				p.next() // '='
				val := p.cur()
				if val.kind != tokIdent && val.kind != tokNumber && val.kind != tokString {
					return nil, fmt.Errorf("query: expected value after %s=, got %s", key, val)
				}
				p.next()
				q.Exec[key] = val.text
			}
		case p.keyword("PICK"):
			t := p.cur()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("query: expected PICK criterion, got %s", t)
			}
			p.next()
			q.Pick = PickKind(strings.ToLower(t.text))
		case p.keyword("LIMIT"):
			t := p.cur()
			if t.kind != tokNumber {
				return nil, fmt.Errorf("query: expected LIMIT count, got %s", t)
			}
			p.next()
			n, err := strconv.Atoi(t.text)
			if err != nil {
				return nil, fmt.Errorf("query: bad LIMIT %q", t.text)
			}
			q.Limit = n
		default:
			return nil, fmt.Errorf("query: unexpected token %s", p.cur())
		}
	}
	if !sawTarget {
		return nil, fmt.Errorf("query: missing CORR or TASK clause")
	}
	return q, nil
}

func (p *parser) peekIs(kind tokenKind) bool {
	if p.pos+1 >= len(p.toks) {
		return false
	}
	return p.toks[p.pos+1].kind == kind
}

func (p *parser) parseName(what string) (string, error) {
	t := p.cur()
	if t.kind != tokIdent && t.kind != tokString {
		return "", fmt.Errorf("query: expected %s name, got %s", what, t)
	}
	p.next()
	return t.text, nil
}

// parseNumber reads a number with an optional trailing '%'.
func (p *parser) parseNumber() (float64, bool, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, false, fmt.Errorf("query: expected a number, got %s", t)
	}
	p.next()
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, false, fmt.Errorf("query: bad number %q", t.text)
	}
	if p.cur().kind == tokPercent {
		p.next()
		return v, true, nil
	}
	return v, false, nil
}

func (p *parser) parseConstraint() (Constraint, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return Constraint{}, fmt.Errorf("query: expected a metric, got %s", t)
	}
	p.next()
	c := Constraint{Metric: Metric(strings.ToLower(t.text))}

	op := p.cur()
	if op.kind != tokOp {
		return Constraint{}, fmt.Errorf("query: expected a comparison after %s, got %s", c.Metric, op)
	}
	p.next()
	switch op.text {
	case "<":
		c.Op = OpLT
	case "<=":
		c.Op = OpLE
	case ">":
		c.Op = OpGT
	case ">=":
		c.Op = OpGE
	case "==":
		c.Op = OpEQ
	default:
		return Constraint{}, fmt.Errorf("query: unknown operator %q", op.text)
	}

	v, isPct, err := p.parseNumber()
	if err != nil {
		return Constraint{}, err
	}
	c.Value = v
	if isPct {
		c.Unit = UnitRelative
		return c, nil
	}
	// Optional unit identifier (MB, GB, GFLOPS, TFLOPS, ms).
	if u := p.cur(); u.kind == tokIdent {
		switch strings.ToUpper(u.text) {
		case "MB":
			c.Unit = UnitMB
		case "GB":
			c.Unit = UnitGB
		case "GFLOPS", "GFLOP":
			c.Unit = UnitGFLOPs
		case "TFLOPS", "TFLOP":
			c.Unit = UnitTFLOPs
		case "MS":
			c.Unit = UnitMS
		default:
			return c, nil // not a unit; belongs to the next clause
		}
		p.next()
	}
	return c, nil
}
