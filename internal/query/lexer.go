// Package query implements Sommelier's DNN model query language (Figure
// 7 of the paper): a lexer, parser, typed AST, and validation for
// statements such as
//
//	SELECT CORR "resnet50@1" WITHIN 95%
//	ON memory <= 80% AND flops <= 50% AND latency <= 30ms
//	EXEC batch=8 device=gpu
//	PICK most_similar LIMIT 3
//
// Queries name a reference model (or a task category for a default
// reference), a functional-equivalence threshold, relative or absolute
// resource constraints, an optional execution spec, and final selection
// criteria. The engine in the root package executes parsed queries as a
// three-stage filter pipeline (§5.4).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPercent // '%'
	tokOp      // comparison operators
	tokEquals  // '=' inside exec-spec
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits the input into tokens. Identifiers and keywords are a single
// token kind; the parser matches keywords case-insensitively.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '"' || c == '\'':
			quote := input[i]
			j := i + 1
			for j < len(input) && input[j] != quote {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case c == '%':
			toks = append(toks, token{kind: tokPercent, text: "%", pos: i})
			i++
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{kind: tokOp, text: op, pos: i})
			i++
		case c == '=':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokOp, text: "==", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokEquals, text: "=", pos: i})
				i++
			}
		case unicode.IsDigit(c) || (c == '.' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentRune(c):
			j := i
			for j < len(input) && isIdentRune(rune(input[j])) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) ||
		strings.ContainsRune("_-@./:", c)
}
