// Package lsh implements locality-sensitive hashing with two hash
// families: cosine (random hyperplanes) for direction-dominated data and
// p-stable (quantized random projections, Datar et al. — the paper's
// reference [19]) for magnitude-dominated data. The resource-profile
// index uses the p-stable family over log-transformed resource vectors
// for fast distance-based range search (§5.3 of the paper).
package lsh

import (
	"fmt"
	"math"
	"sort"

	"sommelier/internal/tensor"
)

// Family selects the hash family.
type Family int

const (
	// Cosine hashes by random hyperplanes; distance is cosine distance.
	// Right for direction-dominated data.
	Cosine Family = iota
	// PStable hashes by quantized random projections (Datar et al.,
	// the paper's reference [19]); distance is Euclidean. Right for
	// magnitude-dominated data such as resource profiles.
	PStable
)

// Config sets the LSH shape: L hash tables of K hash functions each.
// More tables raise recall; more functions raise precision. The paper
// notes the optimal parameters vary by scenario and are set empirically.
type Config struct {
	Family Family
	Tables int
	Bits   int
	Dim    int
	// W is the PStable quantization width (ignored for Cosine).
	W    float64
	Seed uint64
}

// DefaultConfig returns parameters that work well for the 2–3 dimensional
// resource vectors Sommelier indexes.
func DefaultConfig(dim int) Config {
	return Config{Tables: 8, Bits: 6, Dim: dim, Seed: 0x10c4}
}

// Index is an LSH index mapping float vectors to opaque string ids. It
// is not safe for concurrent mutation.
type Index struct {
	cfg    Config
	planes [][][]float64 // [table][fn][dim]
	// offsets are the PStable per-function shifts b ∈ [0, W).
	offsets [][]float64 // [table][fn]
	tables  []map[uint64][]entry
	byID    map[string][]float64
	count   int
}

type entry struct {
	id  string
	vec []float64
}

// New creates an empty index. Dim must be positive.
func New(cfg Config) (*Index, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("lsh: dimension must be positive, got %d", cfg.Dim)
	}
	if cfg.Tables <= 0 {
		cfg.Tables = 8
	}
	if cfg.Bits <= 0 || cfg.Bits > 62 {
		cfg.Bits = 6
	}
	if cfg.Family == PStable && cfg.W <= 0 {
		cfg.W = 1
	}
	rng := tensor.NewRNG(cfg.Seed + 1)
	idx := &Index{
		cfg:     cfg,
		planes:  make([][][]float64, cfg.Tables),
		offsets: make([][]float64, cfg.Tables),
		tables:  make([]map[uint64][]entry, cfg.Tables),
		byID:    make(map[string][]float64),
	}
	for t := 0; t < cfg.Tables; t++ {
		idx.planes[t] = make([][]float64, cfg.Bits)
		idx.offsets[t] = make([]float64, cfg.Bits)
		for b := 0; b < cfg.Bits; b++ {
			plane := make([]float64, cfg.Dim)
			for d := range plane {
				plane[d] = rng.NormFloat64()
			}
			idx.planes[t][b] = plane
			idx.offsets[t][b] = rng.Float64() * cfg.W
		}
		idx.tables[t] = make(map[uint64][]entry)
	}
	return idx, nil
}

// Len returns the number of stored vectors.
func (i *Index) Len() int { return i.count }

func (i *Index) hash(table int, vec []float64) uint64 {
	if i.cfg.Family == PStable {
		// FNV-style mix of the quantized projections.
		h := uint64(1469598103934665603)
		for b, plane := range i.planes[table] {
			var dot float64
			for d, v := range vec {
				dot += v * plane[d]
			}
			q := int64(math.Floor((dot + i.offsets[table][b]) / i.cfg.W))
			h ^= uint64(q)
			h *= 1099511628211
		}
		return h
	}
	var h uint64
	for b, plane := range i.planes[table] {
		var dot float64
		for d, v := range vec {
			dot += v * plane[d]
		}
		if dot >= 0 {
			h |= 1 << uint(b)
		}
	}
	return h
}

// distance applies the family's metric.
func (i *Index) distance(a, b []float64) float64 {
	if i.cfg.Family == PStable {
		var s float64
		for d := range a {
			diff := a[d] - b[d]
			s += diff * diff
		}
		return math.Sqrt(s)
	}
	return cosineDistance(a, b)
}

// Insert stores vec under id. Inserting an existing id replaces its
// vector.
func (i *Index) Insert(id string, vec []float64) error {
	if len(vec) != i.cfg.Dim {
		return fmt.Errorf("lsh: vector dim %d, index dim %d", len(vec), i.cfg.Dim)
	}
	if _, exists := i.byID[id]; exists {
		i.Remove(id)
	}
	cp := append([]float64(nil), vec...)
	for t := range i.tables {
		h := i.hash(t, cp)
		i.tables[t][h] = append(i.tables[t][h], entry{id: id, vec: cp})
	}
	i.byID[id] = cp
	i.count++
	return nil
}

// Clone returns an independent deep copy of the index's mutable state
// (bucket maps and the id table). The hash planes and offsets are
// immutable after New and stay shared, as do the stored vectors — Insert
// copies its argument and nothing mutates a vector afterwards. Cloning
// is how read-only snapshots keep LSH probing available without locking
// against writers.
func (i *Index) Clone() *Index {
	c := &Index{
		cfg:     i.cfg,
		planes:  i.planes,
		offsets: i.offsets,
		tables:  make([]map[uint64][]entry, len(i.tables)),
		byID:    make(map[string][]float64, len(i.byID)),
		count:   i.count,
	}
	for t, tbl := range i.tables {
		nt := make(map[uint64][]entry, len(tbl))
		for h, bucket := range tbl {
			nt[h] = append([]entry(nil), bucket...)
		}
		c.tables[t] = nt
	}
	for id, vec := range i.byID {
		c.byID[id] = vec
	}
	return c
}

// Remove deletes id from the index. Unknown ids are ignored.
func (i *Index) Remove(id string) {
	vec, ok := i.byID[id]
	if !ok {
		return
	}
	for t := range i.tables {
		h := i.hash(t, vec)
		bucket := i.tables[t][h]
		for j, e := range bucket {
			if e.id == id {
				i.tables[t][h] = append(bucket[:j], bucket[j+1:]...)
				break
			}
		}
		if len(i.tables[t][h]) == 0 {
			delete(i.tables[t], h)
		}
	}
	delete(i.byID, id)
	i.count--
}

// Lookup returns the stored vector for id.
func (i *Index) Lookup(id string) ([]float64, bool) {
	v, ok := i.byID[id]
	return v, ok
}

// Match is one candidate returned by a query, with its cosine distance
// (1 - cosine similarity) from the query vector.
type Match struct {
	ID       string
	Vec      []float64
	Distance float64
}

// Query returns candidates whose buckets collide with vec in any table,
// filtered to cosine distance <= maxDist and sorted ascending by
// distance. It degrades to exact behaviour on small indexes by scanning
// when the candidate set would miss everything.
func (i *Index) Query(vec []float64, maxDist float64) ([]Match, error) {
	if len(vec) != i.cfg.Dim {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d", len(vec), i.cfg.Dim)
	}
	seen := make(map[string]bool)
	var out []Match
	consider := func(e entry) {
		if seen[e.id] {
			return
		}
		seen[e.id] = true
		d := i.distance(vec, e.vec)
		if d <= maxDist {
			out = append(out, Match{ID: e.id, Vec: e.vec, Distance: d})
		}
	}
	for t := range i.tables {
		h := i.hash(t, vec)
		for _, e := range i.tables[t][h] {
			consider(e)
		}
	}
	sortMatches(out)
	return out, nil
}

// QueryExact linearly scans every stored vector — the ablation baseline
// for the LSH-vs-linear bench and the fallback for exhaustive queries.
func (i *Index) QueryExact(vec []float64, maxDist float64) ([]Match, error) {
	if len(vec) != i.cfg.Dim {
		return nil, fmt.Errorf("lsh: query dim %d, index dim %d", len(vec), i.cfg.Dim)
	}
	var out []Match
	for id, v := range i.byID {
		d := i.distance(vec, v)
		if d <= maxDist {
			out = append(out, Match{ID: id, Vec: v, Distance: d})
		}
	}
	sortMatches(out)
	return out, nil
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		return ms[i].ID < ms[j].ID
	})
}

func cosineDistance(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - dot/(math.Sqrt(na)*math.Sqrt(nb))
}

// MemoryBytes estimates the index's in-memory footprint: plane storage,
// bucket entries, and the id map. Used by the Table 4 experiment.
func (i *Index) MemoryBytes() int64 {
	var total int64
	total += int64(i.cfg.Tables*i.cfg.Bits*i.cfg.Dim) * 8
	for _, v := range i.byID {
		// Vector stored once in byID plus one entry (pointer-sized
		// header + shared slice) per table.
		total += int64(len(v))*8 + 48
		total += int64(i.cfg.Tables) * 40
	}
	return total
}
