package lsh

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"sommelier/internal/tensor"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("expected error for zero dim")
	}
	idx, err := New(Config{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Fatal("new index not empty")
	}
}

func TestInsertQueryExactMatch(t *testing.T) {
	idx, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert("a", []float64{1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	ms, err := idx.Query([]float64{1, 0, 0}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ID != "a" || ms[0].Distance > 1e-12 {
		t.Fatalf("exact query = %+v", ms)
	}
}

func TestInsertDimMismatch(t *testing.T) {
	idx, _ := New(DefaultConfig(3))
	if err := idx.Insert("a", []float64{1, 2}); err == nil {
		t.Fatal("expected dim mismatch error")
	}
	if _, err := idx.Query([]float64{1}, 0.5); err == nil {
		t.Fatal("expected query dim mismatch error")
	}
}

func TestInsertReplaces(t *testing.T) {
	idx, _ := New(DefaultConfig(2))
	idx.Insert("a", []float64{1, 0})
	idx.Insert("a", []float64{0, 1})
	if idx.Len() != 1 {
		t.Fatalf("Len = %d after replace", idx.Len())
	}
	v, ok := idx.Lookup("a")
	if !ok || v[1] != 1 {
		t.Fatalf("Lookup after replace = %v", v)
	}
}

func TestRemove(t *testing.T) {
	idx, _ := New(DefaultConfig(2))
	idx.Insert("a", []float64{1, 0})
	idx.Insert("b", []float64{0, 1})
	idx.Remove("a")
	idx.Remove("ghost") // no-op
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
	ms, _ := idx.QueryExact([]float64{1, 0}, 2)
	for _, m := range ms {
		if m.ID == "a" {
			t.Fatal("removed id still returned")
		}
	}
}

func TestQuerySortedByDistance(t *testing.T) {
	idx, _ := New(DefaultConfig(2))
	idx.Insert("near", []float64{1, 0.05})
	idx.Insert("far", []float64{0.6, 0.8})
	ms, err := idx.QueryExact([]float64{1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].ID != "near" {
		t.Fatalf("ordering wrong: %+v", ms)
	}
	if ms[0].Distance > ms[1].Distance {
		t.Fatal("not sorted ascending")
	}
}

func TestQueryRecallOnClusters(t *testing.T) {
	// Vectors near the query direction must be found with high recall;
	// orthogonal vectors must be excluded by the distance filter.
	idx, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	near := 0
	for i := 0; i < 50; i++ {
		v := []float64{1, 0, 0, 0}
		for d := range v {
			v[d] += 0.05 * rng.NormFloat64()
		}
		idx.Insert(fmt.Sprintf("near%d", i), v)
		near++
	}
	for i := 0; i < 50; i++ {
		v := []float64{0, 0, 1, 0}
		for d := range v {
			v[d] += 0.05 * rng.NormFloat64()
		}
		idx.Insert(fmt.Sprintf("far%d", i), v)
	}
	ms, err := idx.Query([]float64{1, 0, 0, 0}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, m := range ms {
		if m.Distance > 0.05 {
			t.Fatalf("distance filter leaked %+v", m)
		}
		found++
	}
	if float64(found) < 0.8*float64(near) {
		t.Fatalf("recall too low: %d of %d near vectors", found, near)
	}
}

func TestQueryExactMatchesQuerySuperset(t *testing.T) {
	idx, _ := New(DefaultConfig(3))
	rng := tensor.NewRNG(7)
	for i := 0; i < 200; i++ {
		v := make([]float64, 3)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		idx.Insert(fmt.Sprintf("v%d", i), v)
	}
	q := []float64{0.5, 0.5, 0}
	approx, _ := idx.Query(q, 0.1)
	exact, _ := idx.QueryExact(q, 0.1)
	if len(approx) > len(exact) {
		t.Fatalf("LSH returned more than exact scan: %d vs %d", len(approx), len(exact))
	}
	exactIDs := make(map[string]bool, len(exact))
	for _, m := range exact {
		exactIDs[m.ID] = true
	}
	for _, m := range approx {
		if !exactIDs[m.ID] {
			t.Fatalf("LSH returned %q not in exact result", m.ID)
		}
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	idx, _ := New(DefaultConfig(3))
	base := idx.MemoryBytes()
	for i := 0; i < 100; i++ {
		idx.Insert(fmt.Sprintf("v%d", i), []float64{float64(i), 1, 2})
	}
	if idx.MemoryBytes() <= base {
		t.Fatal("memory estimate did not grow with inserts")
	}
}

// Property: cosine distance of a vector against itself is ~0, and any
// stored vector can be found by itself at a generous threshold.
func TestPropertySelfRetrieval(t *testing.T) {
	idx, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	f := func(raw [3]float64) bool {
		norm := 0.0
		for _, v := range raw {
			// Skip magnitudes whose squared norms overflow float64;
			// resource vectors are always modest.
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
			norm += v * v
		}
		if norm < 1e-6 {
			return true
		}
		id := fmt.Sprintf("p%d", n)
		n++
		if err := idx.Insert(id, raw[:]); err != nil {
			return false
		}
		ms, err := idx.Query(raw[:], 1e-9)
		if err != nil {
			return false
		}
		for _, m := range ms {
			if m.ID == id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
