package serving

import (
	"context"
	"reflect"
	"testing"
	"time"

	"sommelier/internal/faults"
	"sommelier/internal/obs"
)

func optCandidates() []ModelChoice {
	return []ModelChoice{
		{ID: "flagship", ServiceMS: 10, Level: 1.0},
		{ID: "small", ServiceMS: 4, Level: 0.85},
	}
}

// TestDeprecatedWrappersMatchNewAPI pins the compatibility contract:
// the legacy entry points are thin wrappers, so they must produce
// byte-identical results to the option-based simulator.
func TestDeprecatedWrappersMatchNewAPI(t *testing.T) {
	w := Workload{Requests: 300, MeanArrivalMS: 6, Seed: 21}

	p1, err := NewSwitchingPolicy(optCandidates(), 5)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	old, err := Simulate(w, p1, 2)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	p2, err := NewSwitchingPolicy(optCandidates(), 5)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	sim, err := NewSimulator(WithPolicy(p2), WithServers(2))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	res, err := sim.Run(context.Background(), w)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(old, res) {
		t.Fatalf("Simulate diverges from NewSimulator+Run:\nold: %+v\nnew: %+v", old, res)
	}

	fm := FailureModel{SwitchFailProb: 0.4, Seed: 8}
	p3, _ := NewSwitchingPolicy(optCandidates(), 5)
	oldF, err := SimulateWithFailures(w, p3, 1, fm)
	if err != nil {
		t.Fatalf("SimulateWithFailures: %v", err)
	}
	p4, _ := NewSwitchingPolicy(optCandidates(), 5)
	simF, err := NewSimulator(WithPolicy(p4), WithFailureModel(fm))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	resF, err := simF.Run(context.Background(), w)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !reflect.DeepEqual(oldF, resF) {
		t.Fatalf("SimulateWithFailures diverges from option API")
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	if _, err := NewSimulator(); err == nil {
		t.Error("NewSimulator without policy succeeded")
	}
	if _, err := NewSimulator(WithPolicy(FixedPolicy{Model: optCandidates()[0]}),
		WithFailureModel(FailureModel{SwitchFailProb: 1.5})); err == nil {
		t.Error("out-of-range failure probability accepted")
	}
	sim, err := NewSimulator(WithPolicy(FixedPolicy{Model: optCandidates()[0]}), WithServers(-3))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if sim.cfg.servers != 1 {
		t.Fatalf("non-positive servers = %d, want clamp to 1", sim.cfg.servers)
	}
}

// TestWithSeedFallback checks the base seed feeds both the workload
// arrivals (when Workload.Seed is zero) and the switch-fault schedule
// (when FailureModel.Seed is zero).
func TestWithSeedFallback(t *testing.T) {
	w := Workload{Requests: 200, MeanArrivalMS: 6} // Seed 0 → simulator seed
	fm := FailureModel{SwitchFailProb: 0.5}        // Seed 0 → simulator seed
	run := func(seed uint64) Result {
		p, err := NewSwitchingPolicy(optCandidates(), 5)
		if err != nil {
			t.Fatalf("policy: %v", err)
		}
		sim, err := NewSimulator(WithPolicy(p), WithFailureModel(fm), WithSeed(seed))
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		res, err := sim.Run(context.Background(), w)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same base seed produced different results")
	}
	c := run(43)
	if reflect.DeepEqual(a.Latencies, c.Latencies) {
		t.Fatal("different base seeds produced identical arrival streams")
	}
}

// TestWithFaultScheduleWins checks an explicit schedule overrides the
// flat probability: a schedule that kills every switch forces every
// attempt to fail even with SwitchFailProb 0.
func TestWithFaultScheduleWins(t *testing.T) {
	w := Workload{Requests: 200, MeanArrivalMS: 6, Seed: 4}
	sched := faults.NewSchedule(1)
	sched.Set(SwitchTarget(0), faults.Kill(0, 1<<30))
	p, err := NewSwitchingPolicy(optCandidates(), 5)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	sim, err := NewSimulator(WithPolicy(p), WithFaultSchedule(sched))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	res, err := sim.Run(context.Background(), w)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SwitchAttempts == 0 {
		t.Fatal("workload attempted no switches; test is vacuous")
	}
	if res.FailedSwitches != res.SwitchAttempts {
		t.Fatalf("kill-all schedule: %d/%d switches failed, want all",
			res.FailedSwitches, res.SwitchAttempts)
	}
	if res.ModelShare["flagship"] != w.Requests {
		t.Fatalf("with all switches dead every request should run the first-deployed model: %v", res.ModelShare)
	}
}

// TestSlowSwitchWindow checks a Latency fault window slows the switched
// request instead of failing the switch.
func TestSlowSwitchWindow(t *testing.T) {
	w := Workload{Requests: 200, MeanArrivalMS: 6, Seed: 4} // enough backlog to trigger switches
	run := func(sched *faults.Schedule) Result {
		p, err := NewSwitchingPolicy(optCandidates(), 5)
		if err != nil {
			t.Fatalf("policy: %v", err)
		}
		opts := []Option{WithPolicy(p)}
		if sched != nil {
			opts = append(opts, WithFaultSchedule(sched))
		}
		sim, err := NewSimulator(opts...)
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		res, err := sim.Run(context.Background(), w)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	base := run(nil)
	sched := faults.NewSchedule(1)
	sched.Set(SwitchTarget(0), faults.Slow(0, 1<<30, 30*time.Millisecond))
	slow := run(sched)
	if base.SwitchAttempts == 0 {
		t.Fatal("workload attempted no switches; test is vacuous")
	}
	if slow.FailedSwitches != 0 {
		t.Fatalf("slow window failed %d switches, want 0", slow.FailedSwitches)
	}
	if slow.SwitchAttempts == 0 {
		t.Fatal("slow run attempted no switches; test is vacuous")
	}
	if slow.Summary().MaxV <= base.Summary().MaxV {
		t.Fatalf("slow switches should raise max latency: %v vs %v",
			slow.Summary().MaxV, base.Summary().MaxV)
	}
}

func TestRunObservesResult(t *testing.T) {
	o := obs.New(obs.WithClock(obs.NewTickClock(0, 1)))
	w := Workload{Requests: 100, MeanArrivalMS: 6, Seed: 2}
	sim, err := NewSimulator(WithPolicy(FixedPolicy{Model: optCandidates()[0]}), WithObserver(o))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, err := sim.Run(context.Background(), w); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := o.Snapshot()
	if h, ok := snap.Histograms["serving_fixed_latency_ms"]; !ok || h.Count != 100 {
		t.Fatalf("latency histogram missing or short: %+v", snap.Histograms)
	}
	if _, ok := snap.Histograms["serving_run_ms"]; !ok {
		t.Fatal("run timing histogram missing")
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sim, err := NewSimulator(WithPolicy(FixedPolicy{Model: optCandidates()[0]}))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if _, err := sim.Run(ctx, Workload{Requests: 5000, MeanArrivalMS: 1, Seed: 1}); err == nil {
		t.Fatal("Run with cancelled ctx succeeded")
	}
}

// TestRunComparisonContextMatchesDeprecated pins the observed-comparison
// wrapper chain.
func TestRunComparisonContextMatchesDeprecated(t *testing.T) {
	w := Workload{Requests: 200, MeanArrivalMS: 6, Seed: 13}
	fm := FailureModel{SwitchFailProb: 0.3, Seed: 5}
	a, err := RunComparisonWithFailures(w, optCandidates(), 5, fm)
	if err != nil {
		t.Fatalf("RunComparisonWithFailures: %v", err)
	}
	b, err := RunComparisonContext(context.Background(), nil, w, optCandidates(), 5, fm)
	if err != nil {
		t.Fatalf("RunComparisonContext: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("deprecated comparison wrapper diverges from RunComparisonContext")
	}
}
