package serving

import (
	"math"
	"testing"

	"sommelier/internal/stats"
)

func ladder() []ModelChoice {
	return []ModelChoice{
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.97},
		{ID: "compact", ServiceMS: 2, Level: 0.94},
	}
}

func heavyWorkload(seed uint64) Workload {
	return Workload{
		Requests:      4000,
		MeanArrivalMS: 22,
		BurstEvery:    200,
		BurstLen:      60,
		BurstFactor:   8,
		Seed:          seed,
	}
}

func TestArrivalsMonotone(t *testing.T) {
	w := heavyWorkload(1)
	arr := arrivals(w)
	if len(arr) != w.Requests {
		t.Fatalf("arrivals = %d", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i] < arr[i-1] {
			t.Fatal("arrival times not monotone")
		}
	}
}

func TestArrivalsBurstsCompressGaps(t *testing.T) {
	base := Workload{Requests: 1000, MeanArrivalMS: 10, Seed: 2}
	bursty := base
	bursty.BurstEvery, bursty.BurstLen, bursty.BurstFactor = 100, 50, 10
	a := arrivals(base)
	b := arrivals(bursty)
	if b[len(b)-1] >= a[len(a)-1] {
		t.Fatal("bursts should compress the total span")
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Workload{}, FixedPolicy{}, 1); err == nil {
		t.Fatal("expected workload validation error")
	}
	if _, err := RunComparison(heavyWorkload(1), nil, 4); err == nil {
		t.Fatal("expected no-candidates error")
	}
}

func TestFixedPolicyUnderLightLoadHasServiceLatency(t *testing.T) {
	w := Workload{Requests: 500, MeanArrivalMS: 1000, Seed: 3}
	r, err := Simulate(w, FixedPolicy{Model: ladder()[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With huge mean gaps queueing is rare (exponential gaps can still
	// occasionally collide): latency is never below the service time
	// and almost always equals it.
	atService := 0
	for _, l := range r.Latencies {
		if l < 20-1e-9 {
			t.Fatalf("latency %g below service time", l)
		}
		if math.Abs(l-20) < 1e-9 {
			atService++
		}
	}
	if float64(atService) < 0.95*float64(len(r.Latencies)) {
		t.Fatalf("only %d/%d requests unqueued under light load", atService, len(r.Latencies))
	}
}

func TestSwitchingStepsDownUnderLoad(t *testing.T) {
	p, err := NewSwitchingPolicy(ladder(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Choose(0); got.ID != "flagship" {
		t.Fatalf("idle choice = %s", got.ID)
	}
	if got := p.Choose(5); got.ID != "mid" {
		t.Fatalf("mid-load choice = %s", got.ID)
	}
	if got := p.Choose(50); got.ID != "compact" {
		t.Fatalf("heavy-load choice = %s", got.ID)
	}
}

func TestSwitchingReducesTailLatency(t *testing.T) {
	w := heavyWorkload(7)
	cmp, err := RunComparison(w, ladder(), 4)
	if err != nil {
		t.Fatal(err)
	}
	p90base := stats.Percentile(cmp.Baseline.Latencies, 90)
	p90switch := stats.Percentile(cmp.Switching.Latencies, 90)
	p90scale := stats.Percentile(cmp.ScaleOut.Latencies, 90)
	p90comb := stats.Percentile(cmp.Combined.Latencies, 90)

	// The paper's shape: switching wins big (≈6×); scale-out helps far
	// less; combined is at least as good as switching.
	if p90switch*2 > p90base {
		t.Fatalf("switching should cut p90 by >2x: base=%.1f switch=%.1f", p90base, p90switch)
	}
	if p90scale <= p90switch {
		t.Fatalf("scale-out alone (%.1f) should trail switching (%.1f)", p90scale, p90switch)
	}
	if p90comb > p90switch*1.05 {
		t.Fatalf("combined (%.1f) should not regress vs switching (%.1f)", p90comb, p90switch)
	}
	// Accuracy cost is modest: mean level stays high.
	if cmp.Switching.MeanLevel < 0.9 {
		t.Fatalf("switching mean level = %.3f", cmp.Switching.MeanLevel)
	}
	// Multiple models actually served.
	if len(cmp.Switching.ModelShare) < 2 {
		t.Fatalf("switching used %d models", len(cmp.Switching.ModelShare))
	}
}

func TestScaleOutBeatsBaseline(t *testing.T) {
	w := heavyWorkload(9)
	flagship := ladder()[0]
	base, err := Simulate(w, FixedPolicy{Model: flagship}, 1)
	if err != nil {
		t.Fatal(err)
	}
	scale, err := SimulateRacing(w, flagship)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Percentile(scale.Latencies, 90) >= stats.Percentile(base.Latencies, 90) {
		t.Fatal("scale-out should improve p90 over one server")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	w := heavyWorkload(4)
	a, err := Simulate(w, FixedPolicy{Model: ladder()[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(w, FixedPolicy{Model: ladder()[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestMoreServersNeverWorse(t *testing.T) {
	w := heavyWorkload(5)
	p, _ := NewSwitchingPolicy(ladder(), 4)
	one, err := Simulate(w, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Simulate(w, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Percentile(four.Latencies, 99) > stats.Percentile(one.Latencies, 99) {
		t.Fatal("adding servers worsened p99")
	}
}

func TestSortedModelShare(t *testing.T) {
	r := Result{ModelShare: map[string]int{"b": 2, "a": 1}}
	got := SortedModelShare(r)
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("SortedModelShare = %v", got)
	}
}
