package serving

import "testing"

func TestNewSLOPolicyValidation(t *testing.T) {
	if _, err := NewSLOPolicy(nil, 10); err == nil {
		t.Fatal("expected no-candidates error")
	}
	if _, err := NewSLOPolicy(ladder(), 0); err == nil {
		t.Fatal("expected bad-target error")
	}
}

func TestSLOPolicySortsByLevel(t *testing.T) {
	shuffled := []ModelChoice{
		{ID: "compact", ServiceMS: 2, Level: 0.94},
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.97},
	}
	p, err := NewSLOPolicy(shuffled, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Candidates[0].ID != "flagship" {
		t.Fatalf("candidates not sorted by level: %+v", p.Candidates)
	}
}

func TestSLOPolicyIdleServesFlagship(t *testing.T) {
	p, err := NewSLOPolicy(ladder(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Choose(0); got.ID != "flagship" {
		t.Fatalf("idle choice = %s", got.ID)
	}
}

func TestSLOPolicyDowngradesWhenDeadlineThreatened(t *testing.T) {
	// Target 30ms, flagship 20ms: with one request queued, flagship
	// prediction = 20 (drain) + 20 = 40 > 30 → downgrade to mid
	// (20 + 8 = 28 <= 30).
	p, err := NewSLOPolicy(ladder(), 30)
	if err != nil {
		t.Fatal(err)
	}
	p.Choose(0)
	if got := p.Choose(1); got.ID != "mid" {
		t.Fatalf("1-deep queue choice = %s", got.ID)
	}
}

func TestSLOPolicyFallsBackToCheapest(t *testing.T) {
	p, err := NewSLOPolicy(ladder(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Deep queue: nothing meets 5ms; the cheapest model serves.
	if got := p.Choose(50); got.ID != "compact" {
		t.Fatalf("overloaded choice = %s", got.ID)
	}
}

func TestSLOPolicyImprovesAttainment(t *testing.T) {
	w := heavyWorkload(11)
	const target = 60
	fixed, err := Simulate(w, FixedPolicy{Model: ladder()[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	slo, err := NewSLOPolicy(ladder(), target)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Simulate(w, slo, 1)
	if err != nil {
		t.Fatal(err)
	}
	fixedAtt := SLOAttainment(fixed.Latencies, target)
	adaptAtt := SLOAttainment(adaptive.Latencies, target)
	// The fixed flagship is overloaded in this regime (attainment a few
	// percent); the SLO policy must recover most requests. Requests
	// arriving during a burst's downgrade transition still wait behind
	// flagship-priced work, so perfect attainment is not achievable.
	if adaptAtt < fixedAtt+0.4 {
		t.Fatalf("SLO policy attainment %.2f should far exceed fixed %.2f", adaptAtt, fixedAtt)
	}
	if adaptAtt < 0.55 {
		t.Fatalf("SLO attainment too low: %.2f", adaptAtt)
	}
	// Quality degrades only when needed.
	if adaptive.MeanLevel < 0.9 {
		t.Fatalf("mean level %.3f", adaptive.MeanLevel)
	}
}

func TestSLOAttainmentEdgeCases(t *testing.T) {
	if SLOAttainment(nil, 10) != 0 {
		t.Fatal("empty attainment should be 0")
	}
	if got := SLOAttainment([]float64{5, 15}, 10); got != 0.5 {
		t.Fatalf("attainment = %g", got)
	}
}
