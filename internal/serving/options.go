package serving

import (
	"context"
	"fmt"

	"sommelier/internal/faults"
	"sommelier/internal/obs"
)

// Option configures a Simulator. Options compose left to right; later
// options win. This is the serving simulator's primary configuration
// surface — the legacy entry points (Simulate, SimulateWithFailures,
// SimulateRacing, RunComparison…) are Deprecated wrappers over it, and
// the legacy Workload/FailureModel structs accept no new fields
// (enforced by sommlint's optcheck, exactly as the root package's
// Options struct is frozen).
type Option func(*simConfig)

// simConfig is the resolved simulator configuration.
type simConfig struct {
	servers int
	policy  Policy
	fm      FailureModel
	sched   *faults.Schedule
	obs     *obs.Observer
	clock   obs.Clock
	seed    uint64
}

// WithServers sets how many identical FIFO servers the simulator runs
// (default 1). Requests join the shortest backlog.
func WithServers(n int) Option {
	return func(c *simConfig) { c.servers = n }
}

// WithPolicy sets the model-selection policy — required. Stateful
// policies (SLOPolicy, SwitchCostPolicy) must not be shared between
// simulators.
func WithPolicy(p Policy) Option {
	return func(c *simConfig) { c.policy = p }
}

// WithFailureModel subjects model switches to the failure model: switch
// attempts fail with fm.SwitchFailProb and fall back to the previously
// deployed model. The failure sequence is drawn from a per-server
// faults.Schedule stream (see WithFaultSchedule for full window
// control), so it is byte-replayable and independent of how requests
// interleave across servers.
func WithFailureModel(fm FailureModel) Option {
	return func(c *simConfig) { c.fm = fm }
}

// WithFaultSchedule drives switch faults from an explicit
// faults.Schedule instead of a flat probability: the decision for the
// n-th switch attempt on server s comes from the schedule's
// SwitchTarget(s) stream, so switches can be killed for a window of
// operations, slowed (a Latency decision adds the load delay to the
// switched request), or flaked at a rate — byte-replayable from the
// schedule seed. A non-nil schedule takes precedence over
// WithFailureModel's probability.
func WithFaultSchedule(s *faults.Schedule) Option {
	return func(c *simConfig) { c.sched = s }
}

// WithObserver attaches an observability handle: every Run records its
// result through ObserveResult (per-policy latency histograms and
// switch counters) plus a serving_run_ms timing. A nil observer
// disables observation.
func WithObserver(o *obs.Observer) Option {
	return func(c *simConfig) { c.obs = o }
}

// WithClock overrides the clock used to time simulator runs into the
// observer's serving_run_ms histogram (default: the observer's own
// clock). Simulation time itself is virtual — arrival and service
// times come from the workload, never from a clock — so this only
// affects observation, not results.
func WithClock(clk obs.Clock) Option {
	return func(c *simConfig) { c.clock = clk }
}

// WithSeed sets the simulator's base seed: it drives the switch-failure
// schedule when the failure model's own Seed is zero, and the arrival
// process when the workload's Seed is zero. Equal seeds give
// byte-identical results.
func WithSeed(seed uint64) Option {
	return func(c *simConfig) { c.seed = seed }
}

// Simulator is the discrete-event inference-server simulator behind the
// paper's §7.1 tail-latency experiment, configured once and run against
// workloads. Construct with NewSimulator; a Simulator is cheap and
// single-use-safe, but stateful policies make sharing one across
// concurrent Runs unsafe.
type Simulator struct {
	cfg simConfig
}

// NewSimulator validates the options and returns a simulator. A policy
// is required; everything else has working defaults (one server, no
// faults, no observation).
func NewSimulator(opts ...Option) (*Simulator, error) {
	cfg := simConfig{servers: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.policy == nil {
		return nil, fmt.Errorf("serving: simulator needs a policy (WithPolicy)")
	}
	if cfg.servers <= 0 {
		cfg.servers = 1
	}
	if err := cfg.fm.validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// Run executes the workload on the simulator's servers under its policy
// and fault configuration. Cancelling ctx aborts the event loop between
// arrivals.
func (s *Simulator) Run(ctx context.Context, w Workload) (Result, error) {
	stop := s.timeRun()
	defer stop()
	res, err := runSim(ctx, s.cfg, w)
	if err != nil {
		return res, err
	}
	ObserveResult(s.cfg.obs, res)
	return res, nil
}

// RunRacing executes the workload under the paper's idealized scale-out
// configuration (two servers racing under light load) with the fixed
// model. The simulator's policy is not consulted — racing always serves
// one model — but its observer and clock are.
func (s *Simulator) RunRacing(ctx context.Context, w Workload, model ModelChoice) (Result, error) {
	stop := s.timeRun()
	defer stop()
	res, err := runRacing(ctx, s.cfg, w, model)
	if err != nil {
		return res, err
	}
	ObserveResult(s.cfg.obs, res)
	return res, nil
}

// timeRun times one Run into the observer's serving_run_ms histogram,
// through the configured clock when one was supplied.
func (s *Simulator) timeRun() func() {
	o := s.cfg.obs
	if o == nil {
		return func() {}
	}
	if s.cfg.clock == nil {
		stop := o.Time("serving_run_ms")
		return func() { stop() }
	}
	start := s.cfg.clock.NowNanos()
	return func() {
		o.Histogram("serving_run_ms").Observe(float64(s.cfg.clock.NowNanos()-start) / 1e6)
	}
}

// SwitchTarget names server s's model-switch stream in a
// faults.Schedule: the n-th switch attempted on that server draws the
// n-th decision of this target, regardless of what other servers do.
func SwitchTarget(server int) string {
	return fmt.Sprintf("server%d/switch", server)
}

// switchSchedule resolves the schedule driving switch faults: an
// explicit WithFaultSchedule wins; otherwise a flat SwitchFailProb
// becomes an always-open Flake window per server, seeded by the failure
// model's seed (falling back to the simulator seed); no faults at all
// yields nil.
func switchSchedule(cfg simConfig) *faults.Schedule {
	if cfg.sched != nil {
		return cfg.sched
	}
	if cfg.fm.SwitchFailProb <= 0 {
		return nil
	}
	seed := cfg.fm.Seed
	if seed == 0 {
		seed = cfg.seed
	}
	s := faults.NewSchedule(seed)
	for i := 0; i < cfg.servers; i++ {
		s.Set(SwitchTarget(i), faults.Flake(0, 0, cfg.fm.SwitchFailProb))
	}
	return s
}
