package cluster

// JainIndex is Jain's fairness index (Σx)² / (n·Σx²) over the samples:
// 1 when every class is treated equally, approaching 1/n as one class
// monopolizes the resource. The cluster result applies it to per-class
// SLO attainment, so it reads as "does the tail land evenly, or does
// one class absorb it". Empty or all-zero input reports 1 (nothing to
// be unfair about).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
