// Package cluster generalizes the single-server serving simulator
// (internal/serving) to a multi-instance serving cluster on a shared
// virtual clock — the BLIS-style substrate the ROADMAP's "heavy traffic
// from millions of users" scenarios run on. N instances each run the
// existing switch-policy simulation (deployed model, FIFO queue,
// FLOPs-proportional service times); a pluggable Router spreads
// requests across them (round-robin, least-loaded, model-affinity via
// the hub cluster ring's series-aware placement keys); a pluggable
// Admission controller (token bucket) sheds load at the front door; and
// instance kill/slow fault windows come from faults.Schedule, the same
// per-target seeded streams the hub chaos suite replays.
//
// The simulation is a discrete-event loop: one event heap ordered by
// (virtual time, completion-before-arrival, push order) drives arrivals
// and service completions for all instances against one shared clock.
// Everything is deterministic for a fixed seed — workload generation,
// routing, admission, fault decisions and metric aggregation depend
// only on inputs, never on wall clocks, map order or global randomness
// (detcheck-enforced) — so two runs of the same scenario produce
// byte-identical per-class summaries at any instance count.
//
// Results are reported per SLO class: latency percentiles (raw, plus
// obs histograms when an Observer is attached), SLO attainment against
// each class's latency target, and a Jain fairness index across
// classes — the numbers that say not just how fast the cluster is, but
// who the tail lands on.
package cluster

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	hubcluster "sommelier/internal/cluster"
	"sommelier/internal/faults"
	"sommelier/internal/obs"
	"sommelier/internal/serving"
	"sommelier/internal/stats"
)

// Class is one SLO class: a share of the generated traffic and a
// per-request latency objective.
type Class struct {
	// Name identifies the class ("gold", "batch", …).
	Name string
	// Weight is the class's share of generated traffic (weights are
	// normalized; ignored for trace replay, where the trace assigns
	// classes).
	Weight float64
	// TargetMS is the class's latency objective. Zero or negative means
	// the class has no SLO; its attainment reports as 1.
	TargetMS float64
}

// Request is one inference request entering the cluster.
type Request struct {
	// Seq is the request's position in the workload stream (assigned by
	// the Source).
	Seq int64
	// ArriveMS is the arrival time on the shared virtual clock.
	ArriveMS float64
	// Class names the request's SLO class.
	Class string
	// Series is the model-family affinity key (the zoo's scaling-law
	// series): requests of one series prefer one instance under the
	// affinity router, so the deployed model stays warm. Empty means no
	// affinity.
	Series string
}

// InstanceView is the router's read-only view of one instance at a
// routing decision.
type InstanceView struct {
	// ID is the instance index.
	ID int
	// QueueLen counts requests assigned and unfinished (waiting plus in
	// service) — the same backlog the switching policies key off.
	QueueLen int
	// Deployed is the currently installed model's ID ("" before the
	// first request).
	Deployed string
}

// Option configures a Sim.
type Option func(*config)

type config struct {
	instances int
	newPolicy func() serving.Policy
	router    Router
	admission Admission
	classes   []Class
	fm        serving.FailureModel
	sched     *faults.Schedule
	obs       *obs.Observer
	clock     obs.Clock
	seed      uint64
}

// WithInstances sets the number of serving instances (default 1).
func WithInstances(n int) Option {
	return func(c *config) { c.instances = n }
}

// WithPolicy sets the per-instance policy factory — required. Each
// instance gets its own policy from the factory, so stateful policies
// (SLOPolicy, SwitchCostPolicy) track their own instance's deployments.
func WithPolicy(newPolicy func() serving.Policy) Option {
	return func(c *config) { c.newPolicy = newPolicy }
}

// WithRouter sets the instance-selection router (default round-robin).
func WithRouter(r Router) Option {
	return func(c *config) { c.router = r }
}

// WithAdmission sets the admission controller (default: admit all).
func WithAdmission(a Admission) Option {
	return func(c *config) { c.admission = a }
}

// WithClasses declares the SLO classes: their traffic weights (for
// generated workloads) and latency targets. Classes observed in a
// trace but not declared here are reported with no SLO.
func WithClasses(classes ...Class) Option {
	return func(c *config) { c.classes = append([]Class(nil), classes...) }
}

// WithFailureModel subjects model switches on every instance to the
// failure model, exactly as in the single-server simulator: the n-th
// switch attempt on instance i draws from the SwitchTarget(i) stream.
func WithFailureModel(fm serving.FailureModel) Option {
	return func(c *config) { c.fm = fm }
}

// WithFaultSchedule drives instance availability and switch faults from
// an explicit faults.Schedule: the n-th request routed to instance i
// draws the InstanceTarget(i) stream (ConnError/ServerError ⇒ the
// instance is down for that request and the cluster fails over;
// Latency ⇒ the request is served with the injected delay added), and
// switch attempts draw the SwitchTarget(i) stream. Per-target streams
// make every fault window byte-replayable from the schedule seed.
func WithFaultSchedule(s *faults.Schedule) Option {
	return func(c *config) { c.sched = s }
}

// WithObserver attaches an observability handle: per-class latency
// histograms (servecluster_<class>_latency_ms) and admission/fault
// counters, plus a servecluster_run_ms run timing.
func WithObserver(o *obs.Observer) Option {
	return func(c *config) { c.obs = o }
}

// WithClock overrides the clock used to time Run into the observer
// (default: the observer's own clock). Simulation time is virtual and
// never reads a clock, so results are unaffected.
func WithClock(clk obs.Clock) Option {
	return func(c *config) { c.clock = clk }
}

// WithSeed sets the base seed: it drives the internally built
// switch-failure schedule when the failure model's Seed is zero.
// Workload randomness is owned by the Source's own seed.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// Sim is the multi-instance serving-cluster simulator. Construct with
// New; a Sim is single-use per Run when its router, admission
// controller or policies carry state (they usually do), so build a
// fresh Sim per scenario cell.
type Sim struct {
	cfg config
}

// New validates the options and returns a simulator.
func New(opts ...Option) (*Sim, error) {
	cfg := config{instances: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.newPolicy == nil {
		return nil, fmt.Errorf("serving/cluster: simulator needs a policy factory (WithPolicy)")
	}
	if cfg.instances <= 0 {
		cfg.instances = 1
	}
	if cfg.fm.SwitchFailProb < 0 || cfg.fm.SwitchFailProb > 1 {
		return nil, fmt.Errorf("serving/cluster: switch failure probability %v outside [0,1]", cfg.fm.SwitchFailProb)
	}
	if cfg.router == nil {
		cfg.router = NewRoundRobin()
	}
	if cfg.admission == nil {
		cfg.admission = AdmitAll()
	}
	seen := make(map[string]bool, len(cfg.classes))
	for _, cl := range cfg.classes {
		if cl.Name == "" {
			return nil, fmt.Errorf("serving/cluster: class with empty name")
		}
		if seen[cl.Name] {
			return nil, fmt.Errorf("serving/cluster: duplicate class %q", cl.Name)
		}
		seen[cl.Name] = true
	}
	return &Sim{cfg: cfg}, nil
}

// InstanceTarget names instance i's availability stream in a
// faults.Schedule: the n-th request routed to that instance draws the
// n-th decision of this target.
func InstanceTarget(instance int) string {
	return fmt.Sprintf("instance%d", instance)
}

// SwitchTarget names instance i's model-switch stream: the n-th switch
// attempted on that instance draws the n-th decision.
func SwitchTarget(instance int) string {
	return fmt.Sprintf("instance%d/switch", instance)
}

// event kinds, ordered so a completion at time t frees its instance
// before an arrival at the same t is routed (mirroring the
// single-server simulator's `finish <= at` backlog retirement).
const (
	evDone = iota
	evArrival
)

// event is one entry of the shared-clock heap.
type event struct {
	at   float64
	kind int
	push int64 // global push counter: the deterministic tie-break
	inst int   // evDone: which instance completed
	req  Request
}

// eventHeap orders events by (at, kind, push).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].push < h[j].push
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// job is one admitted request bound to an instance.
type job struct {
	req     Request
	svcMS   float64
	level   float64
	modelID string
}

// instance is one simulated serving instance.
type instance struct {
	policy       serving.Policy
	deployed     serving.ModelChoice
	haveDeployed bool
	busy         bool
	queue        []job
}

func (in *instance) queueLen() int {
	n := len(in.queue)
	if in.busy {
		n++
	}
	return n
}

// classAgg accumulates one class's statistics during a run.
type classAgg struct {
	target    float64
	arrived   int64
	rejected  int64
	failed    int64
	served    int64
	latencies []float64
	levelSum  float64
}

// runState is the mutable state of one Run.
type runState struct {
	cfg       config
	sched     *faults.Schedule
	instances []*instance
	events    eventHeap
	pushes    int64
	processed int64

	classes map[string]*classAgg

	requests       int64
	rejected       int64
	failed         int64
	failovers      int64
	switchAttempts int64
	failedSwitches int64
}

// Run drives the workload source through the cluster to exhaustion and
// returns the per-class results. Cancelling ctx aborts the event loop.
func (s *Sim) Run(ctx context.Context, src Source) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("serving/cluster: nil workload source")
	}
	stop := s.timeRun()
	defer stop()

	st := &runState{
		cfg:     s.cfg,
		sched:   s.resolveSchedule(),
		classes: make(map[string]*classAgg),
	}
	for _, cl := range s.cfg.classes {
		st.classes[cl.Name] = &classAgg{target: cl.TargetMS}
	}
	for i := 0; i < s.cfg.instances; i++ {
		st.instances = append(st.instances, &instance{policy: s.cfg.newPolicy()})
	}

	if req, ok := src.Next(); ok {
		st.pushEvent(event{at: req.ArriveMS, kind: evArrival, req: req})
	}
	for st.events.Len() > 0 {
		st.processed++
		if st.processed%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("serving/cluster: simulation aborted: %w", err)
			}
		}
		e := heap.Pop(&st.events).(event)
		switch e.kind {
		case evArrival:
			st.arrive(e.req, e.at)
			if req, ok := src.Next(); ok {
				st.pushEvent(event{at: req.ArriveMS, kind: evArrival, req: req})
			}
		case evDone:
			st.complete(e.inst, e.at)
		}
	}
	res := st.result(s.cfg, src)
	return res, nil
}

// resolveSchedule picks the fault schedule: an explicit one wins; a
// flat switch-failure probability becomes an always-open Flake window
// per instance's switch target; no faults yields nil.
func (s *Sim) resolveSchedule() *faults.Schedule {
	if s.cfg.sched != nil {
		return s.cfg.sched
	}
	if s.cfg.fm.SwitchFailProb <= 0 {
		return nil
	}
	seed := s.cfg.fm.Seed
	if seed == 0 {
		seed = s.cfg.seed
	}
	sched := faults.NewSchedule(seed)
	for i := 0; i < s.cfg.instances; i++ {
		sched.Set(SwitchTarget(i), faults.Flake(0, 0, s.cfg.fm.SwitchFailProb))
	}
	return sched
}

// timeRun times one Run into the observer's servecluster_run_ms
// histogram, through the configured clock when one was supplied.
func (s *Sim) timeRun() func() {
	o := s.cfg.obs
	if o == nil {
		return func() {}
	}
	if s.cfg.clock == nil {
		stop := o.Time("servecluster_run_ms")
		return func() { stop() }
	}
	start := s.cfg.clock.NowNanos()
	return func() {
		o.Histogram("servecluster_run_ms").Observe(float64(s.cfg.clock.NowNanos()-start) / 1e6)
	}
}

func (st *runState) pushEvent(e event) {
	e.push = st.pushes
	st.pushes++
	heap.Push(&st.events, e)
}

// agg returns the class aggregate, creating one (with no SLO) for
// classes the configuration did not declare.
func (st *runState) agg(class string) *classAgg {
	a := st.classes[class]
	if a == nil {
		a = &classAgg{}
		st.classes[class] = a
	}
	return a
}

// arrive handles one request arrival at virtual time now: admission,
// routing with fault-window failover, policy choice with switch
// faults, and enqueue or service start.
func (st *runState) arrive(req Request, now float64) {
	o := st.cfg.obs
	a := st.agg(req.Class)
	a.arrived++
	st.requests++
	o.Counter("servecluster_requests_total").Inc()

	if !st.cfg.admission.Admit(now) {
		a.rejected++
		st.rejected++
		o.Counter("servecluster_rejected_total").Inc()
		return
	}

	views := make([]InstanceView, len(st.instances))
	for i, in := range st.instances {
		views[i] = InstanceView{ID: i, QueueLen: in.queueLen(), Deployed: in.deployed.ID}
	}
	first := st.cfg.router.Route(req, views)
	if first < 0 || first >= len(st.instances) {
		first = 0
	}

	// Try the router's pick, then fail over across the remaining
	// instances in least-loaded order. Every attempt draws one decision
	// from the tried instance's own availability stream, so fault
	// windows line up with per-instance request counts no matter how
	// routing interleaves.
	order := st.failoverOrder(first, views)
	var slowMS float64
	chosen := -1
	for attempt, i := range order {
		d := faults.Decision{}
		if st.sched != nil {
			d = st.sched.Next(InstanceTarget(i))
		}
		switch d.Kind {
		case faults.ConnError, faults.ServerError, faults.Truncate:
			continue // instance down for this request
		case faults.Latency:
			slowMS = float64(d.Latency) / float64(time.Millisecond)
		}
		chosen = i
		if attempt > 0 {
			st.failovers++
			o.Counter("servecluster_failovers_total").Inc()
		}
		break
	}
	if chosen < 0 {
		a.failed++
		st.failed++
		o.Counter("servecluster_failed_total").Inc()
		return
	}

	in := st.instances[chosen]
	choice := in.policy.Choose(in.queueLen())
	switch {
	case !in.haveDeployed:
		in.deployed, in.haveDeployed = choice, true
	case choice.ID != in.deployed.ID:
		st.switchAttempts++
		o.Counter("servecluster_switch_attempts_total").Inc()
		d := faults.Decision{}
		if st.sched != nil {
			d = st.sched.Next(SwitchTarget(chosen))
		}
		switch d.Kind {
		case faults.None:
			in.deployed = choice
		case faults.Latency:
			in.deployed = choice
			choice.ServiceMS += float64(d.Latency) / float64(time.Millisecond)
		default:
			st.failedSwitches++
			o.Counter("servecluster_failed_switches_total").Inc()
			choice = in.deployed
		}
	}

	j := job{req: req, svcMS: choice.ServiceMS + slowMS, level: choice.Level, modelID: choice.ID}
	if in.busy {
		in.queue = append(in.queue, j)
		return
	}
	in.busy = true
	st.startService(in, j, now)
}

// failoverOrder is the instance try-order for one request: the router's
// pick first, then the rest by (queue length, id).
func (st *runState) failoverOrder(first int, views []InstanceView) []int {
	order := make([]int, 0, len(views))
	order = append(order, first)
	rest := make([]int, 0, len(views)-1)
	for i := range views {
		if i != first {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if views[rest[a]].QueueLen != views[rest[b]].QueueLen {
			return views[rest[a]].QueueLen < views[rest[b]].QueueLen
		}
		return rest[a] < rest[b]
	})
	return append(order, rest...)
}

// startService begins serving j on in at virtual time now. The finish
// time is known immediately (FIFO, non-preemptive), so the request's
// latency is recorded here and a completion event is scheduled.
func (st *runState) startService(in *instance, j job, now float64) {
	finish := now + j.svcMS
	lat := finish - j.req.ArriveMS
	a := st.agg(j.req.Class)
	a.served++
	a.latencies = append(a.latencies, lat)
	a.levelSum += j.level
	st.cfg.obs.Histogram("servecluster_" + serving.MetricName(j.req.Class) + "_latency_ms").Observe(lat)
	idx := -1
	for i, cand := range st.instances {
		if cand == in {
			idx = i
			break
		}
	}
	st.pushEvent(event{at: finish, kind: evDone, inst: idx})
}

// complete handles a service completion on instance i: pull the next
// queued job, if any.
func (st *runState) complete(i int, now float64) {
	in := st.instances[i]
	if len(in.queue) == 0 {
		in.busy = false
		return
	}
	j := in.queue[0]
	in.queue = in.queue[1:]
	st.startService(in, j, now)
}

// ClassResult is one SLO class's outcome.
type ClassResult struct {
	Class    string  `json:"class"`
	TargetMS float64 `json:"target_ms"`
	Arrived  int64   `json:"arrived"`
	Rejected int64   `json:"rejected"`
	Failed   int64   `json:"failed"`
	Served   int64   `json:"served"`
	// P50/P95/P99/Max are the served requests' latency percentiles.
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
	// Attainment is the fraction of served requests meeting TargetMS
	// (1 when the class has no SLO).
	Attainment float64 `json:"slo_attainment"`
	// MeanLevel is the average equivalence level served to the class.
	MeanLevel float64 `json:"mean_level"`
}

// Result is one cluster simulation's outcome.
type Result struct {
	Policy    string `json:"policy"`
	Router    string `json:"router"`
	Admission string `json:"admission"`
	Workload  string `json:"workload"`
	Instances int    `json:"instances"`

	Requests       int64 `json:"requests"`
	Rejected       int64 `json:"rejected"`
	Failed         int64 `json:"failed"`
	Failovers      int64 `json:"failovers"`
	SwitchAttempts int64 `json:"switch_attempts"`
	FailedSwitches int64 `json:"failed_switches"`

	// Classes are the per-SLO-class results, sorted by class name.
	Classes []ClassResult `json:"classes"`
	// Fairness is the Jain index over per-class SLO attainment (classes
	// that served at least one request); 1 means every class meets its
	// SLO equally.
	Fairness float64 `json:"fairness"`
}

// result freezes the run state into a Result with a deterministic class
// order.
func (st *runState) result(cfg config, src Source) *Result {
	res := &Result{
		Policy:         st.policyName(cfg),
		Router:         cfg.router.Name(),
		Admission:      cfg.admission.Name(),
		Workload:       src.Name(),
		Instances:      cfg.instances,
		Requests:       st.requests,
		Rejected:       st.rejected,
		Failed:         st.failed,
		Failovers:      st.failovers,
		SwitchAttempts: st.switchAttempts,
		FailedSwitches: st.failedSwitches,
	}
	names := make([]string, 0, len(st.classes))
	for name := range st.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	var attain []float64
	for _, name := range names {
		a := st.classes[name]
		cr := ClassResult{
			Class:    name,
			TargetMS: a.target,
			Arrived:  a.arrived,
			Rejected: a.rejected,
			Failed:   a.failed,
			Served:   a.served,
		}
		if a.served > 0 {
			cr.P50 = stats.Percentile(a.latencies, 50)
			cr.P95 = stats.Percentile(a.latencies, 95)
			cr.P99 = stats.Percentile(a.latencies, 99)
			cr.Max = stats.Max(a.latencies)
			cr.MeanLevel = a.levelSum / float64(a.served)
			cr.Attainment = attainment(a.latencies, a.target)
			attain = append(attain, cr.Attainment)
		}
		res.Classes = append(res.Classes, cr)
	}
	res.Fairness = JainIndex(attain)
	return res
}

// policyName reads one policy instance's name without consuming any of
// the per-instance policies.
func (st *runState) policyName(cfg config) string {
	return cfg.newPolicy().Name()
}

// attainment is the fraction of latencies meeting target; 1 when the
// class has no SLO.
func attainment(latencies []float64, targetMS float64) float64 {
	if targetMS <= 0 {
		return 1
	}
	return serving.SLOAttainment(latencies, targetMS)
}

// Summary renders the result as a stable, byte-comparable text block —
// the artifact the determinism tests diff between runs.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s router=%s admission=%s workload=%s instances=%d\n",
		r.Policy, r.Router, r.Admission, r.Workload, r.Instances)
	fmt.Fprintf(&b, "requests=%d rejected=%d failed=%d failovers=%d switches=%d/%d fairness=%.6f\n",
		r.Requests, r.Rejected, r.Failed, r.Failovers, r.FailedSwitches, r.SwitchAttempts, r.Fairness)
	for _, c := range r.Classes {
		fmt.Fprintf(&b, "class=%s target=%.3f arrived=%d rejected=%d failed=%d served=%d "+
			"p50=%.6f p95=%.6f p99=%.6f max=%.6f attain=%.6f level=%.6f\n",
			c.Class, c.TargetMS, c.Arrived, c.Rejected, c.Failed, c.Served,
			c.P50, c.P95, c.P99, c.Max, c.Attainment, c.MeanLevel)
	}
	return b.String()
}

// AffinityRouter builds the model-affinity router for n instances using
// the hub cluster's consistent-hash ring: a request's series maps
// through the same series-aware placement key that co-locates model
// families on hub shards, so one family's requests keep hitting the
// instance that already has its model deployed. Seriesless requests
// fall back to least-loaded.
func AffinityRouter(instances int) (Router, error) {
	ring, err := hubcluster.NewRing(instances, 0)
	if err != nil {
		return nil, fmt.Errorf("serving/cluster: affinity ring: %w", err)
	}
	return &affinityRouter{ring: ring}, nil
}

// affinityRouter routes by ring placement of the request's series.
type affinityRouter struct {
	ring *hubcluster.Ring
	ll   leastLoaded
}

func (r *affinityRouter) Name() string { return "affinity" }

func (r *affinityRouter) Route(req Request, views []InstanceView) int {
	if req.Series == "" {
		return r.ll.Route(req, views)
	}
	return r.ring.ShardFor(hubcluster.PlacementKey("", req.Series))
}
