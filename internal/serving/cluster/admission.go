package cluster

// Admission gates requests at the cluster's front door, before routing:
// a rejected request never reaches an instance and counts against its
// class as rejected, not failed. Time is the shared virtual clock in
// milliseconds — admission controllers never read wall clocks, so
// decisions replay byte-identically.
type Admission interface {
	// Name identifies the controller in results and benchmarks.
	Name() string
	// Admit decides the request arriving at virtual time nowMS.
	Admit(nowMS float64) bool
}

// admitAll is the no-op controller.
type admitAll struct{}

// AdmitAll returns the controller that admits every request.
func AdmitAll() Admission { return admitAll{} }

func (admitAll) Name() string             { return "admit-all" }
func (admitAll) Admit(nowMS float64) bool { return true }

// tokenBucket admits at a sustained rate with a burst allowance.
type tokenBucket struct {
	ratePerMS float64
	burst     float64
	tokens    float64
	lastMS    float64
	started   bool
}

// NewTokenBucket returns a token-bucket controller: tokens refill at
// ratePerSec and cap at burst; each admitted request spends one token.
// The bucket starts full at the first arrival. A non-positive rate
// never refills (the bucket admits exactly its initial burst, or —
// with burst <= 0 — nothing). Virtual time moving backwards (clock
// skew between event sources) neither refills nor drains the bucket:
// refill is computed from the furthest time seen.
func NewTokenBucket(ratePerSec, burst float64) Admission {
	if burst < 0 {
		burst = 0
	}
	return &tokenBucket{ratePerMS: ratePerSec / 1000, burst: burst}
}

func (b *tokenBucket) Name() string { return "token-bucket" }

func (b *tokenBucket) Admit(nowMS float64) bool {
	if !b.started {
		b.started = true
		b.tokens = b.burst
		b.lastMS = nowMS
	} else if nowMS > b.lastMS {
		if b.ratePerMS > 0 {
			b.tokens += (nowMS - b.lastMS) * b.ratePerMS
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
		b.lastMS = nowMS
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
