package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceRecord is one line of a JSONL workload trace.
type TraceRecord struct {
	// AtMS is the arrival time in virtual milliseconds.
	AtMS float64 `json:"at_ms"`
	// Class names the request's SLO class ("default" when empty).
	Class string `json:"class,omitempty"`
	// Series is the optional model-family affinity key.
	Series string `json:"series,omitempty"`
}

// traceSource replays a parsed trace in arrival order.
type traceSource struct {
	reqs []Request
	next int
}

// NewTraceSource parses a JSONL trace (one TraceRecord per line; blank
// lines skipped) and returns a Source replaying it. Records are
// stably sorted by arrival time, so traces need not be pre-sorted and
// equal-time records keep file order.
func NewTraceSource(r io.Reader) (Source, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []TraceRecord
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("serving/cluster: trace line %d: %w", line, err)
		}
		if rec.AtMS < 0 {
			return nil, fmt.Errorf("serving/cluster: trace line %d: negative arrival time %v", line, rec.AtMS)
		}
		if rec.Class == "" {
			rec.Class = "default"
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serving/cluster: reading trace: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("serving/cluster: empty trace")
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].AtMS < recs[j].AtMS })
	ts := &traceSource{reqs: make([]Request, len(recs))}
	for i, rec := range recs {
		ts.reqs[i] = Request{Seq: int64(i), ArriveMS: rec.AtMS, Class: rec.Class, Series: rec.Series}
	}
	return ts, nil
}

func (t *traceSource) Name() string { return "trace" }

func (t *traceSource) Next() (Request, bool) {
	if t.next >= len(t.reqs) {
		return Request{}, false
	}
	req := t.reqs[t.next]
	t.next++
	return req, true
}
