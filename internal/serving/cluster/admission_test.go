package cluster

import "testing"

func TestTokenBucketBurst(t *testing.T) {
	b := NewTokenBucket(1000, 3)
	// The bucket starts full: the first burst-sized volley at one
	// instant all admits, the next request does not.
	for i := 0; i < 3; i++ {
		if !b.Admit(0) {
			t.Fatalf("request %d of initial burst rejected", i)
		}
	}
	if b.Admit(0) {
		t.Fatal("request beyond burst admitted with no time elapsed")
	}
	// 1000/s = 1 token per ms: after 2ms two more fit.
	if !b.Admit(2) || !b.Admit(2) {
		t.Fatal("refilled tokens rejected")
	}
	if b.Admit(2) {
		t.Fatal("admitted past refill")
	}
}

func TestTokenBucketRefillClampsAtBurst(t *testing.T) {
	b := NewTokenBucket(1000, 2)
	if !b.Admit(0) || !b.Admit(0) {
		t.Fatal("initial burst rejected")
	}
	// A long idle gap must not bank more than burst tokens.
	if !b.Admit(1000) || !b.Admit(1000) {
		t.Fatal("post-idle burst rejected")
	}
	if b.Admit(1000) {
		t.Fatal("idle gap banked more than burst")
	}
}

func TestTokenBucketZeroRate(t *testing.T) {
	b := NewTokenBucket(0, 2)
	if !b.Admit(0) || !b.Admit(0) {
		t.Fatal("zero-rate bucket rejected its initial burst")
	}
	// Zero rate never refills, no matter how long passes.
	if b.Admit(1e12) {
		t.Fatal("zero-rate bucket refilled")
	}
}

func TestTokenBucketZeroRateZeroBurst(t *testing.T) {
	b := NewTokenBucket(0, 0)
	if b.Admit(0) || b.Admit(1e9) {
		t.Fatal("zero-rate zero-burst bucket admitted a request")
	}
}

func TestTokenBucketClockSkew(t *testing.T) {
	b := NewTokenBucket(1000, 1)
	if !b.Admit(100) {
		t.Fatal("first request rejected")
	}
	// Time running backwards must not refill (no free tokens from skew)…
	if b.Admit(50) {
		t.Fatal("backwards time refilled the bucket")
	}
	// …and must not move the refill baseline backwards either: only the
	// 1ms beyond the furthest-seen time (100) refills here, not 51ms.
	if b.Admit(99) {
		t.Fatal("backwards time moved the refill baseline")
	}
	if !b.Admit(101) {
		t.Fatal("1ms past the high-water mark should refill one token")
	}
	if b.Admit(101) {
		t.Fatal("only one token should have refilled")
	}
}

func TestNegativeBurstTreatedAsZero(t *testing.T) {
	// Burst clamps to zero, and refill clamps at burst: a zero-capacity
	// bucket never holds a whole token, so it admits nothing — same as
	// an explicit zero burst.
	b := NewTokenBucket(1000, -5)
	if b.Admit(0) || b.Admit(1000) {
		t.Fatal("zero-capacity bucket admitted a request")
	}
}
