package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"sommelier/internal/faults"
	"sommelier/internal/obs"
	"sommelier/internal/serving"
)

func testClasses() []Class {
	return []Class{
		{Name: "gold", Weight: 0.2, TargetMS: 20},
		{Name: "silver", Weight: 0.3, TargetMS: 60},
		{Name: "batch", Weight: 0.5},
	}
}

func testCandidates() []serving.ModelChoice {
	return []serving.ModelChoice{
		{ID: "flagship", ServiceMS: 10, Level: 1.0},
		{ID: "mid", ServiceMS: 6, Level: 0.9},
		{ID: "small", ServiceMS: 3, Level: 0.8},
	}
}

func switchingFactory(t *testing.T) func() serving.Policy {
	t.Helper()
	return func() serving.Policy {
		p, err := serving.NewSwitchingPolicy(testCandidates(), 4)
		if err != nil {
			t.Fatalf("NewSwitchingPolicy: %v", err)
		}
		return p
	}
}

func runOnce(t *testing.T, instances int, mkRouter func() Router) *Result {
	t.Helper()
	sched := faults.NewSchedule(99)
	sched.Set(InstanceTarget(0), faults.Kill(50, 80), faults.Slow(200, 220, 15*time.Millisecond))
	sched.Set(SwitchTarget(1), faults.Flake(0, 0, 0.5))
	src, err := NewGenerator(GeneratorConfig{
		Requests:      600,
		MeanArrivalMS: 4,
		GammaShape:    0.7,
		BurstEvery:    100,
		BurstLen:      20,
		BurstFactor:   4,
		Classes:       testClasses(),
		Series:        5,
		ZipfS:         1.1,
		Seed:          42,
	})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	sim, err := New(
		WithInstances(instances),
		WithPolicy(switchingFactory(t)),
		WithRouter(mkRouter()),
		WithAdmission(NewTokenBucket(400, 50)),
		WithClasses(testClasses()...),
		WithFaultSchedule(sched),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := sim.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestDeterminism is the tentpole's acceptance assertion: two runs of
// the same seeded scenario — fault schedule, bursty Gamma arrivals,
// Zipf series, token bucket — render byte-identical summaries at every
// instance count.
func TestDeterminism(t *testing.T) {
	for _, instances := range []int{1, 2, 4, 8} {
		for _, mk := range []func() Router{NewRoundRobin, NewLeastLoaded, func() Router {
			r, err := AffinityRouter(instances)
			if err != nil {
				t.Fatalf("AffinityRouter: %v", err)
			}
			return r
		}} {
			a := runOnce(t, instances, mk)
			b := runOnce(t, instances, mk)
			if a.Summary() != b.Summary() {
				t.Errorf("instances=%d router=%s: summaries differ:\n--- a ---\n%s--- b ---\n%s",
					instances, a.Router, a.Summary(), b.Summary())
			}
		}
	}
}

func TestResultShape(t *testing.T) {
	res := runOnce(t, 4, NewLeastLoaded)
	if res.Requests != 600 {
		t.Fatalf("requests = %d, want 600", res.Requests)
	}
	if res.Instances != 4 {
		t.Fatalf("instances = %d, want 4", res.Instances)
	}
	if got := res.Requests - res.Rejected - res.Failed; got <= 0 {
		t.Fatalf("no requests served (rejected=%d failed=%d)", res.Rejected, res.Failed)
	}
	if len(res.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(res.Classes))
	}
	for i := 1; i < len(res.Classes); i++ {
		if res.Classes[i-1].Class >= res.Classes[i].Class {
			t.Fatalf("classes not sorted: %q before %q", res.Classes[i-1].Class, res.Classes[i].Class)
		}
	}
	var served int64
	for _, c := range res.Classes {
		served += c.Served
		if c.Arrived != c.Rejected+c.Failed+c.Served {
			t.Errorf("class %s: arrived %d != rejected %d + failed %d + served %d",
				c.Class, c.Arrived, c.Rejected, c.Failed, c.Served)
		}
		if c.Served > 0 && (c.P95 < c.P50 || c.P99 < c.P95) {
			t.Errorf("class %s: percentiles out of order p50=%v p95=%v p99=%v", c.Class, c.P50, c.P95, c.P99)
		}
	}
	if served != res.Requests-res.Rejected-res.Failed {
		t.Fatalf("served sum %d != requests-rejected-failed %d", served, res.Requests-res.Rejected-res.Failed)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Fatalf("fairness = %v outside (0,1]", res.Fairness)
	}
}

// TestSingleInstanceMatchesServing pins the cluster simulator to the
// single-server experiment it generalizes: one instance, no faults, no
// admission, identical arrival stream → per-request latencies match
// serving.Simulator exactly.
func TestSingleInstanceMatchesServing(t *testing.T) {
	w := serving.Workload{Requests: 400, MeanArrivalMS: 5, Seed: 7}
	p1, err := serving.NewSwitchingPolicy(testCandidates(), 4)
	if err != nil {
		t.Fatalf("policy: %v", err)
	}
	single, err := serving.NewSimulator(serving.WithPolicy(p1))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	want, err := single.Run(context.Background(), w)
	if err != nil {
		t.Fatalf("serving run: %v", err)
	}

	src := replaySource{arrivals: servingArrivals(t, w)}
	sim, err := New(WithPolicy(switchingFactory(t)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := sim.Run(context.Background(), &src)
	if err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	if got.Requests != int64(len(want.Latencies)) {
		t.Fatalf("requests %d != %d", got.Requests, len(want.Latencies))
	}
	if len(got.Classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(got.Classes))
	}
	wantSum := want.Summary()
	c := got.Classes[0]
	if c.P50 != wantSum.P50 || c.P99 != wantSum.P99 || c.Max != wantSum.MaxV {
		t.Fatalf("latency percentiles diverge from single-server sim: got p50=%v p99=%v max=%v want p50=%v p99=%v max=%v",
			c.P50, c.P99, c.Max, wantSum.P50, wantSum.P99, wantSum.MaxV)
	}
	if got.SwitchAttempts != int64(want.SwitchAttempts) {
		t.Fatalf("switch attempts %d != %d", got.SwitchAttempts, want.SwitchAttempts)
	}
}

// servingArrivals reproduces the single-server simulator's arrival
// times through its exported deprecated entry point: a fixed-policy dry
// run's latencies are service-only under light load, so arrivals are
// recovered by running the real generator logic — here simply the same
// exponential stream the serving package documents (Workload.Seed).
func servingArrivals(t *testing.T, w serving.Workload) []float64 {
	t.Helper()
	return serving.Arrivals(w)
}

// replaySource replays precomputed arrival times as class "default".
type replaySource struct {
	arrivals []float64
	next     int
}

func (r *replaySource) Name() string { return "replay" }
func (r *replaySource) Next() (Request, bool) {
	if r.next >= len(r.arrivals) {
		return Request{}, false
	}
	req := Request{Seq: int64(r.next), ArriveMS: r.arrivals[r.next], Class: "default"}
	r.next++
	return req, true
}

func TestFailoverOnKilledInstance(t *testing.T) {
	sched := faults.NewSchedule(1)
	sched.Set(InstanceTarget(0), faults.Kill(0, 1<<30))
	src := &replaySource{arrivals: []float64{0, 10, 20, 30}}
	sim, err := New(
		WithInstances(2),
		WithPolicy(func() serving.Policy { return serving.FixedPolicy{Model: testCandidates()[0]} }),
		WithRouter(NewRoundRobin()),
		WithFaultSchedule(sched),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := sim.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (instance 1 should absorb)", res.Failed)
	}
	// Round-robin sends requests 0 and 2 to the killed instance 0; both
	// must fail over to instance 1.
	if res.Failovers != 2 {
		t.Fatalf("failovers = %d, want 2", res.Failovers)
	}
}

func TestAllInstancesDead(t *testing.T) {
	sched := faults.NewSchedule(1)
	sched.Set(InstanceTarget(0), faults.Kill(0, 1<<30))
	sched.Set(InstanceTarget(1), faults.Kill(0, 1<<30))
	src := &replaySource{arrivals: []float64{0, 5}}
	sim, err := New(
		WithInstances(2),
		WithPolicy(func() serving.Policy { return serving.FixedPolicy{Model: testCandidates()[0]} }),
		WithFaultSchedule(sched),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := sim.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Failed != 2 || res.Failovers != 0 {
		t.Fatalf("failed=%d failovers=%d, want failed=2 failovers=0", res.Failed, res.Failovers)
	}
	for _, c := range res.Classes {
		if c.Served != 0 {
			t.Fatalf("class %s served %d requests on a dead cluster", c.Class, c.Served)
		}
	}
}

func TestSlowWindowAddsLatency(t *testing.T) {
	src1 := &replaySource{arrivals: []float64{0}}
	src2 := &replaySource{arrivals: []float64{0}}
	mk := func(sched *faults.Schedule) *Result {
		opts := []Option{WithPolicy(func() serving.Policy { return serving.FixedPolicy{Model: testCandidates()[0]} })}
		if sched != nil {
			opts = append(opts, WithFaultSchedule(sched))
		}
		sim, err := New(opts...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		src := src1
		if sched != nil {
			src = src2
		}
		res, err := sim.Run(context.Background(), src)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	base := mk(nil)
	sched := faults.NewSchedule(1)
	sched.Set(InstanceTarget(0), faults.Slow(0, 1<<30, 25*time.Millisecond))
	slow := mk(sched)
	wantDelta := 25.0
	if got := slow.Classes[0].Max - base.Classes[0].Max; got != wantDelta {
		t.Fatalf("slow window added %vms, want %vms", got, wantDelta)
	}
}

func TestContextCancelAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src, err := NewGenerator(GeneratorConfig{Requests: 100000, MeanArrivalMS: 1, Seed: 3})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	sim, err := New(WithPolicy(switchingFactory(t)))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sim.Run(ctx, src); err == nil {
		t.Fatal("Run with cancelled ctx succeeded, want abort")
	} else if !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestObserverRecordsClasses(t *testing.T) {
	o := obs.New(obs.WithClock(obs.NewTickClock(0, 1)))
	src, err := NewGenerator(GeneratorConfig{Requests: 200, MeanArrivalMS: 5, Classes: testClasses(), Seed: 11})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	sim, err := New(WithPolicy(switchingFactory(t)), WithClasses(testClasses()...), WithObserver(o))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sim.Run(context.Background(), src); err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap := o.Snapshot()
	for _, name := range []string{"gold", "silver", "batch"} {
		if _, ok := snap.Histograms["servecluster_"+name+"_latency_ms"]; !ok {
			t.Errorf("missing histogram for class %s; have %v", name, histNames(snap))
		}
	}
	if snap.Counters["servecluster_requests_total"] != 200 {
		t.Errorf("requests counter = %d, want 200", snap.Counters["servecluster_requests_total"])
	}
}

func histNames(s obs.Snapshot) []string {
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	return names
}

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New without policy succeeded")
	}
	if _, err := New(WithPolicy(switchingFactory(t)), WithClasses(Class{Name: "a"}, Class{Name: "a"})); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := New(WithPolicy(switchingFactory(t)), WithClasses(Class{})); err == nil {
		t.Error("empty class name accepted")
	}
	if _, err := New(WithPolicy(switchingFactory(t)), WithFailureModel(serving.FailureModel{SwitchFailProb: 2})); err == nil {
		t.Error("out-of-range switch probability accepted")
	}
}
