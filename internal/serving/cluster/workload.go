package cluster

import (
	"fmt"
	"math"
	"sort"

	"sommelier/internal/tensor"
)

// Source supplies the request stream, one request at a time in
// non-decreasing arrival order. The event loop pulls lazily — one
// pending arrival at a time — so a Source can be a generator or a
// trace reader of any length without materializing the stream.
type Source interface {
	// Name identifies the workload in results and benchmarks.
	Name() string
	// Next returns the next request, or ok=false when the stream ends.
	Next() (Request, bool)
}

// GeneratorConfig parameterizes the distribution-based workload
// generator.
type GeneratorConfig struct {
	// Requests is the stream length.
	Requests int
	// MeanArrivalMS is the mean inter-arrival gap.
	MeanArrivalMS float64
	// GammaShape selects the inter-arrival distribution: <= 0 or 1
	// gives exponential gaps (a Poisson process); other values give
	// Gamma(shape) gaps normalized to the same mean — shape < 1 is
	// burstier than Poisson, shape > 1 smoother.
	GammaShape float64
	// BurstEvery/BurstLen/BurstFactor overlay deterministic load spikes:
	// every BurstEvery-th request starts BurstLen requests whose gaps
	// shrink by BurstFactor — the same knobs as serving.Workload.
	BurstEvery  int
	BurstLen    int
	BurstFactor float64
	// Classes assigns SLO classes by weight. Empty means every request
	// is class "default".
	Classes []Class
	// Series is how many model families the stream references
	// ("series0" … "seriesN-1"). Zero means requests carry no series.
	Series int
	// ZipfS skews series popularity: P(k) ∝ 1/(k+1)^s. Zero or negative
	// means uniform.
	ZipfS float64
	// Seed drives the generator deterministically.
	Seed uint64
}

// generator produces requests from the configured distributions.
type generator struct {
	cfg       GeneratorConfig
	rng       *tensor.RNG
	classCDF  []float64
	seriesCDF []float64
	seq       int64
	clockMS   float64
}

// NewGenerator builds a distribution-based Source: Poisson or Gamma
// inter-arrivals with optional deterministic bursts, class assignment
// by weight, and Zipf-skewed series popularity.
func NewGenerator(cfg GeneratorConfig) (Source, error) {
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serving/cluster: generator needs a positive request count, got %d", cfg.Requests)
	}
	if cfg.MeanArrivalMS <= 0 {
		return nil, fmt.Errorf("serving/cluster: generator needs a positive mean arrival gap, got %v", cfg.MeanArrivalMS)
	}
	g := &generator{cfg: cfg, rng: tensor.NewRNG(cfg.Seed | 1)}
	if len(cfg.Classes) > 0 {
		var total float64
		for _, cl := range cfg.Classes {
			if cl.Weight < 0 {
				return nil, fmt.Errorf("serving/cluster: class %q has negative weight", cl.Name)
			}
			total += cl.Weight
		}
		if total <= 0 {
			return nil, fmt.Errorf("serving/cluster: class weights sum to zero")
		}
		acc := 0.0
		for _, cl := range cfg.Classes {
			acc += cl.Weight / total
			g.classCDF = append(g.classCDF, acc)
		}
	}
	if cfg.Series > 0 {
		acc := 0.0
		var weights []float64
		var total float64
		for k := 0; k < cfg.Series; k++ {
			w := 1.0
			if cfg.ZipfS > 0 {
				w = 1 / math.Pow(float64(k+1), cfg.ZipfS)
			}
			weights = append(weights, w)
			total += w
		}
		for _, w := range weights {
			acc += w / total
			g.seriesCDF = append(g.seriesCDF, acc)
		}
	}
	return g, nil
}

func (g *generator) Name() string {
	shape := "poisson"
	if g.cfg.GammaShape > 0 && g.cfg.GammaShape != 1 {
		shape = fmt.Sprintf("gamma(%.2f)", g.cfg.GammaShape)
	}
	if g.cfg.BurstEvery > 0 {
		shape += "+bursts"
	}
	return shape
}

func (g *generator) Next() (Request, bool) {
	if g.seq >= int64(g.cfg.Requests) {
		return Request{}, false
	}
	gap := g.cfg.MeanArrivalMS * g.sampleGap()
	if g.cfg.BurstEvery > 0 && g.cfg.BurstFactor > 0 {
		pos := int(g.seq) % g.cfg.BurstEvery
		if pos < g.cfg.BurstLen {
			gap /= g.cfg.BurstFactor
		}
	}
	if g.seq == 0 {
		gap = 0
	}
	g.clockMS += gap
	req := Request{Seq: g.seq, ArriveMS: g.clockMS, Class: g.pickClass(), Series: g.pickSeries()}
	g.seq++
	return req, true
}

// sampleGap draws a mean-1 inter-arrival gap from the configured
// distribution.
func (g *generator) sampleGap() float64 {
	k := g.cfg.GammaShape
	if k <= 0 || k == 1 {
		return g.rng.ExpFloat64()
	}
	// Gamma(k,1)/k has mean 1 for any shape k.
	return g.gamma(k) / k
}

// gamma samples Gamma(shape, 1) by Marsaglia–Tsang; shape < 1 is
// boosted through Gamma(shape+1) · U^(1/shape).
func (g *generator) gamma(shape float64) float64 {
	if shape < 1 {
		u := g.rng.Float64()
		for u == 0 {
			u = g.rng.Float64()
		}
		return g.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

func (g *generator) pickClass() string {
	if len(g.classCDF) == 0 {
		return "default"
	}
	return g.cfg.Classes[pickCDF(g.classCDF, g.rng.Float64())].Name
}

func (g *generator) pickSeries() string {
	if len(g.seriesCDF) == 0 {
		return ""
	}
	return fmt.Sprintf("series%d", pickCDF(g.seriesCDF, g.rng.Float64()))
}

// pickCDF binary-searches the cumulative distribution for u ∈ [0,1).
func pickCDF(cdf []float64, u float64) int {
	i := sort.SearchFloat64s(cdf, u)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}
