package cluster

import "testing"

func views(queues ...int) []InstanceView {
	vs := make([]InstanceView, len(queues))
	for i, q := range queues {
		vs[i] = InstanceView{ID: i, QueueLen: q}
	}
	return vs
}

func TestRoundRobinCycles(t *testing.T) {
	r := NewRoundRobin()
	vs := views(0, 0, 0)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := r.Route(Request{}, vs); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedPicksShortestQueue(t *testing.T) {
	r := NewLeastLoaded()
	if got := r.Route(Request{}, views(3, 1, 2)); got != 1 {
		t.Fatalf("picked %d, want 1", got)
	}
	// Ties break toward the lowest instance ID.
	if got := r.Route(Request{}, views(2, 1, 1)); got != 1 {
		t.Fatalf("tie pick %d, want 1", got)
	}
}

func TestAffinityStickyPerSeries(t *testing.T) {
	r, err := AffinityRouter(4)
	if err != nil {
		t.Fatalf("AffinityRouter: %v", err)
	}
	vs := views(0, 0, 0, 0)
	picks := map[string]int{}
	for _, series := range []string{"series0", "series1", "series2", "series3", "series4"} {
		first := r.Route(Request{Series: series}, vs)
		if first < 0 || first >= 4 {
			t.Fatalf("series %s routed out of range: %d", series, first)
		}
		picks[series] = first
		// The pick must not depend on load: pile work onto that instance
		// and the series still lands there (that's the point — the model
		// is warm there).
		loaded := views(0, 0, 0, 0)
		loaded[first].QueueLen = 100
		if again := r.Route(Request{Series: series}, loaded); again != first {
			t.Fatalf("series %s moved from %d to %d under load", series, first, again)
		}
	}
	distinct := map[int]bool{}
	for _, p := range picks {
		distinct[p] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all five series landed on one instance: %v", picks)
	}
}

func TestAffinitySerieslessFallsBackToLeastLoaded(t *testing.T) {
	r, err := AffinityRouter(3)
	if err != nil {
		t.Fatalf("AffinityRouter: %v", err)
	}
	if got := r.Route(Request{}, views(5, 0, 3)); got != 1 {
		t.Fatalf("seriesless pick %d, want least-loaded 1", got)
	}
}
