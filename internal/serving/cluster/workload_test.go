package cluster

import (
	"math"
	"strings"
	"testing"
)

func drain(t *testing.T, src Source) []Request {
	t.Helper()
	var reqs []Request
	for {
		r, ok := src.Next()
		if !ok {
			return reqs
		}
		reqs = append(reqs, r)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Requests: 500, MeanArrivalMS: 3, GammaShape: 2,
		Classes: testClasses(), Series: 4, ZipfS: 1.2, Seed: 9}
	mk := func() []Request {
		src, err := NewGenerator(cfg)
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		return drain(t, src)
	}
	a, b := mk(), mk()
	if len(a) != 500 {
		t.Fatalf("generated %d requests, want 500", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorArrivalsMonotone(t *testing.T) {
	for _, shape := range []float64{0, 0.5, 1, 3} {
		src, err := NewGenerator(GeneratorConfig{Requests: 300, MeanArrivalMS: 2, GammaShape: shape, Seed: 5})
		if err != nil {
			t.Fatalf("NewGenerator(shape=%v): %v", shape, err)
		}
		reqs := drain(t, src)
		for i := 1; i < len(reqs); i++ {
			if reqs[i].ArriveMS < reqs[i-1].ArriveMS {
				t.Fatalf("shape=%v: arrivals not monotone at %d", shape, i)
			}
		}
	}
}

func TestGeneratorMeanGap(t *testing.T) {
	// The empirical mean inter-arrival gap should track MeanArrivalMS for
	// both Poisson and Gamma shapes (the Gamma is mean-normalized).
	for _, shape := range []float64{0, 0.5, 4} {
		src, err := NewGenerator(GeneratorConfig{Requests: 20000, MeanArrivalMS: 5, GammaShape: shape, Seed: 31})
		if err != nil {
			t.Fatalf("NewGenerator: %v", err)
		}
		reqs := drain(t, src)
		mean := reqs[len(reqs)-1].ArriveMS / float64(len(reqs)-1)
		if math.Abs(mean-5) > 0.5 {
			t.Errorf("shape=%v: mean gap %v, want ≈5", shape, mean)
		}
	}
}

func TestGeneratorClassWeights(t *testing.T) {
	src, err := NewGenerator(GeneratorConfig{Requests: 20000, MeanArrivalMS: 1,
		Classes: []Class{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}, Seed: 17})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	counts := map[string]int{}
	for _, r := range drain(t, src) {
		counts[r.Class]++
	}
	share := float64(counts["a"]) / 20000
	if math.Abs(share-0.75) > 0.02 {
		t.Fatalf("class a share = %v, want ≈0.75", share)
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	src, err := NewGenerator(GeneratorConfig{Requests: 20000, MeanArrivalMS: 1,
		Series: 8, ZipfS: 1.5, Seed: 23})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	counts := map[string]int{}
	for _, r := range drain(t, src) {
		counts[r.Series]++
	}
	if counts["series0"] <= counts["series1"] || counts["series1"] <= counts["series3"] {
		t.Fatalf("series popularity not Zipf-skewed: %v", counts)
	}
}

func TestGeneratorBursts(t *testing.T) {
	base, err := NewGenerator(GeneratorConfig{Requests: 1000, MeanArrivalMS: 10, Seed: 3})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	bursty, err := NewGenerator(GeneratorConfig{Requests: 1000, MeanArrivalMS: 10,
		BurstEvery: 100, BurstLen: 50, BurstFactor: 10, Seed: 3})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	a, b := drain(t, base), drain(t, bursty)
	if b[len(b)-1].ArriveMS >= a[len(a)-1].ArriveMS {
		t.Fatalf("bursty stream should finish earlier: %v vs %v",
			b[len(b)-1].ArriveMS, a[len(a)-1].ArriveMS)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{Requests: 0, MeanArrivalMS: 1}); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Requests: 1, MeanArrivalMS: 0}); err == nil {
		t.Error("zero mean gap accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Requests: 1, MeanArrivalMS: 1,
		Classes: []Class{{Name: "a", Weight: -1}}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Requests: 1, MeanArrivalMS: 1,
		Classes: []Class{{Name: "a", Weight: 0}}}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestTraceSource(t *testing.T) {
	trace := `{"at_ms": 5, "class": "gold", "series": "series1"}
{"at_ms": 1}
{"at_ms": 5, "class": "batch"}

{"at_ms": 0.5, "class": "silver"}`
	src, err := NewTraceSource(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("NewTraceSource: %v", err)
	}
	reqs := drain(t, src)
	if len(reqs) != 4 {
		t.Fatalf("parsed %d records, want 4", len(reqs))
	}
	wantClasses := []string{"silver", "default", "gold", "batch"}
	for i, want := range wantClasses {
		if reqs[i].Class != want {
			t.Fatalf("record %d class = %q, want %q (stable sort by at_ms)", i, reqs[i].Class, want)
		}
		if reqs[i].Seq != int64(i) {
			t.Fatalf("record %d seq = %d, want %d", i, reqs[i].Seq, i)
		}
	}
	if reqs[2].Series != "series1" {
		t.Fatalf("series lost in parse: %+v", reqs[2])
	}
}

func TestTraceSourceErrors(t *testing.T) {
	if _, err := NewTraceSource(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTraceSource(strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := NewTraceSource(strings.NewReader(`{"at_ms": -1}`)); err == nil {
		t.Error("negative arrival accepted")
	}
}
