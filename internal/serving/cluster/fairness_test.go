package cluster

import (
	"math"
	"testing"
)

func TestJainIndexEqualShares(t *testing.T) {
	if got := JainIndex([]float64{0.9, 0.9, 0.9, 0.9}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: index = %v, want 1", got)
	}
}

func TestJainIndexMonopoly(t *testing.T) {
	// One class takes everything: the index collapses to 1/n.
	xs := []float64{1, 0, 0, 0}
	if got, want := JainIndex(xs), 0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("monopoly: index = %v, want %v", got, want)
	}
}

func TestJainIndexKnownValue(t *testing.T) {
	// (1+2+3)² / (3·(1+4+9)) = 36/42.
	xs := []float64{1, 2, 3}
	want := 36.0 / 42.0
	if got := JainIndex(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("index = %v, want %v", got, want)
	}
}

func TestJainIndexScaleInvariant(t *testing.T) {
	a := JainIndex([]float64{0.2, 0.4, 0.6})
	b := JainIndex([]float64{20, 40, 60})
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("index not scale-invariant: %v vs %v", a, b)
	}
}

func TestJainIndexDegenerate(t *testing.T) {
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty: index = %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Fatalf("all-zero: index = %v, want 1", got)
	}
}
