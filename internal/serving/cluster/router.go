package cluster

// Router selects the serving instance for each admitted request. A
// router sees a read-only snapshot of every instance (queue lengths and
// deployed models) and returns an instance index; out-of-range picks
// fall back to instance 0. Routers may carry state (round-robin's
// counter) and therefore must not be shared between simulators.
//
// The three built-ins span the classic trade-off: round-robin is
// oblivious but perfectly even, least-loaded chases the shortest
// backlog, and the affinity router (AffinityRouter, in cluster.go)
// trades instantaneous balance for model-family locality — fewer
// switches because one series keeps hitting the instance whose model
// is already warm.
type Router interface {
	// Name identifies the router in results and benchmarks.
	Name() string
	// Route picks an instance index for req from the current views.
	Route(req Request, views []InstanceView) int
}

// roundRobin cycles through instances in order, ignoring load.
type roundRobin struct {
	next int
}

// NewRoundRobin returns the stateful round-robin router.
func NewRoundRobin() Router { return &roundRobin{} }

func (r *roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Route(req Request, views []InstanceView) int {
	if len(views) == 0 {
		return 0
	}
	i := r.next % len(views)
	r.next = (r.next + 1) % len(views)
	return views[i].ID
}

// leastLoaded picks the shortest queue, breaking ties toward the lowest
// instance ID — a deterministic join-shortest-queue.
type leastLoaded struct{}

// NewLeastLoaded returns the least-loaded (join-shortest-queue) router.
func NewLeastLoaded() Router { return leastLoaded{} }

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Route(req Request, views []InstanceView) int {
	best := 0
	for i := 1; i < len(views); i++ {
		if views[i].QueueLen < views[best].QueueLen {
			best = i
		}
	}
	if len(views) == 0 {
		return 0
	}
	return views[best].ID
}
