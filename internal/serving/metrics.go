package serving

import (
	"context"
	"strings"

	"sommelier/internal/obs"
)

// ObserveResult records one simulation outcome into an observer: the
// per-request latencies land in a serving_<policy>_latency_ms
// histogram (whose summary supplies p50/p95/p99 — the percentile path
// daemons report instead of re-sorting raw latency slices), and the
// switch economy lands in counters. A nil observer is a no-op.
func ObserveResult(o *obs.Observer, r Result) {
	p := MetricName(r.PolicyName)
	h := o.Histogram("serving_" + p + "_latency_ms")
	for _, l := range r.Latencies {
		h.Observe(l)
	}
	o.Counter("serving_" + p + "_requests_total").Add(int64(len(r.Latencies)))
	o.Counter("serving_" + p + "_switch_attempts_total").Add(int64(r.SwitchAttempts))
	o.Counter("serving_" + p + "_failed_switches_total").Add(int64(r.FailedSwitches))
}

// ObserveComparison records all four Figure 9(c) configurations.
func ObserveComparison(o *obs.Observer, c Comparison) {
	ObserveResult(o, c.Baseline)
	ObserveResult(o, c.ScaleOut)
	ObserveResult(o, c.Switching)
	ObserveResult(o, c.Combined)
}

// RunComparisonObserved executes the Figure 9(c) comparison under a
// failure model and records every configuration into the observer.
//
// Deprecated: use RunComparisonContext with a caller context.
func RunComparisonObserved(o *obs.Observer, w Workload, candidates []ModelChoice,
	switchStep int, fm FailureModel) (Comparison, error) {
	return RunComparisonContext(context.Background(), o, w, candidates, switchStep, fm)
}

// MetricName folds a policy name into metric-identifier form
// ("sommelier-switching" → "sommelier_switching"), the key under which
// ObserveResult registers that policy's metrics.
func MetricName(policy string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, policy)
}
