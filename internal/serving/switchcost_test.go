package serving

import (
	"testing"

	"sommelier/internal/stats"
)

// flipFlopPolicy alternates its desired model every call — the worst
// case for switch overhead.
type flipFlopPolicy struct {
	a, b ModelChoice
	n    int
}

func (p *flipFlopPolicy) Choose(int) ModelChoice {
	p.n++
	if p.n%2 == 0 {
		return p.a
	}
	return p.b
}
func (p *flipFlopPolicy) Name() string { return "flipflop" }

func TestSwitchCostValidation(t *testing.T) {
	if _, err := NewSwitchCostPolicy(nil, 1, false, 0); err == nil {
		t.Fatal("expected nil-inner error")
	}
	if _, err := NewSwitchCostPolicy(FixedPolicy{}, -1, false, 0); err == nil {
		t.Fatal("expected negative-swap error")
	}
}

func TestSwitchCostFixedPolicyNeverPays(t *testing.T) {
	inner := FixedPolicy{Model: ModelChoice{ID: "m", ServiceMS: 10, Level: 1}}
	p, err := NewSwitchCostPolicy(inner, 100, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := p.Choose(i); got.ServiceMS != 10 {
			t.Fatalf("fixed policy paid a swap: %+v", got)
		}
	}
}

func TestForegroundSwapChargesOnce(t *testing.T) {
	a := ModelChoice{ID: "a", ServiceMS: 10}
	b := ModelChoice{ID: "b", ServiceMS: 4}
	sw, _ := NewSwitchingPolicy([]ModelChoice{a, b}, 5)
	p, err := NewSwitchCostPolicy(sw, 30, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Choose(0); got.ID != "a" || got.ServiceMS != 10 {
		t.Fatalf("first choice %+v", got)
	}
	// Queue grows past the threshold: switch to b, paying the swap on
	// the next served request.
	got := p.Choose(10)
	if got.ID != "b" || got.ServiceMS != 4+30 {
		t.Fatalf("switch request should pay the swap: %+v", got)
	}
	if got := p.Choose(10); got.ServiceMS != 4 {
		t.Fatalf("subsequent requests should not pay again: %+v", got)
	}
}

func TestBackgroundSwapHidesPenalty(t *testing.T) {
	a := ModelChoice{ID: "a", ServiceMS: 10}
	b := ModelChoice{ID: "b", ServiceMS: 4}
	sw, _ := NewSwitchingPolicy([]ModelChoice{a, b}, 5)
	p, err := NewSwitchCostPolicy(sw, 30, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Choose(0)
	// The switching request is still served by the OLD model at its
	// normal cost; the new model takes over afterwards.
	if got := p.Choose(10); got.ID != "a" || got.ServiceMS != 10 {
		t.Fatalf("background switch should serve the old model: %+v", got)
	}
	if got := p.Choose(10); got.ID != "b" || got.ServiceMS != 4 {
		t.Fatalf("after background load the new model serves: %+v", got)
	}
}

func TestHysteresisDampsFlapping(t *testing.T) {
	a := ModelChoice{ID: "a", ServiceMS: 10}
	b := ModelChoice{ID: "b", ServiceMS: 4}
	flip := &flipFlopPolicy{a: a, b: b}
	p, err := NewSwitchCostPolicy(flip, 30, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The inner policy alternates each call, so no candidate ever hits
	// a streak of 4: the wrapper must never switch.
	first := p.Choose(0).ID
	for i := 0; i < 40; i++ {
		if got := p.Choose(0); got.ID != first || got.ServiceMS > 10 {
			t.Fatalf("hysteresis failed at %d: %+v", i, got)
		}
	}
}

func TestHysteresisEventuallySwitches(t *testing.T) {
	a := ModelChoice{ID: "a", ServiceMS: 10}
	b := ModelChoice{ID: "b", ServiceMS: 4}
	sw, _ := NewSwitchingPolicy([]ModelChoice{a, b}, 5)
	p, err := NewSwitchCostPolicy(sw, 0, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Choose(0)
	ids := []string{}
	for i := 0; i < 5; i++ {
		ids = append(ids, p.Choose(10).ID)
	}
	// Streak must exceed hysteresis (2), so the first two heavy-load
	// picks stay on a, the third switches.
	if ids[0] != "a" || ids[1] != "a" || ids[2] != "b" {
		t.Fatalf("hysteresis switch sequence = %v", ids)
	}
}

func TestSwapCostRaisesTailUnderFlapping(t *testing.T) {
	// A workload oscillating around the switch threshold: foreground
	// swaps without hysteresis must hurt the tail; hysteresis must
	// recover most of it.
	candidates := ladder()
	w := heavyWorkload(3)
	run := func(swap float64, hysteresis int) float64 {
		sw, err := NewSwitchingPolicy(candidates, 4)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSwitchCostPolicy(sw, swap, false, hysteresis)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Simulate(w, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Percentile(r.Latencies, 90)
	}
	free := run(0, 0)
	costly := run(100, 0)
	damped := run(100, 2)
	if costly <= free {
		t.Fatalf("swap cost had no effect: free %.1f vs costly %.1f", free, costly)
	}
	// With swaps this expensive, a little hysteresis pays for its slower
	// adaptation by eliminating repeated swaps.
	if damped >= costly {
		t.Fatalf("hysteresis did not help: damped %.1f vs costly %.1f", damped, costly)
	}
}

func TestBackgroundBeatsForegroundUnderLoad(t *testing.T) {
	candidates := ladder()
	w := heavyWorkload(5)
	run := func(background bool) float64 {
		sw, err := NewSwitchingPolicy(candidates, 4)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewSwitchCostPolicy(sw, 25, background, 0)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Simulate(w, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Percentile(r.Latencies, 99)
	}
	fg := run(false)
	bg := run(true)
	if bg >= fg {
		t.Fatalf("background swapping should beat foreground: bg %.1f vs fg %.1f", bg, fg)
	}
}

func TestSwitchCostPolicyName(t *testing.T) {
	sw, _ := NewSwitchingPolicy(ladder(), 4)
	fg, _ := NewSwitchCostPolicy(sw, 1, false, 0)
	bg, _ := NewSwitchCostPolicy(sw, 1, true, 0)
	if fg.Name() != "sommelier-switching+fg-swap" || bg.Name() != "sommelier-switching+bg-swap" {
		t.Fatalf("names: %q / %q", fg.Name(), bg.Name())
	}
}
