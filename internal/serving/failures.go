package serving

import (
	"context"
	"fmt"

	"sommelier/internal/obs"
	"sommelier/internal/stats"
)

// FailureModel injects model-switch failures into the simulator, so the
// Figure 9(c) configurations can be re-examined under faults: in a real
// deployment a switch means loading new weights onto a serving node,
// which can fail (hub unreachable, node out of memory, load timeout).
// The paper's §7.1 case study assumes switches always succeed; this
// model relaxes that. A failed switch is not a failed request — the
// server keeps serving with its previously deployed model and the
// simulator reports the failed-switch count alongside tail latency.
//
// The failure sequence is drawn from faults.Schedule per-target
// streams (one SwitchTarget per server), the same machinery the
// cluster chaos suite replays from: a flat SwitchFailProb becomes an
// always-open Flake window per server, and WithFaultSchedule exposes
// the full windowed form (kill switches for ops [a,b), slow them, …).
// The sequence a server sees depends only on its own switch-attempt
// count, never on cross-server interleaving.
//
// The struct is frozen (sommlint optcheck): richer fault shapes are
// expressed through WithFaultSchedule, not new fields here.
type FailureModel struct {
	// SwitchFailProb is the probability in [0,1] that a model switch
	// attempt fails, leaving the old model deployed.
	SwitchFailProb float64
	// Seed drives the failure sequence deterministically.
	Seed uint64
}

func (fm FailureModel) validate() error {
	if fm.SwitchFailProb < 0 || fm.SwitchFailProb > 1 {
		return fmt.Errorf("serving: switch failure probability %v outside [0,1]", fm.SwitchFailProb)
	}
	return nil
}

// SimulateWithFailures runs Simulate under a failure model: switch
// attempts fail with fm.SwitchFailProb and fall back to the previously
// deployed model, with counts reported in the Result.
//
// Deprecated: use NewSimulator(WithPolicy(policy), WithServers(servers),
// WithFailureModel(fm)) and Run with a caller context.
func SimulateWithFailures(w Workload, policy Policy, servers int, fm FailureModel) (Result, error) {
	sim, err := NewSimulator(WithPolicy(policy), WithServers(servers), WithFailureModel(fm))
	if err != nil {
		return Result{}, err
	}
	return sim.Run(context.Background(), w)
}

// RunComparisonContext executes the Figure 9(c) comparison — baseline,
// scale-out, switching, switching+scale-out on the same workload — with
// the switching configurations subjected to the failure model. The
// fixed baseline and the scale-out configuration never switch models,
// so they are unaffected by construction. A non-nil observer receives
// every configuration's result (per-policy latency histograms and
// switch counters), so callers can read percentiles from the unified
// snapshot rather than recomputing them from raw latencies.
func RunComparisonContext(ctx context.Context, o *obs.Observer, w Workload,
	candidates []ModelChoice, switchStep int, fm FailureModel) (Comparison, error) {
	if len(candidates) == 0 {
		return Comparison{}, fmt.Errorf("serving: no candidates")
	}
	flagship := candidates[0]
	var c Comparison

	base, err := NewSimulator(WithPolicy(FixedPolicy{Model: flagship}), WithObserver(o))
	if err != nil {
		return c, err
	}
	if c.Baseline, err = base.Run(ctx, w); err != nil {
		return c, err
	}
	if c.ScaleOut, err = base.RunRacing(ctx, w, flagship); err != nil {
		return c, err
	}

	sw1, err := NewSwitchingPolicy(candidates, switchStep)
	if err != nil {
		return c, err
	}
	single, err := NewSimulator(WithPolicy(sw1), WithFailureModel(fm), WithObserver(o))
	if err != nil {
		return c, err
	}
	if c.Switching, err = single.Run(ctx, w); err != nil {
		return c, err
	}

	// The combined run is observed by hand: its result is renamed after
	// the run, and the histogram key must carry the renamed policy.
	sw2, err := NewSwitchingPolicy(candidates, switchStep)
	if err != nil {
		return c, err
	}
	double, err := NewSimulator(WithPolicy(sw2), WithServers(2), WithFailureModel(fm))
	if err != nil {
		return c, err
	}
	if c.Combined, err = double.Run(ctx, w); err != nil {
		return c, err
	}
	c.Combined.PolicyName = "switching+scale-out"
	ObserveResult(o, c.Combined)
	return c, nil
}

// RunComparisonWithFailures executes the Figure 9(c) comparison with
// the switching configurations subjected to the failure model.
//
// Deprecated: use RunComparisonContext with a caller context.
func RunComparisonWithFailures(w Workload, candidates []ModelChoice, switchStep int, fm FailureModel) (Comparison, error) {
	return RunComparisonContext(context.Background(), nil, w, candidates, switchStep, fm)
}

// DegradationReport summarizes how a result behaved under faults:
// latency percentiles plus switch-failure counts, for Fig. 9(c)-style
// runs re-examined under a failure model.
type DegradationReport struct {
	PolicyName     string
	Summary        stats.Summary
	SwitchAttempts int
	FailedSwitches int
	// FailureShare is FailedSwitches / SwitchAttempts (0 when no
	// switches were attempted).
	FailureShare float64
}

// Degradation builds the report for a result.
func Degradation(r Result) DegradationReport {
	rep := DegradationReport{
		PolicyName:     r.PolicyName,
		Summary:        r.Summary(),
		SwitchAttempts: r.SwitchAttempts,
		FailedSwitches: r.FailedSwitches,
	}
	if r.SwitchAttempts > 0 {
		rep.FailureShare = float64(r.FailedSwitches) / float64(r.SwitchAttempts)
	}
	return rep
}
