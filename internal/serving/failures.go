package serving

import (
	"fmt"

	"sommelier/internal/stats"
)

// FailureModel injects model-switch failures into the simulator, so the
// Figure 9(c) configurations can be re-examined under faults: in a real
// deployment a switch means loading new weights onto a serving node,
// which can fail (hub unreachable, node out of memory, load timeout).
// The paper's §7.1 case study assumes switches always succeed; this
// model relaxes that. A failed switch is not a failed request — the
// server keeps serving with its previously deployed model and the
// simulator reports the failed-switch count alongside tail latency.
type FailureModel struct {
	// SwitchFailProb is the probability in [0,1] that a model switch
	// attempt fails, leaving the old model deployed.
	SwitchFailProb float64
	// Seed drives the failure sequence deterministically.
	Seed uint64
}

func (fm FailureModel) validate() error {
	if fm.SwitchFailProb < 0 || fm.SwitchFailProb > 1 {
		return fmt.Errorf("serving: switch failure probability %v outside [0,1]", fm.SwitchFailProb)
	}
	return nil
}

// SimulateWithFailures runs Simulate under a failure model: switch
// attempts fail with fm.SwitchFailProb and fall back to the previously
// deployed model, with counts reported in the Result.
func SimulateWithFailures(w Workload, policy Policy, servers int, fm FailureModel) (Result, error) {
	return simulate(w, policy, servers, fm)
}

// RunComparisonWithFailures executes the Figure 9(c) comparison with
// the switching configurations subjected to the failure model. The
// fixed baseline and the scale-out configuration never switch models,
// so they are unaffected by construction.
func RunComparisonWithFailures(w Workload, candidates []ModelChoice, switchStep int, fm FailureModel) (Comparison, error) {
	if len(candidates) == 0 {
		return Comparison{}, fmt.Errorf("serving: no candidates")
	}
	if err := fm.validate(); err != nil {
		return Comparison{}, err
	}
	flagship := candidates[0]
	var c Comparison
	var err error
	if c.Baseline, err = Simulate(w, FixedPolicy{Model: flagship}, 1); err != nil {
		return c, err
	}
	if c.ScaleOut, err = SimulateRacing(w, flagship); err != nil {
		return c, err
	}
	sw, err := NewSwitchingPolicy(candidates, switchStep)
	if err != nil {
		return c, err
	}
	if c.Switching, err = simulate(w, sw, 1, fm); err != nil {
		return c, err
	}
	if c.Combined, err = simulate(w, sw, 2, fm); err != nil {
		return c, err
	}
	c.Combined.PolicyName = "switching+scale-out"
	return c, nil
}

// DegradationReport summarizes how a result behaved under faults:
// latency percentiles plus switch-failure counts, for Fig. 9(c)-style
// runs re-examined under a failure model.
type DegradationReport struct {
	PolicyName     string
	Summary        stats.Summary
	SwitchAttempts int
	FailedSwitches int
	// FailureShare is FailedSwitches / SwitchAttempts (0 when no
	// switches were attempted).
	FailureShare float64
}

// Degradation builds the report for a result.
func Degradation(r Result) DegradationReport {
	rep := DegradationReport{
		PolicyName:     r.PolicyName,
		Summary:        r.Summary(),
		SwitchAttempts: r.SwitchAttempts,
		FailedSwitches: r.FailedSwitches,
	}
	if r.SwitchAttempts > 0 {
		rep.FailureShare = float64(r.FailedSwitches) / float64(r.SwitchAttempts)
	}
	return rep
}
