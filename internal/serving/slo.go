package serving

import (
	"fmt"
	"sort"
)

// SLOPolicy picks, per request, the highest-quality model whose
// *predicted completion time* (queue drain plus its own service time)
// still meets a latency objective — the "desirable accuracy" plus
// run-time-conditions query of §7.1 expressed as a deadline. When even
// the cheapest model would miss the SLO, the cheapest is served (degrade
// gracefully rather than give up).
//
// The queue-drain prediction assumes pending requests cost the current
// model's service time — exactly the predictability argument the paper
// makes for DNN inference ("the execution time of DNN inference is
// inherently predictable").
type SLOPolicy struct {
	// Candidates ordered by descending quality (level).
	Candidates []ModelChoice
	// TargetMS is the per-request latency objective.
	TargetMS float64

	current ModelChoice
	started bool
}

// NewSLOPolicy sorts the candidates by descending level and returns the
// policy.
func NewSLOPolicy(candidates []ModelChoice, targetMS float64) (*SLOPolicy, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("serving: SLO policy needs candidates")
	}
	if targetMS <= 0 {
		return nil, fmt.Errorf("serving: SLO target must be positive")
	}
	cs := append([]ModelChoice(nil), candidates...)
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].Level > cs[j].Level })
	return &SLOPolicy{Candidates: cs, TargetMS: targetMS, current: cs[0]}, nil
}

// Choose implements Policy.
func (p *SLOPolicy) Choose(queueLen int) ModelChoice {
	if !p.started {
		p.started = true
	}
	drain := float64(queueLen) * p.current.ServiceMS
	for _, c := range p.Candidates {
		if drain+c.ServiceMS <= p.TargetMS {
			p.current = c
			return c
		}
	}
	// Nothing meets the SLO: serve the cheapest to recover fastest.
	cheapest := p.Candidates[0]
	for _, c := range p.Candidates[1:] {
		if c.ServiceMS < cheapest.ServiceMS {
			cheapest = c
		}
	}
	p.current = cheapest
	return cheapest
}

// Name implements Policy.
func (p *SLOPolicy) Name() string { return "slo-driven" }

// SLOAttainment returns the fraction of latencies meeting the target.
func SLOAttainment(latencies []float64, targetMS float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	met := 0
	for _, l := range latencies {
		if l <= targetMS {
			met++
		}
	}
	return float64(met) / float64(len(latencies))
}
