package serving

import (
	"math"
	"reflect"
	"testing"
)

func faultWorkload(seed uint64) Workload {
	return Workload{
		Requests:      4000,
		MeanArrivalMS: 10,
		BurstEvery:    200,
		BurstLen:      60,
		BurstFactor:   4,
		Seed:          seed,
	}
}

func mustSwitching(t *testing.T, step int) *SwitchingPolicy {
	t.Helper()
	sw, err := NewSwitchingPolicy(ladder(), step)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestFailureModelValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1.5} {
		if _, err := SimulateWithFailures(faultWorkload(1), mustSwitching(t, 4), 1,
			FailureModel{SwitchFailProb: p}); err == nil {
			t.Errorf("probability %v accepted", p)
		}
		if _, err := RunComparisonWithFailures(faultWorkload(1), ladder(), 4,
			FailureModel{SwitchFailProb: p}); err == nil {
			t.Errorf("comparison with probability %v accepted", p)
		}
	}
}

func TestZeroProbMatchesSimulate(t *testing.T) {
	w := faultWorkload(3)
	plain, err := Simulate(w, mustSwitching(t, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	under, err := SimulateWithFailures(w, mustSwitching(t, 4), 2, FailureModel{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Latencies, under.Latencies) ||
		!reflect.DeepEqual(plain.ModelShare, under.ModelShare) {
		t.Fatal("zero-probability failure model changed the simulation")
	}
	if plain.FailedSwitches != 0 || under.FailedSwitches != 0 {
		t.Fatal("failed switches reported without a failure model")
	}
	if plain.SwitchAttempts == 0 {
		t.Fatal("bursty workload never attempted a switch — test exercises nothing")
	}
}

func TestFailureModelDeterministic(t *testing.T) {
	fm := FailureModel{SwitchFailProb: 0.4, Seed: 11}
	a, err := SimulateWithFailures(faultWorkload(5), mustSwitching(t, 4), 1, fm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateWithFailures(faultWorkload(5), mustSwitching(t, 4), 1, fm)
	if err != nil {
		t.Fatal(err)
	}
	if a.FailedSwitches != b.FailedSwitches || a.SwitchAttempts != b.SwitchAttempts {
		t.Fatalf("runs diverged: %d/%d vs %d/%d failed/attempted",
			a.FailedSwitches, a.SwitchAttempts, b.FailedSwitches, b.SwitchAttempts)
	}
	if !reflect.DeepEqual(a.Latencies, b.Latencies) {
		t.Fatal("latency traces diverged under identical seeds")
	}
	if a.FailedSwitches == 0 {
		t.Fatal("0.4 failure probability never failed a switch")
	}
	// A different failure seed shifts which switches fail.
	c, err := SimulateWithFailures(faultWorkload(5), mustSwitching(t, 4), 1,
		FailureModel{SwitchFailProb: 0.4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Latencies, c.Latencies) && a.FailedSwitches == c.FailedSwitches {
		t.Fatal("different failure seeds produced identical runs")
	}
}

// flipPolicy alternates between two models every request, maximizing
// switch pressure.
type flipPolicy struct {
	models [2]ModelChoice
	n      int
}

func (p *flipPolicy) Choose(int) ModelChoice {
	p.n++
	return p.models[p.n%2]
}
func (p *flipPolicy) Name() string { return "flip" }

func TestCertainFailurePinsFirstModel(t *testing.T) {
	w := Workload{Requests: 500, MeanArrivalMS: 10, Seed: 2}
	models := [2]ModelChoice{
		{ID: "a", ServiceMS: 5, Level: 1.0},
		{ID: "b", ServiceMS: 5, Level: 0.9},
	}
	res, err := SimulateWithFailures(w, &flipPolicy{models: models}, 1,
		FailureModel{SwitchFailProb: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The first choice deploys; every later switch attempt fails, so a
	// single model serves everything.
	if len(res.ModelShare) != 1 {
		t.Fatalf("model share = %v, want one pinned model", res.ModelShare)
	}
	if res.SwitchAttempts == 0 || res.FailedSwitches != res.SwitchAttempts {
		t.Fatalf("failed %d of %d attempts, want all", res.FailedSwitches, res.SwitchAttempts)
	}
	total := 0
	for _, n := range res.ModelShare {
		total += n
	}
	if total != w.Requests {
		t.Fatalf("served %d requests, want %d — failed switches must not drop requests", total, w.Requests)
	}
}

func TestComparisonWithFailuresReports(t *testing.T) {
	fm := FailureModel{SwitchFailProb: 0.3, Seed: 7}
	cmp, err := RunComparisonWithFailures(faultWorkload(9), ladder(), 4, fm)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline.SwitchAttempts != 0 || cmp.ScaleOut.SwitchAttempts != 0 {
		t.Fatal("non-switching configurations report switch attempts")
	}
	if cmp.Switching.SwitchAttempts == 0 || cmp.Switching.FailedSwitches == 0 {
		t.Fatalf("switching run: %d/%d failed/attempted, want both > 0",
			cmp.Switching.FailedSwitches, cmp.Switching.SwitchAttempts)
	}
	rep := Degradation(cmp.Switching)
	if rep.FailureShare <= 0 || rep.FailureShare >= 1 {
		t.Fatalf("failure share = %v", rep.FailureShare)
	}
	if math.Abs(rep.FailureShare-0.3) > 0.15 {
		t.Fatalf("failure share %v far from configured 0.3", rep.FailureShare)
	}
	if rep.Summary.P99 <= 0 {
		t.Fatal("degradation report lost the latency summary")
	}
	// Failed switches leave the old (often slower) model serving, so
	// the faulty run cannot beat the fault-free one at the median by
	// any margin — sanity-check the direction of the effect.
	clean, err := RunComparison(faultWorkload(9), ladder(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Switching.Summary().P50+1e-9 < clean.Switching.Summary().P50 {
		t.Fatalf("faults improved p50: %v < %v",
			cmp.Switching.Summary().P50, clean.Switching.Summary().P50)
	}
}
